"""E1: Table I as a working-systems matrix.

Every row of the paper's Table I — (DB problem, formulation, intermediate
algorithm, machine class) — is exercised end to end on a representative
instance and must land within a small gap of its classical optimum.
"""

import pytest

from repro import solve
from repro.api import SchemaMatchingAdapter, TxnScheduleAdapter
from repro.db.generator import chain_query
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep
from repro.integration import generate_schema_pair, hungarian_matching
from repro.integration.qubo import matching_similarity_total, similarity_matrix
from repro.joinorder.baselines import solve_bushy_annealing, solve_leftdeep_qaoa
from repro.joinorder.vqc_agent import VQCJoinOrderAgent
from repro.mqo import exhaustive_mqo, generate_mqo_problem, solve_with_annealer, solve_with_qaoa
from repro.txn import generate_transactions, grover_find_schedule
from repro.txn.qubo import assignment_conflicts


def test_row_mqo_annealing_trummer_koch(benchmark):
    """[20]: MQO -> QUBO -> annealing-based machine."""
    problem = generate_mqo_problem(4, 3, sharing_density=0.4, rng=0)
    _, optimum = exhaustive_mqo(problem)
    result = benchmark.pedantic(lambda: solve_with_annealer(problem, rng=1), rounds=1, iterations=1)
    assert result.total_cost == pytest.approx(optimum)


def test_row_mqo_qaoa_fankhauser(benchmark):
    """[21], [22]: MQO -> QUBO -> QAOA on a gate-based machine."""
    problem = generate_mqo_problem(3, 2, sharing_density=0.5, rng=2)
    _, optimum = exhaustive_mqo(problem)
    result = benchmark.pedantic(
        lambda: solve_with_qaoa(problem, num_layers=3, maxiter=120, rng=3), rounds=1, iterations=1
    )
    assert result.total_cost == pytest.approx(optimum)


def test_row_join_ordering_qaoa_schonberger(benchmark):
    """[23], [24]: left-deep join ordering -> QUBO -> QAOA."""
    graph = chain_query(3, rng=4)
    _, reference = dp_optimal_leftdeep(graph, avoid_cross=False)
    outcome = benchmark.pedantic(
        lambda: solve_leftdeep_qaoa(graph, num_layers=2, maxiter=100, rng=5), rounds=1, iterations=1
    )
    assert outcome.cost <= reference * 2.0


def test_row_bushy_join_trees_nayak(benchmark):
    """[25], [26]: bushy join trees -> QUBO -> annealing/VQE-class solver."""
    graph = chain_query(5, rng=6)
    _, reference = dp_optimal_bushy(graph)
    outcome = benchmark.pedantic(lambda: solve_bushy_annealing(graph, rng=7), rounds=1, iterations=1)
    assert outcome.tree.relations() == frozenset(graph.relations)
    assert outcome.ratio_to(reference) < 10.0


def test_row_join_ordering_vqc_winker(benchmark):
    """[27]: join ordering as learning with a variational quantum circuit."""
    graph = chain_query(4, rng=2)
    agent = VQCJoinOrderAgent(graph, num_layers=1)

    history = benchmark.pedantic(lambda: agent.train(episodes=50, rng=0), rounds=1, iterations=1)
    assert history.mean_ratio(10) < sum(history.ratios[:10]) / 10


def test_row_schema_matching_fritsch_scherzinger(benchmark):
    """[28]: schema matching -> QUBO -> annealing; matches Hungarian score."""
    source, target, _ = generate_schema_pair(6, rng=8)
    adapter = SchemaMatchingAdapter(source, target)

    def kernel():
        return solve(adapter, backend="sa", seed=9, refine=False, top_k=1, num_reads=24, num_sweeps=300).solution

    matching = benchmark.pedantic(kernel, rounds=1, iterations=1)
    hungarian = hungarian_matching(source, target)
    full_sims = similarity_matrix(source, target)
    qubo_score = matching_similarity_total(matching, full_sims)
    hungarian_score = matching_similarity_total(hungarian, full_sims)
    assert qubo_score >= 0.97 * hungarian_score


def test_row_transactions_qubo_bittner_groppe(benchmark):
    """[29], [30]: two-phase-locking schedules -> QUBO -> annealing."""
    txns = generate_transactions(5, num_items=5, rng=10)

    def kernel():
        return solve(TxnScheduleAdapter(txns), backend="sa", seed=11, refine=False, top_k=1, num_reads=24, num_sweeps=300).solution

    assignment = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert assignment_conflicts(txns, assignment) == 0


def test_row_transactions_grover_groppe_groppe(benchmark):
    """[31]: transaction schedules via Grover search on a universal machine."""
    txns = generate_transactions(4, num_items=6, rng=12)
    result = benchmark.pedantic(lambda: grover_find_schedule(txns, 4, rng=13), rounds=1, iterations=1)
    assert result.found
    assert assignment_conflicts(txns, result.assignment) == 0
    assert result.oracle_calls < result.info["search_space"]
