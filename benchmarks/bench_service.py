"""Service-tier benchmark: coalesced waves vs sequential single solves.

One claim, asserted: for a burst of concurrent single-solve requests, the
service's coalescing queue dispatches **at least 4x fewer engine waves
than requests** and finishes the burst **no slower than solving each
request sequentially through the facade** — at *identical objectives*,
because explicit per-request seeds plus single-item shards make every
coalesced solve bit-identical to its direct counterpart.

The throughput edge is structural, not a scheduling coincidence: the burst
contains duplicate ``(problem, seed)`` requests (as real traffic does —
specs are content-addressable), and single-flight dedup halves the engine
work before the thread pool even starts, so the claim holds on a
single-core runner too.

Emits ``BENCH_<run>_service.json`` (wave counts, wall times, dedup ratio)
for the CI trajectory artifact, alongside ``bench_engine.py``'s file.
"""

import asyncio
import json
import os
import time

from repro.api.facade import solve
from repro.service import ServiceConfig, SolverService, problem_from_spec

#: 16 unique (instance, seed) requests, each submitted twice: 32 requests.
UNIQUE_INSTANCES = 8
SEEDS_PER_INSTANCE = 2
DUPLICATES = 2
SA_OPTS = dict(num_reads=8, num_sweeps=150)


def _burst():
    """The request burst: (spec, seed) pairs with every pair repeated."""
    requests = [
        (
            {
                "kind": "mqo",
                "num_queries": 4,
                "plans_per_query": 3,
                "sharing_density": 0.4,
                "instance_seed": instance,
            },
            seed,
        )
        for instance in range(UNIQUE_INSTANCES)
        for seed in range(SEEDS_PER_INSTANCE)
    ]
    return requests * DUPLICATES


def _emit_bench_json(payload: dict) -> str:
    """Write ``BENCH_<run>_service.json`` (same convention as bench_engine,
    suffixed so the two trajectory files can share an output directory)."""
    run_id = os.environ.get("BENCH_RUN_ID") or os.environ.get("GITHUB_RUN_ID") or "local"
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{run_id}_service.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def test_coalesced_burst_beats_sequential_at_equal_objectives(benchmark):
    requests = _burst()
    assert len(requests) >= 16

    def sequential():
        t0 = time.perf_counter()
        results = [
            solve(problem_from_spec(spec), backend="sa", seed=seed, **SA_OPTS)
            for spec, seed in requests
        ]
        return results, time.perf_counter() - t0

    async def burst_through_service():
        service = SolverService(
            ServiceConfig(
                window_s=0.5,
                max_wave=len(requests),
                backends=("sa",),
                backend_opts={"sa": dict(SA_OPTS)},
                executor="threads",
            )
        )
        await service.start()
        t0 = time.perf_counter()
        jobs = [service.submit(spec, seed=seed) for spec, seed in requests]
        await asyncio.gather(*[job.future for job in jobs])
        elapsed = time.perf_counter() - t0
        await service.shutdown()
        return service, jobs, elapsed

    def kernel():
        direct, sequential_s = sequential()
        service, jobs, service_s = asyncio.run(burst_through_service())
        return direct, sequential_s, service, jobs, service_s

    direct, sequential_s, service, jobs, service_s = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )

    # Identical results, request by request.
    for reference, job in zip(direct, jobs):
        assert job.status == "done"
        assert reference.objective == job.result.objective
        assert reference.solution == job.result.solution

    # Coalescing: >= 4x fewer waves than requests.
    waves = service._m["waves"].value()
    unique = service._m["unique_solves"].value()
    deduped = service._m["deduped"].value()
    assert waves <= len(requests) / 4, f"{waves} waves for {len(requests)} requests"
    assert unique + deduped == len(requests)
    assert deduped >= len(requests) // DUPLICATES  # single-flight dedup worked

    # Throughput: the coalesced burst must not lose to sequential solving.
    assert service_s <= sequential_s, (
        f"coalesced burst took {service_s:.3f}s vs sequential {sequential_s:.3f}s"
    )

    path = _emit_bench_json(
        {
            "benchmark": "service_coalescing_burst",
            "requests": len(requests),
            "unique_solves": unique,
            "deduped_requests": deduped,
            "waves": waves,
            "coalescing_ratio": len(requests) / waves,
            "sequential_s": round(sequential_s, 4),
            "service_s": round(service_s, 4),
            "speedup": round(sequential_s / service_s, 3) if service_s else None,
            "mean_objective": round(
                sum(r.objective for r in direct) / len(direct), 6
            ),
        }
    )
    print(
        f"\n[bench_service] {len(requests)} requests -> {int(waves)} wave(s), "
        f"{int(unique)} engine solves; sequential {sequential_s:.3f}s, "
        f"coalesced {service_s:.3f}s -> {path}"
    )
