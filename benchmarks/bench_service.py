"""Service-tier benchmark: coalesced waves vs sequential single solves.

One claim, asserted: for a burst of concurrent single-solve requests, the
service's coalescing queue dispatches **at least 4x fewer engine waves
than requests** and finishes the burst **no slower than solving each
request sequentially through the facade** — at *identical objectives*,
because explicit per-request seeds plus single-item shards make every
coalesced solve bit-identical to its direct counterpart.

The throughput edge is structural, not a scheduling coincidence: the burst
contains duplicate ``(problem, seed)`` requests (as real traffic does —
specs are content-addressable), and single-flight dedup halves the engine
work before the thread pool even starts, so the claim holds on a
single-core runner too.

A second scenario pins the admission-control claim under overload: one
best_effort tenant flooding 4x the queue depth cannot push interactive
latency past 2x its unloaded baseline — the flood is shed (429 +
``Retry-After``) or degraded to the classical tier, never timed out, and
every admitted result (degraded or not) stays bit-identical to its direct
``solve()`` counterpart.

Emits ``BENCH_<run>_service.json`` (one section per scenario, merged so
both runs land in a single CI trajectory artifact) alongside
``bench_engine.py``'s file.
"""

import asyncio
import json
import math
import os
import time

from repro.api.facade import solve
from repro.service import AdmissionShed, ServiceConfig, SolverService, problem_from_spec

#: 16 unique (instance, seed) requests, each submitted twice: 32 requests.
UNIQUE_INSTANCES = 8
SEEDS_PER_INSTANCE = 2
DUPLICATES = 2
SA_OPTS = dict(num_reads=8, num_sweeps=150)


def _burst():
    """The request burst: (spec, seed) pairs with every pair repeated."""
    requests = [
        (
            {
                "kind": "mqo",
                "num_queries": 4,
                "plans_per_query": 3,
                "sharing_density": 0.4,
                "instance_seed": instance,
            },
            seed,
        )
        for instance in range(UNIQUE_INSTANCES)
        for seed in range(SEEDS_PER_INSTANCE)
    ]
    return requests * DUPLICATES


def _emit_bench_json(section: str, payload: dict) -> str:
    """Merge one scenario's payload into ``BENCH_<run>_service.json``.

    Same naming convention as bench_engine (suffixed so the two trajectory
    files can share an output directory); sections merge rather than
    overwrite so both scenarios in this file land in one artifact
    regardless of test order.
    """
    run_id = os.environ.get("BENCH_RUN_ID") or os.environ.get("GITHUB_RUN_ID") or "local"
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{run_id}_service.json")
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, json.JSONDecodeError):
            data = {}
    data[section] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return path


def _p95(values):
    ordered = sorted(values)
    return ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)]


def test_coalesced_burst_beats_sequential_at_equal_objectives(benchmark):
    requests = _burst()
    assert len(requests) >= 16

    def sequential():
        t0 = time.perf_counter()
        results = [
            solve(problem_from_spec(spec), backend="sa", seed=seed, **SA_OPTS)
            for spec, seed in requests
        ]
        return results, time.perf_counter() - t0

    async def burst_through_service():
        service = SolverService(
            ServiceConfig(
                window_s=0.5,
                max_wave=len(requests),
                backends=("sa",),
                backend_opts={"sa": dict(SA_OPTS)},
                executor="threads",
            )
        )
        await service.start()
        t0 = time.perf_counter()
        jobs = [service.submit(spec, seed=seed) for spec, seed in requests]
        await asyncio.gather(*[job.future for job in jobs])
        elapsed = time.perf_counter() - t0
        await service.shutdown()
        return service, jobs, elapsed

    def kernel():
        direct, sequential_s = sequential()
        service, jobs, service_s = asyncio.run(burst_through_service())
        return direct, sequential_s, service, jobs, service_s

    direct, sequential_s, service, jobs, service_s = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )

    # Identical results, request by request.
    for reference, job in zip(direct, jobs):
        assert job.status == "done"
        assert reference.objective == job.result.objective
        assert reference.solution == job.result.solution

    # Coalescing: >= 4x fewer waves than requests.
    waves = service._m["waves"].value()
    unique = service._m["unique_solves"].value()
    deduped = service._m["deduped"].value()
    assert waves <= len(requests) / 4, f"{waves} waves for {len(requests)} requests"
    assert unique + deduped == len(requests)
    assert deduped >= len(requests) // DUPLICATES  # single-flight dedup worked

    # Throughput: the coalesced burst must not lose to sequential solving.
    assert service_s <= sequential_s, (
        f"coalesced burst took {service_s:.3f}s vs sequential {sequential_s:.3f}s"
    )

    path = _emit_bench_json(
        "coalescing_burst",
        {
            "benchmark": "service_coalescing_burst",
            "requests": len(requests),
            "unique_solves": unique,
            "deduped_requests": deduped,
            "waves": waves,
            "coalescing_ratio": len(requests) / waves,
            "sequential_s": round(sequential_s, 4),
            "service_s": round(service_s, 4),
            "speedup": round(sequential_s / service_s, 3) if service_s else None,
            "mean_objective": round(
                sum(r.objective for r in direct) / len(direct), 6
            ),
        }
    )
    print(
        f"\n[bench_service] {len(requests)} requests -> {int(waves)} wave(s), "
        f"{int(unique)} engine solves; sequential {sequential_s:.3f}s, "
        f"coalesced {service_s:.3f}s -> {path}"
    )


# -- overload: admission control under a best_effort flood -------------------

FLOOD_FACTOR = 4          #: flood size as a multiple of max_queue_depth
OVERLOAD_DEPTH = 16       #: max_queue_depth for the overload service
OVERLOAD_WAVE = 8
INTERACTIVE_REQUESTS = 8
OVERLOAD_SA_OPTS = dict(num_reads=8, num_sweeps=150)


def _overload_config(**overrides):
    defaults = dict(
        window_s=0.05,
        max_wave=OVERLOAD_WAVE,
        max_queue_depth=OVERLOAD_DEPTH,
        backends=("sa",),
        backend_opts={"sa": dict(OVERLOAD_SA_OPTS)},
        executor="threads",
        degrade_backends=("tabu",),
        # The flood tenant may hold 25% of the queue and has *no* backend
        # budget: whatever it does get admitted runs on the classical tier.
        tenants={"flood": {"queue_share": 0.25, "backend_seconds": 0.0}},
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _interactive_spec(i):
    return {
        "kind": "mqo",
        "num_queries": 4,
        "plans_per_query": 3,
        "sharing_density": 0.4,
        "instance_seed": 40 + i,
    }


def test_overload_flood_sheds_while_interactive_stays_fast():
    flood_total = FLOOD_FACTOR * OVERLOAD_DEPTH  # 64 best_effort requests

    async def unloaded_baseline():
        """The same interactive traffic with no flood: the p95 yardstick."""
        service = SolverService(_overload_config())
        await service.start()
        jobs = []
        for i in range(INTERACTIVE_REQUESTS):
            jobs.append(service.submit(_interactive_spec(i), seed=i,
                                       tenant="dash", priority="interactive"))
            await asyncio.sleep(0.01)
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return [job.latency_s for job in jobs]

    async def overloaded():
        service = SolverService(_overload_config())
        await service.start()
        admitted_floods, sheds, interactive = [], [], []
        flood_seed = 0
        for chunk in range(INTERACTIVE_REQUESTS):
            for _ in range(flood_total // INTERACTIVE_REQUESTS):
                spec = {
                    "kind": "mqo",
                    "num_queries": 4,
                    "plans_per_query": 3,
                    "sharing_density": 0.4,
                    "instance_seed": 100 + flood_seed,
                }
                try:
                    job = service.submit(spec, seed=flood_seed, tenant="flood",
                                         priority="best_effort")
                    admitted_floods.append(job)
                except AdmissionShed as exc:
                    sheds.append(exc)
                flood_seed += 1
            # One interactive request lands mid-flood, every chunk.
            interactive.append(
                service.submit(_interactive_spec(chunk), seed=chunk,
                               tenant="dash", priority="interactive")
            )
            await asyncio.sleep(0.01)  # let waves dispatch and drain
        await asyncio.gather(
            *[job.future for job in interactive],
            *[job.future for job in admitted_floods],
        )
        await service.shutdown()
        return service, admitted_floods, sheds, interactive

    t0 = time.perf_counter()
    baseline_latencies = asyncio.run(unloaded_baseline())
    service, admitted_floods, sheds, interactive = asyncio.run(overloaded())
    elapsed = time.perf_counter() - t0

    # Every interactive request was admitted (submit() raised for none)
    # and finished; the flood never starved or timed them out.
    assert len(interactive) == INTERACTIVE_REQUESTS
    assert all(job.status == "done" for job in interactive)
    p95_baseline = _p95(baseline_latencies)
    p95_loaded = _p95([job.latency_s for job in interactive])
    # The acceptance bar: p95 under flood <= 2x unloaded p95 (a small
    # additive floor keeps sub-100ms baselines from amplifying scheduler
    # jitter into flakes).
    assert p95_loaded <= 2 * p95_baseline + 0.25, (
        f"interactive p95 {p95_loaded:.3f}s vs unloaded {p95_baseline:.3f}s"
    )

    # The flood was contained: every request either shed with a usable
    # Retry-After or ran degraded on the classical tier — none timed out.
    assert len(sheds) + len(admitted_floods) == flood_total
    assert sheds, "the flood never hit a shed decision"
    assert admitted_floods, "the flood was shed entirely; degrade path untested"
    assert all(exc.retry_after_s >= 1 for exc in sheds)
    assert all(exc.reason in ("queue_share", "queue_full") for exc in sheds)
    for job in admitted_floods:
        assert job.status == "done"  # degraded, not dropped
        assert job.admission["action"] == "degrade"
        assert job.admission["reason"] == "backend_seconds"
        assert job.result.info["admission"]["backends"] == ["tabu"]
        assert job.result.method == "tabu"

    # Determinism survives admission: interactive results match direct
    # solves on the fleet, degraded floods match direct solves on the
    # degraded backend (spot-check a handful to bound runtime).
    for job in interactive:
        direct = solve(problem_from_spec(job.spec), backend="sa",
                       seed=job.seed, **OVERLOAD_SA_OPTS)
        assert direct.objective == job.result.objective
        assert direct.solution == job.result.solution
    for job in admitted_floods[:6]:
        direct = solve(problem_from_spec(job.spec), backend="tabu", seed=job.seed)
        assert direct.objective == job.result.objective
        assert direct.solution == job.result.solution

    shed_count = len(sheds)
    degraded_count = len(admitted_floods)
    path = _emit_bench_json(
        "overload",
        {
            "benchmark": "service_admission_overload",
            "flood_requests": flood_total,
            "flood_shed": shed_count,
            "flood_degraded": degraded_count,
            "interactive_requests": INTERACTIVE_REQUESTS,
            "interactive_p95_s": round(p95_loaded, 4),
            "unloaded_p95_s": round(p95_baseline, 4),
            "p95_ratio": round(p95_loaded / p95_baseline, 3) if p95_baseline else None,
            "mean_retry_after_s": round(
                sum(exc.retry_after_s for exc in sheds) / shed_count, 3
            ),
            "wall_s": round(elapsed, 4),
        },
    )
    print(
        f"\n[bench_service] overload: {flood_total} best_effort floods -> "
        f"{shed_count} shed / {degraded_count} degraded; interactive p95 "
        f"{p95_loaded:.3f}s (unloaded {p95_baseline:.3f}s) -> {path}"
    )
