"""Micro-benchmark: facade overhead vs. hand-rolled pipeline calls.

The facade adds adapter dispatch, result packaging and top-k decode/refine
around the same sampler kernel; this records that overhead and asserts it
stays a small constant factor (the sampler dominates), plus measures the
batch-path embedding reuse win.
"""

import time

import pytest

from repro import solve, solve_many
from repro.api import MQOAdapter
from repro.annealing.device import AnnealerDevice
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.mqo import generate_mqo_problem
from repro.mqo.qubo import decode_sample, mqo_to_qubo


def _direct_pipeline(problem, seed):
    """The pre-facade idiom: build, sample, decode best by hand."""
    model = mqo_to_qubo(problem)
    samples = SimulatedAnnealingSolver(num_reads=16, num_sweeps=200).solve(model, rng=seed)
    selection = decode_sample(problem, model, samples.best.bits)
    return problem.total_cost(selection)


def test_facade_overhead_is_bounded(benchmark):
    """Facade wall-clock stays within a small factor of the direct calls.

    ``refine=False`` and ``top_k=1`` make the two paths run the same work,
    so the measured gap is pure facade overhead.
    """
    problem = generate_mqo_problem(4, 3, sharing_density=0.4, rng=0)

    def kernel():
        t0 = time.perf_counter()
        for seed in range(3):
            _direct_pipeline(problem, seed)
        direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        for seed in range(3):
            solve(problem, backend="sa", seed=seed, refine=False, top_k=1,
                  num_reads=16, num_sweeps=200)
        facade = time.perf_counter() - t0
        return direct, facade

    direct, facade = benchmark.pedantic(kernel, rounds=1, iterations=1)
    # Generous bound: the sampler dominates; dispatch must stay in the noise.
    assert facade < direct * 2.0 + 0.05


def test_facade_quality_matches_direct(benchmark):
    """Same sampler, same seed: the facade never returns a worse answer
    (it decodes top-k and refines; the direct path decodes only the best)."""

    def kernel():
        pairs = []
        for seed in range(4):
            problem = generate_mqo_problem(4, 3, sharing_density=0.4, rng=seed)
            pairs.append((
                _direct_pipeline(problem, seed),
                solve(problem, backend="sa", seed=seed, num_reads=16, num_sweeps=200).objective,
            ))
        return pairs

    pairs = benchmark.pedantic(kernel, rounds=1, iterations=1)
    for direct_cost, facade_cost in pairs:
        assert facade_cost <= direct_cost + 1e-9


def test_batch_embedding_reuse_beats_per_solve_search(benchmark):
    """solve_many's shared annealer backend re-embeds once per structure;
    per-solve devices re-search every time."""
    problems = [
        MQOAdapter(generate_mqo_problem(4, 3, sharing_density=0.4, rng=7))
        for _ in range(4)
    ]

    def kernel():
        t0 = time.perf_counter()
        for i, adapter in enumerate(problems):
            device = AnnealerDevice(sampler="sa", num_reads=8, num_sweeps=100)
            device.sample(mqo_to_qubo(adapter.problem), rng=i)
        per_solve = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = solve_many(problems, backend="annealer", seed=0, num_reads=8, num_sweeps=100)
        batch = time.perf_counter() - t0
        return per_solve, batch, [r.info["embedding_cached"] for r in results]

    per_solve, batch, cached = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert cached == [False, True, True, True]
    # The batch path also decodes/refines, so only assert it's in the same
    # ballpark — the reuse must at least pay for the facade overhead.
    assert batch < per_solve * 3.0 + 0.2
