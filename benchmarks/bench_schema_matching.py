"""E10: schema matching via QUBO ([28]).

Shapes: the QUBO optimum equals the Hungarian score; F1 against ground
truth degrades gracefully as rename noise grows; both QUBO and Hungarian
degrade together (the matcher, not the solver, is the bottleneck).
"""

import numpy as np
import pytest

from repro import solve
from repro.integration import generate_schema_pair, greedy_matching, hungarian_matching
from repro.integration.qubo import matching_quality, matching_similarity_total, similarity_matrix


def test_e10_qubo_matches_hungarian_score(benchmark):
    def kernel():
        gaps = []
        for seed in range(4):
            source, target, _ = generate_schema_pair(6, rng=seed)
            # refine=False/top_k=1: decode-best parity (measure the sampler,
            # not the facade's classical augmentation).
            qubo_match = solve((source, target), backend="sa", seed=seed, refine=False, top_k=1, num_reads=24, num_sweeps=300).solution
            sims = similarity_matrix(source, target)
            hungarian_score = matching_similarity_total(hungarian_matching(source, target), sims)
            qubo_score = matching_similarity_total(qubo_match, sims)
            gaps.append(qubo_score / max(hungarian_score, 1e-9))
        return gaps

    gaps = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert min(gaps) > 0.97


def test_e10_noise_sweep(benchmark):
    def kernel():
        f1_by_noise = []
        for rename_prob in (0.0, 0.4, 0.8):
            scores = []
            for seed in range(3):
                source, target, truth = generate_schema_pair(
                    7, rename_probability=rename_prob, drop_probability=0.0, rng=seed + 5
                )
                result = solve((source, target), backend="sa", seed=seed, refine=False, top_k=1, num_reads=16, num_sweeps=250)
                _, _, f1 = matching_quality(result.solution, truth)
                scores.append(f1)
            f1_by_noise.append(float(np.mean(scores)))
        return f1_by_noise

    f1_by_noise = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert f1_by_noise[0] == pytest.approx(1.0)  # clean schemas: perfect
    assert f1_by_noise[-1] <= f1_by_noise[0]  # noise can only hurt
    assert f1_by_noise[-1] > 0.4  # but lexical signals keep it useful


def test_e10_hungarian_vs_greedy(benchmark):
    def kernel():
        wins = 0
        for seed in range(6):
            source, target, _ = generate_schema_pair(7, rng=seed + 20)
            sims = similarity_matrix(source, target)
            h = matching_similarity_total(hungarian_matching(source, target), sims)
            g = matching_similarity_total(greedy_matching(source, target), sims)
            if h >= g - 1e-9:
                wins += 1
        return wins

    wins = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert wins == 6
