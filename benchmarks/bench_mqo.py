"""E8: MQO on the annealer ([20]'s headline experiment, reshaped).

Shapes to reproduce: the annealer matches the exhaustive/hill-climbing
optimum on small instances, keeps beating greedy as sharing density grows,
and its runtime scales past exhaustive enumeration (which explodes as
``plans^queries``).
"""

import time

import numpy as np
import pytest

from repro import solve
from repro.mqo import (
    exhaustive_mqo,
    generate_mqo_problem,
    greedy_mqo,
    hill_climbing_mqo,
)


def test_e8_quality_matches_exhaustive(benchmark):
    """Annealing solution quality == exhaustive optimum (q=4, p=3)."""

    def kernel():
        ratios = []
        for seed in range(4):
            problem = generate_mqo_problem(4, 3, sharing_density=0.4, rng=seed)
            _, optimum = exhaustive_mqo(problem)
            result = solve(problem, backend="sa", seed=seed, num_reads=16, num_sweeps=200)
            ratios.append(result.objective / optimum)
        return ratios

    ratios = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert np.allclose(ratios, 1.0)


def test_e8_sharing_density_sweep(benchmark):
    """More sharing -> larger greedy gap; annealer keeps the advantage."""

    def kernel():
        gaps = []
        for density in (0.0, 0.3, 0.6, 0.9):
            greedy_total = 0.0
            quantum_total = 0.0
            for seed in range(3):
                problem = generate_mqo_problem(4, 3, sharing_density=density, rng=seed + 10)
                _, greedy_cost = greedy_mqo(problem)
                result = solve(problem, backend="sa", seed=seed, num_reads=16, num_sweeps=200)
                greedy_total += greedy_cost
                quantum_total += result.objective
            gaps.append(greedy_total / quantum_total)
        return gaps

    gaps = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert gaps[0] == pytest.approx(1.0)  # no sharing: greedy is optimal
    assert all(g > 1.05 for g in gaps[1:])  # with sharing: the annealer wins
    assert max(gaps) > 1.3  # and the advantage becomes substantial


def test_e8_scaling_crossover(benchmark):
    """Annealing wall-clock grows polynomially while exhaustive explodes."""

    def kernel():
        rows = []
        for q, p in ((3, 3), (5, 3), (7, 3), (9, 3)):
            problem = generate_mqo_problem(q, p, sharing_density=0.3, rng=q)
            start = time.perf_counter()
            result = solve(problem, backend="sa", seed=q, num_reads=12, num_sweeps=150)
            anneal_time = time.perf_counter() - start
            space = p**q
            _, hc_cost = hill_climbing_mqo(problem, restarts=10, rng=q)
            rows.append((q * p, space, anneal_time, result.objective / hc_cost))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    spaces = [r[1] for r in rows]
    times = [r[2] for r in rows]
    assert spaces[-1] / spaces[0] > 500  # exhaustive space explodes
    assert times[-1] / max(times[0], 1e-4) < 100  # annealing stays tame
    for _, _, _, ratio in rows:
        assert ratio <= 1.02  # matches or beats hill climbing
