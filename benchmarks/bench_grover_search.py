"""E7 / E16: quantum database search and operations (Sec. III-A).

Shape to reproduce: classical ~N/2 oracle calls vs Grover ~(pi/4) sqrt(N)
with success >= 0.9; set operations and joins return exact answers with
fewer oracle calls than their classical counterparts at scale.
"""

import math

import numpy as np
import pytest

from repro.algorithms.grover import CountingOracle, GroverSearch, classical_search, optimal_iterations
from repro.qdb.join import classical_join, quantum_join
from repro.qdb.search import classical_select, quantum_select
from repro.qdb.setops import classical_intersection_calls, quantum_intersection
from repro.qdb.table import QuantumTable


def test_e7_grover_vs_classical_sweep(benchmark):
    """Oracle calls across N = 2^n, n = 4..10 — the E7 table."""

    def kernel():
        rows = []
        for n in range(4, 11):
            N = 2**n
            target = N // 3
            oracle = CountingOracle([target], n)
            result = GroverSearch(oracle).run(rng=n)
            classical_calls = []
            for seed in range(10):
                c_oracle = CountingOracle([target], n)
                classical_search(c_oracle, rng=seed)
                classical_calls.append(c_oracle.calls)
            rows.append((N, result.oracle_calls, float(np.mean(classical_calls)), result.success_probability))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    for N, q_calls, c_calls, success in rows:
        assert success >= 0.9
        assert q_calls <= math.ceil(math.pi / 4 * math.sqrt(N))
    # Quadratic speedup shape: classical/quantum ratio grows ~sqrt(N).
    first_ratio = rows[0][2] / rows[0][1]
    last_ratio = rows[-1][2] / rows[-1][1]
    assert last_ratio > first_ratio * 2


def test_e7_multi_target_extraction(benchmark):
    table = QuantumTable("t", 8, range(256))

    def kernel():
        q = quantum_select(table, lambda k: k % 51 == 0, rng=1)
        c = classical_select(QuantumTable("t", 8, range(256)), lambda k: k % 51 == 0, rng=1)
        return q, c

    q, c = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert q.matches == c.matches
    assert q.oracle_calls < c.oracle_calls


def test_e16_set_operations(benchmark):
    a = QuantumTable("a", 7, range(0, 128, 3))
    b = QuantumTable("b", 7, range(0, 128, 7))

    def kernel():
        return quantum_intersection(a, b, rng=2)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.keys == frozenset(set(a.keys) & set(b.keys))
    assert result.oracle_calls > 0
    assert classical_intersection_calls(a, b) == a.cardinality


def test_e16_quantum_join(benchmark):
    a = QuantumTable("a", 5, [1, 3, 9, 14, 27])
    b = QuantumTable("b", 5, [3, 9, 20, 30])

    def kernel():
        return quantum_join(a, b, rng=3)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    reference = classical_join(a, b)
    assert result.pairs == reference.pairs
    assert reference.oracle_calls == 20  # |A| * |B|
