"""E3 / E4 / E14: the paper's worked examples.

* E3 — Example II.1: ``(|0> + |1>)/sqrt(2)`` measures 0/1 with p = 1/2.
* E4 — Example IV.1 + Fig. 1(c): Bell pairs, teleportation, repeater chains.
* E14 — Sec. IV-B.1: no-cloning; the universal cloner stops at 5/6.
"""

import math

import numpy as np
import pytest

from repro.qnet import EntanglementLink, QuantumNetwork, UniversalCloner, teleport
from repro.qnet.repeater import chain_fidelity
from repro.quantum.bell import bell_state
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector


def test_e3_superposition_measurement(benchmark):
    """Example II.1: equal superposition measures 50/50."""
    sim = StatevectorSimulator()
    qc = QuantumCircuit(1).h(0)

    def kernel():
        return sim.sample(qc, 4096, rng=7)

    counts = benchmark(kernel)
    p0 = counts["0"] / 4096
    assert p0 == pytest.approx(0.5, abs=0.03)


def test_e4_bell_state_correlations(benchmark):
    """Example IV.1: both halves of |Phi+> always agree."""

    def kernel():
        rng = np.random.default_rng(3)
        outcomes = [bell_state("phi+").measure(rng=rng)[0] for _ in range(64)]
        return outcomes

    outcomes = benchmark(kernel)
    assert all(a == b for a, b in outcomes)


def test_e4_teleportation_exact(benchmark):
    """Fig. 1(c): teleportation via a perfect pair is exact."""
    gen = np.random.default_rng(0)
    msg = Statevector(gen.normal(size=2) + 1j * gen.normal(size=2))

    result = benchmark.pedantic(lambda: teleport(msg, rng=1), rounds=3, iterations=1)
    assert result.fidelity == pytest.approx(1.0)


def test_e4_repeater_chain_fidelity_decay(benchmark):
    """Fig. 1(c): end-to-end fidelity decays geometrically with hops."""

    def kernel():
        return [chain_fidelity([0.96] * hops) for hops in range(1, 9)]

    fidelities = benchmark(kernel)
    assert all(a > b for a, b in zip(fidelities, fidelities[1:]))
    # Werner-parameter geometric decay: log-linear within numerical noise.
    ws = [(4 * f - 1) / 3 for f in fidelities]
    ratios = [ws[i + 1] / ws[i] for i in range(len(ws) - 1)]
    assert np.std(ratios) < 1e-9


def test_e4_network_distribution(benchmark):
    """Distribution over a 5-node chain with purification to 0.9."""
    net = QuantumNetwork.chain(5, EntanglementLink(success_prob=0.6, base_fidelity=0.95))

    result = benchmark.pedantic(
        lambda: net.distribute("n0", "n4", rng=5, min_fidelity=0.9), rounds=3, iterations=1
    )
    assert result.fidelity >= 0.9
    assert result.swaps == 3


def test_e14_universal_cloner_five_sixths(benchmark):
    """No-cloning: the optimal copier reaches exactly 5/6 per copy."""
    gen = np.random.default_rng(5)
    states = [Statevector(gen.normal(size=2) + 1j * gen.normal(size=2)) for _ in range(16)]
    cloner = UniversalCloner()

    def kernel():
        return [cloner.copy_fidelity(s) for s in states]

    fidelities = benchmark(kernel)
    assert np.allclose(fidelities, 5.0 / 6.0)
