"""E15: distributed quantum data management (Sec. IV-B opportunities).

Shapes: GHZ-assisted commit removes blocking at a bounded divergence cost;
quantum availability without recipes equals single-node availability;
teleport-based data movement degrades payload fidelity with path length
and purification buys it back.
"""

import numpy as np
import pytest

from repro.dqdm import (
    DistributedQuantumStore,
    GhzAssistedCommit,
    QuantumDataItem,
    TwoPhaseCommit,
    availability_classical,
    simulate_availability,
)
from repro.qnet import EntanglementLink, QuantumNetwork
from repro.quantum.state import Statevector


def test_e15_commit_blocking_vs_divergence(benchmark):
    def kernel():
        rows = []
        for crash in (0.0, 0.1, 0.25):
            tpc = TwoPhaseCommit(5, crash_prob=crash).run(1500, rng=1)
            ghz = GhzAssistedCommit(5, crash_prob=crash).run(1500, rng=2)
            rows.append((crash, tpc.blocking_rate, ghz.blocking_rate, ghz.divergence_rate))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    for crash, tpc_block, ghz_block, ghz_div in rows:
        assert ghz_block == 0.0  # GHZ termination never blocks
        assert tpc_block == pytest.approx(crash, abs=0.05)  # 2PC blocks on crashes
        assert ghz_div <= crash + 0.02  # divergence only in crash rounds
    assert rows[-1][1] > rows[0][1]


def test_e15_availability_gap(benchmark):
    def kernel():
        return simulate_availability(0.9, num_replicas=3, trials=10000, rng=3)

    report = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert report.classical_availability == pytest.approx(availability_classical(0.9, 3), abs=0.01)
    assert report.quantum_without_recipe == pytest.approx(0.9, abs=0.02)
    assert report.classical_availability > report.quantum_without_recipe


def test_e15_store_movement_fidelity(benchmark):
    def kernel():
        fidelities = []
        for hops in (1, 3, 5):
            net = QuantumNetwork.chain(hops + 1, EntanglementLink(success_prob=0.8, base_fidelity=0.96))
            store = DistributedQuantumStore(net)
            item = QuantumDataItem("q", Statevector([1, 1j]))
            store.put_quantum("n0", item)
            receipt = store.move_quantum("q", f"n{hops}", rng=hops)
            fidelities.append(receipt.payload_fidelity)
        return fidelities

    fidelities = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert fidelities[0] > fidelities[1] > fidelities[2]


def test_e15_purified_movement_beats_plain(benchmark):
    def kernel():
        results = []
        for min_f in (None, 0.95):
            net = QuantumNetwork.chain(5, EntanglementLink(success_prob=0.8, base_fidelity=0.95))
            store = DistributedQuantumStore(net)
            store.put_quantum("n0", QuantumDataItem("q", Statevector([1, 1j])))
            receipt = store.move_quantum("q", "n4", rng=9, min_pair_fidelity=min_f)
            results.append((receipt.payload_fidelity, receipt.pairs_consumed))
        return results

    (plain_f, plain_pairs), (pure_f, pure_pairs) = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert pure_f > plain_f  # purification buys fidelity...
    assert pure_pairs > plain_pairs  # ...at entanglement cost
