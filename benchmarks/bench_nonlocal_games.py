"""E5 / E6: the nonlocal games of Sec. IV-A.

Paper numbers: CHSH 0.75 classical vs ~0.85 quantum; GHZ 0.75 vs 1.0.
"""

import math

import pytest

from repro.games.chsh import chsh_game, chsh_quantum_strategy
from repro.games.classical import optimal_classical_value
from repro.games.framework import quantum_win_probability
from repro.games.ghz import ghz_classical_value, ghz_game_quantum_value
from repro.games.magic_square import magic_square_classical_value, magic_square_quantum_value
from repro.games.xor_games import random_xor_game, xor_classical_value, xor_quantum_value


def test_e5_chsh_classical_bound(benchmark):
    value, _, _ = benchmark(lambda: optimal_classical_value(chsh_game()))
    assert value == pytest.approx(0.75)


def test_e5_chsh_quantum_value(benchmark):
    value = benchmark(lambda: quantum_win_probability(chsh_game(), chsh_quantum_strategy()))
    assert value == pytest.approx(math.cos(math.pi / 8) ** 2)  # ~0.8536
    assert value > 0.75


def test_e6_ghz_values(benchmark):
    def kernel():
        classical, _ = ghz_classical_value()
        return classical, ghz_game_quantum_value()

    classical, quantum = benchmark(kernel)
    assert classical == pytest.approx(0.75)
    assert quantum == pytest.approx(1.0)


def test_e6_magic_square_extension(benchmark):
    def kernel():
        return magic_square_classical_value(), magic_square_quantum_value(rounds_per_pair=2, rng=0)

    classical, quantum = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert classical == pytest.approx(8 / 9)
    assert quantum == pytest.approx(1.0)


def test_e5_xor_game_sweep(benchmark):
    """Random XOR games: quantum >= classical everywhere (Tsirelson)."""

    def kernel():
        gaps = []
        for seed in range(6):
            game = random_xor_game(2, 2, rng=seed)
            gaps.append(xor_quantum_value(game, restarts=6, rng=seed) - xor_classical_value(game))
        return gaps

    gaps = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert all(g >= -1e-6 for g in gaps)
    assert max(gaps) > 0.01  # some games show a strict quantum advantage
