"""E9 / E12: join-ordering QUBOs and the VQC agent.

Shapes: QUBO plans decode to valid trees with small cost ratios vs DP
optima across topologies; bushy strictly beats left-deep somewhere; the
VQC learning curve improves toward ratio 1.
"""

import numpy as np
import pytest

from repro import solve
from repro.api import BushyJoinAdapter
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep
from repro.db.generator import chain_query, cycle_query, star_query
from repro.joinorder.baselines import solve_random
from repro.joinorder.vqc_agent import VQCJoinOrderAgent


def test_e9_leftdeep_quality_sweep(benchmark):
    """Left-deep QUBO vs exact left-deep DP on three topologies."""

    def kernel():
        ratios = {}
        for name, gen in (("chain", chain_query), ("star", star_query), ("cycle", cycle_query)):
            per_topology = []
            for seed in range(3):
                graph = gen(5, rng=seed)
                _, reference = dp_optimal_leftdeep(graph, avoid_cross=False)
                # refine=False/top_k=1: decode-best parity with the published
                # pipeline shape (no classical polish in the measurement).
                outcome = solve(graph, backend="sa", seed=seed, refine=False, top_k=1, num_reads=24, num_sweeps=384)
                per_topology.append(outcome.objective / reference)
            ratios[name] = float(np.mean(per_topology))
        return ratios

    ratios = benchmark.pedantic(kernel, rounds=1, iterations=1)
    for name, ratio in ratios.items():
        assert ratio < 2.5, name  # log-surrogate stays near the optimum
    assert min(ratios.values()) < 1.3


def test_e9_qubo_beats_random(benchmark):
    """Sanity shape: the QUBO route dominates random ordering."""

    def kernel():
        qubo_total, random_total = 0.0, 0.0
        for seed in range(4):
            graph = chain_query(6, rng=seed + 30)
            qubo_total += solve(graph, backend="sa", seed=seed, refine=False, top_k=1, num_reads=24, num_sweeps=384).objective
            random_total += solve_random(graph, rng=seed).cost
        return random_total / qubo_total

    advantage = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert advantage > 1.0


def test_e9_bushy_vs_leftdeep(benchmark):
    """Bushy trees beat left-deep on chains somewhere (the [25] pitch)."""

    def kernel():
        strict_wins = 0
        valid = 0
        for seed in range(6):
            graph = chain_query(6, rng=seed)
            _, bushy = dp_optimal_bushy(graph)
            _, leftdeep = dp_optimal_leftdeep(graph)
            if bushy < leftdeep * 0.999:
                strict_wins += 1
            outcome = solve(BushyJoinAdapter(graph), backend="sa", seed=seed, refine=False, top_k=1, num_reads=24, num_sweeps=384)
            if outcome.solution.relations() == frozenset(graph.relations):
                valid += 1
        return strict_wins, valid

    strict_wins, valid = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert strict_wins >= 1
    assert valid == 6


def test_e12_vqc_learning_curve(benchmark):
    """Winker et al. [27]: the quantum policy's cost ratio improves."""

    def kernel():
        graph = chain_query(4, rng=2)
        agent = VQCJoinOrderAgent(graph, num_layers=1)
        history = agent.train(episodes=60, rng=0)
        early = float(np.mean(history.ratios[:15]))
        late = history.mean_ratio(15)
        greedy_ratio = None
        order = agent.greedy_order()
        from repro.db.cost import CostModel
        from repro.db.plans import leftdeep_tree_from_order

        greedy_ratio = CostModel(graph).cost(leftdeep_tree_from_order(order)) / agent.optimal_cost
        return early, late, greedy_ratio

    early, late, greedy_ratio = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert late < early  # the learning curve descends
    assert greedy_ratio == pytest.approx(1.0, abs=0.5)  # near-optimal final policy
