"""E2: Figure 2 — every roadmap backend solves the same QUBO.

One MQO instance runs through SA, SQA, tabu, the embedded annealer device,
QAOA, VQE and Grover minimum finding; all must reach the exhaustive
optimum on this small instance.
"""

import numpy as np
import pytest

from repro.algorithms.grover import durr_hoyer_minimum
from repro.algorithms.qaoa import QAOA
from repro.algorithms.vqe import VQE
from repro.annealing import AnnealerDevice, SimulatedAnnealingSolver, SimulatedQuantumAnnealingSolver
from repro.mqo import exhaustive_mqo, generate_mqo_problem
from repro.mqo.qubo import decode_sample, mqo_to_qubo
from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.tabu import TabuSolver

PROBLEM = generate_mqo_problem(3, 2, sharing_density=0.5, rng=7)
MODEL = mqo_to_qubo(PROBLEM)
_, OPTIMUM = exhaustive_mqo(PROBLEM)


def _cost(bits) -> float:
    return PROBLEM.total_cost(decode_sample(PROBLEM, MODEL, bits))


def test_e2_simulated_annealing(benchmark):
    samples = benchmark(lambda: SimulatedAnnealingSolver(num_reads=16, num_sweeps=200).solve(MODEL, rng=1))
    assert _cost(samples.best.bits) == pytest.approx(OPTIMUM)


def test_e2_simulated_quantum_annealing(benchmark):
    samples = benchmark.pedantic(
        lambda: SimulatedQuantumAnnealingSolver(num_reads=8, num_sweeps=128).solve(MODEL, rng=2),
        rounds=1, iterations=1,
    )
    assert _cost(samples.best.bits) == pytest.approx(OPTIMUM)


def test_e2_tabu(benchmark):
    samples = benchmark(lambda: TabuSolver().solve(MODEL, rng=3))
    assert _cost(samples.best.bits) == pytest.approx(OPTIMUM)


def test_e2_embedded_annealer_device(benchmark):
    device = AnnealerDevice(sampler="sa", num_reads=16, num_sweeps=200)
    samples = benchmark.pedantic(lambda: device.sample(MODEL, rng=4), rounds=1, iterations=1)
    assert _cost(samples.best.bits) == pytest.approx(OPTIMUM)


def test_e2_qaoa(benchmark):
    qaoa = QAOA.from_qubo(MODEL, num_layers=3)
    result = benchmark.pedantic(lambda: qaoa.run(maxiter=120, restarts=2, rng=5), rounds=1, iterations=1)
    assert _cost(result.best_bits) == pytest.approx(OPTIMUM)


def test_e2_vqe(benchmark):
    vqe = VQE.from_qubo(MODEL, num_layers=2)
    result = benchmark.pedantic(lambda: vqe.run(maxiter=250, restarts=3, rng=6), rounds=1, iterations=1)
    assert _cost(result.best_bits) == pytest.approx(OPTIMUM)


def test_e2_grover_minimum_finding(benchmark):
    energies = MODEL.energies(BruteForceSolver._all_assignments(MODEL.num_variables))

    def kernel():
        return durr_hoyer_minimum(energies, rng=7)

    idx, calls = benchmark.pedantic(kernel, rounds=1, iterations=1)
    bits = [int(b) for b in np.binary_repr(idx, MODEL.num_variables)]
    assert _cost(bits) == pytest.approx(OPTIMUM)
    assert calls < len(energies)
