"""Engine benchmarks: sharded dispatch, cache reuse, adaptive scheduling.

Eight claims, each asserted:

1. on a wide batch (32 instances, 8 structure groups), sharded-parallel
   ``solve_many`` beats the serial path wall-clock — with **identical
   objectives**, since executor choice only changes scheduling (on a
   single-core runner the timing claim is vacuous, so it is asserted only
   when the machine can actually parallelise; equality is asserted always);
2. a warm-cache rerun of the same batch is >= 5x faster than the cold run,
   again with identical objectives;
3. structure-sharding itself pays even serially: one embedding search per
   shard instead of one per instance on the annealer backend;
4. adaptive routing beats race-everything on total wall time for a
   32-instance mixed-structure batch, at equal-or-better mean objective —
   the scoreboard pays for itself after one warmup portfolio per structure;
5. the async executor returns the same objectives as the thread pool while
   occupying strictly fewer worker threads;
6. durable engine knowledge pays across restarts: after a cold run against
   an ``EngineStore``, a fresh "process" (new scheduler, new caches)
   hydrated from the store routes by scoreboard from its very first shard
   (no cold-sampling), hits the shared cross-process cache, and beats the
   cold run's wall time at equal objectives;
7. the array-native ``QuboModel`` bulk API makes cold formulation (build +
   fingerprint, nothing cached) of a 32-instance batch >= 5x faster than
   the seed's dict-per-term path, at byte-identical fingerprints;
8. the qbsolv-style decomposer matches or beats a direct tabu solve on a
   clustered instance 4x over the imposed capacity.

Claims 6-8 each merge a section into the ``BENCH_<run>.json`` metrics file
(wall times, objectives, speedups, hit-rates) which the
``bench-trajectory`` CI job uploads as the engine-performance trajectory
artifact.
"""

import json
import os
import statistics
import time

import numpy as np

from repro import obs
from repro import (
    AdaptiveScheduler,
    EngineStore,
    ResultCache,
    solve,
    solve_many,
    solve_portfolio,
)
from repro.api import MQOAdapter, as_problem
from repro.engine import AsyncExecutor
from repro.mqo import generate_mqo_problem
from repro.mqo.qubo import mqo_to_qubo
from repro.qubo.model import QuboModel

#: 32 instances in 8 structure groups of 4 — wide enough that the process
#: pool has real shards to spread while embedding reuse still amortises.
BATCH_STRUCTURES = 8
BATCH_COPIES = 4
SA_OPTS = dict(num_reads=16, num_sweeps=300)


def _wide_batch():
    return [
        MQOAdapter(generate_mqo_problem(4, 3, sharing_density=0.4, rng=structure))
        for structure in range(BATCH_STRUCTURES)
        for _ in range(BATCH_COPIES)
    ]


def _objectives(results):
    return [r.objective for r in results]


def test_sharded_parallel_matches_and_beats_serial(benchmark):
    """>= 32-instance batch: processes executor vs the serial reference."""
    problems = _wide_batch()
    assert len(problems) >= 32

    def kernel():
        t0 = time.perf_counter()
        serial = solve_many(problems, backend="sa", seed=11, **SA_OPTS)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = solve_many(
            problems, backend="sa", seed=11, executor="processes", **SA_OPTS
        )
        parallel_s = time.perf_counter() - t0
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(kernel, rounds=1, iterations=1)
    # The determinism contract holds regardless of scheduling.
    assert _objectives(parallel) == _objectives(serial)
    assert [r.solution for r in parallel] == [r.solution for r in serial]
    print(f"\nserial: {serial_s:.2f}s  sharded-parallel: {parallel_s:.2f}s "
          f"({os.cpu_count()} cores, {max(r.info['engine']['shard'] for r in serial) + 1} shards)")
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s, (
            f"sharded-parallel ({parallel_s:.2f}s) should beat serial ({serial_s:.2f}s) "
            f"on {os.cpu_count()} cores"
        )
    else:
        # Single core: parallel dispatch cannot win; just bound the overhead.
        assert parallel_s < serial_s * 2.5 + 1.0


def test_warm_cache_rerun_at_least_5x_faster(benchmark):
    """Cold fills the content-addressed cache; warm is served from it."""
    problems = _wide_batch()
    cache = ResultCache(maxsize=4096)

    def kernel():
        t0 = time.perf_counter()
        cold = solve_many(problems, backend="sa", seed=11, cache=cache, **SA_OPTS)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = solve_many(problems, backend="sa", seed=11, cache=cache, **SA_OPTS)
        warm_s = time.perf_counter() - t0
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert all(not r.cache_hit for r in cold)
    assert all(r.cache_hit for r in warm)
    assert _objectives(warm) == _objectives(cold)
    print(f"\ncold: {cold_s:.3f}s  warm: {warm_s:.3f}s  ({cold_s / warm_s:.0f}x)")
    assert warm_s * 5.0 <= cold_s, f"warm rerun {warm_s:.3f}s vs cold {cold_s:.3f}s"


def test_structure_sharding_amortises_embedding_search(benchmark):
    """Serial engine vs per-instance fresh backends on the annealer: the
    shard shares one instance, so the Chimera embedding search runs once
    per structure group instead of once per instance."""
    # Larger QUBOs make the embedding search the dominant per-instance cost;
    # light sampling keeps the shared part small.
    problems = [
        MQOAdapter(generate_mqo_problem(5, 3, sharing_density=0.5, rng=structure))
        for structure in range(4)
        for _ in range(4)
    ]
    # refine=False / top_k=1 on both paths so decode cost (identical in
    # both) does not dilute the embedding-search difference being measured.
    opts = dict(num_reads=4, num_sweeps=60, refine=False, top_k=1)

    def kernel():
        t0 = time.perf_counter()
        naive = [solve(p, backend="annealer", seed=7, **opts) for p in problems]
        naive_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded = solve_many(problems, backend="annealer", seed=7, **opts)
        sharded_s = time.perf_counter() - t0
        return naive, naive_s, sharded, sharded_s

    naive, naive_s, sharded, sharded_s = benchmark.pedantic(kernel, rounds=1, iterations=1)
    searches = sum(not r.info["embedding_cached"] for r in sharded)
    assert searches == 4  # one per structure group, not one per instance
    assert sum(not r.info["embedding_cached"] for r in naive) == len(problems)
    print(f"\nper-instance: {naive_s:.2f}s  sharded serial: {sharded_s:.2f}s")
    assert sharded_s < naive_s


def test_adaptive_routing_beats_race_everything(benchmark):
    """Route-by-scoreboard vs race-every-backend on a 32-instance batch.

    Instances are small enough that every contender reaches the optimum, so
    racing buys no quality — only wall clock.  The adaptive path pays one
    full portfolio per structure group (8 warmup races feeding the
    scoreboard), then routes all 32 shards' items to the cheapest
    equal-quality backend; race-everything pays every backend on all 32.
    """
    candidates = ("sa", "tabu", "bruteforce")
    opts = {"sa": dict(num_reads=8, num_sweeps=100), "tabu": dict(num_restarts=4)}
    problems = _wide_batch()
    representatives = [
        MQOAdapter(generate_mqo_problem(4, 3, sharing_density=0.4, rng=structure))
        for structure in range(BATCH_STRUCTURES)
    ]

    def kernel():
        t0 = time.perf_counter()
        race = [
            solve_portfolio(p, backends=candidates, seed=11, backend_opts=opts)
            for p in problems
        ]
        race_s = time.perf_counter() - t0
        # Adaptive: warmup portfolios (one per structure, racing everyone to
        # seed the scoreboard) + the routed batch. Both phases are timed.
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0, race_top_k=len(candidates))
        t0 = time.perf_counter()
        for representative in representatives:
            solve_portfolio(
                representative, backends=candidates, seed=11, backend_opts=opts,
                scheduler=scheduler,
            )
        routed = solve_many(
            problems, backend=candidates, scheduler=scheduler, seed=11, **opts
        )
        adaptive_s = time.perf_counter() - t0
        return race, race_s, routed, adaptive_s

    race, race_s, routed, adaptive_s = benchmark.pedantic(kernel, rounds=1, iterations=1)
    mean_race = statistics.mean(r.objective for r in race)
    mean_routed = statistics.mean(r.objective for r in routed)
    chosen = {r.scheduled_backend for r in routed}
    print(f"\nrace-everything: {race_s:.2f}s  adaptive (incl. warmup): {adaptive_s:.2f}s  "
          f"routed-to={sorted(chosen)}  mean objective {mean_race:.4f} -> {mean_routed:.4f}")
    assert mean_routed <= mean_race + 1e-9, (
        f"adaptive routing lost quality: {mean_routed} vs {mean_race}"
    )
    assert adaptive_s < race_s, (
        f"adaptive ({adaptive_s:.2f}s) should beat race-everything ({race_s:.2f}s)"
    )


def test_async_executor_matches_threads_with_fewer_workers(benchmark):
    """Same objectives as the thread pool from a strictly smaller thread
    budget — the async executor's bounded-concurrency event loop replaces
    thread-per-shard with shards multiplexed over a capped pool."""
    problems = _wide_batch()
    num_shards = BATCH_STRUCTURES
    thread_workers = min(num_shards, (os.cpu_count() or 1) * 2)
    async_budget = max(1, thread_workers // 2)
    async_exec = AsyncExecutor(max_concurrency=async_budget)

    def kernel():
        t0 = time.perf_counter()
        threaded = solve_many(problems, backend="sa", seed=11, executor="threads", **SA_OPTS)
        threads_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        via_async = solve_many(problems, backend="sa", seed=11, executor=async_exec, **SA_OPTS)
        async_s = time.perf_counter() - t0
        return threaded, threads_s, via_async, async_s

    threaded, threads_s, via_async, async_s = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert _objectives(via_async) == _objectives(threaded)
    assert [r.solution for r in via_async] == [r.solution for r in threaded]
    used = async_exec.last_run["worker_threads"]
    print(f"\nthreads: {threads_s:.2f}s on <= {thread_workers} workers  "
          f"async: {async_s:.2f}s on {used} workers (budget {async_budget})")
    assert used <= async_budget
    if thread_workers > 1:
        assert used < thread_workers, (
            f"async used {used} worker threads, no fewer than the thread pool's "
            f"{thread_workers}"
        )


def _emit_bench_json(payload: dict) -> str:
    """Merge a claim's metrics into ``BENCH_<run>.json``.

    The run id comes from ``BENCH_RUN_ID`` (CI passes ``github.run_id``),
    falling back to ``GITHUB_RUN_ID`` then ``"local"``; the directory from
    ``BENCH_OUTPUT_DIR`` (default: current directory).  Several benchmarks
    contribute to one run file, so each payload lands under its
    ``payload["benchmark"]`` key — existing sections from earlier tests in
    the same run are preserved.  CI uploads the file as an artifact so
    engine performance has a trajectory, not just a pass/fail.
    """
    run_id = os.environ.get("BENCH_RUN_ID") or os.environ.get("GITHUB_RUN_ID") or "local"
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{run_id}.json")
    sections = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict):
                sections = {k: v for k, v in existing.items() if isinstance(v, dict)}
        except (OSError, ValueError):
            sections = {}
    sections[payload["benchmark"]] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(sections, fh, indent=2, sort_keys=True)
    return path


def test_store_restart_warm_routing_beats_cold(benchmark, tmp_path):
    """Claim 6: durable knowledge survives a restart and pays immediately.

    The cold phase is a fresh deployment: it must *learn* (one warmup
    portfolio per structure feeding the durable scoreboard) and *solve*
    (the routed 32-instance batch, filling the shared cache tier).  Then
    every piece of process state is dropped — scheduler, scoreboard,
    caches — and only the store file survives.  The warm phase re-runs the
    batch from that file alone: the hydrated scheduler must route by
    scoreboard from its very first shard (``mode == "exploit"``, never
    ``"cold"``), the shared tier must produce cache hits, and the restart
    must beat the cold run's wall time at equal-or-better mean objective.
    """
    candidates = ("sa", "tabu", "bruteforce")
    opts = {"sa": dict(num_reads=8, num_sweeps=100), "tabu": dict(num_restarts=4)}
    problems = _wide_batch()
    representatives = [
        MQOAdapter(generate_mqo_problem(4, 3, sharing_density=0.4, rng=structure))
        for structure in range(BATCH_STRUCTURES)
    ]
    store_path = tmp_path / "engine.db"

    def kernel():
        # -- cold: learn + solve, everything flowing into the store --------
        store = EngineStore(store_path)
        scheduler = AdaptiveScheduler(
            epsilon=0.0, seed=0, race_top_k=len(candidates), store=store
        )
        cold_cache = ResultCache(store=store)
        t0 = time.perf_counter()
        for representative in representatives:
            solve_portfolio(
                representative, backends=candidates, seed=11, backend_opts=opts,
                scheduler=scheduler,
            )
        cold = solve_many(
            problems, backend=candidates, scheduler=scheduler, seed=11,
            cache=cold_cache, store=store, **opts,
        )
        cold_s = time.perf_counter() - t0

        # -- restart: drop every piece of process state ---------------------
        del store, scheduler, cold_cache

        # -- warm: a new process hydrates from the file alone ---------------
        store2 = EngineStore(store_path)
        fresh = AdaptiveScheduler(epsilon=0.0, seed=0, store=store2)
        warm_cache = ResultCache(store=store2)
        t0 = time.perf_counter()
        warm = solve_many(
            problems, backend=candidates, scheduler=fresh, seed=11,
            cache=warm_cache, store=store2, **opts,
        )
        warm_s = time.perf_counter() - t0
        return cold, cold_s, warm, warm_s, warm_cache, store2

    cold, cold_s, warm, warm_s, warm_cache, store2 = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )

    modes = [r.engine["scheduler"]["mode"] for r in warm]
    hits = sum(r.cache_hit for r in warm)
    warm_hit_rate = hits / len(warm)
    mean_cold = statistics.mean(r.objective for r in cold)
    mean_warm = statistics.mean(r.objective for r in warm)

    # Emit the trajectory point *before* asserting: a regressed run is
    # exactly the data point the trajectory exists to record, so the
    # artifact must exist even when the assertions below fail the job.
    path = _emit_bench_json({
        "benchmark": "store_restart",
        "seed": 11,
        "batch_size": len(problems),
        "candidates": list(candidates),
        "cold": {
            "wall_s": cold_s,
            "mean_objective": mean_cold,
            "cache_hit_rate": 0.0,
        },
        "warm_store": {
            "wall_s": warm_s,
            "mean_objective": mean_warm,
            "cache_hit_rate": warm_hit_rate,
            "routing_modes": sorted(set(modes)),
        },
        "speedup": cold_s / warm_s if warm_s > 0 else None,
        "store": store2.stats(),
    })
    print(
        f"\ncold (learn+solve): {cold_s:.2f}s  warm-store restart: {warm_s:.2f}s "
        f"({cold_s / warm_s:.1f}x)  hit-rate {warm_hit_rate:.2f}  -> {path}"
    )

    # Scoreboard-driven routing from the very first shard: nothing is cold.
    assert all(mode == "exploit" for mode in modes), modes
    # The shared cross-process tier produced hits.
    assert hits > 0, "warm-store run produced no shared-cache hits"
    assert mean_warm <= mean_cold + 1e-9, (
        f"warm-store routing lost quality: {mean_warm} vs {mean_cold}"
    )
    assert warm_s <= cold_s, (
        f"warm-store restart ({warm_s:.2f}s) should beat the cold run ({cold_s:.2f}s)"
    )


# -- observability: the zero-overhead-when-disabled gate ---------------------


def test_tracing_noop_overhead_within_2_percent(benchmark):
    """With no tracer installed every ``obs.span`` call site must cost a
    contextvar read and a shared no-op scope — nothing else.  The gate is
    measured structurally rather than as a flaky A/B wall-time diff: (no-op
    cost per call site) x (call sites a traced batch actually hits) must
    stay under 2% of the untraced batch's wall time.
    """
    problems = _wide_batch()

    def kernel():
        t0 = time.perf_counter()
        untraced = solve_many(problems, backend="sa", seed=11, **SA_OPTS)
        untraced_s = time.perf_counter() - t0

        collector = obs.SpanCollector()
        with obs.activate(collector):
            traced = solve_many(problems, backend="sa", seed=11, **SA_OPTS)
        span_count = len(collector.drain())

        # Per-call disabled cost, amortised over enough calls to resolve.
        iterations = 100_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            with obs.span("bench.noop", shard=0):
                pass
        noop_per_call_s = (time.perf_counter() - t0) / iterations
        return untraced, untraced_s, traced, span_count, noop_per_call_s

    untraced, untraced_s, traced, span_count, noop_per_call_s = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    # Tracing must not perturb results either way (the invariance contract).
    assert _objectives(traced) == _objectives(untraced)
    disabled_overhead_s = noop_per_call_s * span_count
    budget_s = 0.02 * untraced_s
    print(
        f"\nuntraced batch: {untraced_s:.3f}s  traced span count: {span_count}  "
        f"no-op cost/call: {noop_per_call_s * 1e9:.0f}ns  "
        f"disabled overhead: {disabled_overhead_s * 1e6:.1f}us "
        f"({100 * disabled_overhead_s / untraced_s:.4f}% of batch, budget 2%)"
    )
    assert span_count >= len(problems)  # the hot path is actually instrumented
    assert disabled_overhead_s <= budget_s, (
        f"disabled tracing costs {disabled_overhead_s * 1e3:.3f}ms across "
        f"{span_count} call sites — over the 2% budget ({budget_s * 1e3:.3f}ms)"
    )


# -- claim 7: vectorized formulation ----------------------------------------


class _SeedDictModel:
    """The seed's dict-per-term QUBO builder, frozen as the reference.

    Kept semantically exact (same accumulation order, same serialization)
    so the fingerprint comparison below proves the vectorized path changed
    *speed only*.
    """

    def __init__(self):
        self._labels = []
        self._index = {}
        self.linear = {}
        self.quadratic = {}
        self.offset = 0.0

    def variable(self, label):
        if label in self._index:
            return self._index[label]
        idx = len(self._labels)
        self._labels.append(label)
        self._index[label] = idx
        return idx

    def add_linear(self, var, coeff):
        i = self._index.get(var, var)
        self.linear[i] = self.linear.get(i, 0.0) + float(coeff)

    def add_quadratic(self, u, v, coeff):
        i, j = self._index.get(u, u), self._index.get(v, v)
        if i == j:
            return self.add_linear(i, coeff)
        if j < i:
            i, j = j, i
        self.quadratic[(i, j)] = self.quadratic.get((i, j), 0.0) + float(coeff)

    def add_offset(self, value):
        self.offset += float(value)

    def fingerprint(self):
        import hashlib
        import struct

        parts = [b"QUBO-v1", struct.pack("<q", len(self._labels))]
        linear = sorted((i, c) for i, c in self.linear.items() if c != 0.0)
        parts.append(struct.pack("<q", len(linear)))
        for i, c in linear:
            parts.append(struct.pack("<qd", i, c))
        quadratic = sorted((i, j, c) for (i, j), c in self.quadratic.items() if c != 0.0)
        parts.append(struct.pack("<q", len(quadratic)))
        for i, j, c in quadratic:
            parts.append(struct.pack("<qqd", i, j, c))
        parts.append(struct.pack("<d", self.offset))
        for label in self._labels:
            encoded = repr(label).encode("utf-8", errors="backslashreplace")
            parts.append(struct.pack("<q", len(encoded)))
            parts.append(encoded)
        return hashlib.sha256(b"".join(parts)).hexdigest()


def _seed_mqo_to_qubo(problem):
    """The seed's scalar MQO formulator: per-term adds, per-query rescans."""
    model = _SeedDictModel()
    for plan in problem.all_plans:
        model.variable(plan.key)
        model.add_linear(plan.key, plan.cost)
    for (a, b), amount in problem.savings.items():
        model.add_quadratic(a, b, -amount)
    for query in problem.queries:
        max_cost = max(p.cost for p in problem.plans_of(query))
        touching = sum(
            amount
            for (a, b), amount in problem.savings.items()
            if a[0] == query or b[0] == query
        )
        weight = max_cost + touching + 1.0
        keys = [p.key for p in problem.plans_of(query)]
        model.add_offset(weight)
        for key in keys:
            model.add_linear(key, -weight)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                model.add_quadratic(keys[i], keys[j], 2.0 * weight)
    return model


def test_vectorized_formulation_at_least_5x_faster(benchmark):
    """Claim 7: cold batch formulation (build + fingerprint, no caching)
    through the array-native bulk API vs the seed's dict-per-term path, at
    byte-identical fingerprints on every instance."""
    problems = [
        generate_mqo_problem(20, 40, sharing_density=0.4, rng=structure)
        for structure in range(8)
    ] * 4
    assert len(problems) == 32
    # Warm both code paths (imports, numpy ufunc setup) outside the timing.
    mqo_to_qubo(problems[0]).fingerprint()
    _seed_mqo_to_qubo(problems[0]).fingerprint()

    def kernel():
        t0 = time.perf_counter()
        vectorized = [mqo_to_qubo(p).fingerprint() for p in problems]
        vectorized_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        reference = [_seed_mqo_to_qubo(p).fingerprint() for p in problems]
        reference_s = time.perf_counter() - t0
        return vectorized, vectorized_s, reference, reference_s

    vectorized, vectorized_s, reference, reference_s = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    speedup = reference_s / vectorized_s
    path = _emit_bench_json({
        "benchmark": "formulation",
        "batch_size": len(problems),
        "instance_shape": {"queries": 20, "plans_per_query": 40},
        "vectorized_wall_s": vectorized_s,
        "reference_wall_s": reference_s,
        "speedup": speedup,
        "fingerprints_identical": vectorized == reference,
    })
    print(
        f"\nseed formulation: {reference_s:.3f}s  vectorized: {vectorized_s:.3f}s "
        f"({speedup:.2f}x)  -> {path}"
    )
    assert vectorized == reference, "vectorized formulation changed the QUBOs"
    assert speedup >= 5.0, (
        f"vectorized formulation only {speedup:.2f}x faster than the seed path"
    )


# -- claim 8: qbsolv-style decomposition ------------------------------------


def test_decomposer_matches_direct_tabu_when_4x_over_capacity(benchmark):
    """Claim 8: a 96-variable clustered QUBO solved through blocks of 24
    (4x over the imposed capacity) must match or beat direct tabu."""
    rng = np.random.default_rng(42)
    n, cluster = 96, 24
    model = QuboModel(num_variables=n)
    for c in range(n // cluster):
        base = c * cluster
        ii, jj = np.triu_indices(cluster, k=1)
        mask = rng.random(ii.size) < 0.4
        model.add_quadratic_from(
            base + ii[mask], base + jj[mask], rng.normal(0, 2.0, int(mask.sum()))
        )
    model.add_linear_from(np.arange(n), rng.normal(0, 1.0, n))
    edges = rng.integers(0, n, size=(40, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    model.add_quadratic_from(edges[:, 0], edges[:, 1], rng.normal(0, 0.3, len(edges)))

    def kernel():
        t0 = time.perf_counter()
        decomposed = solve(
            as_problem(model.copy()), backend="tabu", seed=7, decompose=cluster
        )
        decomposed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        direct = solve(as_problem(model.copy()), backend="tabu", seed=7)
        direct_s = time.perf_counter() - t0
        return decomposed, decomposed_s, direct, direct_s

    decomposed, decomposed_s, direct, direct_s = benchmark.pedantic(
        kernel, rounds=1, iterations=1
    )
    provenance = decomposed.info["decompose"]
    path = _emit_bench_json({
        "benchmark": "decompose",
        "num_variables": n,
        "capacity": cluster,
        "num_blocks": provenance["num_blocks"],
        "rounds": len(provenance["rounds"]),
        "decomposed": {"wall_s": decomposed_s, "objective": decomposed.objective},
        "direct_tabu": {"wall_s": direct_s, "objective": direct.objective},
    })
    print(
        f"\ndirect tabu: {direct.objective:.4f} in {direct_s:.2f}s  "
        f"decomposed (cap {cluster}): {decomposed.objective:.4f} in "
        f"{decomposed_s:.2f}s over {provenance['num_blocks']} blocks  -> {path}"
    )
    assert all(size <= cluster for size in provenance["block_sizes"])
    assert decomposed.objective <= direct.objective + 1e-9, (
        f"decomposer lost quality: {decomposed.objective} vs {direct.objective}"
    )
