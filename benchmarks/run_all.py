"""Regenerate the paper-vs-measured tables of EXPERIMENTS.md.

Run:  python benchmarks/run_all.py

Pass ``--profile`` to run every experiment under cProfile and append a
per-phase timing table splitting each experiment's wall time into
formulation (QUBO builders), solving (samplers/backends), and cache/store
work — the first place to look when a regeneration gets slow.
"""

import argparse
import math
import time

import numpy as np

from repro.algorithms.grover import CountingOracle, GroverSearch, classical_search, optimal_iterations
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.dqdm import GhzAssistedCommit, TwoPhaseCommit
from repro.games.chsh import chsh_game, chsh_quantum_strategy
from repro.games.classical import optimal_classical_value
from repro.games.framework import quantum_win_probability
from repro.games.ghz import ghz_classical_value, ghz_game_quantum_value
from repro.games.magic_square import magic_square_classical_value, magic_square_quantum_value
from repro import solve
from repro.mqo import exhaustive_mqo, generate_mqo_problem, greedy_mqo
from repro.qnet import UniversalCloner, run_bb84, run_e91, teleport
from repro.qnet.repeater import chain_fidelity
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector
from repro.utils.tables import format_table


def header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def e3_superposition() -> None:
    header("E3 | Example II.1 - equal superposition measures 50/50")
    counts = StatevectorSimulator().sample(QuantumCircuit(1).h(0), 8192, rng=7)
    print(f"paper: P(0) = P(1) = 0.5    measured: P(0) = {counts['0'] / 8192:.4f}")


def e4_teleport() -> None:
    header("E4 | Example IV.1 + Fig 1(c) - Bell pairs, teleportation, repeaters")
    gen = np.random.default_rng(0)
    msg = Statevector(gen.normal(size=2) + 1j * gen.normal(size=2))
    result = teleport(msg, rng=1)
    print(f"teleportation over a perfect pair: fidelity = {result.fidelity:.6f} (paper: exact)")
    rows = [[h, f"{chain_fidelity([0.96] * h):.4f}"] for h in range(1, 8)]
    print(format_table(["links in chain", "end-to-end fidelity"], rows,
                       title="repeater-chain fidelity (F_link = 0.96, swap algebra):"))


def e5_e6_games() -> None:
    header("E5/E6 | nonlocal games - classical vs entangled values")
    chsh_c, _, _ = optimal_classical_value(chsh_game())
    chsh_q = quantum_win_probability(chsh_game(), chsh_quantum_strategy())
    ghz_c, _ = ghz_classical_value()
    rows = [
        ["CHSH", "0.75", f"{chsh_c:.4f}", "~0.85", f"{chsh_q:.4f}"],
        ["GHZ", "0.75", f"{ghz_c:.4f}", "1.0", f"{ghz_game_quantum_value():.4f}"],
        ["magic square (ext.)", "8/9", f"{magic_square_classical_value():.4f}", "1.0",
         f"{magic_square_quantum_value(rounds_per_pair=2, rng=0):.4f}"],
    ]
    print(format_table(["game", "paper classical", "measured", "paper quantum", "measured "], rows))


def e7_grover() -> None:
    header("E7 | Grover search - O(N) vs O(sqrt N) oracle calls")
    rows = []
    for n in range(4, 11):
        N = 2**n
        oracle = CountingOracle([N // 3], n)
        result = GroverSearch(oracle).run(rng=n)
        classical = []
        for seed in range(10):
            c_oracle = CountingOracle([N // 3], n)
            classical_search(c_oracle, rng=seed)
            classical.append(c_oracle.calls)
        rows.append([N, f"{np.mean(classical):.1f}", result.oracle_calls,
                     math.ceil(math.pi / 4 * math.sqrt(N)), f"{result.success_probability:.3f}"])
    print(format_table(
        ["N", "classical calls (mean)", "Grover calls", "(pi/4)sqrt(N)", "success prob"], rows))


def e8_mqo() -> None:
    header("E8 | MQO on the (simulated) annealer - Trummer & Koch shape")
    rows = []
    for seed in range(3):
        problem = generate_mqo_problem(4, 3, sharing_density=0.4, rng=seed)
        _, optimum = exhaustive_mqo(problem)
        _, greedy_cost = greedy_mqo(problem)
        result = solve(problem, backend="annealer", seed=seed)
        rows.append([seed, f"{optimum:.2f}", f"{result.objective:.2f}",
                     f"{greedy_cost:.2f}", f"{result.objective / optimum:.3f}",
                     result.info.get("max_chain_length", "-")])
    print(format_table(
        ["seed", "exhaustive opt", "annealer (embedded)", "greedy", "ratio", "max chain"], rows))


def e13_qkd() -> None:
    header("E13 | QKD - eavesdropping detection")
    honest = run_bb84(384, eve=False, rng=0)
    attacked = run_bb84(384, eve=True, rng=1)
    e_honest = run_e91(600, eve=False, rng=2)
    e_attacked = run_e91(600, eve=True, rng=3)
    rows = [
        ["BB84 QBER", "~0", f"{honest.qber:.3f}", "~0.25", f"{attacked.qber:.3f}"],
        ["E91 CHSH S", "> 2", f"{e_honest.chsh_value:.3f}", "<= 2", f"{e_attacked.chsh_value:.3f}"],
    ]
    print(format_table(["metric", "honest (theory)", "measured", "attacked (theory)", "measured "], rows))


def e14_nocloning() -> None:
    header("E14 | no-cloning - universal cloner tops out at 5/6")
    gen = np.random.default_rng(3)
    fids = [UniversalCloner().copy_fidelity(Statevector(gen.normal(size=2) + 1j * gen.normal(size=2)))
            for _ in range(8)]
    print(f"paper/theory: 5/6 = {5/6:.6f}    measured (8 random states): "
          f"{np.mean(fids):.6f} +- {np.std(fids):.2e}")


def e15_commit() -> None:
    header("E15 | distributed commit - blocking vs divergence trade")
    rows = []
    for crash in (0.0, 0.1, 0.25):
        tpc = TwoPhaseCommit(5, crash_prob=crash).run(1500, rng=1)
        ghz = GhzAssistedCommit(5, crash_prob=crash).run(1500, rng=2)
        rows.append([f"{crash:.2f}", f"{tpc.blocking_rate:.3f}", "0.000",
                     f"{ghz.blocking_rate:.3f}", f"{ghz.divergence_rate:.3f}"])
    print(format_table(
        ["crash prob", "2PC blocking", "2PC divergence", "GHZ blocking", "GHZ divergence"], rows))


#: experiment phases, in regeneration order.
PHASES = [
    ("E3 superposition", e3_superposition),
    ("E4 teleport", e4_teleport),
    ("E5/E6 games", e5_e6_games),
    ("E7 grover", e7_grover),
    ("E8 mqo", e8_mqo),
    ("E13 qkd", e13_qkd),
    ("E14 no-cloning", e14_nocloning),
    ("E15 commit", e15_commit),
]

#: profile bucket -> source-path markers (matched against profiled frames).
PROFILE_BUCKETS = [
    ("formulate", (
        "repro/qubo/model.py", "repro/qubo/penalty.py", "repro/mqo/qubo.py",
        "repro/txn/qubo.py", "repro/integration/qubo.py", "repro/joinorder/",
    )),
    ("solve", (
        "repro/annealing/", "repro/qubo/bruteforce", "repro/qubo/tabu",
        "repro/api/backends.py", "repro/engine/runner.py", "repro/hardware/",
        "repro/engine/decompose.py",
    )),
    ("cache", ("repro/engine/cache.py", "repro/engine/store.py")),
]


def _bucket_times(stats) -> dict:
    """Sum own-time (tottime) per profile bucket over a ``pstats.Stats``."""
    times = {bucket: 0.0 for bucket, _ in PROFILE_BUCKETS}
    for (filename, _lineno, _name), (_cc, _nc, tottime, _ct, _callers) in stats.stats.items():
        path = filename.replace("\\", "/")
        for bucket, markers in PROFILE_BUCKETS:
            if any(marker in path for marker in markers):
                times[bucket] += tottime
                break
    return times


def _run_profiled() -> None:
    import cProfile
    import pstats

    rows = []
    for name, phase in PHASES:
        profile = cProfile.Profile()
        t0 = time.perf_counter()
        profile.runcall(phase)
        wall = time.perf_counter() - t0
        times = _bucket_times(pstats.Stats(profile))
        other = max(0.0, wall - sum(times.values()))
        rows.append([
            name, f"{wall:.3f}",
            *(f"{times[bucket]:.3f}" for bucket, _ in PROFILE_BUCKETS),
            f"{other:.3f}",
        ])
    print()
    print(format_table(
        ["phase", "wall s", "formulate s", "solve s", "cache s", "other s"],
        rows, title="per-phase profile (cProfile own-time by subsystem):"))


def main(profile: bool = False) -> None:
    if profile:
        _run_profiled()
    else:
        for _name, phase in PHASES:
            phase()
    print("\n(remaining experiments run inside pytest benchmarks/: E1 table1 matrix,")
    print(" E2 fig2 roadmap, E9/E12 join ordering, E10 schema matching, E11 txn scheduling, E16 qdb ops)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Regenerate the EXPERIMENTS.md tables.")
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print per-phase "
             "formulate/solve/cache timings",
    )
    main(profile=parser.parse_args().profile)
