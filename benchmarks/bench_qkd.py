"""E13: QKD — the secure-data-management enabler of Sec. IV ([62]).

Shapes: BB84 QBER ~0 honest vs ~25% under intercept-resend (session
aborts); E91 CHSH statistic above 2 honest, at or below 2 under attack.
"""

import numpy as np
import pytest

from repro.qnet.qkd import run_bb84, run_e91


def test_e13_bb84_honest(benchmark):
    result = benchmark.pedantic(lambda: run_bb84(384, eve=False, rng=0), rounds=1, iterations=1)
    assert result.qber < 0.05
    assert not result.aborted
    assert len(result.key) > 50


def test_e13_bb84_eavesdropper_detected(benchmark):
    def kernel():
        qbers = [run_bb84(384, eve=True, rng=seed).qber for seed in range(4)]
        return qbers

    qbers = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert np.mean(qbers) == pytest.approx(0.25, abs=0.07)
    # Intercept-resend pushes QBER to ~25%; finite sampling can graze the
    # abort threshold, so require a clear elevation on every session.
    assert all(q >= 0.10 for q in qbers)
    assert sum(1 for q in qbers if q > 0.12) >= 3  # nearly every session aborts


def test_e13_bb84_noise_tolerance(benchmark):
    """Moderate channel noise passes; Eve's disturbance does not."""

    def kernel():
        noisy = run_bb84(512, eve=False, channel_flip_prob=0.04, rng=5)
        attacked = run_bb84(512, eve=True, channel_flip_prob=0.04, rng=6)
        return noisy, attacked

    noisy, attacked = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert not noisy.aborted
    assert attacked.aborted


def test_e13_e91_chsh_witness(benchmark):
    def kernel():
        honest = run_e91(600, eve=False, rng=7)
        attacked = run_e91(600, eve=True, rng=8)
        return honest, attacked

    honest, attacked = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert honest.chsh_value > 2.0
    assert honest.secure
    assert attacked.chsh_value <= 2.1
    assert not attacked.secure
    assert attacked.key == []
