"""E11: transaction scheduling ([29]-[31]).

Shapes: the QUBO ground state is a conflict-free, minimum-makespan
schedule matching the exhaustive optimum; conflict-free schedules show
zero 2PL blocking; Grover finds valid schedules with fewer oracle calls
than the schedule space size.
"""

import numpy as np
import pytest

from repro import solve
from repro.api import TxnScheduleAdapter
from repro.db.transactions import simulate_slot_schedule
from repro.txn import (
    generate_transactions,
    grover_find_schedule,
    grover_minimum_makespan,
)
from repro.txn.classical import exhaustive_schedule
from repro.txn.qubo import assignment_conflicts, assignment_makespan


def test_e11_qubo_schedule_quality(benchmark):
    def kernel():
        results = []
        for seed in range(4):
            txns = generate_transactions(5, num_items=5, rng=seed)
            # refine=False/top_k=1: decode-best parity (measure the sampler,
            # not the facade's reslotting descent).
            assignment = solve(txns, backend="sa", seed=seed, refine=False, top_k=1, num_reads=24, num_sweeps=300).solution
            report = simulate_slot_schedule(txns, assignment)
            results.append((assignment_conflicts(txns, assignment), report.blocking_time))
        return results

    results = benchmark.pedantic(kernel, rounds=1, iterations=1)
    for conflicts, blocking in results:
        assert conflicts == 0
        assert blocking == 0


def test_e11_qubo_makespan_optimal(benchmark):
    def kernel():
        txns = generate_transactions(4, num_items=5, rng=7)
        adapter = TxnScheduleAdapter(txns)
        assignment = solve(adapter, backend="sa", seed=8, refine=False, top_k=1, num_reads=32, num_sweeps=400).solution
        _, best_makespan, _ = exhaustive_schedule(txns, adapter.num_slots)
        return assignment_makespan(txns, assignment), best_makespan, txns, assignment

    makespan, best_makespan, txns, assignment = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert assignment_conflicts(txns, assignment) == 0
    assert makespan == best_makespan


def test_e11_blocking_vs_conflict_density(benchmark):
    """Naive co-scheduling blocks more as conflicts densify; QUBO stays at 0."""

    def kernel():
        rows = []
        for num_items in (12, 6, 3):
            txns = generate_transactions(5, num_items=num_items, rng=3)
            naive = {t.txn_id: 0 for t in txns}  # everything in slot 0
            naive_report = simulate_slot_schedule(txns, naive)
            assignment = solve(txns, backend="sa", seed=4, refine=False, top_k=1, num_reads=16, num_sweeps=250).solution
            qubo_report = simulate_slot_schedule(txns, assignment)
            rows.append((num_items, naive_report.blocking_time, qubo_report.blocking_time))
        return rows

    rows = benchmark.pedantic(kernel, rounds=1, iterations=1)
    naive_blocking = [r[1] for r in rows]
    assert naive_blocking[-1] >= naive_blocking[0]  # denser conflicts block more
    assert all(r[2] == 0 for r in rows)  # QUBO schedules never block


def test_e11_grover_scheduler(benchmark):
    def kernel():
        txns = generate_transactions(4, num_items=6, rng=5)
        find = grover_find_schedule(txns, 4, rng=6)
        best = grover_minimum_makespan(txns, 4, rng=7)
        _, optimum, checked = exhaustive_schedule(txns, 4)
        return find, best, optimum, checked

    find, best, optimum, checked = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert find.found
    assert best.makespan == optimum
    assert find.oracle_calls < checked  # beats full enumeration
