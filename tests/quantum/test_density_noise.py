"""Tests for repro.quantum.density and repro.quantum.noise."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.bell import bell_circuit, bell_state
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix, DensitySimulator
from repro.quantum.gates import X_MATRIX
from repro.quantum.noise import (
    NoiseModel,
    amplitude_damping,
    bit_flip,
    depolarizing,
    is_cptp,
    phase_damping,
    phase_flip,
)
from repro.quantum.state import Statevector


class TestDensityMatrix:
    def test_from_statevector_pure(self):
        rho = DensityMatrix.from_statevector(Statevector.from_label("01"))
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities()[1] == pytest.approx(1.0)

    def test_maximally_mixed(self):
        rho = DensityMatrix.maximally_mixed(2)
        assert rho.purity() == pytest.approx(0.25)
        assert np.allclose(rho.probabilities(), np.full(4, 0.25))

    def test_rejects_non_hermitian(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.array([[1.0, 1.0], [0.0, 0.0]]))

    def test_trace_normalisation(self):
        rho = DensityMatrix(np.diag([2.0, 2.0]).astype(complex))
        assert np.trace(rho.matrix).real == pytest.approx(1.0)

    def test_apply_gate_pure_evolution(self):
        rho = DensityMatrix.zero_state(1).apply_matrix(X_MATRIX, [0])
        assert rho.probabilities()[1] == pytest.approx(1.0)

    def test_werner_fidelity(self):
        for f in (0.5, 0.75, 1.0):
            rho = DensityMatrix.werner(f)
            assert rho.fidelity_with_pure(bell_state("phi+")) == pytest.approx(f)

    def test_werner_rejects_bad_fidelity(self):
        with pytest.raises(SimulationError):
            DensityMatrix.werner(1.5)

    def test_partial_trace_bell(self):
        rho = DensityMatrix.from_statevector(bell_state("phi+"))
        reduced = rho.partial_trace([0])
        assert np.allclose(reduced.matrix, np.eye(2) / 2)

    def test_tensor(self):
        a = DensityMatrix.zero_state(1)
        b = DensityMatrix.from_statevector(Statevector.from_label("1"))
        ab = a.tensor(b)
        assert ab.probabilities()[0b01] == pytest.approx(1.0)

    def test_measure_deterministic(self, rng):
        rho = DensityMatrix.from_statevector(Statevector.from_label("10"))
        bits, post = rho.measure(rng=rng)
        assert bits == (1, 0)
        assert post.probabilities()[2] == pytest.approx(1.0)

    def test_measure_subset_collapse(self, rng):
        rho = DensityMatrix.from_statevector(bell_state("phi+"))
        bits, post = rho.measure([0], rng=rng)
        # After measuring one half of a Bell pair the other half is determined.
        expected = bits[0] * 3  # |00> or |11>
        assert post.probabilities()[expected] == pytest.approx(1.0)

    def test_sample_counts(self, rng):
        rho = DensityMatrix.maximally_mixed(1)
        counts = rho.sample_counts(10000, rng=rng)
        assert counts["0"] == pytest.approx(5000, abs=350)

    def test_expectation(self):
        rho = DensityMatrix.zero_state(1)
        assert rho.expectation(np.diag([1.0, -1.0])) == pytest.approx(1.0)


class TestChannels:
    @pytest.mark.parametrize(
        "channel",
        [
            bit_flip(0.1),
            phase_flip(0.2),
            depolarizing(0.3),
            depolarizing(0.1, num_qubits=2),
            amplitude_damping(0.25),
            phase_damping(0.4),
        ],
    )
    def test_cptp(self, channel):
        assert is_cptp(channel)

    def test_probability_validated(self):
        with pytest.raises(SimulationError):
            bit_flip(1.5)

    def test_bit_flip_action(self):
        rho = DensityMatrix.zero_state(1).apply_kraus(bit_flip(0.3), [0])
        assert rho.probabilities()[1] == pytest.approx(0.3)

    def test_full_depolarizing_gives_mixed(self):
        rho = DensityMatrix.zero_state(1).apply_kraus(depolarizing(1.0), [0])
        assert np.allclose(rho.matrix, np.eye(2) / 2, atol=1e-9)

    def test_amplitude_damping_decays_excited(self):
        rho = DensityMatrix.from_statevector(Statevector.from_label("1"))
        rho.apply_kraus(amplitude_damping(0.5), [0])
        assert rho.probabilities()[0] == pytest.approx(0.5)

    def test_phase_damping_kills_coherence(self):
        plus = Statevector([1, 1])
        rho = DensityMatrix.from_statevector(plus)
        rho.apply_kraus(phase_damping(1.0), [0])
        assert abs(rho.matrix[0, 1]) == pytest.approx(0.0, abs=1e-12)
        assert rho.probabilities()[0] == pytest.approx(0.5)


class TestDensitySimulator:
    def test_noiseless_matches_statevector(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        from repro.quantum.simulator import StatevectorSimulator

        pure = StatevectorSimulator().run(qc)
        rho = DensitySimulator().run(qc)
        assert rho.fidelity_with_pure(pure) == pytest.approx(1.0)

    def test_depolarizing_reduces_fidelity(self):
        noise = NoiseModel.uniform_depolarizing(0.02)
        rho = DensitySimulator().run(bell_circuit(), noise_model=noise)
        fid = rho.fidelity_with_pure(bell_state("phi+"))
        assert 0.7 < fid < 1.0

    def test_noise_scaling(self):
        weak = DensitySimulator().run(
            bell_circuit(), noise_model=NoiseModel.uniform_depolarizing(0.005)
        )
        strong = DensitySimulator().run(
            bell_circuit(), noise_model=NoiseModel.uniform_depolarizing(0.05)
        )
        f_weak = weak.fidelity_with_pure(bell_state("phi+"))
        f_strong = strong.fidelity_with_pure(bell_state("phi+"))
        assert f_weak > f_strong

    def test_gate_specific_noise(self):
        noise = NoiseModel(gate_errors={"h": bit_flip(1.0)})
        qc = QuantumCircuit(1).h(0)
        rho = DensitySimulator().run(qc, noise_model=noise)
        # X after H leaves |+> invariant.
        plus = Statevector([1, 1])
        assert rho.fidelity_with_pure(plus) == pytest.approx(1.0)

    def test_qubit_limit(self):
        sim = DensitySimulator(max_qubits=2)
        with pytest.raises(SimulationError):
            sim.run(QuantumCircuit(3).h(0))

    def test_noise_model_rejects_non_cptp(self):
        with pytest.raises(SimulationError):
            NoiseModel(error_1q=[np.eye(2) * 0.5])
