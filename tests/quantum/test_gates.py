"""Tests for repro.quantum.gates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.quantum.gates import (
    Gate,
    cnot_gate,
    controlled,
    cz_gate,
    diagonal_gate,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    rzz_matrix,
    standard_gate,
    toffoli_gate,
    u3_matrix,
)

_FIXED = ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "swap"]


@pytest.mark.parametrize("name", _FIXED)
def test_fixed_gates_unitary(name):
    assert standard_gate(name).is_unitary()


@pytest.mark.parametrize("name", ["rx", "ry", "rz", "p", "rzz", "rxx"])
@pytest.mark.parametrize("theta", [0.0, 0.3, math.pi, -2.1])
def test_parametric_gates_unitary(name, theta):
    assert standard_gate(name, theta).is_unitary()


def test_u3_unitary():
    assert standard_gate("u3", 0.3, 1.2, -0.7).is_unitary()


def test_unknown_gate():
    with pytest.raises(SimulationError):
        standard_gate("nope")


def test_fixed_gate_rejects_params():
    with pytest.raises(SimulationError):
        standard_gate("x", 0.5)


def test_parametric_gate_arity_checked():
    with pytest.raises(SimulationError):
        standard_gate("rx")


def test_gate_num_qubits():
    assert standard_gate("x").num_qubits == 1
    assert standard_gate("swap").num_qubits == 2
    assert toffoli_gate().num_qubits == 3


def test_gate_rejects_bad_dimension():
    with pytest.raises(SimulationError):
        Gate("bad", np.eye(3))


def test_inverse_is_adjoint():
    g = standard_gate("t")
    assert np.allclose(g.matrix @ g.inverse().matrix, np.eye(2))


def test_controlled_structure():
    cx = cnot_gate()
    expected = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
    assert np.allclose(cx.matrix, expected)


def test_cz_symmetric():
    assert np.allclose(cz_gate().matrix, np.diag([1, 1, 1, -1]))


def test_double_controlled():
    ccx = toffoli_gate()
    assert ccx.matrix.shape == (8, 8)
    assert ccx.matrix[7, 6] == 1
    assert ccx.matrix[6, 7] == 1
    assert ccx.matrix[5, 5] == 1


def test_controlled_requires_positive_controls():
    with pytest.raises(SimulationError):
        controlled(standard_gate("x"), num_controls=0)


def test_rotation_identities():
    # RZ(2π) = -I (spin-half rotation), RX(0) = I.
    assert np.allclose(rz_matrix(2 * math.pi), -np.eye(2))
    assert np.allclose(rx_matrix(0.0), np.eye(2))
    # RY(π)|0> = |1> up to sign.
    assert np.allclose(np.abs(ry_matrix(math.pi) @ [1, 0]), [0, 1])


def test_rzz_diagonal():
    mat = rzz_matrix(0.7)
    assert np.allclose(mat, np.diag(np.diag(mat)))
    # Equal-spin states get the e^{-i θ/2} phase.
    assert mat[0, 0] == pytest.approx(np.exp(-1j * 0.35))
    assert mat[3, 3] == pytest.approx(np.exp(-1j * 0.35))
    assert mat[1, 1] == pytest.approx(np.exp(1j * 0.35))


def test_u3_special_cases():
    assert np.allclose(u3_matrix(0, 0, 0), np.eye(2))
    h = u3_matrix(math.pi / 2, 0, math.pi)
    assert np.allclose(np.abs(h), np.full((2, 2), 1 / math.sqrt(2)))


def test_diagonal_gate():
    g = diagonal_gate([0.0, math.pi])
    assert g.is_unitary()
    assert np.allclose(g.matrix, np.diag([1, -1]))


def test_gate_name_of_controlled():
    assert controlled(standard_gate("z"), 2).name == "ccz"


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=-6.0, max_value=6.0, allow_nan=False))
def test_property_rz_composition(theta):
    """RZ(a) RZ(b) == RZ(a+b)."""
    assert np.allclose(rz_matrix(theta) @ rz_matrix(0.5), rz_matrix(theta + 0.5))


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=-6.0, max_value=6.0, allow_nan=False))
def test_property_controlled_preserves_unitarity(theta):
    g = controlled(standard_gate("ry", theta))
    assert g.is_unitary()
