"""Tests for repro.quantum.pauli."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.quantum.bell import bell_state
from repro.quantum.pauli import IsingHamiltonian, PauliString, PauliSum
from repro.quantum.state import Statevector


class TestPauliString:
    def test_rejects_bad_chars(self):
        with pytest.raises(SimulationError):
            PauliString("XA")

    def test_weight(self):
        assert PauliString("IXYZ").weight == 3

    def test_matrix_z(self):
        assert np.allclose(PauliString("Z").matrix(), np.diag([1, -1]))

    def test_matrix_tensor_order(self):
        # "XI" = X on qubit 0 (most significant).
        mat = PauliString("XI").matrix()
        assert mat[0, 2] == 1  # |00> <-> |10>

    def test_diagonal_zz(self):
        assert np.allclose(PauliString("ZZ").diagonal(), [1, -1, -1, 1])

    def test_diagonal_rejects_x(self):
        with pytest.raises(SimulationError):
            PauliString("XZ").diagonal()

    def test_commutation(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))
        assert PauliString("XI").commutes_with(PauliString("IZ"))

    def test_scalar_multiplication(self):
        p = 2.0 * PauliString("Z")
        assert p.coefficient == 2.0


class TestPauliSum:
    def test_expectation_diagonal_fast_path(self):
        ham = PauliSum([PauliString("ZI", 1.0), PauliString("IZ", 1.0)])
        assert ham.is_diagonal()
        s = Statevector.from_label("00")
        assert ham.expectation(s) == pytest.approx(2.0)
        s = Statevector.from_label("11")
        assert ham.expectation(s) == pytest.approx(-2.0)

    def test_expectation_general(self):
        ham = PauliSum([PauliString("XX", 1.0)])
        assert ham.expectation(bell_state("phi+")) == pytest.approx(1.0)
        assert ham.expectation(bell_state("phi-")) == pytest.approx(-1.0)

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            PauliSum([PauliString("Z"), PauliString("ZZ")])

    def test_add(self):
        total = PauliSum([PauliString("Z")]) + PauliSum([PauliString("X")])
        assert len(total) == 2


class TestIsingHamiltonian:
    def test_energies_known(self):
        ham = IsingHamiltonian(2, linear={0: 1.0}, quadratic={(0, 1): -1.0}, offset=0.5)
        # order |00>, |01>, |10>, |11> with s = +1 for bit 0
        assert np.allclose(ham.energies(), [0.5, 2.5, 0.5, -1.5])

    def test_ground(self):
        ham = IsingHamiltonian(2, linear={}, quadratic={(0, 1): 1.0})
        energy, idx = ham.ground()
        assert energy == pytest.approx(-1.0)
        assert idx in (1, 2)  # antiparallel spins

    def test_energy_of_bits_matches_energies(self):
        ham = IsingHamiltonian(3, linear={0: 0.3, 2: -1.0}, quadratic={(0, 1): 0.7, (1, 2): -0.2}, offset=0.1)
        energies = ham.energies()
        for idx in range(8):
            bits = [(idx >> (2 - j)) & 1 for j in range(3)]
            assert ham.energy_of_bits(bits) == pytest.approx(energies[idx])

    def test_quadratic_canonicalised(self):
        ham = IsingHamiltonian(2, quadratic={(1, 0): 1.0})
        assert (0, 1) in ham.quadratic

    def test_rejects_self_coupling(self):
        with pytest.raises(SimulationError):
            IsingHamiltonian(2, quadratic={(0, 0): 1.0})

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            IsingHamiltonian(2, linear={5: 1.0})

    def test_to_pauli_sum_agrees(self):
        ham = IsingHamiltonian(3, linear={0: 0.5, 1: -0.25}, quadratic={(0, 2): 1.5}, offset=2.0)
        pauli = ham.to_pauli_sum()
        assert pauli.is_diagonal()
        assert np.allclose(pauli.diagonal(), ham.energies())

    def test_expectation_ground_state(self):
        ham = IsingHamiltonian(2, quadratic={(0, 1): -1.0})
        energy, idx = ham.ground()
        s = Statevector.from_basis_index(idx, 2)
        assert ham.expectation(s) == pytest.approx(energy)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**9))
def test_property_ising_energies_match_pauli_matrix(n, seed):
    """The fast energies() vector equals the dense Pauli-sum diagonal."""
    gen = np.random.default_rng(seed)
    linear = {i: float(gen.normal()) for i in range(n) if gen.random() < 0.7}
    quadratic = {
        (i, j): float(gen.normal())
        for i in range(n)
        for j in range(i + 1, n)
        if gen.random() < 0.5
    }
    ham = IsingHamiltonian(n, linear=linear, quadratic=quadratic, offset=float(gen.normal()))
    dense = ham.to_pauli_sum().matrix()
    assert np.allclose(np.diag(dense).real, ham.energies())
