"""Tests for repro.quantum.state.Statevector."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.quantum.gates import H_MATRIX, X_MATRIX, standard_gate
from repro.quantum.state import Statevector, apply_unitary


class TestConstruction:
    def test_zero_state(self):
        s = Statevector.zero_state(3)
        assert s.num_qubits == 3
        assert s.dim == 8
        assert s.amplitude("000") == 1.0
        assert s.probability("000") == 1.0

    def test_from_label(self):
        s = Statevector.from_label("101")
        assert s.probability("101") == 1.0
        assert s.probability("010") == 0.0

    def test_from_basis_index(self):
        s = Statevector.from_basis_index(5, 3)
        assert s.amplitude("101") == 1.0

    def test_uniform_superposition(self):
        s = Statevector.uniform_superposition(3)
        assert np.allclose(s.probabilities(), np.full(8, 1 / 8))

    def test_uniform_over_subset(self):
        s = Statevector.uniform_over([1, 4, 6], 3)
        probs = s.probabilities()
        assert probs[1] == pytest.approx(1 / 3)
        assert probs[4] == pytest.approx(1 / 3)
        assert probs[0] == 0.0

    def test_uniform_over_rejects_empty(self):
        with pytest.raises(SimulationError):
            Statevector.uniform_over([], 3)

    def test_uniform_over_rejects_duplicates(self):
        with pytest.raises(SimulationError):
            Statevector.uniform_over([1, 1], 3)

    def test_normalisation_on_construction(self):
        s = Statevector([2.0, 0.0])
        assert s.probability(0) == pytest.approx(1.0)

    def test_rejects_zero_vector(self):
        with pytest.raises(SimulationError):
            Statevector([0.0, 0.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            Statevector([1.0, 0.0, 0.0])

    def test_zero_state_needs_a_qubit(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(0)


class TestApply:
    def test_x_flips(self):
        s = Statevector.zero_state(1).apply_matrix(X_MATRIX, [0])
        assert s.probability("1") == pytest.approx(1.0)

    def test_h_superposes(self):
        s = Statevector.zero_state(1).apply_matrix(H_MATRIX, [0])
        assert s.probability("0") == pytest.approx(0.5)
        assert s.probability("1") == pytest.approx(0.5)

    def test_apply_on_selected_qubit(self):
        s = Statevector.zero_state(3).apply_matrix(X_MATRIX, [1])
        assert s.probability("010") == pytest.approx(1.0)

    def test_two_qubit_gate_ordering(self):
        # CNOT with control qubit 0 and target qubit 1 maps |10> -> |11>.
        cx = np.eye(4)
        cx[2:, 2:] = [[0, 1], [1, 0]]
        s = Statevector.from_label("10").apply_matrix(cx, [0, 1])
        assert s.probability("11") == pytest.approx(1.0)

    def test_two_qubit_gate_reversed_targets(self):
        # Same CNOT applied to (1, 0) controls on qubit 1 instead.
        cx = np.eye(4)
        cx[2:, 2:] = [[0, 1], [1, 0]]
        s = Statevector.from_label("01").apply_matrix(cx, [1, 0])
        assert s.probability("11") == pytest.approx(1.0)

    def test_rejects_duplicate_targets(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(2).apply_matrix(np.eye(4), [0, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(2).apply_matrix(X_MATRIX, [2])

    def test_rejects_wrong_matrix_size(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(2).apply_matrix(np.eye(4), [0])

    def test_evolved_leaves_original(self):
        s = Statevector.zero_state(1)
        t = s.evolved(standard_gate("x"), [0])
        assert s.probability("0") == 1.0
        assert t.probability("1") == 1.0

    def test_apply_diagonal(self):
        s = Statevector.uniform_superposition(1).apply_diagonal(np.array([1.0, -1.0]))
        minus = Statevector([1 / math.sqrt(2), -1 / math.sqrt(2)])
        assert s.fidelity(minus) == pytest.approx(1.0)


class TestMeasurement:
    def test_measure_deterministic_state(self, rng):
        bits, post = Statevector.from_label("101").measure(rng=rng)
        assert bits == (1, 0, 1)
        assert post.probability("101") == pytest.approx(1.0)

    def test_measure_subset(self, rng):
        bits, post = Statevector.from_label("10").measure([0], rng=rng)
        assert bits == (1,)
        assert post.probability("10") == pytest.approx(1.0)

    def test_measure_collapses_superposition(self, rng):
        s = Statevector.uniform_superposition(1)
        bits, post = s.measure(rng=rng)
        assert post.probability(format(bits[0], "b")) == pytest.approx(1.0)

    def test_measure_does_not_mutate(self, rng):
        s = Statevector.uniform_superposition(2)
        s.measure(rng=rng)
        assert np.allclose(s.probabilities(), np.full(4, 0.25))

    def test_sample_counts_total(self, rng):
        counts = Statevector.uniform_superposition(2).sample_counts(1000, rng=rng)
        assert sum(counts.values()) == 1000

    def test_sample_counts_statistics(self, rng):
        counts = Statevector.uniform_superposition(1).sample_counts(20000, rng=rng)
        assert counts["0"] == pytest.approx(10000, abs=450)

    def test_marginal_probabilities_order(self):
        s = Statevector.from_label("10")
        assert np.allclose(s.marginal_probabilities([0, 1]), [0, 0, 1, 0])
        assert np.allclose(s.marginal_probabilities([1, 0]), [0, 1, 0, 0])

    def test_marginal_entangled(self):
        from repro.quantum.bell import bell_state

        marg = bell_state("phi+").marginal_probabilities([0])
        assert np.allclose(marg, [0.5, 0.5])


class TestAlgebra:
    def test_inner_orthogonal(self):
        a = Statevector.from_label("0")
        b = Statevector.from_label("1")
        assert a.inner(b) == 0

    def test_fidelity_self(self):
        s = Statevector.uniform_superposition(2)
        assert s.fidelity(s) == pytest.approx(1.0)

    def test_tensor(self):
        s = Statevector.from_label("1").tensor(Statevector.from_label("0"))
        assert s.probability("10") == pytest.approx(1.0)

    def test_expectation_diagonal(self):
        s = Statevector.uniform_superposition(1)
        assert s.expectation_diagonal(np.array([1.0, -1.0])) == pytest.approx(0.0)

    def test_expectation_matrix(self):
        s = Statevector.zero_state(1)
        z = np.diag([1.0, -1.0])
        assert s.expectation_matrix(z).real == pytest.approx(1.0)

    def test_partial_trace_product_state(self):
        s = Statevector.from_label("01")
        reduced = s.partial_trace([1])
        assert np.allclose(reduced, [[0, 0], [0, 1]])

    def test_partial_trace_bell_is_mixed(self):
        from repro.quantum.bell import bell_state

        reduced = bell_state("phi+").partial_trace([0])
        assert np.allclose(reduced, np.eye(2) / 2)

    def test_equiv_global_phase(self):
        s = Statevector.from_label("01")
        t = Statevector(1j * s.data.copy(), validate=False)
        assert s.equiv(t)
        assert s != t


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**9))
def test_property_unitary_preserves_norm(n, seed):
    """Random unitaries keep the state normalised."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=2**n) + 1j * gen.normal(size=2**n)
    s = Statevector(data)
    # Haar-ish random single-qubit unitary via QR decomposition.
    m = gen.normal(size=(2, 2)) + 1j * gen.normal(size=(2, 2))
    q, _ = np.linalg.qr(m)
    target = int(gen.integers(0, n))
    s.apply_matrix(q, [target])
    assert s.norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**9))
def test_property_probabilities_sum_to_one(n, seed):
    gen = np.random.default_rng(seed)
    data = gen.normal(size=2**n) + 1j * gen.normal(size=2**n)
    s = Statevector(data)
    assert float(s.probabilities().sum()) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**9))
def test_property_marginals_consistent(n, seed):
    """Marginal over all qubits equals the full distribution."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=2**n) + 1j * gen.normal(size=2**n)
    s = Statevector(data)
    assert np.allclose(s.marginal_probabilities(list(range(n))), s.probabilities())


def test_apply_unitary_function_matches_full_matrix():
    """The tensor kernel agrees with explicit kron products."""
    gen = np.random.default_rng(42)
    n = 3
    data = gen.normal(size=2**n) + 1j * gen.normal(size=2**n)
    data = data / np.linalg.norm(data)
    m = gen.normal(size=(2, 2)) + 1j * gen.normal(size=(2, 2))
    q, _ = np.linalg.qr(m)
    # Apply to qubit 1 via the kernel.
    out = apply_unitary(data, n, q, [1])
    # Reference: I (x) U (x) I.
    full = np.kron(np.kron(np.eye(2), q), np.eye(2))
    assert np.allclose(out, full @ data)
