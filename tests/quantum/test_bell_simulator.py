"""Tests for repro.quantum.bell and repro.quantum.simulator / measurement."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.bell import bell_circuit, bell_state, ghz_circuit, ghz_state, w_state
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import (
    counts_to_probabilities,
    expectation_from_counts,
    expectation_value,
    sample_counts,
)
from repro.quantum.pauli import IsingHamiltonian, PauliString, PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector

SIM = StatevectorSimulator()


class TestBellStates:
    @pytest.mark.parametrize("kind", ["phi+", "phi-", "psi+", "psi-"])
    def test_bell_states_normalised(self, kind):
        assert bell_state(kind).is_normalized()

    def test_bell_states_orthogonal(self):
        kinds = ["phi+", "phi-", "psi+", "psi-"]
        for i, a in enumerate(kinds):
            for b in kinds[i + 1 :]:
                assert abs(bell_state(a).inner(bell_state(b))) == pytest.approx(0.0)

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            bell_state("sigma")

    def test_bell_circuit_prepares_phi_plus(self):
        assert SIM.run(bell_circuit()).fidelity(bell_state("phi+")) == pytest.approx(1.0)

    def test_ghz_circuit(self):
        for n in (2, 3, 5):
            assert SIM.run(ghz_circuit(n)).fidelity(ghz_state(n)) == pytest.approx(1.0)

    def test_ghz_correlations(self, rng):
        """Example IV.1-style perfect correlation: both qubits always agree."""
        for _ in range(20):
            bits, _ = bell_state("phi+").measure(rng=rng)
            assert bits[0] == bits[1]

    def test_w_state_weight_one(self):
        s = w_state(4)
        probs = s.probabilities()
        support = np.nonzero(probs > 1e-12)[0]
        assert set(support) == {0b1000, 0b0100, 0b0010, 0b0001}

    def test_ghz_needs_two_qubits(self):
        with pytest.raises(SimulationError):
            ghz_state(1)


class TestSimulator:
    def test_initial_state_width_checked(self):
        with pytest.raises(SimulationError):
            SIM.run(QuantumCircuit(2).h(0), initial_state=Statevector.zero_state(1))

    def test_qubit_limit(self):
        small = StatevectorSimulator(max_qubits=2)
        with pytest.raises(SimulationError):
            small.run(QuantumCircuit(3).h(0))

    def test_sample_seeded_reproducible(self):
        qc = QuantumCircuit(1).h(0)
        a = SIM.sample(qc, 100, rng=5)
        b = SIM.sample(qc, 100, rng=5)
        assert a == b

    def test_expectation_api(self):
        qc = QuantumCircuit(1).x(0)
        assert SIM.expectation(qc, np.array([1.0, -1.0])) == pytest.approx(-1.0)


class TestMeasurementHelpers:
    def test_counts_to_probabilities(self):
        probs = counts_to_probabilities({"00": 25, "11": 75})
        assert probs["11"] == pytest.approx(0.75)

    def test_counts_to_probabilities_empty(self):
        with pytest.raises(SimulationError):
            counts_to_probabilities({})

    def test_expectation_value_pauli_sum(self):
        ham = PauliSum([PauliString("Z", 1.0)])
        assert expectation_value(Statevector.from_label("1"), ham) == pytest.approx(-1.0)

    def test_expectation_value_ising(self):
        ham = IsingHamiltonian(1, linear={0: 1.0})
        assert expectation_value(Statevector.from_label("0"), ham) == pytest.approx(1.0)

    def test_expectation_value_matrix(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        plus = Statevector([1, 1])
        assert expectation_value(plus, x) == pytest.approx(1.0)

    def test_expectation_from_counts(self):
        diag = np.array([1.0, -1.0])
        counts = {"0": 60, "1": 40}
        assert expectation_from_counts(counts, diag) == pytest.approx(0.2)

    def test_sample_counts_wrapper(self, rng):
        counts = sample_counts(Statevector.uniform_superposition(1), 1000, rng=rng)
        assert sum(counts.values()) == 1000


class TestPaperExampleII1:
    """Example II.1: |psi> = (|0> + |1>)/sqrt(2) measures 0/1 with p=1/2."""

    def test_amplitudes(self):
        psi = Statevector([1 / math.sqrt(2), 1 / math.sqrt(2)])
        assert psi.probability("0") == pytest.approx(0.5)
        assert psi.probability("1") == pytest.approx(0.5)

    def test_empirical(self, rng):
        psi = Statevector([1 / math.sqrt(2), 1 / math.sqrt(2)])
        counts = psi.sample_counts(40000, rng=rng)
        assert counts["0"] / 40000 == pytest.approx(0.5, abs=0.01)
