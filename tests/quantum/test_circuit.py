"""Tests for repro.quantum.circuit."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import standard_gate
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector

SIM = StatevectorSimulator()


class TestBuilding:
    def test_builder_chaining(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        assert qc.size() == 2
        assert [op.gate.name for op in qc] == ["h", "cx"]

    def test_rejects_zero_width(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(0)

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(1).x(1)

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(2).cx(1, 1)

    def test_rejects_wrong_arity(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(2).append(standard_gate("swap"), (0,))

    def test_count_ops(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_depth(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1
        qc.cx(0, 1)
        assert qc.depth() == 2

    def test_h_all(self):
        qc = QuantumCircuit(3).h_all()
        state = SIM.run(qc)
        assert np.allclose(state.probabilities(), np.full(8, 1 / 8))

    def test_mcx(self):
        qc = QuantumCircuit(4).x(0).x(1).x(2).mcx([0, 1, 2], 3)
        state = SIM.run(qc)
        assert state.probability("1111") == pytest.approx(1.0)

    def test_mcz_single_qubit(self):
        qc = QuantumCircuit(1).mcz([0])
        assert qc.operations[0].gate.name == "z"


class TestSemantics:
    def test_bell_preparation(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        state = SIM.run(qc)
        assert state.probability("00") == pytest.approx(0.5)
        assert state.probability("11") == pytest.approx(0.5)
        assert state.probability("01") == pytest.approx(0.0)

    def test_swap(self):
        qc = QuantumCircuit(2).swap(0, 1)
        state = SIM.run(qc, initial_state=Statevector.from_label("10"))
        assert state.probability("01") == pytest.approx(1.0)

    def test_rzz_equals_cnot_rz_cnot(self):
        theta = 0.83
        direct = QuantumCircuit(2).rzz(theta, 0, 1)
        decomposed = QuantumCircuit(2).cx(0, 1).rz(theta, 1).cx(0, 1)
        assert np.allclose(direct.to_matrix(), decomposed.to_matrix())

    def test_ccx_truth_table(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        mat = qc.to_matrix()
        # |110> -> |111> and vice versa; everything else fixed.
        assert mat[7, 6] == pytest.approx(1.0)
        assert mat[6, 7] == pytest.approx(1.0)
        assert mat[0, 0] == pytest.approx(1.0)

    def test_diagonal_phase(self):
        qc = QuantumCircuit(1).h(0).diagonal([0.0, math.pi], [0]).h(0)
        state = SIM.run(qc)
        # HZH = X.
        assert state.probability("1") == pytest.approx(1.0)


class TestComposition:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(1).x(0)
        outer = QuantumCircuit(2).compose(inner)
        state = SIM.run(outer)
        assert state.probability("10") == pytest.approx(1.0)

    def test_compose_remapped(self):
        inner = QuantumCircuit(1).x(0)
        outer = QuantumCircuit(2).compose(inner, qubits=[1])
        state = SIM.run(outer)
        assert state.probability("01") == pytest.approx(1.0)

    def test_compose_width_mismatch(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(2).compose(QuantumCircuit(2), qubits=[0])

    def test_inverse_undoes(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).t(1).ry(0.3, 0)
        roundtrip = qc.copy().compose(qc.inverse())
        state = SIM.run(roundtrip)
        assert state.probability("00") == pytest.approx(1.0)

    def test_power(self):
        qc = QuantumCircuit(1).x(0)
        assert SIM.run(qc.power(2)).probability("0") == pytest.approx(1.0)
        assert SIM.run(qc.power(3)).probability("1") == pytest.approx(1.0)

    def test_power_rejects_negative(self):
        with pytest.raises(SimulationError):
            QuantumCircuit(1).power(-1)

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1).x(0)
        dup = qc.copy()
        dup.x(0)
        assert qc.size() == 1
        assert dup.size() == 2


class TestToMatrix:
    def test_to_matrix_unitary(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).s(1)
        mat = qc.to_matrix()
        assert np.allclose(mat @ mat.conj().T, np.eye(4))

    def test_to_matrix_matches_simulation(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        mat = qc.to_matrix()
        state = SIM.run(qc)
        assert np.allclose(mat[:, 0], state.data)
