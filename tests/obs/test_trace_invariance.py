"""Tracing must observe the engine, never steer it.

The acceptance bar for the observability layer: with a tracer active, every
objective, child seed, QUBO fingerprint, and cache key is byte-identical to
the untraced run — span ids come from ``os.urandom`` and timing from
``perf_counter``, neither of which touches a numpy RNG stream.  These tests
pin that across the full executor matrix, and pin the span taxonomy each
engine layer emits (the flight recorder is only as useful as the spans the
hot path actually produces).
"""

import pytest

import repro
from repro import obs
from repro.api import MQOAdapter
from repro.api.adapters import RawQuboProblem
from repro.api.backends import BruteForceBackend
from repro.engine import (
    AdaptiveScheduler,
    ResultCache,
    solve_batch_scheduled,
    solve_decomposed,
)
from repro.mqo import generate_mqo_problem
from repro.qubo.model import QuboModel

ALL_EXECUTORS = ["serial", "threads", "processes", "async"]
MATRIX_BACKENDS = {
    "tabu": dict(num_restarts=2, max_iterations=40),
    "sa": dict(num_reads=3, num_sweeps=30),
}

#: The pinned canonical MQO fingerprint from tests/engine/
#: test_engine_fingerprints.py — duplicated literally so a traced
#: formulation is checked against the same frozen constant, not against
#: itself.
GOLDEN_MQO_FP = "b00f5e863ae01a4e0187594d033aeb3fb2ff758887f74987307fcf3fec324b82"


def _batch():
    """Two structure groups so shards, caches, and routing all engage."""
    return [
        MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=r))
        for r in (1, 5, 1)
    ]


def _signature(results):
    """Everything determinism promises to hold fixed, as one comparable."""
    return [
        (r.objective, r.solution, r.energy,
         r.info["engine"]["seed"], r.info["engine"]["fingerprint"])
        for r in results
    ]


class TestTraceInvariance:
    """serial/threads/processes/async x tabu/sa: tracing on == tracing off."""

    @pytest.mark.parametrize("executor", ALL_EXECUTORS)
    @pytest.mark.parametrize("backend", sorted(MATRIX_BACKENDS))
    def test_traced_run_matches_untraced(self, backend, executor):
        opts = MATRIX_BACKENDS[backend]
        baseline = repro.solve_many(
            _batch(), backend=backend, seed=11, executor=executor, **opts
        )
        collector = obs.SpanCollector()
        with obs.activate(collector):
            traced = repro.solve_many(
                _batch(), backend=backend, seed=11, executor=executor, **opts
            )
        assert _signature(traced) == _signature(baseline)
        spans = collector.drain()
        # No cache configured, so no cache.lookup spans on this path.
        assert {s["name"] for s in spans} >= {
            "facade.solve_many", "engine.plan_compile", "engine.execute",
            "engine.shard", "engine.solve",
        }
        # One engine.solve span per item, each joined to its result.
        solves = {s["span_id"] for s in spans if s["name"] == "engine.solve"}
        assert len(solves) == len(traced)
        assert all(r.info["trace"]["span_id"] in solves for r in traced)

    def test_golden_fingerprint_is_byte_identical_under_tracing(self):
        with obs.activate(obs.SpanCollector()):
            model = MQOAdapter(
                generate_mqo_problem(3, 2, sharing_density=0.4, rng=7)
            ).to_qubo()
            assert model.fingerprint() == GOLDEN_MQO_FP

    def test_single_solve_traced_matches_untraced(self):
        problem = MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=2))
        baseline = repro.solve(problem, backend="sa", seed=5, num_reads=3,
                               num_sweeps=30)
        collector = obs.SpanCollector()
        with obs.activate(collector):
            traced = repro.solve(problem, backend="sa", seed=5, num_reads=3,
                                 num_sweeps=30)
        assert traced.objective == baseline.objective
        assert traced.solution == baseline.solution
        assert traced.energy == baseline.energy
        names = [s["name"] for s in collector.drain()]
        assert "facade.solve" in names and "engine.solve" in names


class TestWorkerPropagation:
    """The payload-carried TraceContext: spans survive pool boundaries."""

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_pool_workers_report_spans_into_the_request_trace(self, executor):
        collector = obs.SpanCollector()
        with obs.activate(collector):
            repro.solve_many(_batch(), backend="sa", seed=3, executor=executor,
                             num_reads=2, num_sweeps=20)
        spans = collector.drain()
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        trace_ids = {s["trace_id"] for s in spans}
        assert len(trace_ids) == 1  # worker spans re-homed, not orphan traces
        shard_ids = {s["span_id"] for s in by_name["engine.shard"]}
        for solve in by_name["engine.solve"]:
            assert solve["parent_id"] in shard_ids
        for shard in by_name["engine.shard"]:
            assert shard["attrs"]["executor"] == executor
            assert len(shard["attrs"]["signature"]) == 16


class TestSpanTaxonomy:
    def test_cache_lookup_spans_report_hit_and_tier(self):
        cache = ResultCache()
        problems = _batch()
        collector = obs.SpanCollector()
        with obs.activate(collector):
            first = repro.solve_many(problems, backend="sa", seed=9, cache=cache,
                                     num_reads=2, num_sweeps=20)
        cold = [s for s in collector.drain() if s["name"] == "cache.lookup"]
        assert cold and all(s["attrs"]["hit"] is False for s in cold)
        assert all(s["attrs"]["tier"] is None for s in cold)

        with obs.activate(collector):
            second = repro.solve_many(problems, backend="sa", seed=9, cache=cache,
                                      num_reads=2, num_sweeps=20)
        warm = [s for s in collector.drain() if s["name"] == "cache.lookup"]
        assert warm and all(s["attrs"]["hit"] is True for s in warm)
        assert all(s["attrs"]["tier"] == "memory" for s in warm)
        assert all(r.cache_hit for r in second)
        assert _signature(second) == _signature(first)
        # Cache-served results still carry a trace join key (the lookup span).
        warm_ids = {s["span_id"] for s in warm}
        assert all(r.info["trace"]["span_id"] in warm_ids for r in second)

    def test_scheduled_path_emits_route_prefetch_and_checkpoint_spans(self, tmp_path):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0,
                                      store=tmp_path / "engine.db")
        collector = obs.SpanCollector()
        with obs.activate(collector):
            results = solve_batch_scheduled(
                _batch(), ["sa", "tabu"], scheduler, seed=11,
                store=tmp_path / "engine.db",
                backend_opts={"sa": dict(num_reads=2, num_sweeps=20),
                              "tabu": dict(num_restarts=1, max_iterations=30)},
            )
        assert len(results) == 3
        spans = collector.drain()
        names = {s["name"] for s in spans}
        assert {"engine.plan_compile", "scheduler.route",
                "store.prefetch", "store.checkpoint"} <= names
        routes = [s for s in spans if s["name"] == "scheduler.route"]
        assert len(routes) == 2  # one decision per structure shard
        for route in routes:
            assert route["attrs"]["backend"] in ("sa", "tabu")
            assert route["attrs"]["mode"] in ("cold", "explore", "exploit")
            assert len(route["attrs"]["signature"]) == 16
        (checkpoint,) = [s for s in spans if s["name"] == "store.checkpoint"]
        assert checkpoint["attrs"]["observations"] >= 1

    def test_decomposer_emits_round_spans(self):
        model = QuboModel(num_variables=8)
        for i in range(8):
            model.add_linear(i, 1.0)
        for i in range(7):
            model.add_quadratic(i, i + 1, -0.5)
        collector = obs.SpanCollector()
        with obs.activate(collector):
            solve_decomposed(
                RawQuboProblem(model), BruteForceBackend(), capacity=4, seed=1,
                backend_name="bruteforce",
            )
        spans = collector.drain()
        (outer,) = [s for s in spans if s["name"] == "engine.decompose"]
        rounds = [s for s in spans if s["name"] == "decompose.round"]
        assert outer["attrs"]["capacity"] == 4
        assert outer["attrs"]["rounds"] == len(rounds) >= 1
        assert all("energy" in r["attrs"] for r in rounds)


class TestTimingSplit:
    def test_engine_info_splits_wall_time(self):
        (result,) = repro.solve_many(
            [MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=4))],
            backend="sa", seed=2, num_reads=2, num_sweeps=20,
        )
        engine = result.info["engine"]
        for key in ("formulate_time", "solve_time", "cache_time"):
            assert engine[key] >= 0.0
        # The split partitions the measured wall time (formulation +
        # sampling happen inside it; the cache probe is paid outside).
        assert engine["formulate_time"] + engine["solve_time"] <= result.wall_time * 1.05
        assert result.timings == {
            "formulate_time": engine["formulate_time"],
            "solve_time": engine["solve_time"],
            "cache_time": engine["cache_time"],
        }
        payload = result.to_json_dict()
        assert payload["info"]["engine"]["solve_time"] == engine["solve_time"]
        assert payload["info"]["timings"]["formulate_time"] == pytest.approx(
            engine["formulate_time"]
        )

    def test_cache_hit_keeps_original_split_but_own_probe_cost(self):
        cache = ResultCache()
        problem = [MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=6))]
        (cold,) = repro.solve_many(problem, backend="sa", seed=8, cache=cache,
                                   num_reads=2, num_sweeps=20)
        (warm,) = repro.solve_many(problem, backend="sa", seed=8, cache=cache,
                                   num_reads=2, num_sweeps=20)
        assert warm.cache_hit and not cold.cache_hit
        assert warm.engine["cache_tier"] == "memory"
        # The memoised result keeps the original solve's split ...
        assert warm.engine["solve_time"] == cold.engine["solve_time"]
        assert warm.engine["formulate_time"] == cold.engine["formulate_time"]
        # ... while cache_time is the probe this dispatch actually paid.
        assert warm.engine["cache_time"] >= 0.0

    def test_timings_property_falls_back_off_engine(self):
        from repro.api.result import SolveResult

        bare = SolveResult(problem="x", method="sa", solution=(), objective=0.0)
        assert bare.timings == {}
        kernel_only = SolveResult(
            problem="x", method="sa", solution=(), objective=0.0,
            info={"timings": {"formulate_time": 0.25, "solve_time": 0.5}},
        )
        assert kernel_only.timings == {"formulate_time": 0.25, "solve_time": 0.5}
