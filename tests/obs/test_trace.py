"""Span/tracer primitives: lifecycle, parenting, context propagation, slicing.

Everything here is pure-stdlib plumbing — no engine, no service — so the
tests pin the exact contracts the instrumented layers rely on: span dicts
are JSON/pickle-clean, ``end`` is idempotent, ``activate`` starts a fresh
root, ``TraceContext`` survives a pickle round trip, and ``request_slice``
separates one request's spans from a coalesced wave's interleaved set.
"""

import pickle
import threading

import pytest

from repro import obs
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Tests that install a process-wide tracer must not leak it."""
    yield
    obs.install(None)


class TestSpanLifecycle:
    def test_scoped_span_emits_a_json_ready_dict(self):
        collector = obs.SpanCollector()
        with obs.activate(collector):
            with obs.span("unit.work", shard=3) as handle:
                assert handle.trace_id is not None
                handle.set(hit=True)
        (span,) = collector.drain()
        assert span["name"] == "unit.work"
        assert len(span["trace_id"]) == 16
        assert len(span["span_id"]) == 8
        assert span["parent_id"] is None
        assert span["status"] == "ok"
        assert span["duration_s"] >= 0.0
        assert span["attrs"] == {"shard": 3, "hit": True}
        assert "_t0" not in span  # internal clock never leaks to sinks

    def test_nesting_links_parent_and_shares_trace_id(self):
        collector = obs.SpanCollector()
        with obs.activate(collector):
            with obs.span("outer") as outer:
                with obs.span("inner"):
                    pass
        inner, outer_span = collector.drain()  # inner ends first
        assert inner["name"] == "inner"
        assert inner["trace_id"] == outer_span["trace_id"]
        assert inner["parent_id"] == outer.span_id
        assert outer_span["parent_id"] is None

    def test_exception_marks_error_and_propagates(self):
        collector = obs.SpanCollector()
        with pytest.raises(ValueError, match="boom"):
            with obs.activate(collector):
                with obs.span("unit.fails"):
                    raise ValueError("boom")
        (span,) = collector.drain()
        assert span["status"] == "error"
        assert "boom" in span["error"]

    def test_manual_end_is_idempotent(self):
        emitted = []
        tracer = obs.Tracer(sink=emitted.append)
        span = tracer.begin("queue_wait", lane="interactive")
        tracer.end(span)
        tracer.end(span)  # the _run_wave backstop may end an already-ended span
        assert len(emitted) == 1
        assert emitted[0]["attrs"] == {"lane": "interactive"}

    def test_begin_without_parent_starts_a_fresh_trace(self):
        tracer = obs.Tracer()
        a, b = tracer.begin("a"), tracer.begin("b")
        assert a["trace_id"] != b["trace_id"]
        assert a["parent_id"] is None

    def test_begin_with_trace_context_parent(self):
        tracer = obs.Tracer()
        ctx = obs.TraceContext("ab" * 8, "cd" * 4)
        child = tracer.begin("child", parent=ctx)
        assert child["trace_id"] == ctx.trace_id
        assert child["parent_id"] == ctx.span_id


class TestNoopPath:
    def test_span_without_tracer_is_the_shared_noop_scope(self):
        scope_a = obs.span("hot.path", attr=1)
        scope_b = obs.span("hot.path.again")
        assert scope_a is scope_b  # one shared object: zero per-call allocation
        with scope_a as handle:
            handle.set(anything="ignored")
            assert handle.trace_id is None
            assert handle.span_id is None
            assert handle.context() is None

    def test_noop_scope_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with obs.span("still.raises"):
                raise RuntimeError("bubbles")

    def test_current_context_is_none_outside_spans(self):
        assert obs.current_context() is None
        assert obs.current_ids() == (None, None)


class TestActivationAndInstall:
    def test_activate_starts_a_fresh_root_not_a_child(self):
        outer, inner = obs.SpanCollector(), obs.SpanCollector()
        with obs.activate(outer):
            with obs.span("service.wave"):
                # The engine call runs under its own synthetic trace: its
                # root must NOT be parented under the service span.
                with obs.activate(inner):
                    with obs.span("engine.root"):
                        pass
        (engine_root,) = inner.drain()
        (wave,) = outer.drain()
        assert engine_root["parent_id"] is None
        assert engine_root["trace_id"] != wave["trace_id"]

    def test_install_is_the_fallback_and_activate_overrides(self):
        fallback, scoped = obs.SpanCollector(), obs.SpanCollector()
        obs.install(fallback)
        with obs.span("via.global"):
            pass
        with obs.activate(scoped):
            with obs.span("via.scoped"):
                pass
        assert [s["name"] for s in fallback.drain()] == ["via.global"]
        assert [s["name"] for s in scoped.drain()] == ["via.scoped"]
        assert obs.active_tracer() is fallback
        obs.install(None)
        assert obs.active_tracer() is None

    def test_activation_is_per_thread(self):
        """A worker thread must not see the main thread's activation
        (ThreadPoolExecutor workers do not inherit contextvars)."""
        collector = obs.SpanCollector()
        seen = {}

        def worker():
            seen["tracer"] = trace_mod._ACTIVE.get()

        with obs.activate(collector):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["tracer"] is None

    def test_ingest_forwards_to_the_active_tracer(self):
        collector = obs.SpanCollector()
        foreign = [{"name": "remote", "trace_id": "x", "span_id": "y",
                    "parent_id": None, "start_s": 0.0, "duration_s": 0.1,
                    "status": "ok", "attrs": {}}]
        obs.ingest(foreign)  # no tracer: silently dropped, never raises
        with obs.activate(collector):
            obs.ingest(foreign)
        assert collector.drain() == foreign


class TestTraceContext:
    def test_pickles_cleanly(self):
        ctx = obs.TraceContext("ff" * 8, "ee" * 4)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_current_context_points_at_the_open_span(self):
        with obs.activate(obs.SpanCollector()):
            with obs.span("carrier") as handle:
                ctx = obs.current_context()
                assert ctx == obs.TraceContext(handle.trace_id, handle.span_id)
                assert obs.current_ids() == (handle.trace_id, handle.span_id)
                assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_collector_for_mirrors_payload_presence(self):
        assert obs.collector_for(None) is None
        collector = obs.collector_for(obs.TraceContext("aa" * 8))
        assert isinstance(collector, obs.SpanCollector)

    def test_worker_side_spans_chain_to_the_carried_context(self):
        """The shard-worker pattern: payload context -> local collector ->
        spans returned with results -> ingest on the dispatching side."""
        ctx = obs.TraceContext("ab" * 8, "cd" * 4)
        collector = obs.collector_for(ctx)
        shard = collector.begin("engine.shard", parent=ctx, shard=0)
        solve = collector.begin("engine.solve", parent=shard, index=0)
        collector.end(solve)
        collector.end(shard)
        spans = collector.drain()
        assert [s["name"] for s in spans] == ["engine.solve", "engine.shard"]
        assert all(s["trace_id"] == ctx.trace_id for s in spans)
        assert spans[1]["parent_id"] == ctx.span_id
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        assert collector.drain() == []  # drain empties the buffer


def _wave_spans():
    """A synthetic coalesced-wave span set: one engine call, two shards,
    each serving a different request, plus shared (unsharded) work."""
    t = obs.Tracer()
    root = t.begin("facade.solve_many")
    plan = t.begin("engine.plan_compile", parent=root)
    cache0 = t.begin("cache.lookup", parent=root, shard=0)
    cache1 = t.begin("cache.lookup", parent=root, shard=1)
    shard0 = t.begin("engine.shard", parent=root, shard=0)
    solve0 = t.begin("engine.solve", parent=shard0, shard=0, index=0)
    shard1 = t.begin("engine.shard", parent=root, shard=1)
    solve1 = t.begin("engine.solve", parent=shard1, shard=1, index=0)
    spans = [root, plan, cache0, cache1, shard0, solve0, shard1, solve1]
    for span in spans:
        t.end(span)
    return spans, solve0, solve1


class TestRequestSlice:
    def test_keeps_own_chain_shared_work_and_same_shard_spans(self):
        spans, solve0, _ = _wave_spans()
        kept = {s["name"]: s for s in obs.request_slice(spans, solve0["span_id"])}
        assert set(kept) == {
            "facade.solve_many", "engine.plan_compile",
            "cache.lookup", "engine.shard", "engine.solve",
        }
        assert kept["cache.lookup"]["attrs"]["shard"] == 0
        assert kept["engine.shard"]["attrs"]["shard"] == 0
        assert kept["engine.solve"] is solve0

    def test_sibling_request_slices_are_disjoint_below_the_shared_work(self):
        spans, solve0, solve1 = _wave_spans()
        ids0 = {s["span_id"] for s in obs.request_slice(spans, solve0["span_id"])}
        ids1 = {s["span_id"] for s in obs.request_slice(spans, solve1["span_id"])}
        shared = ids0 & ids1
        shared_names = {s["name"] for s in spans if s["span_id"] in shared}
        assert shared_names == {"facade.solve_many", "engine.plan_compile"}

    def test_unknown_span_id_yields_empty(self):
        spans, _, _ = _wave_spans()
        assert obs.request_slice(spans, "deadbeef") == []
        assert obs.request_slice(spans, None) == []

    def test_foreign_root_spans_are_excluded(self):
        spans, solve0, _ = _wave_spans()
        other = obs.Tracer().begin("facade.solve_many")
        obs.Tracer().end(other)
        kept = obs.request_slice(spans + [other], solve0["span_id"])
        assert other["span_id"] not in {s["span_id"] for s in kept}
