"""Structured logging: JSON shape, trace-id enrichment, configure contract."""

import io
import json
import logging

import pytest

from repro import obs
from repro.obs.log import configure, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """configure() mutates the process-wide 'repro' logger; restore it."""
    logger = logging.getLogger("repro")
    saved = (logger.handlers[:], logger.level, logger.propagate)
    yield
    logger.handlers[:], logger.level, logger.propagate = saved


def _log_lines(fmt, emit, level="info"):
    stream = io.StringIO()
    configure(level=level, fmt=fmt, stream=stream)
    emit(get_logger("service"))
    return stream.getvalue().splitlines()


class TestConfigure:
    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError, match="log level"):
            configure(level="loud")
        with pytest.raises(ValueError, match="log format"):
            configure(fmt="xml")

    def test_level_is_case_insensitive_and_filters(self):
        lines = _log_lines("text", lambda log: (log.debug("quiet"),
                                                log.warning("loud")),
                           level="WARNING")
        assert len(lines) == 1 and "loud" in lines[0]

    def test_reconfigure_replaces_the_handler(self):
        stream_a, stream_b = io.StringIO(), io.StringIO()
        configure(stream=stream_a)
        configure(stream=stream_b)
        get_logger("service").info("once")
        assert stream_a.getvalue() == ""
        assert stream_b.getvalue().count("once") == 1  # no stacked handlers

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("service").name == "repro.service"
        assert get_logger("repro.engine").name == "repro.engine"
        assert get_logger().name == "repro"


class TestJsonShape:
    def test_one_strict_json_object_per_line_with_fields(self):
        (line,) = _log_lines(
            "json",
            lambda log: log.info("wave dispatched",
                                 extra={"fields": {"wave": 7, "size": 2}}),
        )
        record = json.loads(line)
        assert record["message"] == "wave dispatched"
        assert record["level"] == "info"
        assert record["logger"] == "repro.service"
        assert record["wave"] == 7 and record["size"] == 2
        assert "trace_id" not in record  # no span open while emitting

    def test_records_carry_the_open_spans_ids(self):
        stream = io.StringIO()
        configure(fmt="json", stream=stream)
        with obs.activate(obs.SpanCollector()):
            with obs.span("service.wave") as handle:
                get_logger("service").info("inside")
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == handle.trace_id
        assert record["span_id"] == handle.span_id

    def test_text_format_carries_the_same_enrichment(self):
        stream = io.StringIO()
        configure(fmt="text", stream=stream)
        with obs.activate(obs.SpanCollector()):
            with obs.span("service.wave") as handle:
                get_logger("service").info("inside",
                                           extra={"fields": {"wave": 3}})
        line = stream.getvalue()
        assert f"trace={handle.trace_id}/{handle.span_id}" in line
        assert "wave=3" in line
