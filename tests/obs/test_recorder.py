"""FlightRecorder: ring-buffer eviction, span caps, queries, thread-safety.

The recorder is the service's memory-bounded trace store — these tests pin
the two bounds (trace count, spans per trace), the ``dropped_total``
accounting that surfaces recorder pressure on ``/readyz``, and that
concurrent writers (event loop + wave threads + executor workers) never
corrupt it or grow it past its caps.
"""

import itertools
import threading

import pytest

from repro.obs import FlightRecorder, Tracer

_IDS = itertools.count(1)


def _span(trace_id, name="work", parent=None, start=0.0, duration=0.01):
    return {
        "name": name, "trace_id": trace_id, "span_id": f"{next(_IDS):08x}",
        "parent_id": parent, "start_s": start, "duration_s": duration,
        "status": "ok", "attrs": {},
    }


def _fill(recorder, trace_id, n=1, **meta):
    for i in range(n):
        recorder.record(_span(trace_id, name=f"s{i}", start=float(i)))
    if meta:
        recorder.annotate(trace_id, **meta)


class TestBounds:
    def test_rejects_degenerate_caps(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_traces=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_spans=0)

    def test_evicts_oldest_trace_first(self):
        recorder = FlightRecorder(max_traces=2)
        _fill(recorder, "t1", n=3, job_id="job-1")
        _fill(recorder, "t2", n=1)
        _fill(recorder, "t3", n=1)  # pushes t1 (oldest) out
        assert recorder.get("t1") is None
        assert recorder.get("t2") is not None
        assert recorder.get("t3") is not None
        assert recorder.dropped_total == 3  # every span of the evicted trace
        assert recorder.get_by_job("job-1") is None  # index cleaned with it

    def test_per_trace_span_cap_drops_and_counts(self):
        recorder = FlightRecorder(max_spans=2)
        _fill(recorder, "t1", n=5)
        trace = recorder.get("t1")
        assert trace["span_count"] == 2
        assert recorder.dropped_total == 3
        assert recorder.stats() == {"traces_buffered": 1, "dropped_total": 3}

    def test_spanless_records_are_ignored(self):
        recorder = FlightRecorder()
        recorder.record({"name": "no-trace-id", "attrs": {}})
        recorder.record({"name": "empty", "trace_id": "", "attrs": {}})
        assert recorder.stats()["traces_buffered"] == 0


class TestQueries:
    def test_get_returns_sorted_spans_and_a_nested_tree(self):
        recorder = FlightRecorder()
        root = _span("t1", name="root", start=0.0, duration=1.0)
        child = dict(_span("t1", name="child", start=0.5, duration=0.2),
                     parent_id=root["span_id"])
        recorder.record(child)  # out of order on purpose
        recorder.record(root)
        trace = recorder.get("t1")
        assert [s["name"] for s in trace["spans"]] == ["root", "child"]
        assert trace["duration_s"] == pytest.approx(1.0)
        (tree_root,) = trace["tree"]
        assert tree_root["name"] == "root"
        assert [n["name"] for n in tree_root["children"]] == ["child"]

    def test_orphan_spans_surface_as_extra_roots(self):
        recorder = FlightRecorder()
        recorder.record(dict(_span("t1", name="orphan"), parent_id="gone0000"))
        (node,) = recorder.get("t1")["tree"]
        assert node["name"] == "orphan"

    def test_annotate_and_get_by_job(self):
        recorder = FlightRecorder()
        recorder.annotate("t1", job_id="job-7", tenant="acme")  # before any span
        _fill(recorder, "t1", n=2)
        trace = recorder.get_by_job("job-7")
        assert trace["tenant"] == "acme"
        assert trace["job_id"] == "job-7"
        assert recorder.get_by_job("job-unknown") is None
        assert recorder.get("t-unknown") is None

    def test_recent_is_newest_first_and_filterable(self):
        recorder = FlightRecorder()
        recorder.record(_span("slow", duration=2.0))
        recorder.annotate("slow", tenant="acme")
        recorder.record(_span("fast", duration=0.001))
        recorder.annotate("fast", tenant="acme")
        recorder.record(_span("other", duration=5.0))
        recorder.annotate("other", tenant="zeta")

        ids = [t["trace_id"] for t in recorder.recent()]
        assert ids == ["other", "fast", "slow"]
        acme = [t["trace_id"] for t in recorder.recent(tenant="acme")]
        assert acme == ["fast", "slow"]
        slow_only = [t["trace_id"] for t in recorder.recent(min_duration_s=1.0)]
        assert slow_only == ["other", "slow"]
        assert len(recorder.recent(limit=1)) == 1

    def test_get_returns_copies_not_live_buffers(self):
        recorder = FlightRecorder()
        _fill(recorder, "t1", n=1)
        recorder.get("t1")["spans"][0]["attrs"]["mutated"] = True
        assert "mutated" not in recorder.get("t1")["spans"][0]["attrs"]


class TestConcurrency:
    def test_concurrent_writers_respect_the_caps(self):
        """Writers from many threads (the wave/executor reality) must never
        corrupt the recorder or grow it past max_traces."""
        recorder = FlightRecorder(max_traces=8, max_spans=16)
        tracer = Tracer(sink=recorder.record)
        errors = []

        def writer(worker_id):
            try:
                for i in range(50):
                    root = tracer.begin(f"w{worker_id}.r{i}")
                    child = tracer.begin("child", parent=root, worker=worker_id)
                    tracer.end(child)
                    tracer.end(root)
                    recorder.annotate(root["trace_id"], job_id=f"job-{worker_id}-{i}")
            except Exception as exc:  # surfaced below: threads swallow raises
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = recorder.stats()
        assert stats["traces_buffered"] <= 8
        # 6 workers x 50 iterations x 2 spans went in; every span is either
        # still buffered or was counted as dropped (an annotate racing an
        # eviction can add phantom drops, never silent losses).
        buffered = sum(t["span_count"] for t in
                       (recorder.get(s["trace_id"]) for s in recorder.recent(limit=8)))
        assert buffered + stats["dropped_total"] >= 6 * 50 * 2
        for summary in recorder.recent(limit=8):
            assert recorder.get(summary["trace_id"]) is not None
