"""Tests for the schema-matching (data integration) package."""

import pytest

from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.exceptions import ReproError
from repro.integration.classical import greedy_matching, hungarian_matching
from repro.integration.generator import generate_schema_pair
from repro.integration.qubo import (
    decode_matching,
    matching_quality,
    matching_similarity_total,
    matching_to_qubo,
    similarity_matrix,
)
from repro.integration.schema import Attribute, Schema
from repro.integration.similarity import (
    combined_similarity,
    jaccard_ngrams,
    levenshtein_distance,
    levenshtein_similarity,
    type_compatibility,
)
from repro.qubo.bruteforce import BruteForceSolver


class TestSchema:
    def test_construction(self):
        s = Schema("s", [Attribute("a", "int"), Attribute("b")])
        assert len(s) == 2
        assert s.attribute("a").dtype == "int"
        assert s.attribute_names == ["a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            Schema("s", [Attribute("a"), Attribute("a")])

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            Attribute("a", "blob")

    def test_unknown_attribute(self):
        with pytest.raises(ReproError):
            Schema("s", [Attribute("a")]).attribute("z")


class TestSimilarity:
    def test_levenshtein_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("name", "name") == 1.0
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0

    def test_normalisation_ignores_case_and_punct(self):
        assert levenshtein_similarity("Customer_ID", "customerid") == 1.0

    def test_jaccard_identical(self):
        assert jaccard_ngrams("email", "email") == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_ngrams("abc", "xyz") == 0.0

    def test_type_compatibility(self):
        assert type_compatibility("int", "int") == 1.0
        assert type_compatibility("int", "float") == 0.8
        assert type_compatibility("float", "int") == 0.8  # symmetric
        assert type_compatibility("date", "bool") == pytest.approx(0.1)

    def test_combined_similarity_favours_same_name(self):
        a = Attribute("customer_id", "int")
        same = Attribute("customer_id", "int")
        other = Attribute("zzz", "date")
        assert combined_similarity(a, same) > combined_similarity(a, other)


class TestQuboMatching:
    def _schemas(self):
        src = Schema("s", [Attribute("customer_id", "int"), Attribute("email", "string")])
        tgt = Schema("t", [Attribute("client_id", "int"), Attribute("email_address", "string")])
        return src, tgt

    def test_qubo_optimum_matches_hungarian(self):
        for seed in range(4):
            src, tgt, _ = generate_schema_pair(5, rng=seed)
            model, sims = matching_to_qubo(src, tgt)
            if model.num_variables == 0 or model.num_variables > 18:
                continue
            ground = BruteForceSolver(max_variables=18).solve(model).best
            qubo_match = decode_matching(model, ground.bits)
            hung = hungarian_matching(src, tgt)
            assert matching_similarity_total(qubo_match, sims) == pytest.approx(
                matching_similarity_total(hung, sims), abs=1e-9
            )

    def test_one_to_one_enforced(self):
        src, tgt = self._schemas()
        model, _ = matching_to_qubo(src, tgt, threshold=0.0)
        ground = BruteForceSolver().solve(model).best
        match = decode_matching(model, ground.bits, repair=False)
        assert len(set(match.values())) == len(match)

    def test_decode_repair_resolves_conflicts(self):
        src, tgt = self._schemas()
        model, _ = matching_to_qubo(src, tgt, threshold=0.0)
        bits = [1] * model.num_variables  # everything selected
        match = decode_matching(model, bits)
        assert len(set(match.values())) == len(match)

    def test_threshold_prunes(self):
        src, tgt = self._schemas()
        loose, _ = matching_to_qubo(src, tgt, threshold=0.0)
        tight, _ = matching_to_qubo(src, tgt, threshold=0.9)
        assert tight.num_variables < loose.num_variables

    def test_sa_recovers_ground_truth_on_clean_schemas(self):
        src, tgt, truth = generate_schema_pair(6, rename_probability=0.0, drop_probability=0.0, rng=1)
        model, _ = matching_to_qubo(src, tgt)
        ss = SimulatedAnnealingSolver(num_reads=16, num_sweeps=200).solve(model, rng=2)
        pred = decode_matching(model, ss.best.bits)
        precision, recall, f1 = matching_quality(pred, truth)
        assert f1 == pytest.approx(1.0)


class TestClassicalBaselines:
    def test_hungarian_beats_or_ties_greedy(self):
        for seed in range(5):
            src, tgt, _ = generate_schema_pair(6, rng=seed)
            sims = similarity_matrix(src, tgt)
            h = hungarian_matching(src, tgt)
            g = greedy_matching(src, tgt)
            assert matching_similarity_total(h, sims) >= matching_similarity_total(g, sims) - 1e-9

    def test_matching_quality_perfect(self):
        assert matching_quality({"a": "b"}, {"a": "b"}) == (1.0, 1.0, 1.0)

    def test_matching_quality_empty_prediction(self):
        precision, recall, f1 = matching_quality({}, {"a": "b"})
        assert f1 == 0.0


class TestGenerator:
    def test_ground_truth_refers_to_real_attributes(self):
        src, tgt, truth = generate_schema_pair(8, rng=3)
        for a, b in truth.items():
            assert a in src.attribute_names
            assert b in tgt.attribute_names

    def test_drop_probability_shrinks_truth(self):
        src, tgt, truth = generate_schema_pair(8, drop_probability=1.0, extra_attributes=2, rng=4)
        assert truth == {}
        assert len(tgt) == 2

    def test_bounds_checked(self):
        with pytest.raises(ReproError):
            generate_schema_pair(0)
        with pytest.raises(ReproError):
            generate_schema_pair(99)

    def test_deterministic(self):
        a = generate_schema_pair(5, rng=9)
        b = generate_schema_pair(5, rng=9)
        assert a[2] == b[2]
