"""Adaptive scheduler: scoreboard convergence, exploration, deadline routing.

The scripted backends here have *known* quality and latency (fixed returned
bits, fixed sleeps), so every routing claim is checked against ground truth
rather than against whatever a stochastic sampler happened to produce.
"""

import math
import time

import pytest

import repro
from repro.api import register_backend
from repro.api.backends import Backend
from repro.api.problem import Problem
from repro.api.result import SolveResult
from repro.engine import (
    AdaptiveScheduler,
    BackendScoreboard,
    run_portfolio_scheduled,
    signature_key,
    solve_batch_scheduled,
)
from repro.exceptions import ReproError
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import Sample, SampleSet


class ToyProblem(Problem):
    """Minimise the number of set bits; the optimum is all-zeros = 0."""

    name = "toy"

    def __init__(self, n: int):
        self.n = n

    def build_qubo(self) -> QuboModel:
        model = QuboModel(self.n)
        for i in range(self.n):
            model.add_linear(i, 1.0)
        for i in range(self.n - 1):
            model.add_quadratic(i, i + 1, 0.5)
        return model

    def decode(self, bits):
        return tuple(int(b) for b in bits)

    def evaluate(self, solution) -> float:
        return float(sum(solution))


class ScriptedBackend(Backend):
    """Returns a fixed bit value for every variable, after a fixed sleep."""

    def __init__(self, name: str, bit: int, delay_s: float = 0.0):
        self.name = name
        self._bit = bit
        self.delay_s = delay_s

    def run(self, model, rng=None, **opts) -> SampleSet:
        if self.delay_s:
            time.sleep(self.delay_s)
        bits = tuple(self._bit for _ in range(model.num_variables))
        return SampleSet([Sample(bits, model.energy(bits))])


CANDIDATES = ("scripted_good", "scripted_bad")


@pytest.fixture(autouse=True, scope="module")
def _scripted_registry():
    """Register the scripted pair at run time, not import time, and remove
    it afterwards: other modules consult ``list_backends()`` (some at
    collection time) and must never see test-only entries regardless of
    test ordering.  ("good" finds the optimum instantly; "bad" returns the
    worst point, slowly.)"""
    from repro.api import backends as backend_registry

    register_backend(
        "scripted_good", lambda **o: ScriptedBackend("scripted_good", 0), overwrite=True
    )
    register_backend(
        "scripted_bad", lambda **o: ScriptedBackend("scripted_bad", 1, delay_s=0.005),
        overwrite=True,
    )
    yield
    backend_registry._REGISTRY.pop("scripted_good", None)
    backend_registry._REGISTRY.pop("scripted_bad", None)


def _toy_batch():
    """Three structure groups so routing has several shards to place."""
    return [ToyProblem(n) for n in (4, 5, 4, 6, 5, 4)]


def _fake_result(method: str, signature: str, objective: float, wall_time: float,
                 cache_hit: bool = False) -> SolveResult:
    return SolveResult(
        problem="toy",
        method=method,
        solution=(),
        objective=objective,
        wall_time=wall_time,
        info={"engine": {"signature": signature, "cache_hit": cache_hit}},
    )


class TestBackendScoreboard:
    def test_ewma_tracks_quality_and_latency(self):
        board = BackendScoreboard(alpha=0.5)
        for objective, wall in ((4.0, 0.2), (2.0, 0.1), (2.0, 0.1)):
            board.observe("b", "sig", objective, wall)
        stats = board.stats("b", "sig")
        assert stats.count == 3
        assert stats.quality == pytest.approx(2.5)   # 4 -> 3 -> 2.5
        assert stats.latency == pytest.approx(0.125)
        assert stats.best_objective == 2.0

    def test_cache_hits_never_skew_latency(self):
        board = BackendScoreboard(alpha=0.5)
        board.observe("b", "sig", 1.0, 0.2)
        board.observe("b", "sig", 1.0, 0.0, cache_hit=True)
        stats = board.stats("b", "sig")
        assert stats.latency == pytest.approx(0.2)  # the hit's wall time is ignored
        assert stats.cache_hits == 1 and stats.cache_hit_rate == 0.5

    def test_signature_fallback_to_backend_global(self):
        board = BackendScoreboard()
        board.observe("b", "sig-a", 3.0, 0.1)
        fallback = board.stats("b", "sig-never-seen")
        assert fallback is not None and fallback.quality == pytest.approx(3.0)

    def test_portfolio_feed_records_timeouts(self):
        board = BackendScoreboard()
        result = _fake_result("sa", "sig", 1.0, 0.1)
        result.info["portfolio"] = [
            {"method": "sa", "objective": 1.0, "wall_time": 0.1, "status": "completed"},
            {"method": "qaoa", "objective": math.nan, "wall_time": math.nan,
             "status": "deadline_exceeded"},
        ]
        result.info["portfolio_meta"] = {"deadline_s": 0.5}
        board.observe_portfolio(result, signature="sig")
        assert board.stats("sa", "sig").quality == pytest.approx(1.0)
        slow = board.stats("qaoa", "sig")
        assert slow.timeouts == 1
        assert slow.latency == pytest.approx(0.5)  # pessimistic floor at the deadline

    def test_error_contenders_are_no_longer_cold(self):
        """A backend that errored must not be re-prioritised as unseen on
        every subsequent routing decision — it ranks behind everyone that
        ever produced a result instead."""
        board = BackendScoreboard()
        result = _fake_result("sa", "sig", 1.0, 0.1)
        result.info["portfolio"] = [
            {"method": "sa", "objective": 1.0, "wall_time": 0.1, "status": "completed"},
            {"method": "flaky", "objective": math.nan, "wall_time": math.nan,
             "status": "error"},
        ]
        board.observe_portfolio(result, signature="sig")
        assert board.seen("flaky")
        assert board.stats("flaky", "sig").errors == 1
        scheduler = AdaptiveScheduler(epsilon=0.0, scoreboard=board)
        assert scheduler.rank("sig", ["flaky", "sa"]) == ["sa", "flaky"]

    def test_alpha_validated(self):
        with pytest.raises(ReproError, match="alpha"):
            BackendScoreboard(alpha=0.0)


class TestRouting:
    def _warmed(self, epsilon=0.0, **kwargs):
        """A scheduler that has seen both backends on signature "sig"."""
        scheduler = AdaptiveScheduler(epsilon=epsilon, seed=7, **kwargs)
        for _ in range(5):
            scheduler.scoreboard.observe("scripted_good", "sig", 0.0, 0.001)
            scheduler.scoreboard.observe("scripted_bad", "sig", 4.0, 0.05)
        return scheduler

    def test_cold_backends_sampled_first(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0)
        scheduler.scoreboard.observe("scripted_good", "sig", 0.0, 0.001)
        decision = scheduler.choose("sig", CANDIDATES)
        assert decision.backend == "scripted_bad" and decision.mode == "cold"

    def test_converges_to_better_backend(self):
        scheduler = self._warmed(epsilon=0.0)
        decisions = [scheduler.choose("sig", CANDIDATES) for _ in range(20)]
        assert all(d.backend == "scripted_good" for d in decisions)
        assert all(d.mode == "exploit" for d in decisions)

    def test_epsilon_still_samples_the_worse_backend(self):
        scheduler = self._warmed(epsilon=0.3)
        picks = [scheduler.choose("sig", CANDIDATES).backend for _ in range(300)]
        assert picks.count("scripted_bad") > 0       # exploration happens ...
        assert picks.count("scripted_good") > picks.count("scripted_bad")  # ... but greed wins

    def test_quality_tie_breaks_toward_lower_latency(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0)
        scheduler.scoreboard.observe("scripted_good", "sig", 1.0, 0.001)
        scheduler.scoreboard.observe("scripted_bad", "sig", 1.0, 0.5)
        assert scheduler.rank("sig", CANDIDATES)[0] == "scripted_good"

    def test_unknown_latency_is_not_treated_as_instantaneous(self):
        """Cache-hit-only observations leave latency NaN; deadline routing
        must not rank such a backend as deadline-feasible on faith."""
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0, deadline_s=0.01)
        # "bad" has quality but ONLY cache-hit observations (no latency).
        scheduler.scoreboard.observe("scripted_bad", "sig", 0.0, 0.0, cache_hit=True)
        scheduler.scoreboard.observe("scripted_good", "sig", 1.0, 0.001)
        assert math.isnan(scheduler.scoreboard.stats("scripted_bad", "sig").latency)
        # Worse quality but measured-and-feasible beats unknown-latency.
        assert scheduler.rank("sig", CANDIDATES)[0] == "scripted_good"
        # A real (uncached) observation restores normal quality ranking.
        scheduler.scoreboard.observe("scripted_bad", "sig", 0.0, 0.002)
        assert scheduler.rank("sig", CANDIDATES)[0] == "scripted_bad"

    def test_deadline_demotes_slow_but_never_starves(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0, deadline_s=0.01)
        # Better quality but way over deadline vs worse quality inside it.
        scheduler.scoreboard.observe("scripted_bad", "sig", 0.0, 5.0)
        scheduler.scoreboard.observe("scripted_good", "sig", 2.0, 0.001)
        assert scheduler.choose("sig", CANDIDATES).backend == "scripted_good"
        # Every candidate over the deadline: the fastest is still routed to.
        tight = AdaptiveScheduler(epsilon=0.0, seed=0, deadline_s=1e-9)
        tight.scoreboard.observe("scripted_bad", "sig", 0.0, 5.0)
        tight.scoreboard.observe("scripted_good", "sig", 0.0, 1.0)
        assert tight.choose("sig", CANDIDATES).backend == "scripted_good"

    def test_same_seed_same_history_same_decisions(self):
        a, b = self._warmed(epsilon=0.3), self._warmed(epsilon=0.3)
        assert [a.choose("sig", CANDIDATES).backend for _ in range(50)] == [
            b.choose("sig", CANDIDATES).backend for _ in range(50)
        ]

    def test_candidate_validation(self):
        scheduler = AdaptiveScheduler()
        with pytest.raises(ReproError, match="at least one"):
            scheduler.choose("sig", [])
        with pytest.raises(ReproError, match="registry name"):
            scheduler.choose("sig", [ScriptedBackend("x", 0)])
        with pytest.raises(ReproError, match="epsilon"):
            AdaptiveScheduler(epsilon=1.5)
        with pytest.raises(ReproError, match="race_top_k"):
            AdaptiveScheduler(race_top_k=0)


class TestScheduledBatch:
    def test_batch_routes_every_shard_and_converges(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3)
        # Warmup batches sample both backends (cold-first), then exploit.
        for _ in range(3):
            results = repro.solve_many(
                _toy_batch(), backend=CANDIDATES, scheduler=scheduler, seed=11
            )
            assert all(r is not None for r in results)
        final = repro.solve_many(
            _toy_batch(), backend=CANDIDATES, scheduler=scheduler, seed=11
        )
        assert all(r.scheduled_backend == "scripted_good" for r in final)
        assert all(r.engine["scheduler"]["mode"] == "exploit" for r in final)
        assert all(r.objective == 0.0 for r in final)

    def test_deadline_routing_never_starves_a_shard(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3, deadline_s=1e-9)
        for _ in range(2):
            results = solve_batch_scheduled(
                _toy_batch(), CANDIDATES, scheduler, seed=11
            )
        # Nothing can meet a nanosecond deadline, yet every shard still ran.
        assert all(r is not None and r.solution is not None for r in results)
        assert len(results) == len(_toy_batch())

    def test_scheduled_batch_deterministic_across_executors(self):
        def run(executor):
            scheduler = AdaptiveScheduler(epsilon=0.1, seed=5)
            out = []
            for _ in range(2):
                out.append([
                    (r.objective, r.method)
                    for r in solve_batch_scheduled(
                        _toy_batch(), CANDIDATES, scheduler, seed=11, executor=executor
                    )
                ])
            return out

        assert run("serial") == run("threads") == run("async")

    def test_mixed_routing_dispatches_as_one_wave(self):
        """Shards routed to different backends must reach the executor in a
        single run call, not one sequential wave per backend."""
        from repro.engine import Executor

        class CountingExecutor(Executor):
            name = "counting"

            def __init__(self):
                self.calls = []

            def run(self, worker, payloads):
                self.calls.append(len(payloads))
                return [worker(p) for p in payloads]

        from repro.api.problem import qubo_signature

        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0)
        # Warm the scoreboard so exploitation splits the batch: "good" wins
        # the n=4 and n=6 structures, "bad" wins n=5.
        signatures = {
            n: signature_key(qubo_signature(ToyProblem(n).to_qubo())) for n in (4, 5, 6)
        }
        for n, winner in ((4, "scripted_good"), (5, "scripted_bad"), (6, "scripted_good")):
            loser = "scripted_bad" if winner == "scripted_good" else "scripted_good"
            scheduler.scoreboard.observe(winner, signatures[n], 0.0, 0.001)
            scheduler.scoreboard.observe(loser, signatures[n], 5.0, 0.001)
        counting = CountingExecutor()
        results = solve_batch_scheduled(
            _toy_batch(), CANDIDATES, scheduler, seed=11, executor=counting
        )
        assert {r.scheduled_backend for r in results} == set(CANDIDATES)
        assert len(counting.calls) == 1  # one dispatch wave for both backends

    def test_seeds_match_unscheduled_compilation(self):
        """Routing must not perturb the compiled child seeds."""
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3)
        scheduled = solve_batch_scheduled(_toy_batch(), CANDIDATES, scheduler, seed=11)
        plain = repro.solve_many(_toy_batch(), backend="scripted_good", seed=11)
        assert [r.engine["seed"] for r in scheduled] == [r.engine["seed"] for r in plain]

    def test_backend_opts_validated(self):
        scheduler = AdaptiveScheduler()
        with pytest.raises(ReproError, match="no candidate backend"):
            solve_batch_scheduled(
                _toy_batch(), CANDIDATES, scheduler, backend_opts={"sa": {}}
            )

    def test_facade_rejects_sequence_without_scheduler(self):
        with pytest.raises(ReproError, match="scheduler"):
            repro.solve_many(_toy_batch(), backend=CANDIDATES, seed=1)


class TestScheduledPortfolio:
    def test_route_then_race_top_k(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3, race_top_k=1)
        # With k=1 each round races one backend: two cold-sampling rounds
        # (one per candidate), then the scoreboard exploits.
        for _ in range(3):
            result = run_portfolio_scheduled(ToyProblem(4), CANDIDATES, scheduler, seed=5)
        meta = result.info["portfolio_meta"]["scheduler"]
        assert meta["ranked"][0] == "scripted_good"
        assert meta["raced"] == ["scripted_good"]
        assert result.method == "scripted_good" and result.objective == 0.0
        sig = signature_key((4, ((0, 1), (1, 2), (2, 3))))
        assert meta["signature"] == sig

    def test_scoreboard_fed_by_raced_contenders(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3, race_top_k=2)
        run_portfolio_scheduled(ToyProblem(4), CANDIDATES, scheduler, seed=5)
        assert scheduler.scoreboard.seen("scripted_good")
        assert scheduler.scoreboard.seen("scripted_bad")

    def test_facade_scheduler_path(self):
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3)
        result = repro.solve_portfolio(
            ToyProblem(4), backends=CANDIDATES, seed=5, scheduler=scheduler
        )
        assert "scheduler" in result.info["portfolio_meta"]
