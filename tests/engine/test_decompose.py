"""The qbsolv-style decomposer: partition -> clamp -> batch-solve -> stitch.

Small instances and small capacities throughout — the decomposer's
correctness properties (coverage, clamp algebra, monotone energy, facade
auto-trigger) don't need large problems, and brute-force sub-solves grow as
``2^capacity``.
"""

import numpy as np
import pytest

from repro.api.adapters import RawQuboProblem, as_problem
from repro.api.backends import BruteForceBackend
from repro.api.facade import solve
from repro.engine import clamp_subqubo, partition_variables, solve_decomposed
from repro.exceptions import ReproError
from repro.qubo.model import QuboModel


def _clustered_model(n=24, k=8, seed=0):
    """Strong intra-cluster couplings, sparse weak inter-cluster ones."""
    rng = np.random.default_rng(seed)
    m = QuboModel(num_variables=n)
    for c in range(n // k):
        base = c * k
        ii, jj = np.triu_indices(k, k=1)
        mask = rng.random(ii.size) < 0.5
        m.add_quadratic_from(
            base + ii[mask], base + jj[mask], rng.normal(0, 2.0, int(mask.sum()))
        )
    m.add_linear_from(np.arange(n), rng.normal(0, 1.0, n))
    edges = rng.integers(0, n, size=(12, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    m.add_quadratic_from(edges[:, 0], edges[:, 1], rng.normal(0, 0.2, len(edges)))
    return m


class TestPartition:
    def test_covers_every_variable_exactly_once(self):
        model = _clustered_model()
        blocks = partition_variables(model, capacity=8)
        flat = np.concatenate(blocks)
        assert sorted(flat.tolist()) == list(range(model.num_variables))
        assert all(len(b) <= 8 for b in blocks)

    def test_keeps_clusters_together(self):
        # With capacity == cluster size and negligible inter-cluster edges,
        # BFS from each cluster's lowest index should recover the clusters.
        model = QuboModel(num_variables=12)
        for base in (0, 4, 8):
            ii, jj = np.triu_indices(4, k=1)
            model.add_quadratic_from(base + ii, base + jj, 1.0)
        blocks = partition_variables(model, capacity=4)
        assert [b.tolist() for b in blocks] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11],
        ]

    def test_deterministic(self):
        model = _clustered_model(seed=3)
        first = partition_variables(model, capacity=7)
        second = partition_variables(model, capacity=7)
        assert [b.tolist() for b in first] == [b.tolist() for b in second]

    def test_overlap_extends_without_breaking_coverage(self):
        model = _clustered_model()
        blocks = partition_variables(model, capacity=8, overlap=2)
        assert all(len(b) <= 8 for b in blocks)
        # Every variable still appears; later blocks may repeat earlier vars.
        assert set(np.concatenate(blocks).tolist()) == set(range(24))

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            partition_variables(_clustered_model(), capacity=0)
        with pytest.raises(ReproError):
            solve_decomposed(
                as_problem(_clustered_model()), BruteForceBackend(), capacity=0
            )


class TestClamp:
    def test_clamp_energy_algebra(self):
        # For fixed outside bits, the sub-QUBO's energy must track the global
        # energy up to a constant: E_global(x with block bits = y) differs
        # from E_sub(y) by the same constant for every y.
        model = _clustered_model(n=12, k=4, seed=1)
        block = np.array([2, 5, 7, 10], dtype=np.int64)
        rng = np.random.default_rng(9)
        x = rng.integers(0, 2, size=12).astype(float)
        sub = clamp_subqubo(model, block, x)
        offsets = set()
        for bits in range(16):
            y = np.array([(bits >> k) & 1 for k in range(4)], dtype=float)
            full = x.copy()
            full[block] = y
            e_global = model.energies(full[np.newaxis, :])[0]
            e_sub = sub.energies(y[np.newaxis, :])[0]
            offsets.add(round(float(e_global - e_sub), 9))
        assert len(offsets) == 1

    def test_precomputed_couplings_match(self):
        model = _clustered_model(n=10, k=5, seed=2)
        block = np.arange(5, dtype=np.int64)
        x = np.ones(10)
        a, S = model.symmetric_couplings()
        direct = clamp_subqubo(model, block, x)
        shared = clamp_subqubo(model, block, x, a=a, S=S)
        assert direct.fingerprint() == shared.fingerprint()


class TestSolveDecomposed:
    def test_matches_direct_solve_on_block_diagonal_instance(self):
        # With no inter-cluster couplings and capacity == cluster size, the
        # partition recovers the clusters and brute-forcing each block is
        # globally exact — the decomposer must match or beat any direct solve.
        rng = np.random.default_rng(4)
        model = QuboModel(num_variables=24)
        for base in range(0, 24, 8):
            ii, jj = np.triu_indices(8, k=1)
            model.add_quadratic_from(base + ii, base + jj, rng.normal(0, 2.0, ii.size))
        model.add_linear_from(np.arange(24), rng.normal(0, 1.0, 24))
        decomposed = solve_decomposed(
            as_problem(model.copy()), BruteForceBackend(max_variables=8),
            capacity=8, seed=7,
        )
        direct = solve(as_problem(model.copy()), backend="tabu", seed=7)
        assert decomposed.objective <= direct.objective + 1e-9

    def test_energy_trajectory_is_monotone_and_consistent(self):
        model = _clustered_model(seed=5)
        result = solve_decomposed(
            as_problem(model.copy()), BruteForceBackend(max_variables=8),
            capacity=8, seed=1,
        )
        info = result.info["decompose"]
        trajectory = info["energy_trajectory"]
        assert trajectory == sorted(trajectory, reverse=True)
        # Final reported energy is the true model energy of the solution.
        bits = np.array(result.solution, dtype=float)
        assert result.energy == pytest.approx(
            float(model.energies(bits[np.newaxis, :])[0])
        )
        assert info["capacity"] == 8
        assert info["num_blocks"] == len(info["block_sizes"])
        assert info["rounds"][-1]["accepted_blocks"] == 0

    def test_deterministic_for_fixed_seed(self):
        model = _clustered_model(seed=6)
        runs = [
            solve_decomposed(
                as_problem(model.copy()), BruteForceBackend(max_variables=6),
                capacity=6, seed=42,
            )
            for _ in range(2)
        ]
        assert runs[0].solution == runs[1].solution
        assert runs[0].objective == runs[1].objective


class TestFacadeWiring:
    def test_auto_trigger_uses_backend_capacity(self):
        model = _clustered_model(n=18, k=6, seed=7)
        result = solve(
            as_problem(model), backend=BruteForceBackend(max_variables=6),
            seed=3, decompose=True,
        )
        info = result.info["decompose"]
        assert info["capacity"] == 6
        assert all(size <= 6 for size in info["block_sizes"])

    def test_explicit_integer_capacity(self):
        model = _clustered_model(n=18, k=6, seed=8)
        result = solve(as_problem(model), backend="tabu", seed=3, decompose=6)
        assert result.info["decompose"]["capacity"] == 6

    def test_inactive_when_backend_is_unbounded(self):
        model = _clustered_model(n=12, k=4, seed=9)
        result = solve(as_problem(model), backend="tabu", seed=3, decompose=True)
        assert "decompose" not in result.info

    def test_inactive_when_problem_fits(self):
        model = _clustered_model(n=12, k=4, seed=10)
        result = solve(as_problem(model), backend="tabu", seed=3, decompose=64)
        assert "decompose" not in result.info

    def test_oversized_bruteforce_without_decompose_still_errors(self):
        model = _clustered_model(n=18, k=6, seed=11)
        with pytest.raises(ReproError):
            solve(as_problem(model), backend=BruteForceBackend(max_variables=6), seed=3)


class TestRawQuboProblem:
    def test_round_trip_and_energy(self):
        model = _clustered_model(n=8, k=4, seed=12)
        problem = RawQuboProblem(model)
        assert problem.to_qubo() is model
        bits = (0, 1) * 4
        assert problem.evaluate(bits) == pytest.approx(
            model.energy(np.array(bits, dtype=float))
        )

    def test_as_problem_accepts_bare_model(self):
        problem = as_problem(QuboModel(3))
        assert isinstance(problem, RawQuboProblem)
