"""Planner: fingerprints, sharding, seed assignment, backend specs."""

import numpy as np
import pytest

from repro.api import MQOAdapter, get_backend
from repro.api.adapters import as_problems
from repro.engine import compile_plan
from repro.exceptions import ReproError
from repro.mqo import generate_mqo_problem
from repro.qubo.model import QuboModel


def _mqo(rng):
    return MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=rng))


class TestFingerprint:
    def _model(self, order=False):
        m = QuboModel(3)
        terms = [(0, 1.5), (2, -0.5)]
        quads = [((0, 1), 2.0), ((1, 2), -1.0)]
        if order:
            terms, quads = terms[::-1], quads[::-1]
        for i, c in terms:
            m.add_linear(i, c)
        for (i, j), c in quads:
            m.add_quadratic(i, j, c)
        m.add_offset(0.25)
        return m

    def test_insertion_order_invariant(self):
        assert self._model().fingerprint() == self._model(order=True).fingerprint()

    def test_coefficient_change_changes_fingerprint(self):
        other = self._model()
        other.add_linear(0, 1e-9)
        assert other.fingerprint() != self._model().fingerprint()

    def test_labels_distinguish_unless_excluded(self):
        a, b = QuboModel(), QuboModel()
        a.variable("x")
        b.variable("y")
        a.add_linear("x", 1.0)
        b.add_linear("y", 1.0)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint(include_labels=False) == b.fingerprint(include_labels=False)

    def test_zero_coefficients_dropped(self):
        a = self._model()
        b = self._model()
        b.add_quadratic(0, 2, 0.0)
        assert a.fingerprint() == b.fingerprint()

    def test_stable_bytes_roundtrip_stability(self):
        m = self._model()
        assert m.to_stable_bytes() == m.copy().to_stable_bytes()


class TestCompilePlan:
    def test_shards_group_by_structure(self):
        # Two copies of one structure + one distinct structure -> 2 shards.
        problems = [_mqo(1), _mqo(1), _mqo(5)]
        plan = compile_plan(problems, "sa", seed=0)
        shards = plan.shards()
        assert plan.num_shards == 2
        assert [len(s) for s in shards] == [2, 1]
        assert shards[0][0].fingerprint != shards[1][0].fingerprint

    def test_seed_assignment_is_batch_order_stable(self):
        problems = [_mqo(1), _mqo(5), _mqo(1)]
        a = compile_plan(problems, "sa", seed=42)
        b = compile_plan(list(problems), "sa", seed=42)
        assert [i.seed for i in a.items] == [i.seed for i in b.items]
        # Seeds depend on batch position, not on sharding.
        solo = compile_plan(problems[:1], "sa", seed=42)
        assert solo.items[0].seed == a.items[0].seed

    def test_max_shard_size_splits_groups(self):
        problems = [_mqo(1)] * 4
        plan = compile_plan(problems, "sa", seed=0, max_shard_size=2)
        assert plan.num_shards == 2
        assert sorted(len(s) for s in plan.shards()) == [2, 2]
        with pytest.raises(ReproError, match="max_shard_size"):
            compile_plan(problems, "sa", seed=0, max_shard_size=0)

    def test_cache_keys_depend_on_shard_history(self):
        plan = compile_plan([_mqo(1), _mqo(1)], "sa", seed=0)
        leader, follower = plan.shards()[0]
        assert leader.cache_key != follower.cache_key
        # Same batch recompiled -> identical keys (content-addressed).
        again = compile_plan([_mqo(1), _mqo(1)], "sa", seed=0)
        assert [i.cache_key for i in plan.items] == [i.cache_key for i in again.items]

    def test_instance_backend_disables_caching(self):
        backend = get_backend("sa", num_reads=4, num_sweeps=40)
        plan = compile_plan([_mqo(1)], backend, seed=0)
        assert not plan.cacheable
        assert plan.items[0].cache_key is None
        with pytest.raises(ReproError, match="backend_opts"):
            compile_plan([_mqo(1)], backend, seed=0, backend_opts={"num_reads": 2})

    def test_instance_backend_rejects_shard_splitting(self):
        # Split shards sharing one live instance would be scheduling-dependent.
        backend = get_backend("sa", num_reads=4, num_sweeps=40)
        with pytest.raises(ReproError, match="by name"):
            compile_plan([_mqo(1)] * 4, backend, seed=0, max_shard_size=2)

    def test_direct_backend_flag(self):
        assert compile_plan([_mqo(1)], "classical", seed=0).direct
        assert not compile_plan([_mqo(1)], "sa", seed=0).direct


class TestAsProblems:
    def test_batch_coercion_tags_position(self):
        with pytest.raises(ReproError, match="batch item 1"):
            as_problems([generate_mqo_problem(2, 2, rng=0), object()])

    def test_batch_coercion_wraps_raw_objects(self):
        problems = as_problems([generate_mqo_problem(2, 2, rng=0)])
        assert problems[0].name == "mqo"
