"""EngineStore: durable scoreboard round-trips, shared cache tier, concurrency.

The determinism bar mirrors the engine's: a fresh scheduler hydrated from
the store must make the same routing decisions as the long-lived instance
that produced it — across serial / threads / processes / async executors —
and two processes hammering one store file must never corrupt it.
"""

import math
import multiprocessing
import shutil

import pytest

import repro
from repro.api import MQOAdapter
from repro.engine import (
    AdaptiveScheduler,
    BackendScoreboard,
    EngineStore,
    ResultCache,
    engine_store,
    resolve_store,
    store_bound_cache,
)
from repro.engine.store import STORE_ENV_VAR
from repro.exceptions import ReproError
from repro.mqo import generate_mqo_problem

FAST_SA = dict(num_reads=4, num_sweeps=40)
CANDIDATES = ("sa", "tabu", "bruteforce")
CANDIDATE_OPTS = {"sa": FAST_SA, "tabu": {"num_restarts": 2}}


def _mqo(rng):
    return MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=rng))


def _batch():
    """Four items over three structure groups (rng 1 appears twice)."""
    return [_mqo(r) for r in (1, 2, 1, 3)]


def assert_stats_equal(a: dict, b: dict):
    """Pairwise BackendStats equality with NaN-aware float comparison."""
    assert set(a) == set(b)
    for key in a:
        da, db = a[key].as_dict(), b[key].as_dict()
        for field in da:
            va, vb = da[field], db[field]
            if isinstance(va, float) and math.isnan(va):
                assert isinstance(vb, float) and math.isnan(vb), (key, field)
            else:
                assert va == vb, (key, field)


# -- module-level workers (pickled into forked processes) --------------------


def _hammer_store(args):
    """One writer process: interleave scoreboard batches and cache upserts."""
    path, worker_id, rounds = args
    store = EngineStore(path)
    for i in range(rounds):
        store.scoreboard.record(
            [("observe", "sa", "sig-shared", float(i % 3), 0.01, False)]
        )
        store.cache.put(f"key-{worker_id}-{i}", b"x" * 64, signature="sig-shared")
    return worker_id


def _cold_process_decisions(args):
    """A cold process: hydrate a fresh scheduler from the store and route."""
    path, candidates, signatures = args
    scheduler = AdaptiveScheduler(epsilon=0.0, seed=0, store=path)
    return [scheduler.choose(sig, list(candidates)).backend for sig in signatures]


@pytest.fixture
def fork_pool():
    context = multiprocessing.get_context("fork")
    pool = context.Pool(2)
    yield pool
    pool.close()
    pool.join()


# -- scoreboard facet --------------------------------------------------------


class TestScoreboardStore:
    def test_single_writer_round_trip_is_exact(self, tmp_path):
        """Replay-based recording: the stored statistics are byte-identical
        to the live scoreboard's, including NaN/inf edge fields."""
        store = EngineStore(tmp_path / "engine.db")
        board = BackendScoreboard(alpha=0.5, store=store)
        board.observe("sa", "sig-a", 4.0, 0.2)
        board.observe("sa", "sig-a", 2.0, 0.1)
        board.observe("sa", "sig-a", 2.0, 0.0, cache_hit=True)  # latency untouched
        board.observe("tabu", None, 1.0, 0.05)
        # Timeout with a deadline floor and an error, via the portfolio feed.
        from repro.api.result import SolveResult

        result = SolveResult(
            problem="toy", method="sa", solution=(), objective=1.0, wall_time=0.1,
            info={
                "portfolio": [
                    {"method": "sa", "objective": 1.0, "wall_time": 0.1,
                     "status": "completed"},
                    {"method": "qaoa", "objective": math.nan, "wall_time": math.nan,
                     "status": "deadline_exceeded"},
                    {"method": "flaky", "objective": math.nan, "wall_time": math.nan,
                     "status": "error"},
                ],
                "portfolio_meta": {"deadline_s": 0.5},
            },
        )
        board.observe_portfolio(result, signature="sig-a")
        assert board.flush() > 0

        hydrated = BackendScoreboard(alpha=0.5, store=EngineStore(tmp_path / "engine.db"))
        assert_stats_equal(hydrated._stats, board._stats)
        # The error contender is durable knowledge too: not cold, ranked last.
        assert hydrated.seen("flaky")
        assert hydrated.stats("qaoa", "sig-a").timeouts == 1
        assert hydrated.stats("qaoa", "sig-a").latency == pytest.approx(0.5)

    def test_flush_is_idempotent_and_unbound_is_a_noop(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        board = BackendScoreboard(store=store)
        board.observe("sa", "sig", 1.0, 0.1)
        assert board.flush() == 1
        assert board.flush() == 0  # pending drained; nothing double-counts
        assert store.scoreboard.load()[("sa", "sig")].count == 1
        assert BackendScoreboard().flush() == 0  # no store bound

    def test_rebinding_a_different_store_is_rejected(self, tmp_path):
        board = BackendScoreboard(store=EngineStore(tmp_path / "a.db"))
        board.bind_store(EngineStore(tmp_path / "a.db").path)  # same path: no-op
        with pytest.raises(ReproError, match="different EngineStore"):
            board.bind_store(EngineStore(tmp_path / "b.db"))

    def test_hydration_never_overwrites_live_stats(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        store.scoreboard.record([("observe", "sa", "sig", 9.0, 9.0, False)])
        board = BackendScoreboard()
        board.observe("sa", "sig", 1.0, 0.1)
        board.bind_store(store)
        assert board.stats("sa", "sig").quality == pytest.approx(1.0)  # live wins
        assert board.stats("tabu", "sig") is None

    def test_unknown_observation_kind_rejected(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        with pytest.raises(ReproError, match="observation kind"):
            store.scoreboard.record([("bogus", "sa", "sig")])

    def test_validation(self, tmp_path):
        with pytest.raises(ReproError, match="cache_budget_bytes"):
            EngineStore(tmp_path / "x.db", cache_budget_bytes=0)
        with pytest.raises(ReproError, match="alpha"):
            EngineStore(tmp_path / "x.db", alpha=1.5)


# -- shared cache tier -------------------------------------------------------


class TestSharedCacheTier:
    def test_upsert_get_touch_and_contains(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        store.cache.put("k", b"one", signature="sig")
        store.cache.put("k", b"two", signature="sig")  # atomic overwrite
        assert store.cache.get("k") == b"two"
        assert "k" in store.cache and "missing" not in store.cache
        assert len(store.cache) == 1
        assert store.cache.get("missing") is None

    def test_lru_by_last_access_eviction_under_byte_budget(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db", cache_budget_bytes=100)
        store.cache.put("a", b"a" * 40)
        store.cache.put("b", b"b" * 40)
        assert store.cache.get("a") == b"a" * 40  # touch: "b" is now stalest
        store.cache.put("c", b"c" * 40)           # 120 bytes > 100: evict LRU
        assert "b" not in store.cache             # the untouched entry went
        assert "a" in store.cache and "c" in store.cache
        assert store.cache.total_bytes() <= 100

    def test_eviction_never_drops_the_entry_just_written(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db", cache_budget_bytes=10)
        store.cache.put("big", b"z" * 64)  # alone over budget: still kept
        assert store.cache.get("big") == b"z" * 64

    def test_corrupt_blob_is_a_miss_and_heals(self, tmp_path):
        """The crash-mid-write bar of the disk tier, restated for SQLite:
        a damaged blob must read as a miss, be evicted, and the slot heal."""
        store = EngineStore(tmp_path / "engine.db")
        cache = ResultCache(store=store)
        cache.put("k", {"payload": list(range(100))}, signature="sig")
        with store._connection() as conn:  # corrupt the blob in place
            blob = conn.execute("SELECT blob FROM results WHERE key='k'").fetchone()[0]
            conn.execute("UPDATE results SET blob=? WHERE key='k'", (blob[: len(blob) // 2],))
        reader = ResultCache(store=EngineStore(tmp_path / "engine.db"))
        assert reader.get("k") is None
        assert "k" not in store.cache  # evicted from the durable tier
        reader.put("k", "fresh")
        assert reader.get("k") == "fresh"

    def test_result_cache_reads_through_and_promotes(self, tmp_path):
        writer = ResultCache(store=EngineStore(tmp_path / "engine.db"))
        writer.put("k", 42, signature="sig")
        reader = ResultCache(store=EngineStore(tmp_path / "engine.db"))
        assert reader.get("k") == 42
        assert reader.stats["store_hits"] == 1
        # Promoted into memory: a second get does not need the store.
        reader.store.evict("k")
        assert reader.get("k") == 42
        assert reader.stats == {"hits": 2, "misses": 0, "store_hits": 1, "entries": 1}

    def test_prefetch_warms_memory_by_signature(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        writer = ResultCache(store=store)
        writer.put("k1", "one", signature="sig-a")
        writer.put("k2", "two", signature="sig-a")
        writer.put("k3", "three", signature="sig-b")
        fresh = ResultCache(store=store)
        assert fresh.prefetch("sig-a") == 2
        assert fresh.prefetch("sig-missing") == 0
        assert ResultCache().prefetch("sig-a") == 0  # no tier: no-op
        # Warmed entries serve from memory even after the tier loses them.
        store.cache.evict("k1"), store.cache.evict("k2")
        assert fresh.get("k1") == "one" and fresh.get("k2") == "two"
        # Staging never counted as hits/misses; the two gets did.
        assert fresh.stats["hits"] == 2 and fresh.stats["store_hits"] == 0


# -- resolution & facade wiring ----------------------------------------------


class TestResolution:
    def test_resolve_store_spellings(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        store = EngineStore(tmp_path / "engine.db")
        assert resolve_store(store) is store
        by_path = resolve_store(tmp_path / "engine.db")
        assert isinstance(by_path, EngineStore)
        assert resolve_store(str(tmp_path / "engine.db")) is by_path  # memoised
        assert engine_store(tmp_path / "engine.db") is by_path
        with pytest.raises(ReproError, match="store must be"):
            resolve_store(123)

    def test_repro_store_env_variable(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env.db"))
        resolved = resolve_store(None)
        assert isinstance(resolved, EngineStore)
        assert resolved.path == (tmp_path / "env.db").resolve()
        assert resolve_store(False) is None  # explicit off beats the env
        # The facade path picks the env store up with no store= argument.
        result = repro.solve(_mqo(1), backend="sa", seed=9, **FAST_SA)
        assert resolved.scoreboard.load()[("sa", None)].count == 1
        again = repro.solve(_mqo(1), backend="sa", seed=9, **FAST_SA)
        assert again.cache_hit and again.objective == result.objective

    def test_store_bound_cache_attaches_only_for_the_call(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        with store_bound_cache(None, None) as none:
            assert none is None
        with store_bound_cache(None, store) as built:
            assert isinstance(built, ResultCache) and built.store is store.cache
        mine = ResultCache()
        with store_bound_cache(mine, store) as bound:
            assert bound is mine and mine.store is store.cache
        assert mine.store is None  # detached: later calls cannot leak writes
        # ... so the same cache can serve a different store next call.
        other = EngineStore(tmp_path / "other.db")
        with store_bound_cache(mine, other) as bound:
            assert bound.store is other.cache
        # A cache *constructed* around a store is permanently bound.
        owned = ResultCache(store=store)
        with pytest.raises(ReproError, match="different EngineStore"):
            with store_bound_cache(owned, other):
                pass  # pragma: no cover - the bind itself raises

    def test_solve_with_store_never_leaks_into_later_calls(self, tmp_path):
        """A store= call must not leave the process-global cache writing to
        that store after the call returns."""
        store = EngineStore(tmp_path / "engine.db")
        repro.solve(_mqo(1), backend="sa", seed=9, cache=True, store=store, **FAST_SA)
        entries_after_store_call = len(store.cache)
        repro.solve(_mqo(2), backend="sa", seed=9, cache=True, **FAST_SA)  # no store
        assert len(store.cache) == entries_after_store_call


class TestFacadeIntegration:
    def test_solve_many_records_and_shares_across_sessions(self, tmp_path):
        problems = _batch()
        cold = repro.solve_many(
            problems, backend="sa", seed=11, store=EngineStore(tmp_path / "engine.db"),
            **FAST_SA,
        )
        assert all(not r.cache_hit for r in cold)
        # A "new session": fresh store handle, fresh (per-call) caches.
        session2 = EngineStore(tmp_path / "engine.db")
        warm = repro.solve_many(problems, backend="sa", seed=11, store=session2, **FAST_SA)
        assert all(r.cache_hit for r in warm)
        assert [r.objective for r in warm] == [r.objective for r in cold]
        # Both batches recorded at their boundaries: 8 observations total.
        stats = session2.scoreboard.load()[("sa", None)]
        assert stats.count == 2 * len(problems)
        assert stats.cache_hits == len(problems)
        summary = session2.stats()
        assert summary["cache_entries"] == len(problems)
        assert 0 < summary["cache_bytes"] <= summary["cache_budget_bytes"]
        assert summary["scoreboard_pairs"] == len(session2.scoreboard.load())

    def test_portfolio_records_contenders(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        repro.solve_portfolio(
            _mqo(1), backends=CANDIDATES, seed=5, backend_opts=CANDIDATE_OPTS, store=store
        )
        loaded = store.scoreboard.load()
        for name in CANDIDATES:
            assert loaded[(name, None)].count == 1

    def test_scheduled_portfolio_hydrates_and_flushes(self, tmp_path):
        store = EngineStore(tmp_path / "engine.db")
        scheduler = AdaptiveScheduler(
            epsilon=0.0, seed=3, race_top_k=len(CANDIDATES), store=store
        )
        repro.solve_portfolio(
            _mqo(1), backends=CANDIDATES, seed=5, backend_opts=CANDIDATE_OPTS,
            scheduler=scheduler,
        )
        fresh = AdaptiveScheduler(epsilon=0.0, seed=3, store=store)
        assert_stats_equal(fresh.scoreboard._stats, scheduler.scoreboard._stats)

    def test_scheduled_portfolio_records_each_contender_once(self, tmp_path, monkeypatch):
        """With REPRO_STORE set, the scheduled path must not record through
        both run_portfolio and the scoreboard flush (the double-count would
        break the exact round-trip)."""
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env.db"))
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=3, race_top_k=len(CANDIDATES))
        repro.solve_portfolio(
            _mqo(1), backends=CANDIDATES, seed=5, backend_opts=CANDIDATE_OPTS,
            scheduler=scheduler,
        )
        loaded = resolve_store(None).scoreboard.load()
        for name in CANDIDATES:
            assert loaded[(name, None)].count == 1, name

    def test_store_false_keeps_a_bound_scheduler_off_the_record(self, tmp_path):
        """store=False is 'off for this call' even after an earlier call
        bound the scheduler's scoreboard to a store."""
        store = EngineStore(tmp_path / "engine.db")
        scheduler = AdaptiveScheduler(epsilon=0.0, seed=0, store=store)
        repro.solve_many(
            _batch(), backend=CANDIDATES, scheduler=scheduler, seed=11, store=store,
            **CANDIDATE_OPTS,
        )
        recorded = store.scoreboard.load()
        off = repro.solve_many(
            _batch(), backend=CANDIDATES, scheduler=scheduler, seed=11, store=False,
            **CANDIDATE_OPTS,
        )
        assert all(r is not None for r in off)
        assert_stats_equal(store.scoreboard.load(), recorded)  # nothing flushed
        # ... and the discarded delta does not resurface on the next flush.
        repro.solve_many(
            _batch(), backend=CANDIDATES, scheduler=scheduler, seed=11, store=store,
            **CANDIDATE_OPTS,
        )
        total = sum(s.count for (b, sig), s in store.scoreboard.load().items() if sig is None)
        assert total == 2 * len(_batch())


# -- the determinism bar -----------------------------------------------------


class TestHydratedRoutingDeterminism:
    def _warm(self, path):
        """Measure every candidate (portfolio per structure), then route a
        batch — all durable."""
        store = EngineStore(path)
        scheduler = AdaptiveScheduler(
            epsilon=0.0, seed=0, race_top_k=len(CANDIDATES), store=store
        )
        for rng in (1, 2, 3):
            repro.solve_portfolio(
                _mqo(rng), backends=CANDIDATES, seed=5, backend_opts=CANDIDATE_OPTS,
                scheduler=scheduler,
            )
        repro.solve_many(
            _batch(), backend=CANDIDATES, scheduler=scheduler, seed=11, store=store,
            **CANDIDATE_OPTS,
        )
        return store, scheduler

    def test_fresh_scheduler_routes_like_long_lived_across_executors(self, tmp_path):
        store, long_lived = self._warm(tmp_path / "engine.db")
        store.checkpoint()  # fold the WAL so the file can be copied
        copies = {}
        for executor in ("serial", "threads", "processes", "async"):
            copy = tmp_path / f"engine-{executor}.db"
            shutil.copy(store.path, copy)
            copies[executor] = copy

        def fingerprint(results):
            return [
                (r.method, r.objective, r.engine["scheduler"]["mode"]) for r in results
            ]

        reference = fingerprint(
            repro.solve_many(
                _batch(), backend=CANDIDATES, scheduler=long_lived, seed=11,
                store=store, **CANDIDATE_OPTS,
            )
        )
        assert all(mode == "exploit" for _, _, mode in reference)  # warm from step one
        for executor, copy in copies.items():
            fresh = AdaptiveScheduler(epsilon=0.0, seed=0, store=EngineStore(copy))
            routed = repro.solve_many(
                _batch(), backend=CANDIDATES, scheduler=fresh, seed=11,
                executor=executor, store=EngineStore(copy), **CANDIDATE_OPTS,
            )
            assert fingerprint(routed) == reference, executor

    def test_cold_process_routes_like_the_writer(self, tmp_path, fork_pool):
        store, long_lived = self._warm(tmp_path / "engine.db")
        plan = repro.compile_plan(_batch(), CANDIDATES[0])
        signatures = plan.meta["shard_signatures"]
        parent = [
            long_lived.choose(sig, list(CANDIDATES)).backend for sig in signatures
        ]
        child = fork_pool.map(
            _cold_process_decisions, [(str(store.path), CANDIDATES, signatures)]
        )[0]
        assert child == parent

    def test_warm_batch_prefetches_and_hits_the_shared_tier(self, tmp_path):
        store, _ = self._warm(tmp_path / "engine.db")
        cache = ResultCache(store=store)
        fresh = AdaptiveScheduler(epsilon=0.0, seed=0, store=store)
        warm = repro.solve_many(
            _batch(), backend=CANDIDATES, scheduler=fresh, seed=11, store=store,
            cache=cache, **CANDIDATE_OPTS,
        )
        assert all(r.cache_hit for r in warm)
        # The hits were staged by prefetch, not read one-by-one from SQLite.
        assert cache.stats["hits"] == len(_batch())
        assert cache.stats["store_hits"] == 0


class TestConcurrentWriters:
    def test_two_processes_never_corrupt_the_store(self, tmp_path, fork_pool):
        """Concurrent scoreboard batches and cache upserts against one file:
        SQLite serialises them; counts merge by observation count."""
        path = str(tmp_path / "engine.db")
        EngineStore(path)  # schema exists before the writers race
        rounds = 25
        assert sorted(
            fork_pool.map(_hammer_store, [(path, 0, rounds), (path, 1, rounds)])
        ) == [0, 1]
        store = EngineStore(path)
        assert store.integrity_ok()
        loaded = store.scoreboard.load()
        assert loaded[("sa", "sig-shared")].count == 2 * rounds
        assert loaded[("sa", None)].count == 2 * rounds
        assert len(store.cache) == 2 * rounds
        for worker in (0, 1):
            for i in range(rounds):
                assert store.cache.get(f"key-{worker}-{i}") == b"x" * 64
