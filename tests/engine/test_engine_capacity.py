"""Scoreboard capacity snapshots and explicit batch seeds.

Two seams the service tier stands on:

* :meth:`BackendScoreboard.capacity_snapshot` — the per-backend read model
  behind ``/metrics`` and ``/readyz`` (and the seam a future admission
  controller will consume);
* ``seeds=`` on :func:`compile_plan` / the batch entry points — explicit
  per-item child seeds, which with single-item shards make a batch item
  bit-identical to a standalone solve of the same (problem, seed).
"""

import math

import pytest

from repro.api.facade import solve, solve_many
from repro.api.result import SolveResult
from repro.engine import BackendScoreboard, compile_plan
from repro.exceptions import ReproError
from repro.mqo import generate_mqo_problem


def problems(n=3):
    return [generate_mqo_problem(3, 3, sharing_density=0.4, rng=i) for i in range(n)]


# -- capacity_snapshot -------------------------------------------------------


def test_capacity_snapshot_empty_board():
    assert BackendScoreboard().capacity_snapshot() == {}


def test_capacity_snapshot_aggregates_per_backend():
    board = BackendScoreboard()
    board.observe("sa", "sig-a", objective=10.0, wall_time=0.5)
    board.observe("sa", "sig-b", objective=20.0, wall_time=1.5)
    board.observe("sa", "sig-a", objective=10.0, wall_time=0.5, cache_hit=True)
    # Timeouts arrive via portfolio breakdowns (deadline-exceeded contenders).
    raced = SolveResult(
        problem="p", method="tabu", solution=None, objective=5.0,
        info={
            "portfolio": [
                {"method": "tabu", "status": "completed",
                 "objective": 5.0, "wall_time": 0.1},
                {"method": "tabu", "status": "deadline_exceeded"},
            ],
            "portfolio_meta": {"deadline_s": 2.0},
        },
    )
    board.observe_portfolio(raced, signature="sig-a")

    snapshot = board.capacity_snapshot()
    assert set(snapshot) == {"sa", "tabu"}

    sa = snapshot["sa"]
    assert sa["count"] == 3
    assert sa["structures"] == 2
    assert sa["cache_hit_rate"] == pytest.approx(1 / 3)
    assert sa["timeouts"] == 0 and sa["timeout_rate"] == 0.0
    assert sa["errors"] == 0 and sa["error_rate"] == 0.0
    assert sa["best_objective"] == 10.0
    assert math.isfinite(sa["latency"]) and sa["latency"] > 0

    tabu = snapshot["tabu"]
    assert tabu["count"] == 2  # the timeout is an observation too
    assert tabu["timeouts"] == 1
    assert tabu["timeout_rate"] == pytest.approx(0.5)
    assert tabu["structures"] == 1


def test_capacity_snapshot_tracks_real_batch():
    board = BackendScoreboard()
    results = solve_many(problems(3), backend="sa", seed=0, num_reads=4)
    for result in results:
        board.observe_result(result)
    snapshot = board.capacity_snapshot()
    assert snapshot["sa"]["count"] == 3
    assert snapshot["sa"]["structures"] >= 1
    assert math.isfinite(snapshot["sa"]["quality"])


# -- explicit seeds= ---------------------------------------------------------


def test_compile_plan_explicit_seeds_are_used_verbatim():
    plan = compile_plan(problems(3), backend="sa", seeds=[11, 22, 33])
    assert sorted((item.index, item.seed) for item in plan.items) == [
        (0, 11), (1, 22), (2, 33),
    ]


def test_compile_plan_seed_validation():
    batch = problems(2)
    with pytest.raises(ReproError):
        compile_plan(batch, backend="sa", seeds=[1])  # wrong length
    with pytest.raises(ReproError):
        compile_plan(batch, backend="sa", seeds=[1, -5])  # out of range
    with pytest.raises(ReproError):
        compile_plan(batch, backend="sa", seeds=[1, 2**63])  # out of range


def test_explicit_seeds_with_unit_shards_match_standalone_solves():
    batch = problems(3)
    seeds = [101, 101, 7]  # duplicates across different problems are fine
    batched = solve_many(
        batch, backend="sa", seeds=seeds, max_shard_size=1, num_reads=4
    )
    for problem, seed, from_batch in zip(batch, seeds, batched):
        direct = solve(problem, backend="sa", seed=seed, num_reads=4)
        assert direct.objective == from_batch.objective
        assert direct.solution == from_batch.solution
    # The explicit seed is stamped into the engine telemetry.
    assert [r.info["engine"]["seed"] for r in batched] == seeds


def test_explicit_seeds_are_deterministic_across_executors():
    batch = problems(3)
    seeds = [5, 6, 7]
    serial = solve_many(batch, backend="sa", seeds=seeds, executor="serial",
                        max_shard_size=1, num_reads=4)
    threaded = solve_many(batch, backend="sa", seeds=seeds, executor="threads",
                          max_shard_size=1, num_reads=4)
    assert [r.objective for r in serial] == [r.objective for r in threaded]


# -- expected_service_time ---------------------------------------------------


def test_expected_service_time_cold_board_returns_default():
    from repro.engine import expected_service_time

    assert expected_service_time({}, default=0.25) == 0.25
    assert expected_service_time({}, backends=("sa",), default=0.7) == 0.7


def test_expected_service_time_averages_finite_latencies():
    from repro.engine import expected_service_time

    board = BackendScoreboard()
    board.observe("sa", None, objective=1.0, wall_time=2.0)
    board.observe("tabu", None, objective=1.0, wall_time=4.0)
    snapshot = board.capacity_snapshot()
    assert expected_service_time(snapshot) == pytest.approx(3.0)
    assert expected_service_time(snapshot, backends=("sa",)) == pytest.approx(2.0)
    # Unknown names are skipped; all-unknown falls back to the default.
    assert expected_service_time(snapshot, backends=("sa", "nope")) == pytest.approx(2.0)
    assert expected_service_time(snapshot, backends=("nope",), default=0.1) == 0.1


def test_expected_service_time_ignores_nan_latency_rows():
    from repro.engine import expected_service_time

    # A backend seen only through cache hits has a NaN latency EWMA —
    # cache hits cost no backend time and must not poison the estimate.
    board = BackendScoreboard()
    board.observe("sa", None, objective=1.0, wall_time=1.0, cache_hit=True)
    assert math.isnan(board.capacity_snapshot()["sa"]["latency"])
    assert expected_service_time(board.capacity_snapshot(), default=0.25) == 0.25
