"""Golden QUBO fingerprints: one pinned canonical instance per Table I domain.

`QuboModel.fingerprint()` content-addresses the `ResultCache`: every cached
result is keyed on it, and the disk tier persists those keys across
sessions.  A change to canonical serialization (`to_stable_bytes`), to
variable-label `repr`s, or to any domain's QUBO formulation therefore
silently invalidates every existing cache entry — these goldens turn that
silent invalidation into a loud test failure.

If a failure here is *intentional* (you changed a formulation or the
serialization format on purpose), regenerate the constants below and say so
in the commit message — downstream users must know their caches reset.
Conventions are documented in docs/testing.md.
"""

import pytest

from repro.api import (
    BushyJoinAdapter,
    LeftDeepJoinAdapter,
    MQOAdapter,
    SchemaMatchingAdapter,
    TxnScheduleAdapter,
)
from repro.db.generator import chain_query
from repro.integration.generator import generate_schema_pair
from repro.mqo import generate_mqo_problem
from repro.txn.generator import generate_transactions

#: domain -> (pinned SHA-256 fingerprint, expected num_variables).
#: The variable count is pinned too so a failure distinguishes "formulation
#: grew/shrank" from "same structure, different serialization".
GOLDEN = {
    "mqo": ("b00f5e863ae01a4e0187594d033aeb3fb2ff758887f74987307fcf3fec324b82", 6),
    "joinorder_leftdeep": ("f9437c280b5362424c04cbe9100529591523ece9069677b7b66b327c46248c5e", 16),
    "joinorder_bushy": ("a668e2d1cd5fd678b9dd6ee7108a5679b37300063d1d562a4e38d6ef69abc38d", 9),
    "schema_matching": ("f62362c317ddff2fff7b24856688efe2d3f651791840689bb61606ced0c6090d", 11),
    "txn_schedule": ("6e3af81b44c368b4efdfe7d119bfed3be59480997d8db2d1750ebda510f385cf", 16),
}


def _canonical_adapters():
    """The frozen generator calls. Do not re-roll seeds or sizes casually:
    the pinned hexes above encode exactly these instances."""
    source, target, _ = generate_schema_pair(5, rng=7)
    return {
        "mqo": MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=7)),
        "joinorder_leftdeep": LeftDeepJoinAdapter(chain_query(4, rng=7)),
        "joinorder_bushy": BushyJoinAdapter(chain_query(4, rng=7)),
        "schema_matching": SchemaMatchingAdapter(source, target),
        "txn_schedule": TxnScheduleAdapter(generate_transactions(4, rng=7)),
    }


@pytest.mark.parametrize("domain", sorted(GOLDEN))
def test_golden_fingerprint(domain):
    adapter = _canonical_adapters()[domain]
    model = adapter.to_qubo()
    expected_fp, expected_vars = GOLDEN[domain]
    assert model.num_variables == expected_vars, (
        f"{domain}: formulation size changed ({model.num_variables} vars, "
        f"expected {expected_vars}) — the QUBO encoding itself moved"
    )
    assert model.fingerprint() == expected_fp, (
        f"{domain}: canonical fingerprint drifted — every existing "
        f"ResultCache entry for this domain is now unreachable. If the "
        f"change is intentional, regenerate tests/engine/"
        f"test_engine_fingerprints.py and flag the cache reset."
    )


@pytest.mark.parametrize("domain", sorted(GOLDEN))
def test_rebuild_matches_cached_formulation(domain):
    """`build_qubo` (fresh) and `to_qubo` (cached) must agree — a divergence
    would mean cache keys depend on adapter call history."""
    adapter = _canonical_adapters()[domain]
    assert adapter.build_qubo().fingerprint() == adapter.to_qubo().fingerprint()


def test_fingerprint_distinguishes_all_domains():
    """No two canonical instances may collide (sanity on the pinned table)."""
    fingerprints = [fp for fp, _ in GOLDEN.values()]
    assert len(set(fingerprints)) == len(fingerprints)
