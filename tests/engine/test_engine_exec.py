"""Executors and determinism: the full executor x backend matrix, racing."""

import asyncio
import math
import time

import pytest

import repro
from repro.api import MQOAdapter, SamplerBackend, get_backend
from repro.api.backends import SimulatedAnnealingBackend
from repro.engine import AsyncExecutor, SerialExecutor, get_executor, list_executors
from repro.exceptions import ReproError
from repro.mqo import generate_mqo_problem

FAST_SA = dict(num_reads=4, num_sweeps=40)

#: Every executor x every sampling-backend tier the matrix pins down.
ALL_EXECUTORS = ["serial", "threads", "processes", "async"]
MATRIX_BACKENDS = {
    "tabu": dict(num_restarts=2, max_iterations=60),
    "sa": FAST_SA,
    "bruteforce": dict(keep=8),
}


def _mixed_batch():
    """Two structure groups (shards) so parallel executors have real work."""
    return [
        MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=r))
        for r in (1, 5, 1, 9)
    ]


class TestExecutorRegistry:
    def test_listed(self):
        assert list_executors() == ["async", "processes", "serial", "threads"]

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown executor"):
            get_executor("gpu")

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex
        with pytest.raises(ReproError, match="executor opts"):
            get_executor(ex, max_workers=2)


class TestDeterminismMatrix:
    """The engine's core contract, pinned exhaustively: for any sampling
    backend, every executor returns byte-identical objectives, solutions,
    energies, and child seeds — executor choice is wall-clock only."""

    @pytest.mark.parametrize("backend", sorted(MATRIX_BACKENDS))
    def test_all_executors_identical(self, backend):
        problems = _mixed_batch()
        opts = MATRIX_BACKENDS[backend]
        runs = {
            executor: repro.solve_many(
                problems, backend=backend, seed=11, executor=executor, **opts
            )
            for executor in ALL_EXECUTORS
        }
        reference = runs["serial"]
        for executor in ALL_EXECUTORS[1:]:
            other = runs[executor]
            assert [r.objective for r in other] == [r.objective for r in reference], executor
            assert [r.solution for r in other] == [r.solution for r in reference], executor
            assert [r.energy for r in other] == [r.energy for r in reference], executor
            assert [r.info["engine"]["seed"] for r in other] == [
                r.info["engine"]["seed"] for r in reference
            ], executor
            assert all(r.info["engine"]["executor"] == executor for r in other)

    @pytest.mark.parametrize("executor", ["threads", "processes", "async"])
    def test_matches_serial_annealer(self, executor):
        """Stateful shard caches (embeddings) stay deterministic in parallel."""
        problems = _mixed_batch()
        opts = dict(num_reads=4, num_sweeps=40)
        serial = repro.solve_many(problems, backend="annealer", seed=3, **opts)
        other = repro.solve_many(
            problems, backend="annealer", seed=3, executor=executor, **opts
        )
        assert [r.objective for r in other] == [r.objective for r in serial]
        # Embedding reuse follows shard position, not execution order:
        # the two rng=1 problems share a shard; its leader searches, the
        # follower reuses.
        flags = {r.info["engine"]["shard_pos"]: r.info["embedding_cached"] for r in other}
        assert flags[0] is False and flags[1] is True


class LatencyBoundSA(SimulatedAnnealingBackend):
    """A fake hardware client: SA samples behind an awaitable network delay.

    ``run_async`` returns exactly what ``run`` would for the same RNG (the
    contract the async executor relies on); the asyncio.sleep stands in for
    a queue round-trip, so overlap across shards is measurable.
    """

    name = "sa"  # same samples as "sa" => same results tier
    supports_async = True

    def __init__(self, delay_s: float = 0.05, **opts):
        super().__init__(**opts)
        self.delay_s = delay_s
        self.async_calls = 0

    async def run_async(self, model, rng=None, **opts):
        self.async_calls += 1
        await asyncio.sleep(self.delay_s)
        return self.run(model, rng=rng, **opts)


class TestAsyncExecutor:
    def test_async_backend_runs_on_event_loop_and_matches_serial(self):
        problems = _mixed_batch()
        serial = repro.solve_many(
            problems, backend=LatencyBoundSA(delay_s=0.0, **FAST_SA), seed=11
        )
        backend = LatencyBoundSA(delay_s=0.0, **FAST_SA)
        executor = AsyncExecutor(max_concurrency=4)
        via_async = repro.solve_many(problems, backend=backend, seed=11, executor=executor)
        assert [r.objective for r in via_async] == [r.objective for r in serial]
        assert backend.async_calls == len(problems)
        # The waits are thread-free; only the CPU segments (formulation,
        # decode/refine) borrow the bounded pool.
        assert executor.last_run["worker_threads"] <= executor.max_concurrency

    def test_latency_bound_shards_overlap(self):
        """Three shards x 60 ms sleeps run concurrently, not back to back."""
        problems = [
            MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=r))
            for r in (1, 5, 9)
        ]
        backend = LatencyBoundSA(delay_s=0.06, **FAST_SA)
        start = time.perf_counter()
        repro.solve_many(problems, backend=backend, seed=11, executor="async")
        elapsed = time.perf_counter() - start
        assert elapsed < 3 * 0.06 + 0.1, f"shards serialized: {elapsed:.3f}s"

    def test_per_backend_semaphore_serializes(self):
        """per_backend=1 forces one in-flight shard per backend name."""
        problems = [
            MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=r))
            for r in (1, 5, 9)
        ]
        serial = repro.solve_many(problems, backend="sa", seed=11, **FAST_SA)
        gated = repro.solve_many(
            problems,
            backend="sa",
            seed=11,
            executor=AsyncExecutor(max_concurrency=4, per_backend=1),
            **FAST_SA,
        )
        assert [r.objective for r in gated] == [r.objective for r in serial]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ReproError, match="max_concurrency"):
            AsyncExecutor(max_concurrency=0)
        with pytest.raises(ReproError, match="per_backend"):
            AsyncExecutor(per_backend=0)

    def test_runs_inside_existing_event_loop(self):
        """Calling the engine from async application code must not deadlock."""
        problems = _mixed_batch()[:2]

        async def main():
            return repro.solve_many(
                problems, backend="sa", seed=11, executor="async", **FAST_SA
            )

        results = asyncio.run(main())
        serial = repro.solve_many(problems, backend="sa", seed=11, **FAST_SA)
        assert [r.objective for r in results] == [r.objective for r in serial]

class TestEngineMetadata:
    def test_engine_metadata_recorded(self):
        results = repro.solve_many(
            _mixed_batch(), backend="sa", seed=11, executor="threads", **FAST_SA
        )
        for r in results:
            engine = r.info["engine"]
            assert engine["executor"] == "threads"
            assert engine["cache_hit"] is False
            assert engine["shard"] < 3 and engine["shard_size"] >= 1
            assert len(engine["fingerprint"]) == 16
            assert len(engine["signature"]) == 16  # the scoreboard routing key

    def test_direct_backend_through_engine(self):
        results = repro.solve_many(_mixed_batch(), backend="classical", seed=0)
        for r in results:
            assert math.isnan(r.energy) and not r.used_qubo
            assert r.num_variables > 0
            assert "engine" in r.info

    def test_processes_rejects_unpicklable_backend(self):
        class LocalSampler:  # local class: never picklable
            def solve(self, model, rng=None):  # pragma: no cover - never runs
                raise AssertionError

        backend = SamplerBackend(LocalSampler())
        with pytest.raises(ReproError, match="picklable"):
            repro.solve_many(_mixed_batch(), backend=backend, seed=0, executor="processes")


class TestPortfolio:
    def test_backend_opts_forwarded_per_backend(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=2)
        result = repro.solve_portfolio(
            problem,
            backends=("sa", "tabu"),
            seed=5,
            backend_opts={"sa": {"num_reads": 2, "num_sweeps": 30}},
        )
        assert {e["method"] for e in result.info["portfolio"]} == {"sa", "tabu"}
        assert result.info["portfolio_meta"]["raced"] is False

    def test_unknown_backend_opts_key_rejected(self):
        problem = generate_mqo_problem(2, 2, rng=0)
        with pytest.raises(ReproError, match="no named backend"):
            repro.solve_portfolio(problem, backends=("sa",), backend_opts={"qaoa": {}})

    def test_deadline_race_returns_at_least_one(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=2)
        # A vanishing deadline still awaits the first finisher.
        result = repro.solve_portfolio(
            problem,
            backends=("sa", "tabu"),
            seed=5,
            backend_opts={"sa": {"num_reads": 2, "num_sweeps": 20}},
            deadline_s=1e-6,
        )
        statuses = [e["status"] for e in result.info["portfolio"]]
        assert statuses.count("completed") >= 1
        assert result.info["portfolio_meta"]["deadline_s"] == 1e-6
        assert not math.isnan(result.objective)

    def test_generous_deadline_completes_everyone(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=2)
        result = repro.solve_portfolio(
            problem,
            backends=("sa", "tabu", "bruteforce"),
            seed=5,
            backend_opts={"sa": {"num_reads": 4, "num_sweeps": 40}},
            deadline_s=60.0,
        )
        assert result.info["portfolio_meta"]["completed"] == 3
        assert result.objective == min(
            e["objective"] for e in result.info["portfolio"]
        )

    def test_deadline_free_portfolio_reproducible_with_opts(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=2)
        kwargs = dict(
            backends=("sa", "tabu"),
            seed=7,
            backend_opts={"sa": {"num_reads": 4, "num_sweeps": 40}},
        )
        a = repro.solve_portfolio(problem, **kwargs)
        b = repro.solve_portfolio(problem, **kwargs)
        assert a.solution == b.solution and a.method == b.method
        assert [(e["method"], e["objective"], e["status"]) for e in a.info["portfolio"]] == [
            (e["method"], e["objective"], e["status"]) for e in b.info["portfolio"]
        ]

    def test_instance_contender_keeps_label(self):
        problem = generate_mqo_problem(2, 2, rng=0)
        backend = get_backend("sa", num_reads=4, num_sweeps=40)
        result = repro.solve_portfolio(problem, backends=(backend, "bruteforce"), seed=1)
        assert {e["method"] for e in result.info["portfolio"]} == {"sa", "bruteforce"}
