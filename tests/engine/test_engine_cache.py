"""ResultCache: LRU/disk tiers, hit semantics, RNG non-perturbation."""

import os
import pickle
import threading

import numpy as np
import pytest

import repro
from repro.api import MQOAdapter
from repro.engine import ResultCache, default_cache, resolve_cache
from repro.exceptions import ReproError
from repro.mqo import generate_mqo_problem

FAST_SA = dict(num_reads=4, num_sweeps=40)


def _mqo(rng):
    return MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=rng))


class TestResultCacheStore:
    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        for key, value in (("a", 1), ("b", 2), ("c", 3)):
            cache.put(key, value)
        assert cache.get("a") is None  # evicted
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_returns_independent_copies(self):
        cache = ResultCache()
        cache.put("k", {"nested": [1, 2]})
        first = cache.get("k")
        first["nested"].append(3)
        assert cache.get("k") == {"nested": [1, 2]}

    def test_disk_tier_shared_across_instances(self, tmp_path):
        a = ResultCache(directory=tmp_path / "store")
        a.put("k", 42)
        b = ResultCache(directory=tmp_path / "store")
        assert b.get("k") == 42  # read through from disk
        assert b.stats["hits"] == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "store")
        cache.put("k", 1)
        cache.clear()
        assert cache.stats == {"hits": 0, "misses": 0, "store_hits": 0, "entries": 0}
        assert cache.get("k") == 1  # reloaded from the disk tier

    def test_resolve_cache_spellings(self, tmp_path):
        assert resolve_cache(None) is None and resolve_cache(False) is None
        assert resolve_cache(True) is default_cache()
        cache = ResultCache()
        assert resolve_cache(cache) is cache
        disk = resolve_cache(tmp_path / "c")
        assert isinstance(disk, ResultCache) and disk.directory is not None
        with pytest.raises(ReproError, match="cache must be"):
            resolve_cache(123)
        with pytest.raises(ReproError, match="maxsize"):
            ResultCache(maxsize=0)


class TestDiskTierCrashSafety:
    """The disk tier must never serve a torn entry, and a crash mid-write
    must never make one visible."""

    def test_torn_disk_entry_is_a_miss_and_heals(self, tmp_path):
        writer = ResultCache(directory=tmp_path / "store")
        writer.put("k", {"payload": list(range(100))})
        path = writer.directory / "k.pkl"
        # Simulate a torn write (crash halfway / truncated by a full disk).
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        reader = ResultCache(directory=tmp_path / "store")  # cold memory tier
        assert reader.get("k") is None            # miss, not an exception
        assert reader.stats["misses"] == 1
        assert not path.exists()                  # damaged entry evicted
        reader.put("k", "fresh")                  # and the slot heals
        assert reader.get("k") == "fresh"

    def test_torn_memory_blob_is_evicted(self):
        cache = ResultCache()
        cache.put("k", 1)
        with cache._lock:
            cache._entries["k"] = cache._entries["k"][:3]  # corrupt in place
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_crash_mid_write_leaves_no_visible_entry(self, tmp_path, monkeypatch):
        """Kill the writer between temp-write and rename: the final path must
        not exist, and the old entry (if any) must survive untouched."""
        cache = ResultCache(directory=tmp_path / "store")
        cache.put("k", "old")

        def crash(src, dst):
            raise KeyboardInterrupt("simulated crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(KeyboardInterrupt):
            cache.put("k", "new")
        monkeypatch.undo()
        # No temp litter became the visible entry; disk still has "old".
        survivor = ResultCache(directory=tmp_path / "store")
        assert survivor.get("k") == "old"
        assert [p.name for p in (tmp_path / "store").glob("*.pkl")] == ["k.pkl"]

    def test_interrupted_write_cleans_its_temp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(directory=tmp_path / "store")

        def crash(src, dst):
            raise RuntimeError("boom")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(RuntimeError):
            cache.put("k", "value")
        monkeypatch.undo()
        assert list((tmp_path / "store").glob("*.tmp")) == []

    def test_concurrent_same_key_writers_never_tear(self, tmp_path):
        """Threads share a PID — the old pid-suffix temp naming collided and
        could publish a half-written file; mkstemp naming must not."""
        cache = ResultCache(directory=tmp_path / "store")
        payload = {"blob": bytes(50_000)}
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    cache.put("k", payload)
                    loaded = pickle.loads((cache.directory / "k.pkl").read_bytes())
                    assert loaded == payload
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert errors == []
        assert cache.get("k") == payload


class TestBatchCaching:
    def test_warm_rerun_hits_and_matches_cold(self):
        problems = [_mqo(r) for r in (1, 5, 1, 9)]
        cache = ResultCache()
        plain = repro.solve_many(problems, backend="sa", seed=11, **FAST_SA)
        cold = repro.solve_many(problems, backend="sa", seed=11, cache=cache, **FAST_SA)
        warm = repro.solve_many(problems, backend="sa", seed=11, cache=cache, **FAST_SA)
        assert [r.cache_hit for r in cold] == [False] * 4
        assert [r.cache_hit for r in warm] == [True] * 4
        # Caching never changes answers: plain == cold == warm.
        for runs in (cold, warm):
            assert [r.objective for r in runs] == [r.objective for r in plain]
            assert [r.solution for r in runs] == [r.solution for r in plain]

    def test_hit_does_not_perturb_neighbouring_miss(self):
        """A cached item must not shift the RNG stream (or shard state) of
        the uncached items dispatched alongside it."""
        p0, p1, p2 = _mqo(1), _mqo(5), _mqo(9)  # three distinct shards
        cache = ResultCache()
        first = repro.solve_many([p0, p1], backend="sa", seed=11, cache=cache, **FAST_SA)
        # Same batch seed, same position 0 -> p0 hits; p2 is new.
        second = repro.solve_many([p0, p2], backend="sa", seed=11, cache=cache, **FAST_SA)
        assert second[0].cache_hit and not second[1].cache_hit
        assert second[0].objective == first[0].objective
        plain = repro.solve_many([p0, p2], backend="sa", seed=11, **FAST_SA)
        assert [r.objective for r in second] == [r.objective for r in plain]

    def test_partial_shard_hit_is_shard_atomic(self):
        """Item k of a shard runs on state built by items 0..k-1, so a shard
        with any miss re-runs whole — hits inside it are discarded."""
        p = _mqo(1)
        cache = ResultCache()
        solo = repro.solve_many([p], backend="annealer", seed=7, cache=cache,
                                num_reads=4, num_sweeps=40)
        assert not solo[0].cache_hit
        # Leader's key matches the solo run, the follower is new -> whole
        # shard recomputes, and answers equal the cache-free run.
        pair = repro.solve_many([p, _mqo(1)], backend="annealer", seed=7, cache=cache,
                                num_reads=4, num_sweeps=40)
        assert [r.cache_hit for r in pair] == [False, False]
        plain = repro.solve_many([p, _mqo(1)], backend="annealer", seed=7,
                                 num_reads=4, num_sweeps=40)
        assert [r.objective for r in pair] == [r.objective for r in plain]
        # And now the pair context is fully cached.
        again = repro.solve_many([p, _mqo(1)], backend="annealer", seed=7, cache=cache,
                                 num_reads=4, num_sweeps=40)
        assert [r.cache_hit for r in again] == [True, True]

    def test_instance_backend_never_cached(self):
        from repro.api import get_backend

        backend = get_backend("sa", **FAST_SA)
        cache = ResultCache()
        repro.solve_many([_mqo(1)], backend=backend, seed=3, cache=cache)
        assert len(cache) == 0 and cache.stats["misses"] == 0


class TestSingleSolveCaching:
    def test_int_seed_hits_on_repeat(self):
        cache = ResultCache()
        a = repro.solve(_mqo(1), backend="sa", seed=9, cache=cache, **FAST_SA)
        b = repro.solve(_mqo(1), backend="sa", seed=9, cache=cache, **FAST_SA)
        assert not a.cache_hit and b.cache_hit
        assert a.objective == b.objective and a.solution == b.solution
        plain = repro.solve(_mqo(1), backend="sa", seed=9, **FAST_SA)
        assert plain.objective == b.objective

    def test_generator_seed_skips_cache(self):
        cache = ResultCache()
        repro.solve(_mqo(1), backend="sa", seed=np.random.default_rng(3), cache=cache, **FAST_SA)
        assert len(cache) == 0

    def test_opts_partition_the_cache(self):
        cache = ResultCache()
        repro.solve(_mqo(1), backend="sa", seed=9, cache=cache, num_reads=4, num_sweeps=40)
        miss = repro.solve(_mqo(1), backend="sa", seed=9, cache=cache, num_reads=8, num_sweeps=40)
        assert not miss.cache_hit and len(cache) == 2

    def test_shard_leader_interchangeable_with_standalone_solve(self):
        """Content addressing, not object identity: a standalone solve with
        the leader's effective seed hits the batch-produced entry."""
        cache = ResultCache()
        batch = repro.solve_many([_mqo(1)], backend="sa", seed=21, cache=cache, **FAST_SA)
        leader_seed = batch[0].info["engine"]["seed"]
        hit = repro.solve(_mqo(1), backend="sa", seed=leader_seed, cache=cache, **FAST_SA)
        assert hit.cache_hit
        assert hit.objective == batch[0].objective
