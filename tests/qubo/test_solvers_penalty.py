"""Tests for bruteforce, tabu, penalty builders and the sample set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.model import QuboModel
from repro.qubo.penalty import (
    add_at_most_one,
    add_equality,
    add_exactly_one,
    add_forbid_pair,
    add_implication,
    suggest_penalty_weight,
)
from repro.qubo.sampleset import Sample, SampleSet
from repro.qubo.tabu import TabuSolver


def _random_model(seed, n=6):
    rng = np.random.default_rng(seed)
    m = QuboModel(n)
    for i in range(n):
        m.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.6:
                m.add_quadratic(i, j, float(rng.normal()))
    return m


class TestSampleSet:
    def test_sorted_by_energy(self):
        ss = SampleSet([Sample((0,), 2.0), Sample((1,), -1.0)])
        assert ss.best.energy == -1.0
        assert [s.energy for s in ss] == [-1.0, 2.0]

    def test_merges_duplicates(self):
        ss = SampleSet([Sample((1, 0), 1.0), Sample((1, 0), 1.0, num_occurrences=2)])
        assert len(ss) == 1
        assert ss.best.num_occurrences == 3

    def test_truncate(self):
        ss = SampleSet([Sample((i,), float(i)) for i in range(2)] + [Sample((0, 1), 5.0)])
        assert len(ss.truncate(2)) == 2

    def test_empty_best_raises(self):
        with pytest.raises(IndexError):
            SampleSet([]).best

    def test_decode_best(self):
        m = QuboModel()
        m.variable("a")
        m.variable("b")
        ss = SampleSet([Sample((1, 0), 0.0)])
        assert ss.decode_best(m) == {"a": 1, "b": 0}


class TestBruteForce:
    def test_finds_optimum(self):
        m = QuboModel(2)
        m.add_linear(0, -1.0).add_linear(1, -1.0).add_quadratic(0, 1, 3.0)
        ss = BruteForceSolver().solve(m)
        assert ss.best.energy == -1.0
        assert ss.best.bits in ((0, 1), (1, 0))

    def test_keep_limits_results(self):
        ss = BruteForceSolver().solve(_random_model(0), keep=3)
        assert len(ss) == 3

    def test_variable_limit(self):
        with pytest.raises(ReproError):
            BruteForceSolver(max_variables=4).solve(QuboModel(5))

    def test_empty_model_rejected(self):
        with pytest.raises(ReproError):
            BruteForceSolver().solve(QuboModel(0))


class TestTabu:
    def test_reaches_optimum_on_small_models(self):
        for seed in range(5):
            m = _random_model(seed)
            exact = BruteForceSolver().solve(m).best_energy()
            found = TabuSolver(num_restarts=6, max_iterations=300).solve(m, rng=seed).best_energy()
            assert found == pytest.approx(exact, abs=1e-9)

    def test_deterministic_given_seed(self):
        m = _random_model(11)
        a = TabuSolver().solve(m, rng=5).best.bits
        b = TabuSolver().solve(m, rng=5).best.bits
        assert a == b


class TestPenalties:
    def test_exactly_one_minimum(self):
        m = QuboModel(3)
        add_exactly_one(m, [0, 1, 2], 2.0)
        ss = BruteForceSolver().solve(m, keep=8)
        assert ss.best.energy == pytest.approx(0.0)
        assert sum(ss.best.bits) == 1
        # Zero-hot and two-hot both cost.
        assert m.energy([0, 0, 0]) == pytest.approx(2.0)
        assert m.energy([1, 1, 0]) == pytest.approx(2.0)
        assert m.energy([1, 1, 1]) == pytest.approx(8.0)

    def test_exactly_one_rejects_empty(self):
        with pytest.raises(ValueError):
            add_exactly_one(QuboModel(1), [], 1.0)

    def test_at_most_one(self):
        m = QuboModel(3)
        add_at_most_one(m, [0, 1, 2], 4.0)
        assert m.energy([0, 0, 0]) == 0.0
        assert m.energy([1, 0, 0]) == 0.0
        assert m.energy([1, 1, 0]) == 4.0
        assert m.energy([1, 1, 1]) == 12.0

    def test_equality(self):
        m = QuboModel(4)
        add_equality(m, [0, 1, 2, 3], target=2, weight=1.0)
        assert m.energy([1, 1, 0, 0]) == pytest.approx(0.0)
        assert m.energy([1, 0, 0, 0]) == pytest.approx(1.0)
        assert m.energy([1, 1, 1, 0]) == pytest.approx(1.0)
        assert m.energy([1, 1, 1, 1]) == pytest.approx(4.0)

    def test_implication(self):
        m = QuboModel(2)
        add_implication(m, 0, 1, 3.0)
        assert m.energy([0, 0]) == 0.0
        assert m.energy([1, 1]) == 0.0
        assert m.energy([1, 0]) == 3.0

    def test_forbid_pair(self):
        m = QuboModel(2)
        add_forbid_pair(m, 0, 1, 7.0)
        assert m.energy([1, 1]) == 7.0
        assert m.energy([1, 0]) == 0.0

    def test_suggest_penalty_weight_dominates(self):
        m = _random_model(3)
        w = suggest_penalty_weight(m)
        swing = sum(abs(v) for v in m.linear.values()) + sum(abs(v) for v in m.quadratic.values())
        assert w > swing


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_property_constrained_optimum_is_feasible(seed):
    """With the suggested weight, the optimum satisfies exactly-one."""
    rng = np.random.default_rng(seed)
    m = QuboModel(4)
    for i in range(4):
        m.add_linear(i, float(rng.normal()))
    w = suggest_penalty_weight(m)
    add_exactly_one(m, [0, 1, 2, 3], w)
    best = BruteForceSolver().solve(m).best
    assert sum(best.bits) == 1
