"""Byte-stability of the array-backed canonical serialization.

``QuboModel.to_stable_bytes`` moved from per-term ``struct.pack`` over dicts
to structured-array ``tobytes()`` over the internal COO store.  The output
must be *byte-identical* to the original encoding — every ``ResultCache``
entry and golden fingerprint is keyed on it.  The reference implementation
below is a frozen copy of the seed encoder (dict accumulation + per-term
``struct.pack``); the tests replay identical operations through both and
compare raw bytes on the five canonical Table I instances plus the edge
cases most likely to diverge (numpy-scalar coefficients, duplicate-term
accumulation, zero dropping, label framing).
"""

import struct

import numpy as np
import pytest

from repro.api import (
    BushyJoinAdapter,
    LeftDeepJoinAdapter,
    MQOAdapter,
    SchemaMatchingAdapter,
    TxnScheduleAdapter,
)
from repro.db.generator import chain_query
from repro.integration.generator import generate_schema_pair
from repro.mqo import generate_mqo_problem
from repro.qubo.model import QuboModel
from repro.txn.generator import generate_transactions


class SeedEncoder:
    """The seed's dict-based model and encoder, frozen for comparison."""

    def __init__(self, num_variables=0):
        self._labels = list(range(num_variables))
        self.linear = {}
        self.quadratic = {}
        self.offset = 0.0

    def add_linear(self, i, c):
        self.linear[i] = self.linear.get(i, 0.0) + float(c)

    def add_quadratic(self, i, j, c):
        if i == j:
            return self.add_linear(i, c)
        if j < i:
            i, j = j, i
        self.quadratic[(i, j)] = self.quadratic.get((i, j), 0.0) + float(c)

    def add_offset(self, v):
        self.offset += float(v)

    def to_stable_bytes(self, include_labels=True):
        parts = [b"QUBO-v1", struct.pack("<q", len(self._labels))]
        linear = sorted((i, c) for i, c in self.linear.items() if c != 0.0)
        parts.append(struct.pack("<q", len(linear)))
        for i, c in linear:
            parts.append(struct.pack("<qd", i, c))
        quadratic = sorted(
            (i, j, c) for (i, j), c in self.quadratic.items() if c != 0.0
        )
        parts.append(struct.pack("<q", len(quadratic)))
        for i, j, c in quadratic:
            parts.append(struct.pack("<qqd", i, j, c))
        parts.append(struct.pack("<d", self.offset))
        if include_labels:
            for label in self._labels:
                encoded = repr(label).encode("utf-8", errors="backslashreplace")
                parts.append(struct.pack("<q", len(encoded)))
                parts.append(encoded)
        return b"".join(parts)


def _reencode(model: QuboModel) -> SeedEncoder:
    """Pour a model's logical content through the frozen seed encoder."""
    ref = SeedEncoder()
    ref._labels = list(model.labels)
    ref.linear = dict(model.linear)
    ref.quadratic = dict(model.quadratic)
    ref.offset = model.offset
    return ref


def _canonical_models():
    source, target, _ = generate_schema_pair(5, rng=7)
    return {
        "mqo": MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=7)),
        "joinorder_leftdeep": LeftDeepJoinAdapter(chain_query(4, rng=7)),
        "joinorder_bushy": BushyJoinAdapter(chain_query(4, rng=7)),
        "schema_matching": SchemaMatchingAdapter(source, target),
        "txn_schedule": TxnScheduleAdapter(generate_transactions(4, rng=7)),
    }


@pytest.mark.parametrize("domain", sorted(_canonical_models()))
@pytest.mark.parametrize("include_labels", [True, False])
def test_golden_instances_byte_identical_to_seed_encoding(domain, include_labels):
    model = _canonical_models()[domain].to_qubo()
    ref = _reencode(model)
    assert model.to_stable_bytes(include_labels=include_labels) == ref.to_stable_bytes(
        include_labels=include_labels
    ), f"{domain}: array-backed serialization drifted from the seed encoding"


def test_replayed_operations_byte_identical():
    """Same operation stream through both models -> same bytes.

    Unlike the re-encoding test above this also exercises the *accumulation*
    path: duplicates must sum in arrival order, since float addition is not
    associative and the encoded doubles must not drift by a single ULP.
    """
    rng = np.random.default_rng(11)
    model, ref = QuboModel(9), SeedEncoder(9)
    for _ in range(200):
        kind = rng.integers(0, 3)
        if kind == 0:
            i, c = int(rng.integers(0, 9)), float(rng.normal())
            model.add_linear(i, c)
            ref.add_linear(i, c)
        elif kind == 1:
            i, j = (int(v) for v in rng.integers(0, 9, size=2))
            c = float(rng.normal())
            model.add_quadratic(i, j, c)
            ref.add_quadratic(i, j, c)
        else:
            c = float(rng.normal())
            model.add_offset(c)
            ref.add_offset(c)
    assert model.to_stable_bytes() == ref.to_stable_bytes()


def test_bulk_adds_byte_identical_to_sequential_reference():
    rng = np.random.default_rng(5)
    idx = rng.integers(0, 6, size=50)
    lv = rng.normal(size=50)
    rows, cols = rng.integers(0, 6, size=(2, 80))
    qv = rng.normal(size=80)

    model = QuboModel(6).add_linear_from(idx, lv).add_quadratic_from(rows, cols, qv)
    ref = SeedEncoder(6)
    for i, c in zip(idx.tolist(), lv.tolist()):
        ref.add_linear(i, c)
    for i, j, c in zip(rows.tolist(), cols.tolist(), qv.tolist()):
        ref.add_quadratic(i, j, c)
    assert model.to_stable_bytes() == ref.to_stable_bytes()


def test_numpy_scalar_coefficients_encode_like_floats():
    model = QuboModel(3)
    model.add_linear(np.int64(0), np.float64(0.25))
    model.add_linear(1, np.float32(0.5))
    model.add_quadratic(np.int64(0), np.int64(2), np.float64(-1.75))
    model.add_offset(np.float64(3.5))
    ref = SeedEncoder(3)
    ref.add_linear(0, 0.25)
    ref.add_linear(1, float(np.float32(0.5)))
    ref.add_quadratic(0, 2, -1.75)
    ref.add_offset(3.5)
    assert model.to_stable_bytes() == ref.to_stable_bytes()


def test_zero_coefficients_dropped_from_serialization_only():
    model = QuboModel(4)
    model.add_linear(0, 1.0)
    model.add_linear(0, -1.0)  # cancels to exact 0.0 -> dropped from bytes
    model.add_quadratic(1, 2, 0.0)  # explicit zero -> dropped from bytes
    model.add_linear(3, 2.0)
    ref = SeedEncoder(4)
    ref.add_linear(3, 2.0)
    assert model.to_stable_bytes() == ref.to_stable_bytes()
    # ...but the logical views still carry the keys (structure signatures
    # shard on them).
    assert 0 in model.linear and (1, 2) in model.quadratic


def test_label_framing_matches_seed():
    model = QuboModel()
    for label in [("q0", "p1"), "edge", 7, None, ("nested", (1, 2))]:
        model.variable(label)
    model.add_linear(("q0", "p1"), 1.0)
    ref = _reencode(model)
    assert model.to_stable_bytes() == ref.to_stable_bytes()
    assert model.to_stable_bytes(include_labels=False) == ref.to_stable_bytes(
        include_labels=False
    )
