"""Tests for repro.qubo.model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.qubo.model import QuboModel


def _random_model(seed, n=6, density=0.5):
    rng = np.random.default_rng(seed)
    m = QuboModel(n)
    for i in range(n):
        m.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                m.add_quadratic(i, j, float(rng.normal()))
    m.add_offset(float(rng.normal()))
    return m


class TestVariables:
    def test_indexed_construction(self):
        m = QuboModel(3)
        assert m.num_variables == 3
        assert m.labels == (0, 1, 2)

    def test_labelled_variables(self):
        m = QuboModel()
        i = m.variable(("q0", "p1"))
        j = m.variable(("q0", "p2"))
        assert (i, j) == (0, 1)
        assert m.variable(("q0", "p1")) == 0  # idempotent
        assert m.index_of(("q0", "p2")) == 1

    def test_unknown_variable_rejected(self):
        m = QuboModel(2)
        with pytest.raises(ReproError):
            m.add_linear("nope", 1.0)


class TestCoefficients:
    def test_linear_accumulates(self):
        m = QuboModel(1)
        m.add_linear(0, 1.0).add_linear(0, 2.0)
        assert m.linear[0] == 3.0

    def test_quadratic_canonical_order(self):
        m = QuboModel(2)
        m.add_quadratic(1, 0, 1.5)
        assert m.quadratic[(0, 1)] == 1.5

    def test_quadratic_self_becomes_linear(self):
        m = QuboModel(1)
        m.add_quadratic(0, 0, 2.0)
        assert m.linear[0] == 2.0
        assert not m.quadratic

    def test_scale(self):
        m = QuboModel(2)
        m.add_linear(0, 1.0).add_quadratic(0, 1, 2.0).add_offset(3.0)
        m.scale(2.0)
        assert m.linear[0] == 2.0
        assert m.quadratic[(0, 1)] == 4.0
        assert m.offset == 6.0

    def test_max_abs_coefficient(self):
        m = QuboModel(2)
        m.add_linear(0, -5.0).add_quadratic(0, 1, 3.0)
        assert m.max_abs_coefficient() == 5.0

    def test_max_abs_empty(self):
        assert QuboModel(2).max_abs_coefficient() == 0.0


class TestEnergy:
    def test_known_energy(self):
        m = QuboModel(2)
        m.add_linear(0, 1.0).add_linear(1, -2.0).add_quadratic(0, 1, 3.0).add_offset(0.5)
        assert m.energy([0, 0]) == 0.5
        assert m.energy([1, 0]) == 1.5
        assert m.energy([0, 1]) == -1.5
        assert m.energy([1, 1]) == 2.5

    def test_energy_from_mapping(self):
        m = QuboModel()
        a = m.variable("a")
        b = m.variable("b")
        m.add_quadratic("a", "b", 2.0)
        assert m.energy({"a": 1, "b": 1}) == 2.0
        assert m.energy({"a": 1, "b": 0}) == 0.0

    def test_energies_batch_matches_scalar(self):
        m = _random_model(7)
        X = np.random.default_rng(0).integers(0, 2, size=(10, 6))
        batch = m.energies(X)
        for row, e in zip(X, batch):
            assert m.energy(row) == pytest.approx(e)

    def test_energies_shape_checked(self):
        with pytest.raises(ReproError):
            _random_model(1).energies(np.zeros((3, 4)))

    def test_energy_length_checked(self):
        with pytest.raises(ReproError):
            _random_model(1).energy([0, 1])

    def test_decode(self):
        m = QuboModel()
        m.variable("x")
        m.variable("y")
        assert m.decode([1, 0]) == {"x": 1, "y": 0}


class TestViews:
    def test_to_dense_roundtrip(self):
        m = _random_model(3)
        Q, c = m.to_dense()
        x = np.random.default_rng(1).integers(0, 2, 6).astype(float)
        assert x @ Q @ x + c == pytest.approx(m.energy(x))

    def test_symmetric_couplings_energy(self):
        m = _random_model(4)
        a, S = m.symmetric_couplings()
        x = np.random.default_rng(2).integers(0, 2, 6).astype(float)
        assert a @ x + 0.5 * x @ S @ x + m.offset == pytest.approx(m.energy(x))

    def test_interaction_graph(self):
        m = QuboModel(3)
        m.add_quadratic(0, 2, 1.0)
        g = m.interaction_graph()
        assert g.number_of_nodes() == 3
        assert g.has_edge(0, 2)
        assert not g.has_edge(0, 1)

    def test_copy_independent(self):
        m = _random_model(5)
        dup = m.copy()
        dup.add_linear(0, 100.0)
        assert m.linear[0] != dup.linear[0]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_property_ising_roundtrip_preserves_energy(seed):
    """QUBO -> Ising -> QUBO preserves the energy of every assignment."""
    m = _random_model(seed, n=5)
    ham = m.to_ising()
    rng = np.random.default_rng(seed)
    for _ in range(8):
        x = rng.integers(0, 2, 5)
        assert ham.energy_of_bits(x) == pytest.approx(m.energy(x))
