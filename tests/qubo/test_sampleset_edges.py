"""Edge cases of the SampleSet container: oversized truncation, empty
sets, and deterministic tie-breaking of ``best``."""

import pytest

from repro.qubo.sampleset import Sample, SampleSet


class TestTruncate:
    def test_k_larger_than_set(self):
        ss = SampleSet([Sample((0, 1), 1.0), Sample((1, 0), 2.0)])
        truncated = ss.truncate(100)
        assert len(truncated) == 2
        assert [s.bits for s in truncated] == [(0, 1), (1, 0)]

    def test_k_zero(self):
        ss = SampleSet([Sample((0,), 1.0)])
        assert len(ss.truncate(0)) == 0

    def test_preserves_info(self):
        ss = SampleSet([Sample((0,), 1.0)], info={"solver": "x"})
        assert ss.truncate(5).info == {"solver": "x"}

    def test_merges_duplicate_bits(self):
        ss = SampleSet([Sample((1, 1), 3.0), Sample((1, 1), 3.0, num_occurrences=2)])
        assert len(ss) == 1
        assert ss.best.num_occurrences == 3


class TestEmpty:
    def test_len_and_iter(self):
        ss = SampleSet([])
        assert len(ss) == 0
        assert list(ss) == []

    def test_best_raises(self):
        with pytest.raises(IndexError):
            SampleSet([]).best

    def test_truncate_empty(self):
        assert len(SampleSet([]).truncate(3)) == 0

    def test_energies_empty(self):
        assert SampleSet([]).energies().size == 0

    def test_repr(self):
        assert repr(SampleSet([])) == "SampleSet(empty)"


class TestTieBreaking:
    def test_best_is_lexicographically_smallest_on_energy_tie(self):
        """Equal energies sort by bits, so ``best`` is deterministic."""
        ss = SampleSet([Sample((1, 0), 5.0), Sample((0, 1), 5.0), Sample((1, 1), 5.0)])
        assert ss.best.bits == (0, 1)

    def test_tie_order_is_stable_across_input_permutations(self):
        samples = [Sample((1, 0), 2.0), Sample((0, 0), 2.0), Sample((0, 1), 1.0)]
        a = SampleSet(samples)
        b = SampleSet(list(reversed(samples)))
        assert [s.bits for s in a] == [s.bits for s in b] == [(0, 1), (0, 0), (1, 0)]

    def test_lower_energy_beats_bit_order(self):
        ss = SampleSet([Sample((0, 0), 2.0), Sample((1, 1), 1.0)])
        assert ss.best.bits == (1, 1)
