"""The vectorized bulk-add API: ``add_linear_from`` / ``add_quadratic_from``.

The invariant throughout: a bulk call is *semantically identical* to the
equivalent loop of scalar ``add_linear`` / ``add_quadratic`` calls — same
dict views, same fingerprint, same energies — it just skips the per-term
Python overhead.  These tests pin that equivalence plus the edge behaviour
(broadcasting, diagonal routing, bounds checks, interleaving with scalar
adds) the formulators now rely on.
"""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.qubo.model import QuboModel


def _scalar_model(n, lin, quads, offset=0.0):
    m = QuboModel(n)
    for i, c in lin:
        m.add_linear(i, c)
    for i, j, c in quads:
        m.add_quadratic(i, j, c)
    m.add_offset(offset)
    return m


class TestBulkScalarEquivalence:
    def test_linear_bulk_matches_scalar_loop(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 8, size=40)
        vals = rng.normal(size=40)
        bulk = QuboModel(8).add_linear_from(idx, vals)
        scalar = _scalar_model(8, zip(idx.tolist(), vals.tolist()), [])
        assert bulk.linear == scalar.linear
        assert bulk.fingerprint() == scalar.fingerprint()

    def test_quadratic_bulk_matches_scalar_loop(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 10, size=60)
        cols = rng.integers(0, 10, size=60)
        vals = rng.normal(size=60)
        bulk = QuboModel(10).add_quadratic_from(rows, cols, vals)
        scalar = _scalar_model(
            10, [], zip(rows.tolist(), cols.tolist(), vals.tolist())
        )
        assert bulk.quadratic == scalar.quadratic
        assert bulk.linear == scalar.linear  # diagonal entries routed the same
        assert bulk.fingerprint() == scalar.fingerprint()

    def test_duplicate_terms_accumulate_float_exactly(self):
        # Accumulation of duplicates must match sequential scalar addition
        # bit-for-bit, not just approximately — fingerprints depend on it.
        vals = [0.1, 0.2, 0.3, 0.1, -0.7, 1e-17, 0.1]
        bulk = QuboModel(2).add_linear_from(np.zeros(len(vals), dtype=int), vals)
        scalar = _scalar_model(2, [(0, v) for v in vals], [])
        assert bulk.linear[0] == scalar.linear[0]

    def test_interleaved_scalar_and_bulk_adds(self):
        m = QuboModel(4)
        m.add_linear(1, 0.5)
        m.add_linear_from([1, 2], [0.25, 1.0])
        m.add_linear(2, -0.5)
        m.add_quadratic(0, 3, 2.0)
        m.add_quadratic_from([3, 0], [0, 3], [1.0, 1.0])
        ref = _scalar_model(
            4,
            [(1, 0.5), (1, 0.25), (2, 1.0), (2, -0.5)],
            [(0, 3, 2.0), (3, 0, 1.0), (0, 3, 1.0)],
        )
        assert m.linear == ref.linear
        assert m.quadratic == ref.quadratic
        assert m.fingerprint() == ref.fingerprint()


class TestBulkSemantics:
    def test_scalar_coefficient_broadcasts(self):
        m = QuboModel(5).add_linear_from([0, 2, 4], -1.5)
        assert m.linear == {0: -1.5, 2: -1.5, 4: -1.5}
        q = QuboModel(5).add_quadratic_from([0, 1], [2, 3], 3.0)
        assert q.quadratic == {(0, 2): 3.0, (1, 3): 3.0}

    def test_quadratic_canonicalises_and_routes_diagonal(self):
        m = QuboModel(4).add_quadratic_from([3, 2], [1, 2], [1.0, 5.0])
        assert m.quadratic == {(1, 3): 1.0}  # (3,1) stored as (1,3)
        assert m.linear == {2: 5.0}  # x_i^2 == x_i for binary variables

    def test_multidimensional_inputs_are_ravelled(self):
        groups = np.arange(6).reshape(2, 3)
        m = QuboModel(6).add_linear_from(groups, np.ones((2, 3)))
        assert m.linear == {i: 1.0 for i in range(6)}

    def test_empty_bulk_add_is_a_noop(self):
        m = QuboModel(3).add_linear_from([], [])
        m.add_quadratic_from([], [], [])
        assert m.linear == {} and m.quadratic == {}

    def test_returns_self_for_chaining(self):
        m = QuboModel(3)
        assert m.add_linear_from([0], [1.0]) is m
        assert m.add_quadratic_from([0], [1], [1.0]) is m

    def test_energies_match_scalar_path(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 7, size=30)
        cols = rng.integers(0, 7, size=30)
        vals = rng.normal(size=30)
        bulk = QuboModel(7).add_quadratic_from(rows, cols, vals)
        bulk.add_linear_from(np.arange(7), rng.normal(size=7))
        X = rng.integers(0, 2, size=(16, 7)).astype(float)
        expected = np.array([bulk.energy(x) for x in X])
        np.testing.assert_allclose(bulk.energies(X), expected)


class TestBulkValidation:
    def test_out_of_range_index_rejected(self):
        with pytest.raises(ReproError):
            QuboModel(3).add_linear_from([0, 3], [1.0, 1.0])
        with pytest.raises(ReproError):
            QuboModel(3).add_linear_from([-1], [1.0])
        with pytest.raises(ReproError):
            QuboModel(3).add_quadratic_from([0], [5], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            QuboModel(3).add_linear_from([0, 1], [1.0, 2.0, 3.0])
        with pytest.raises(ReproError):
            QuboModel(3).add_quadratic_from([0, 1], [1], [1.0])

    def test_labelled_variables_resolve_in_bulk(self):
        m = QuboModel()
        idx = m.variables_from([("q", p) for p in range(4)])
        m.add_linear_from(idx, np.arange(4, dtype=float))
        assert m.linear == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}

    def test_int_label_aliasing_disables_index_fast_path(self):
        # A model whose *labels* are ints that differ from their indices must
        # still resolve int arrays through the label table, not treat them as
        # raw positional indices.
        m = QuboModel()
        m.variable(10)
        m.variable(20)
        assert m.resolve_indices(np.array([20, 10])).tolist() == [1, 0]
        # Identity labels keep the zero-copy fast path.
        plain = QuboModel(4)
        arr = np.array([3, 1], dtype=np.int64)
        assert plain.resolve_indices(arr) is arr


class TestStructuralOps:
    def test_scale_applies_to_all_terms(self):
        m = QuboModel(3).add_linear_from([0, 1], [1.0, 2.0])
        m.add_quadratic_from([0], [2], [4.0])
        m.add_offset(3.0)
        m.scale(0.5)
        assert m.linear == {0: 0.5, 1: 1.0}
        assert m.quadratic == {(0, 2): 2.0}
        assert m.offset == 1.5

    def test_copy_is_independent(self):
        m = QuboModel(3).add_linear_from([0], [1.0])
        c = m.copy()
        c.add_linear_from([1], [5.0])
        c.add_quadratic_from([0], [2], [1.0])
        assert m.linear == {0: 1.0} and m.quadratic == {}
        assert c.linear == {0: 1.0, 1: 5.0}

    def test_coo_terms_round_trip(self):
        m = QuboModel(4).add_linear_from([2, 0], [1.0, 2.0])
        m.add_quadratic_from([1, 0], [3, 1], [4.0, 5.0])
        li, lv, qi, qj, qv = m.coo_terms()
        rebuilt = QuboModel(4).add_linear_from(li, lv)
        rebuilt.add_quadratic_from(qi, qj, qv)
        assert rebuilt.linear == m.linear
        assert rebuilt.quadratic == m.quadratic
