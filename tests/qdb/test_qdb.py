"""Tests for the quantum database package (search, set ops, join, DML, QQL)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError, ReproError
from repro.qdb.dml import (
    delete_from_superposition,
    insert_into_superposition,
    support,
    update_superposition,
)
from repro.qdb.encoding import KeyEncoding
from repro.qdb.join import classical_join, quantum_join
from repro.qdb.qql import QQLEngine
from repro.qdb.search import classical_select, quantum_select
from repro.qdb.setops import (
    classical_intersection_calls,
    quantum_difference,
    quantum_intersection,
    quantum_union,
)
from repro.qdb.table import QuantumTable


class TestEncoding:
    def test_for_domain(self):
        assert KeyEncoding.for_domain(7).num_qubits == 3
        assert KeyEncoding.for_domain(8).num_qubits == 4
        assert KeyEncoding.for_domain(0).num_qubits == 1

    def test_validate(self):
        enc = KeyEncoding(3)
        with pytest.raises(ReproError):
            enc.validate(8)
        with pytest.raises(ReproError):
            enc.validate(-1)

    def test_encode_key(self):
        enc = KeyEncoding(3)
        assert enc.encode_key(5).probability("101") == pytest.approx(1.0)

    def test_encode_table_uniform(self):
        enc = KeyEncoding(3)
        state = enc.encode_table([1, 4, 6])
        assert state.probability(1) == pytest.approx(1 / 3)
        assert state.probability(0) == 0.0

    def test_pair_index_roundtrip(self):
        a, b = KeyEncoding(3), KeyEncoding(2)
        idx = a.pair_index(5, 2, b)
        assert a.split_pair_index(idx, b) == (5, 2)


class TestQuantumTable:
    def test_dml_lifecycle(self):
        t = QuantumTable("t", 4)
        assert t.insert(3)
        assert not t.insert(3)
        assert t.contains(3)
        assert t.update(3, 9)
        assert not t.contains(3)
        assert t.delete(9)
        assert not t.delete(9)

    def test_update_collision_rejected(self):
        t = QuantumTable("t", 4, [1, 2])
        with pytest.raises(ReproError):
            t.update(1, 2)

    def test_delete_where(self):
        t = QuantumTable("t", 4, [1, 2, 3, 8])
        assert t.delete_where(lambda k: k < 3) == 2
        assert sorted(t.keys) == [3, 8]

    def test_prepare_state_uniform(self):
        t = QuantumTable("t", 3, [0, 7])
        state = t.prepare_state()
        assert state.probability(0) == pytest.approx(0.5)
        assert state.probability(7) == pytest.approx(0.5)

    def test_prepare_empty_raises(self):
        with pytest.raises(ReproError):
            QuantumTable("t", 3).prepare_state()

    def test_prepare_is_fresh_each_time(self):
        t = QuantumTable("t", 3, [1])
        assert t.prepare_state() is not t.prepare_state()


class TestSearch:
    def test_quantum_select_finds_all(self, rng):
        t = QuantumTable("t", 6, [3, 17, 42, 55])
        result = quantum_select(t, lambda k: k > 40, rng=rng)
        assert result.matches == [42, 55]
        assert result.oracle_calls > 0

    def test_classical_select_finds_all(self, rng):
        t = QuantumTable("t", 6, [3, 17, 42])
        result = classical_select(t, lambda k: k == 42, rng=rng)
        assert result.matches == [42]

    def test_no_matches(self, rng):
        t = QuantumTable("t", 5, [1, 2])
        result = quantum_select(t, lambda k: k > 30, rng=rng)
        assert result.matches == []
        assert result.success_probability == 0.0

    def test_quantum_beats_classical_at_scale(self):
        """The E7 shape: single-target search in a 2^9 space."""
        quantum_calls = []
        classical_calls = []
        for seed in range(5):
            t = QuantumTable("t", 9, range(2**9))
            q = quantum_select(t, lambda k: k == 321, rng=seed)
            quantum_calls.append(q.oracle_calls)
            t2 = QuantumTable("t", 9, range(2**9))
            c = classical_select(t2, lambda k: k == 321, rng=seed)
            classical_calls.append(c.oracle_calls)
        assert np.mean(quantum_calls) < np.mean(classical_calls)

    def test_search_result_metadata(self, rng):
        t = QuantumTable("t", 5, [7])
        result = quantum_select(t, lambda k: k == 7, rng=rng)
        assert result.info["search_space"] == 32
        assert result.info["num_marked"] == 1


class TestSetOps:
    def _tables(self):
        a = QuantumTable("a", 5, [1, 4, 9, 16, 25])
        b = QuantumTable("b", 5, [4, 9, 30])
        return a, b

    def test_intersection(self, rng):
        a, b = self._tables()
        result = quantum_intersection(a, b, rng=rng)
        assert result.keys == frozenset({4, 9})

    def test_difference(self, rng):
        a, b = self._tables()
        result = quantum_difference(a, b, rng=rng)
        assert result.keys == frozenset({1, 16, 25})

    def test_union(self, rng):
        a, b = self._tables()
        result = quantum_union(a, b, rng=rng)
        assert result.keys == frozenset({1, 4, 9, 16, 25, 30})

    def test_empty_intersection(self, rng):
        a = QuantumTable("a", 4, [1, 2])
        b = QuantumTable("b", 4, [8, 9])
        assert quantum_intersection(a, b, rng=rng).keys == frozenset()

    def test_incompatible_encodings(self, rng):
        a = QuantumTable("a", 4, [1])
        b = QuantumTable("b", 5, [1])
        with pytest.raises(ReproError):
            quantum_intersection(a, b, rng=rng)

    def test_classical_cost_model(self):
        a, b = self._tables()
        assert classical_intersection_calls(a, b) == 5


class TestJoin:
    def test_equi_join_matches_classical(self, rng):
        a = QuantumTable("a", 4, [1, 3, 5, 7])
        b = QuantumTable("b", 4, [3, 5, 8])
        q = quantum_join(a, b, rng=rng)
        c = classical_join(a, b)
        assert q.pairs == c.pairs == frozenset({(3, 3), (5, 5)})

    def test_theta_join(self, rng):
        a = QuantumTable("a", 3, [1, 2])
        b = QuantumTable("b", 3, [2, 3])
        q = quantum_join(a, b, predicate=lambda x, y: x + y == 4, rng=rng)
        assert q.pairs == frozenset({(1, 3), (2, 2)})

    def test_empty_join(self, rng):
        a = QuantumTable("a", 3, [1])
        b = QuantumTable("b", 3, [2])
        assert quantum_join(a, b, rng=rng).pairs == frozenset()

    def test_classical_cost_is_product(self):
        a = QuantumTable("a", 4, [1, 2, 3])
        b = QuantumTable("b", 4, [4, 5])
        assert classical_join(a, b).oracle_calls == 6


class TestDml:
    def test_insert_stays_uniform(self):
        t = QuantumTable("t", 4, [1, 5, 9])
        s = insert_into_superposition(t.prepare_state(), 12)
        assert support(s) == frozenset({1, 5, 9, 12})
        assert s.probability(12) == pytest.approx(0.25)

    def test_insert_existing_rejected(self):
        t = QuantumTable("t", 4, [1])
        with pytest.raises(ReproError):
            insert_into_superposition(t.prepare_state(), 1)

    def test_delete(self):
        t = QuantumTable("t", 4, [1, 5, 9])
        s = delete_from_superposition(t.prepare_state(), 5)
        assert support(s) == frozenset({1, 9})
        assert s.probability(1) == pytest.approx(0.5)

    def test_delete_last_rejected(self):
        t = QuantumTable("t", 4, [1])
        with pytest.raises(ReproError):
            delete_from_superposition(t.prepare_state(), 1)

    def test_update_is_permutation(self):
        t = QuantumTable("t", 4, [1, 5])
        s = update_superposition(t.prepare_state(), 5, 9)
        assert support(s) == frozenset({1, 9})
        assert s.is_normalized()


class TestQQL:
    @pytest.fixture
    def engine(self):
        eng = QQLEngine()
        eng.execute("CREATE TABLE emp QUBITS 6")
        eng.execute("INSERT INTO emp VALUES (3, 17, 42, 55)")
        eng.execute("CREATE TABLE dept QUBITS 6")
        eng.execute("INSERT INTO dept VALUES (17, 42, 33)")
        return eng

    def test_point_select(self, engine):
        r = engine.execute("SELECT * FROM emp WHERE key = 42", rng=0)
        assert r.keys == [42]
        assert r.method == "grover"
        assert r.oracle_calls > 0

    def test_range_select(self, engine):
        r = engine.execute("SELECT * FROM emp WHERE key < 20", rng=1)
        assert r.keys == [3, 17]

    def test_select_all(self, engine):
        assert engine.execute("SELECT * FROM emp").keys == [3, 17, 42, 55]

    def test_setops(self, engine):
        assert engine.execute("SELECT * FROM emp INTERSECT dept", rng=2).keys == [17, 42]
        assert engine.execute("SELECT * FROM emp EXCEPT dept", rng=3).keys == [3, 55]
        assert engine.execute("SELECT * FROM emp UNION dept", rng=4).keys == [3, 17, 33, 42, 55]

    def test_join(self, engine):
        r = engine.execute("SELECT * FROM emp JOIN dept", rng=5)
        assert r.pairs == [(17, 17), (42, 42)]

    def test_dml_statements(self, engine):
        assert engine.execute("DELETE FROM emp WHERE key = 3").rows_affected == 1
        assert engine.execute("UPDATE emp SET key = 11 WHERE key = 17").rows_affected == 1
        assert engine.execute("INSERT INTO emp VALUES (60)").rows_affected == 1
        assert engine.execute("SELECT * FROM emp").keys == [11, 42, 55, 60]

    def test_classical_backend(self, engine):
        ceng = QQLEngine(backend="classical")
        ceng.execute("CREATE TABLE t QUBITS 5")
        ceng.execute("INSERT INTO t VALUES (1, 9)")
        r = ceng.execute("SELECT * FROM t WHERE key = 9", rng=0)
        assert r.keys == [9]
        assert r.method == "classical_scan"

    def test_parse_errors(self, engine):
        for bad in ("DROP TABLE emp", "SELECT key FROM emp", "INSERT INTO emp VALUES ()"):
            with pytest.raises((ParseError, ReproError)):
                engine.execute(bad)

    def test_duplicate_create_rejected(self, engine):
        with pytest.raises(ReproError):
            engine.execute("CREATE TABLE emp QUBITS 4")


@settings(max_examples=10, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=8),
       st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=8),
       st.integers(min_value=0, max_value=10**6))
def test_property_setops_match_python_sets(a_keys, b_keys, seed):
    a = QuantumTable("a", 5, a_keys)
    b = QuantumTable("b", 5, b_keys)
    rng = np.random.default_rng(seed)
    assert quantum_intersection(a, b, rng=rng).keys == frozenset(a_keys & b_keys)
    assert quantum_difference(a, b, rng=rng).keys == frozenset(a_keys - b_keys)
    assert quantum_union(a, b, rng=rng).keys == frozenset(a_keys | b_keys)
