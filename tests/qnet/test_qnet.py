"""Tests for the quantum-internet substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError, ReproError, SimulationError
from repro.qnet.epr import bell_measurement, create_epr_pair
from repro.qnet.link import EntanglementLink, fidelity_to_werner, werner_to_fidelity
from repro.qnet.network import QuantumNetwork
from repro.qnet.nocloning import UNIVERSAL_CLONER_FIDELITY, UniversalCloner, attempt_exact_clone, cloning_is_impossible
from repro.qnet.qkd import run_bb84, run_e91
from repro.qnet.repeater import chain_fidelity, purify, purify_to_target, swap_fidelity
from repro.qnet.superdense import superdense_decode, superdense_encode
from repro.qnet.teleport import teleport, teleport_fidelity_via_werner, teleport_via_werner
from repro.exceptions import NoCloningError
from repro.quantum.bell import bell_state
from repro.quantum.density import DensityMatrix
from repro.quantum.gates import H_MATRIX, cnot_gate
from repro.quantum.state import Statevector


def _random_qubit(seed):
    gen = np.random.default_rng(seed)
    return Statevector(gen.normal(size=2) + 1j * gen.normal(size=2))


class TestEprTeleport:
    def test_epr_pair_is_phi_plus(self):
        assert create_epr_pair().fidelity(bell_state("phi+")) == pytest.approx(1.0)

    def test_bell_measurement_identifies_states(self, rng):
        expected = {"phi+": (0, 0), "psi+": (0, 1), "phi-": (1, 0), "psi-": (1, 1)}
        for kind, bits in expected.items():
            outcome, _ = bell_measurement(bell_state(kind), (0, 1), rng=rng)
            assert outcome == bits

    @pytest.mark.parametrize("seed", range(5))
    def test_teleport_perfect_fidelity(self, seed):
        msg = _random_qubit(seed)
        result = teleport(msg, rng=seed)
        assert result.fidelity == pytest.approx(1.0)

    def test_teleport_rejects_multiqubit(self):
        with pytest.raises(SimulationError):
            teleport(bell_state("phi+"))

    def test_werner_teleport_matches_formula(self):
        """Exact mixed-state teleportation agrees with (2F+1)/3 on average."""
        for pair_f in (1.0, 0.9, 0.75):
            fids = []
            for seed in range(6):
                msg = _random_qubit(seed)
                _, f = teleport_via_werner(msg, pair_f, rng=seed)
                fids.append(f)
            assert np.mean(fids) == pytest.approx(
                teleport_fidelity_via_werner(pair_f), abs=0.02
            )

    def test_superdense_all_messages(self, rng):
        for bits in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            assert superdense_decode(superdense_encode(bits), rng=rng) == bits


class TestWernerAlgebra:
    def test_fidelity_werner_roundtrip(self):
        for f in (0.25, 0.5, 0.8, 1.0):
            assert werner_to_fidelity(fidelity_to_werner(f)) == pytest.approx(f)

    def test_swap_perfect_pairs(self):
        assert swap_fidelity(1.0, 1.0) == pytest.approx(1.0)

    def test_swap_degrades(self):
        assert swap_fidelity(0.9, 0.9) < 0.9

    def test_swap_matches_density_simulation(self):
        """Cross-validate the Werner algebra against the exact simulator."""
        f1, f2 = 0.9, 0.85
        rho = DensityMatrix.werner(f1).tensor(DensityMatrix.werner(f2))
        rho.apply_matrix(cnot_gate().matrix, [1, 2])
        rho.apply_matrix(H_MATRIX, [1])
        idx = np.arange(16)
        mask = (((idx >> 2) & 1) == 0) & (((idx >> 1) & 1) == 0)
        proj = np.where(mask, 1.0, 0.0)
        m = rho.matrix * np.outer(proj, proj)
        m = m / np.trace(m).real
        reduced = DensityMatrix(m, validate=False).partial_trace([0, 3])
        assert reduced.fidelity_with_pure(bell_state("phi+")) == pytest.approx(
            swap_fidelity(f1, f2), abs=1e-9
        )

    def test_chain_fidelity_monotone_in_length(self):
        fids = [chain_fidelity([0.95] * k) for k in range(1, 7)]
        assert all(a > b for a, b in zip(fids, fids[1:]))

    def test_purification_improves_above_half(self):
        result = purify(0.8, 0.8)
        assert result.output_fidelity > 0.8
        assert 0.0 < result.success_probability <= 1.0

    def test_nested_purification_reaches_target(self):
        f, rounds, pairs = purify_to_target(0.8, 0.95)
        assert f >= 0.95
        assert pairs > 2.0

    def test_pumping_saturates(self):
        with pytest.raises(ReproError):
            purify_to_target(0.8, 0.99, scheme="pumping")

    def test_purify_validates_inputs(self):
        with pytest.raises(ReproError):
            purify(0.1, 0.9)


class TestLinksAndNetwork:
    def test_link_generation_deterministic(self):
        link = EntanglementLink(success_prob=0.5)
        a = link.generate(rng=3)
        b = link.generate(rng=3)
        assert a.attempts == b.attempts

    def test_link_decoherence(self):
        link = EntanglementLink(base_fidelity=0.95, memory_coherence_time=10.0)
        assert link.decohere(0.95, 10.0) < 0.95
        assert link.decohere(0.95, 0.0) == pytest.approx(0.95)

    def test_link_validation(self):
        with pytest.raises(ReproError):
            EntanglementLink(success_prob=0.0)
        with pytest.raises(ReproError):
            EntanglementLink(base_fidelity=0.1)

    def test_chain_topology(self):
        net = QuantumNetwork.chain(4)
        assert net.nodes == ["n0", "n1", "n2", "n3"]
        assert net.shortest_path("n0", "n3") == ["n0", "n1", "n2", "n3"]

    def test_grid_routing(self):
        net = QuantumNetwork.grid(3, 3)
        path = net.shortest_path("n0_0", "n2_2")
        assert len(path) == 5

    def test_best_fidelity_routing_avoids_bad_link(self):
        net = QuantumNetwork()
        for n in ("a", "b", "c"):
            net.add_node(n)
        net.add_link("a", "c", EntanglementLink(base_fidelity=0.6))
        net.add_link("a", "b", EntanglementLink(base_fidelity=0.98))
        net.add_link("b", "c", EntanglementLink(base_fidelity=0.98))
        assert net.shortest_path("a", "c") == ["a", "c"]
        assert net.best_fidelity_path("a", "c") == ["a", "b", "c"]

    def test_distribute_fidelity_decays_with_hops(self):
        link = EntanglementLink(success_prob=1.0, base_fidelity=0.96)
        results = []
        for n in (2, 4, 6):
            net = QuantumNetwork.chain(n, link)
            res = net.distribute("n0", f"n{n - 1}", rng=0)
            results.append(res.fidelity)
        assert results[0] > results[1] > results[2]

    def test_distribute_with_purification_target(self):
        net = QuantumNetwork.chain(5, EntanglementLink(success_prob=0.8, base_fidelity=0.95))
        res = net.distribute("n0", "n4", rng=1, min_fidelity=0.9)
        assert res.fidelity >= 0.9
        assert res.pairs_consumed > 1.0

    def test_no_path_raises(self):
        net = QuantumNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(ProtocolError):
            net.distribute("a", "b", rng=0)

    def test_same_node_rejected(self):
        net = QuantumNetwork.chain(2)
        with pytest.raises(ProtocolError):
            net.distribute("n0", "n0", rng=0)


class TestQKD:
    def test_bb84_honest_low_qber(self):
        result = run_bb84(256, eve=False, rng=0)
        assert result.qber == pytest.approx(0.0, abs=0.02)
        assert not result.aborted
        assert len(result.key) > 0

    def test_bb84_eve_raises_qber(self):
        result = run_bb84(512, eve=True, rng=1)
        assert result.qber == pytest.approx(0.25, abs=0.08)
        assert result.aborted
        assert result.key == []

    def test_bb84_channel_noise(self):
        result = run_bb84(512, eve=False, channel_flip_prob=0.05, rng=2)
        assert 0.0 < result.qber < 0.12

    def test_bb84_sifting_keeps_about_half(self):
        result = run_bb84(512, eve=False, rng=3)
        assert result.sifted_length == pytest.approx(256, abs=60)

    def test_e91_honest_violates_chsh(self):
        result = run_e91(600, eve=False, rng=4)
        assert result.chsh_value > 2.0
        assert result.secure
        assert len(result.key) > 0

    def test_e91_eve_destroys_violation(self):
        result = run_e91(600, eve=True, rng=5)
        assert abs(result.chsh_value) <= 2.1
        assert not result.secure

    def test_bb84_minimum_size(self):
        with pytest.raises(ReproError):
            run_bb84(4)


class TestNoCloning:
    def test_nonorthogonal_cannot_clone(self):
        zero = Statevector.zero_state(1)
        plus = Statevector([1, 1])
        assert cloning_is_impossible(zero, plus)

    def test_orthogonal_can_clone(self):
        zero = Statevector.zero_state(1)
        one = Statevector.from_label("1")
        assert not cloning_is_impossible(zero, one)

    def test_attempt_exact_clone_raises(self):
        with pytest.raises(NoCloningError):
            attempt_exact_clone(Statevector.zero_state(1))

    @pytest.mark.parametrize("seed", range(4))
    def test_universal_cloner_fidelity_is_five_sixths(self, seed):
        cloner = UniversalCloner()
        assert cloner.copy_fidelity(_random_qubit(seed)) == pytest.approx(
            UNIVERSAL_CLONER_FIDELITY
        )

    def test_cloner_outputs_are_mixed(self):
        copy_a, copy_b = UniversalCloner().clone(Statevector.zero_state(1))
        assert copy_a.purity() < 1.0
        assert np.allclose(copy_a.matrix, copy_b.matrix)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.5, max_value=1.0), st.floats(min_value=0.5, max_value=1.0))
def test_property_swap_never_improves(f1, f2):
    out = swap_fidelity(f1, f2)
    assert out <= max(f1, f2) + 1e-12


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.7, max_value=0.99))
def test_property_purification_moves_toward_one(f):
    result = purify(f, f)
    assert result.output_fidelity > f
