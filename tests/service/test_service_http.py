"""End-to-end HTTP smoke: real server subprocess, real sockets, real signals.

Boots ``python -m repro.service --port 0`` once per module, parses the
bound port from the startup line, and drives it with stdlib ``urllib``
from worker threads — the same way the CI ``service-smoke`` job and any
external client would.  SIGTERM at the end asserts the graceful-shutdown
contract: drain, then exit 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SPEC = {"kind": "mqo", "num_queries": 3, "plans_per_query": 3, "instance_seed": 5}


@pytest.fixture(scope="module")
def server():
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_SERVICE_WINDOW_S="0.25",
        REPRO_SERVICE_MAX_WAVE="16",
        REPRO_STORE="",  # keep the smoke hermetic even if the env sets one
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        assert match, f"unexpected startup line: {line!r}"
        yield proc, f"http://127.0.0.1:{match.group(1)}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def _post(base, path, body):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def test_health_and_readiness(server):
    _, base = server
    status, body = _get(base, "/healthz")
    assert status == 200 and json.loads(body)["ok"] is True
    status, body = _get(base, "/readyz")
    ready = json.loads(body)
    assert status == 200 and ready["ready"] is True
    assert ready["backends"] == ["sa"]


def test_submit_poll_and_wait(server):
    _, base = server
    status, body = _post(base, "/v1/solve", {"problem": SPEC, "seed": 3})
    assert status == 202
    job_id = json.loads(body)["job_id"]

    status, body = _post(base, "/v1/solve", {"problem": SPEC, "seed": 4, "wait": True})
    assert status == 200
    waited = json.loads(body)
    assert waited["status"] == "done"
    assert isinstance(waited["result"]["objective"], (int, float))

    status, body = _get(base, f"/v1/jobs/{job_id}")
    assert status == 200
    assert json.loads(body)["status"] == "done"


def test_error_mapping(server):
    _, base = server
    assert _get(base, "/v1/jobs/job-999999")[0] == 404
    assert _get(base, "/no/such/route")[0] == 404
    assert _get(base, "/v1/solve")[0] == 405
    assert _post(base, "/v1/solve", {"problem": {"kind": "nope"}})[0] == 400
    assert _post(base, "/v1/solve", "not an object")[0] == 400
    assert _post(base, "/v1/solve", {"problem": SPEC, "seed": -2})[0] == 400


def test_concurrent_submissions_coalesce_on_the_wire(server):
    _, base = server
    results = [None] * 8

    def submit(i):
        results[i] = _post(
            base, "/v1/solve", {"problem": SPEC, "seed": i % 2, "wait": True}
        )

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(len(results))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert all(status == 200 for status, _ in results)
    bodies = [json.loads(body) for _, body in results]
    assert all(body["status"] == "done" for body in bodies)
    # Same seed over the wire -> identical objective, whatever wave it rode.
    by_seed = {}
    for body in bodies:
        by_seed.setdefault(body["seed"], set()).add(body["result"]["objective"])
    assert all(len(objectives) == 1 for objectives in by_seed.values())

    status, text = _get(base, "/metrics")
    assert status == 200
    # At least one wave carried more than one request: the le="1" bucket
    # counts strictly fewer waves than the total.
    waves = {
        key: float(value)
        for key, value in re.findall(r"^(repro_service_wave_size\S*) (\S+)$", text, re.M)
    }
    assert waves['repro_service_wave_size_bucket{le="1"}'] < waves["repro_service_wave_size_count"]


def test_sigterm_drains_and_exits_zero(server):
    proc, base = server
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    tail = proc.stdout.read()
    assert "draining" in tail and "stopped" in tail
