"""End-to-end HTTP smoke: real server subprocess, real sockets, real signals.

Boots ``python -m repro.service --port 0`` once per module, parses the
bound port from the startup line, and drives it with stdlib ``urllib``
from worker threads — the same way the CI ``service-smoke`` job and any
external client would.  SIGTERM at the end asserts the graceful-shutdown
contract: drain, then exit 0.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SPEC = {"kind": "mqo", "num_queries": 3, "plans_per_query": 3, "instance_seed": 5}


@pytest.fixture(scope="module")
def server():
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_SERVICE_WINDOW_S="0.25",
        REPRO_SERVICE_MAX_WAVE="16",
        REPRO_STORE="",  # keep the smoke hermetic even if the env sets one
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        assert match, f"unexpected startup line: {line!r}"
        yield proc, f"http://127.0.0.1:{match.group(1)}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def _post(base, path, body):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def test_health_and_readiness(server):
    _, base = server
    status, body = _get(base, "/healthz")
    assert status == 200 and json.loads(body)["ok"] is True
    status, body = _get(base, "/readyz")
    ready = json.loads(body)
    assert status == 200 and ready["ready"] is True
    assert ready["backends"] == ["sa"]


def test_submit_poll_and_wait(server):
    _, base = server
    status, body = _post(base, "/v1/solve", {"problem": SPEC, "seed": 3})
    assert status == 202
    job_id = json.loads(body)["job_id"]

    status, body = _post(base, "/v1/solve", {"problem": SPEC, "seed": 4, "wait": True})
    assert status == 200
    waited = json.loads(body)
    assert waited["status"] == "done"
    assert isinstance(waited["result"]["objective"], (int, float))

    status, body = _get(base, f"/v1/jobs/{job_id}")
    assert status == 200
    assert json.loads(body)["status"] == "done"


def test_traced_request_resolves_to_a_span_tree(server):
    """The flight-recorder contract over real sockets: the job id of a
    solved request dereferences to its admission -> queue -> wave ->
    shard -> backend span chain via GET /v1/traces/<job_id>."""
    _, base = server
    status, body = _post(
        base, "/v1/solve",
        {"problem": SPEC, "seed": 6, "wait": True, "tenant": "smoke"},
    )
    assert status == 200
    waited = json.loads(body)
    assert waited["trace_id"]

    status, body = _get(base, f"/v1/traces/{waited['job_id']}")
    assert status == 200
    trace = json.loads(body)
    assert trace["trace_id"] == waited["trace_id"]
    names = [span["name"] for span in trace["spans"]]
    for required in ("http.request", "service.admission", "service.queue_wait",
                     "service.wave", "engine.shard", "engine.solve"):
        assert required in names, f"missing {required} in {names}"
    # Parentage is intact end to end: the tree nests under the HTTP root.
    assert any(node["name"] == "http.request" for node in trace["tree"])

    status, body = _get(base, "/v1/traces?tenant=smoke")
    assert status == 200
    listed = json.loads(body)
    assert any(t["job_id"] == waited["job_id"] for t in listed["traces"])


def test_error_mapping(server):
    _, base = server
    assert _get(base, "/v1/jobs/job-999999")[0] == 404
    assert _get(base, "/no/such/route")[0] == 404
    assert _get(base, "/v1/solve")[0] == 405
    assert _post(base, "/v1/solve", {"problem": {"kind": "nope"}})[0] == 400
    assert _post(base, "/v1/solve", "not an object")[0] == 400
    assert _post(base, "/v1/solve", {"problem": SPEC, "seed": -2})[0] == 400


def test_concurrent_submissions_coalesce_on_the_wire(server):
    _, base = server
    results = [None] * 8

    def submit(i):
        results[i] = _post(
            base, "/v1/solve", {"problem": SPEC, "seed": i % 2, "wait": True}
        )

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(len(results))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert all(status == 200 for status, _ in results)
    bodies = [json.loads(body) for _, body in results]
    assert all(body["status"] == "done" for body in bodies)
    # Same seed over the wire -> identical objective, whatever wave it rode.
    by_seed = {}
    for body in bodies:
        by_seed.setdefault(body["seed"], set()).add(body["result"]["objective"])
    assert all(len(objectives) == 1 for objectives in by_seed.values())

    status, text = _get(base, "/metrics")
    assert status == 200
    # At least one wave carried more than one request: the le="1" bucket
    # counts strictly fewer waves than the total.
    waves = {
        key: float(value)
        for key, value in re.findall(r"^(repro_service_wave_size\S*) (\S+)$", text, re.M)
    }
    assert waves['repro_service_wave_size_bucket{le="1"}'] < waves["repro_service_wave_size_count"]


# -- raw-socket parser hardening ---------------------------------------------
#
# urllib cannot send a malformed request, so these drive an in-process
# ServiceServer (port 0) over bare asyncio sockets: negative
# Content-Length and truncated bodies are the *client's* fault and must
# map to 400, never to a 500 from readexactly().


def _run_with_server(handler, **config_overrides):
    from repro.service import ServiceConfig, SolverService
    from repro.service.http import ServiceServer

    async def scenario():
        config = dict(
            window_s=0.05, max_wave=16, port=0, backends=("sa",),
            backend_opts={"sa": {"num_reads": 2, "num_sweeps": 20}},
            executor="threads", store="",
        )
        config.update(config_overrides)
        server = ServiceServer(SolverService(ServiceConfig(**config)))
        await server.start()
        try:
            return await handler(server)
        finally:
            await server.shutdown()

    return asyncio.run(scenario())


async def _raw_request(port, payload: bytes, eof: bool = False) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    if eof:
        writer.write_eof()  # the body will never arrive
    data = await asyncio.wait_for(reader.read(), timeout=30)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return data.decode("latin-1", "replace")


def _build_post(path: str, obj) -> bytes:
    body = json.dumps(obj).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
    )
    return head.encode() + body


def _parse_response(raw: str):
    head, _, body = raw.partition("\r\n\r\n")
    lines = head.split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def test_negative_content_length_is_a_400_not_a_500():
    async def handler(server):
        raw = await _raw_request(
            server.bound_port,
            b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n\r\n",
        )
        status, _, body = _parse_response(raw)
        assert status == 400
        assert "Content-Length" in body

    _run_with_server(handler)


def test_unparsable_content_length_is_a_400():
    async def handler(server):
        raw = await _raw_request(
            server.bound_port,
            b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: ten\r\n\r\n",
        )
        status, _, _ = _parse_response(raw)
        assert status == 400

    _run_with_server(handler)


def test_truncated_body_is_a_400_not_a_hang_or_500():
    async def handler(server):
        raw = await _raw_request(
            server.bound_port,
            b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\n"
            b'{"problem"',
            eof=True,
        )
        status, _, body = _parse_response(raw)
        assert status == 400
        assert "truncated" in body
        assert "10 of 50" in body

    _run_with_server(handler)


def test_shed_responses_carry_retry_after():
    """429s from admission come with a Retry-After the client can obey."""

    async def handler(server):
        # Window is huge and the queue holds one job: the first submit
        # parks, the second sheds.
        first = await _raw_request(
            server.bound_port, _build_post("/v1/solve", {"problem": SPEC, "seed": 0})
        )
        assert _parse_response(first)[0] == 202
        second = await _raw_request(
            server.bound_port, _build_post("/v1/solve", {"problem": SPEC, "seed": 1})
        )
        status, headers, body = _parse_response(second)
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert "shed" in body and "queue_full" in body

    _run_with_server(handler, window_s=30.0, max_queue_depth=1)


def test_tenant_and_priority_round_trip_over_the_wire():
    async def handler(server):
        raw = await _raw_request(
            server.bound_port,
            _build_post("/v1/solve", {
                "problem": SPEC, "seed": 2, "wait": True,
                "tenant": "alice", "priority": "batch",
            }),
        )
        status, _, body = _parse_response(raw)
        assert status == 200
        job = json.loads(body)
        assert job["tenant"] == "alice"
        assert job["priority"] == "batch"
        assert job["admission"]["action"] == "admit"
        # Wrong types are the client's problem: 400, not a crash.
        for bad in ({"tenant": 7}, {"priority": ["interactive"]}):
            raw = await _raw_request(
                server.bound_port,
                _build_post("/v1/solve", {"problem": SPEC, "seed": 2, **bad}),
            )
            assert _parse_response(raw)[0] == 400

    _run_with_server(handler)


def test_sigterm_drains_and_exits_zero(server):
    proc, base = server
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    tail = proc.stdout.read()
    assert "draining" in tail and "stopped" in tail
