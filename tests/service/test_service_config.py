"""ServiceConfig: defaults, TOML layering, env overrides, validation."""

import pytest

from repro.exceptions import ReproError
from repro.service.config import ServiceConfig, load_config


def test_defaults_are_valid_and_unscheduled():
    config = load_config(env={})
    assert config.host == "127.0.0.1"
    assert config.backends == ("sa",)
    assert config.scheduled is False
    assert config.max_wave == 64
    assert config.validate() is config


def test_validation_rejects_bad_values():
    bad = [
        dict(port=70000),
        dict(max_queue_depth=0),
        dict(job_retention=0),
        dict(window_s=-0.5),
        dict(max_wave=0),
        dict(max_inflight_waves=0),
        dict(backends=()),
        dict(backend_opts={"ghost": {}}),  # opts for a backend not in the fleet
        dict(epsilon=1.5),
        dict(top_k=0),
    ]
    for overrides in bad:
        with pytest.raises(ReproError):
            ServiceConfig(**overrides).validate()


def test_env_overrides_beat_defaults():
    env = {
        "REPRO_SERVICE_PORT": "9001",
        "REPRO_SERVICE_WINDOW_S": "0.5",
        "REPRO_SERVICE_BACKENDS": "sa, tabu",
        "REPRO_SERVICE_MAX_WAVE": "8",
    }
    config = load_config(env=env)
    assert config.port == 9001
    assert config.window_s == 0.5
    assert config.backends == ("sa", "tabu")
    assert config.scheduled is True
    assert config.max_wave == 8


def test_bad_env_value_is_a_config_error():
    with pytest.raises(ReproError):
        load_config(env={"REPRO_SERVICE_PORT": "not-a-port"})


def test_kwarg_overrides_beat_env():
    config = load_config(env={"REPRO_SERVICE_PORT": "9001"}, port=0)
    assert config.port == 0


def test_toml_file_layering(tmp_path):
    pytest.importorskip("tomllib")  # 3.11+ only; 3.10 runs env/kwargs config
    path = tmp_path / "service.toml"
    path.write_text(
        """
[service]
port = 8800
max_queue_depth = 16

[coalesce]
window_s = 0.2
max_wave = 4

[engine]
backends = ["sa", "tabu"]
executor = "serial"
top_k = 4
store = ""

[engine.backend_opts.sa]
num_reads = 8
"""
    )
    config = load_config(path, env={})
    assert config.port == 8800
    assert config.max_queue_depth == 16
    assert config.window_s == 0.2
    assert config.max_wave == 4
    assert config.backends == ("sa", "tabu")
    assert config.backend_opts == {"sa": {"num_reads": 8}}
    assert config.store == ""  # explicit empty string forces the store off
    # env still beats the file...
    assert load_config(path, env={"REPRO_SERVICE_PORT": "1234"}).port == 1234
    # ...and kwargs beat both.
    assert load_config(path, env={"REPRO_SERVICE_PORT": "1234"}, port=0).port == 0


def test_toml_unknown_keys_are_errors(tmp_path):
    pytest.importorskip("tomllib")
    bad_table = tmp_path / "bad_table.toml"
    bad_table.write_text("[surprise]\nx = 1\n")
    with pytest.raises(ReproError):
        load_config(bad_table, env={})

    bad_key = tmp_path / "bad_key.toml"
    bad_key.write_text("[coalesce]\nwindows = 0.5\n")  # typo for window_s
    with pytest.raises(ReproError):
        load_config(bad_key, env={})


# -- [admission] -------------------------------------------------------------


def test_admission_defaults():
    config = load_config(env={})
    assert config.tenants == {}
    assert config.default_budget == {}
    assert config.degrade_backends == ("tabu",)
    assert config.degrade_ratio == 0.75
    assert config.resolved_lane_weights() == {
        "interactive": 4, "batch": 2, "best_effort": 1,
    }


def test_admission_toml_table(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "service.toml"
    path.write_text(
        """
[admission]
degrade_backends = ["tabu", "sa"]
degrade_ratio = 0.5
lane_weights = {interactive = 8, best_effort = 1}

[admission.default_budget]
max_inflight = 256

[admission.tenants.crawler]
max_inflight = 8
backend_seconds = 30.0
window_s = 120.0
queue_share = 0.25
"""
    )
    config = load_config(path, env={})
    assert config.degrade_backends == ("tabu", "sa")
    assert config.degrade_ratio == 0.5
    assert config.default_budget == {"max_inflight": 256}
    assert config.tenants == {
        "crawler": {
            "max_inflight": 8, "backend_seconds": 30.0,
            "window_s": 120.0, "queue_share": 0.25,
        },
    }
    # Partial lane_weights overlay the defaults rather than replacing them.
    assert config.resolved_lane_weights() == {
        "interactive": 8, "batch": 2, "best_effort": 1,
    }


def test_admission_env_overrides():
    env = {
        "REPRO_SERVICE_DEGRADE_BACKENDS": "sa, tabu",
        "REPRO_SERVICE_TENANTS": (
            "crawler:max_inflight=8:backend_seconds=30;lab:queue_share=0.5"
        ),
    }
    config = load_config(env=env)
    assert config.degrade_backends == ("sa", "tabu")
    assert config.tenants == {
        "crawler": {"max_inflight": 8, "backend_seconds": 30.0},
        "lab": {"queue_share": 0.5},
    }
    with pytest.raises(ReproError):  # malformed budget spelling
        load_config(env={"REPRO_SERVICE_TENANTS": "crawler:max_inflight"})


def test_admission_validation_rejects_bad_values():
    bad = [
        dict(tenants={"crawler": {"wallclock": 5}}),      # unknown budget key
        dict(tenants={"crawler": {"max_inflight": 0}}),
        dict(default_budget={"queue_share": 2.0}),
        dict(lane_weights={"urgent": 1}),                 # unknown priority
        dict(lane_weights={"interactive": 0}),
        dict(degrade_backends=()),
        dict(degrade_ratio=1.5),
    ]
    for overrides in bad:
        with pytest.raises(ReproError):
            ServiceConfig(**overrides).validate()
