"""SolverService lifecycle: coalescing determinism, jobs, drain, metrics.

The acceptance claim under test: N concurrent submissions coalesce into
waves (at least 4x fewer waves than requests at N=16) while every result
stays **bit-identical** to a direct ``repro.solve`` call with the same
problem and seed — coalescing amortises dispatch, it never changes math.
Wave composition is pinned by the size trigger (``max_wave`` = the number
of pending submissions, window far in the future), not by real-time races.
"""

import asyncio
import math

import pytest

from repro.api.facade import solve
from repro.exceptions import ReproError
from repro.service import ServiceConfig, SolverService, problem_from_spec

MQO_SPEC = {
    "kind": "mqo",
    "num_queries": 3,
    "plans_per_query": 3,
    "sharing_density": 0.4,
    "instance_seed": 7,
}
FAST_SA = {"sa": {"num_reads": 4, "num_sweeps": 50}}


def make_service(**overrides) -> SolverService:
    defaults = dict(
        window_s=30.0,  # only the size trigger can dispatch
        backends=("sa",),
        backend_opts=FAST_SA,
        executor="threads",
    )
    defaults.update(overrides)
    return SolverService(ServiceConfig(**defaults))


def test_concurrent_submissions_coalesce_and_match_direct_solves():
    async def scenario():
        seeds = [s % 4 for s in range(16)]  # 16 requests over 4 distinct seeds
        service = make_service(max_wave=16)
        await service.start()
        jobs = [service.submit(MQO_SPEC, seed=s) for s in seeds]
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return service, jobs

    service, jobs = asyncio.run(scenario())

    # >= 4x fewer waves than requests (here: exactly one wave for all 16).
    waves = service._m["waves"].value()
    assert waves == 1
    assert len(jobs) / waves >= 4
    assert service._m["deduped"].value() == 12  # 16 requests, 4 unique solves
    assert service._m["unique_solves"].value() == 4
    assert service._m["wave_size"].count() == 1

    for job in jobs:
        assert job.status == "done"
        assert job.wave == 1
        direct = solve(
            problem_from_spec(MQO_SPEC), backend="sa", seed=job.seed,
            num_reads=4, num_sweeps=50,
        )
        assert direct.objective == job.result.objective
        assert direct.solution == job.result.solution
        assert direct.energy == job.result.energy or (
            math.isnan(direct.energy) and math.isnan(job.result.energy)
        )


def test_results_independent_of_wave_composition():
    """Seed 1 solved alone equals seed 1 solved in a crowd of strangers."""

    async def solo():
        service = make_service(max_wave=1)
        await service.start()
        job = service.submit(MQO_SPEC, seed=1)
        await job.future
        await service.shutdown()
        return job.result

    async def crowded():
        service = make_service(max_wave=4)
        await service.start()
        jobs = [
            service.submit(MQO_SPEC, seed=1),
            service.submit(MQO_SPEC, seed=9),
            service.submit({**MQO_SPEC, "instance_seed": 8}, seed=1),
            service.submit(MQO_SPEC, seed=3),
        ]
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return jobs[0].result

    alone, among = asyncio.run(solo()), asyncio.run(crowded())
    assert alone.objective == among.objective
    assert alone.solution == among.solution


def test_job_lifecycle_and_unknown_id():
    async def scenario():
        service = make_service(max_wave=2)
        await service.start()
        job = service.submit(MQO_SPEC, seed=5)
        assert job.status == "pending"
        assert service.jobs.get(job.id) is job
        assert service.jobs.get("job-999999") is None
        companion = service.submit(MQO_SPEC, seed=6)  # size trigger fires
        await asyncio.gather(job.future, companion.future)
        assert job.status == "done"
        assert job.started_at is not None and job.finished_at is not None
        assert job.latency_s >= 0
        body = job.as_json_dict()
        assert body["status"] == "done"
        assert body["result"]["objective"] == pytest.approx(job.result.objective)
        await service.shutdown()

    asyncio.run(scenario())


def test_graceful_shutdown_drains_accepted_jobs():
    async def scenario():
        # Enormous window and wave: nothing would dispatch before shutdown.
        service = make_service(max_wave=64)
        await service.start()
        jobs = [service.submit(MQO_SPEC, seed=s) for s in range(3)]
        assert all(job.status == "pending" for job in jobs)
        await service.shutdown()  # must release and finish all three
        assert all(job.status == "done" for job in jobs)
        assert service.stopped
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed=0)
        return service

    service = asyncio.run(scenario())
    assert service._m["responses"].value(status="done") == 3
    assert service._m["rejected"].value(reason="draining") == 1


def test_submit_validation_and_backpressure():
    async def scenario():
        service = make_service(max_wave=64, max_queue_depth=2)
        await service.start()
        with pytest.raises(ReproError):
            service.submit({"kind": "nope"}, seed=0)
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed=-1)
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed="zero")
        service.submit(MQO_SPEC, seed=0)
        service.submit(MQO_SPEC, seed=1)
        with pytest.raises(ReproError):  # depth limit
            service.submit(MQO_SPEC, seed=2)
        assert service._m["rejected"].value(reason="bad_spec") == 1
        assert service._m["rejected"].value(reason="bad_seed") == 2
        assert service._m["rejected"].value(reason="queue_full") == 1
        await service.shutdown()

    asyncio.run(scenario())


def test_wave_error_fails_jobs_not_service():
    async def scenario():
        # An unknown backend option detonates inside the wave dispatch.
        service = make_service(
            max_wave=2, backend_opts={"sa": {"definitely_not_an_option": 1}}
        )
        await service.start()
        jobs = [service.submit(MQO_SPEC, seed=s) for s in (0, 1)]
        await asyncio.gather(*[job.future for job in jobs])
        assert all(job.status == "error" for job in jobs)
        assert all(job.error for job in jobs)
        # The dispatcher survived: a fresh (valid) service interaction works
        # at the HTTP layer; here we just confirm clean shutdown.
        await service.shutdown()
        return service

    service = asyncio.run(scenario())
    assert service._m["responses"].value(status="error") == 2


def test_cross_wave_cache_hits_with_single_solve_keys():
    """The second wave re-solving the same (spec, seed) hits the cache."""

    async def scenario():
        service = make_service(max_wave=2, cache=True)
        await service.start()
        first = [service.submit(MQO_SPEC, seed=s) for s in (1, 2)]
        await asyncio.gather(*[job.future for job in first])
        second = [service.submit(MQO_SPEC, seed=s) for s in (1, 2)]
        await asyncio.gather(*[job.future for job in second])
        await service.shutdown()
        return service, first, second

    service, first, second = asyncio.run(scenario())
    assert service._m["waves"].value() == 2
    assert service.cache.stats["hits"] >= 2
    for before, after in zip(first, second):
        assert before.result.objective == after.result.objective


def test_metrics_render_exposition_format():
    async def scenario():
        service = make_service(max_wave=2)
        await service.start()
        jobs = [service.submit(MQO_SPEC, seed=s) for s in (1, 1)]
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return service.render_metrics()

    text = asyncio.run(scenario())
    assert "# TYPE repro_service_requests_total counter" in text
    assert "repro_service_requests_total 2" in text
    assert "repro_service_waves_total 1" in text
    assert "repro_service_deduped_requests_total 1" in text
    assert 'repro_service_responses_total{status="done"} 2' in text
    assert "# TYPE repro_service_wave_size histogram" in text
    assert 'repro_service_wave_size_bucket{le="2"} 1' in text
    assert 'repro_service_wave_size_bucket{le="+Inf"} 1' in text
    assert "repro_service_request_latency_seconds_count 2" in text
    assert 'repro_engine_cache{event="misses"}' in text
    # Scoreboard capacity flows through as per-backend gauges.
    assert 'repro_backend_capacity{backend="sa",stat="count"} 1' in text
    assert text.endswith("\n")


def test_readiness_reports_capacity_snapshot():
    async def scenario():
        service = make_service(max_wave=2)
        await service.start()
        before = service.readiness()
        jobs = [service.submit(MQO_SPEC, seed=s) for s in (1, 2)]
        await asyncio.gather(*[job.future for job in jobs])
        during = service.readiness()
        await service.shutdown()
        after = service.readiness()
        return before, during, after

    before, during, after = asyncio.run(scenario())
    assert before["ready"] is True
    assert before["backends"] == ["sa"]
    assert during["capacity"]["sa"]["count"] == 2
    # readiness() must stay strict-JSON serialisable (NaN -> null).
    import json

    json.dumps(during)
    assert after["ready"] is False


# -- wave hardening: every job reaches a terminal state ----------------------


def test_short_wave_results_terminalise_every_job():
    """An engine returning too few results errors the wave, strands no one."""

    async def scenario():
        service = make_service(max_wave=2)
        await service.start()
        service._solve_wave = lambda jobs: [object()]  # one result, two jobs
        jobs = [service.submit(MQO_SPEC, seed=s) for s in (0, 1)]
        await asyncio.wait_for(
            asyncio.gather(*[job.future for job in jobs]), timeout=10.0
        )
        await service.shutdown()
        return service, jobs

    service, jobs = asyncio.run(scenario())
    for job in jobs:
        assert job.status == "error"
        assert "1 results for 2 jobs" in job.error
        assert job.future.done()
    assert service._m["responses"].value(status="error") == 2


def test_poisoned_finish_loop_still_resolves_every_future():
    """A bug thrown *after* the engine call (here: a poisoned metrics
    observer) must not leave jobs forever-running or futures pending."""

    async def scenario():
        service = make_service(max_wave=3)
        await service.start()

        real_finish, calls = service._finish, []

        def poisoned(job, status, result=None, error=None):
            calls.append(job.id)
            if len(calls) == 2:  # job 1 finishes cleanly, job 2 detonates
                raise RuntimeError("observer exploded")
            real_finish(job, status, result=result, error=error)

        service._finish = poisoned
        jobs = [service.submit(MQO_SPEC, seed=s) for s in (0, 1, 2)]
        await asyncio.wait_for(
            asyncio.gather(*[job.future for job in jobs]), timeout=10.0
        )
        # The wave task must have swept everything before resolving: no
        # job is still running and no future is pending.
        assert all(job.future.done() for job in jobs)
        assert all(job.finished for job in jobs)
        # The service is still alive: an untampered follow-up wave works.
        service._finish = real_finish
        after = [service.submit(MQO_SPEC, seed=s) for s in (5, 6, 7)]
        await asyncio.gather(*[job.future for job in after])
        await service.shutdown()
        return jobs, after

    jobs, after = asyncio.run(scenario())
    assert jobs[0].status == "done"  # finished before the poison
    assert jobs[1].status == "error" and "observer exploded" in jobs[1].error
    assert jobs[2].status == "error"  # swept by the finally clause
    assert all(job.status == "done" for job in after)


# -- scrape-time gauge clearing ----------------------------------------------


def test_stale_gauge_labels_vanish_when_their_source_does():
    """Scrape-derived gauges are cleared per scrape: a label set whose
    source disappeared must not keep reporting its last value forever."""

    async def scenario():
        service = make_service(max_wave=2, cache=True)
        await service.start()
        jobs = [
            service.submit(MQO_SPEC, seed=1, tenant="ghost"),
            service.submit(MQO_SPEC, seed=2, tenant="ghost"),
        ]
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return service

    service = asyncio.run(scenario())
    text = service.render_metrics()
    assert 'repro_service_tenant_jobs{state="done",tenant="ghost"} 2' in text
    assert 'repro_engine_cache{event="misses"}' in text
    assert 'repro_backend_capacity{backend="sa"' in text

    # Swap every source out from under the gauges...
    from repro.engine.scheduler import BackendScoreboard
    from repro.service.jobs import JobBook

    service.jobs = JobBook()
    service.cache = None
    service.scoreboard = BackendScoreboard()
    text = service.render_metrics()
    # ...and the stale gauge label sets are gone, not frozen at their last
    # value.  (Counters and histograms are cumulative by design and keep
    # their label sets; only scrape-derived gauges clear.)
    assert 'repro_service_tenant_jobs{state="done",tenant="ghost"}' not in text
    assert "repro_engine_cache{" not in text
    assert 'repro_backend_capacity{backend="sa"' not in text
    # Cumulative families still report the tenant's history.
    assert 'repro_service_tenant_requests_total{decision="admit",tenant="ghost"} 2' in text
