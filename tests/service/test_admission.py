"""Admission control: the decision table, budgets, accounting, lanes.

The policy's contract, pinned three ways: unit-level (decision table over
budget states × priorities against a scripted clock/queue/scoreboard),
service-level (shed-before-register, per-tenant accounting, degrade
determinism), and book-level (eviction never touches unfinished jobs, and
a 429 flood never churns retention — the bug this PR fixes).
"""

import asyncio
import time
from types import SimpleNamespace

import pytest

from repro.engine.scheduler import BackendScoreboard, expected_service_time
from repro.exceptions import ReproError
from repro.service import ServiceConfig, SolverService, problem_from_spec
from repro.service.admission import (
    PRIORITIES,
    AdmissionPolicy,
    AdmissionShed,
    TenantBudget,
)
from repro.service.coalesce import CoalescingQueue
from repro.service.jobs import JobBook

MQO_SPEC = {
    "kind": "mqo",
    "num_queries": 3,
    "plans_per_query": 3,
    "sharing_density": 0.4,
    "instance_seed": 7,
}
FAST_SA = {"sa": {"num_reads": 4, "num_sweeps": 50}}


def make_service(**overrides) -> SolverService:
    defaults = dict(
        window_s=30.0,  # only the size trigger can dispatch
        backends=("sa",),
        backend_opts=FAST_SA,
        executor="threads",
    )
    defaults.update(overrides)
    return SolverService(ServiceConfig(**defaults))


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def make_policy(max_depth=8, max_wave=4, **kwargs):
    queue = CoalescingQueue(window_s=30.0, max_wave=max_wave, max_depth=max_depth)
    board = BackendScoreboard()
    defaults = dict(queue=queue, scoreboard=board, backends=("sa",))
    defaults.update(kwargs)
    return AdmissionPolicy(**defaults), queue, board


def fake_job(tenant="t", priority="interactive", backends=None, wall=None):
    result = None if wall is None else SimpleNamespace(wall_time=wall)
    return SimpleNamespace(
        tenant=tenant, priority=priority, backends=backends, result=result,
        started_at=None, finished_at=None,
    )


def fill_queue(queue, n, lane=None):
    async def _fill():
        for item in range(n):
            queue.put(item, lane=lane)

    asyncio.run(_fill())


# -- decision table ----------------------------------------------------------


@pytest.mark.parametrize("priority", PRIORITIES)
def test_fresh_tenant_admits_every_priority(priority):
    policy, _, _ = make_policy()
    decision = policy.decide("anyone", priority)
    assert decision.action == "admit"
    assert decision.reason == "ok"
    assert decision.backends is None and decision.retry_after_s is None


@pytest.mark.parametrize("priority", PRIORITIES)
def test_max_inflight_budget_sheds_every_priority(priority):
    policy, _, _ = make_policy(tenants={"capped": {"max_inflight": 1}})
    policy.on_admit(fake_job(tenant="capped"))
    decision = policy.decide("capped", priority)
    assert decision.action == "shed"
    assert decision.reason == "max_inflight"
    assert decision.retry_after_s >= 1
    # An uncapped tenant in the same state is untouched.
    assert policy.decide("other", priority).action == "admit"


@pytest.mark.parametrize("priority", PRIORITIES)
def test_full_queue_sheds_every_priority(priority):
    policy, queue, _ = make_policy(max_depth=2)
    fill_queue(queue, 2)
    decision = policy.decide("anyone", priority)
    assert decision.action == "shed"
    assert decision.reason == "queue_full"
    assert decision.retry_after_s >= 1


def test_queue_share_budget_sheds_only_the_hog():
    policy, _, _ = make_policy(max_depth=8, tenants={"hog": {"queue_share": 0.25}})
    for _ in range(2):  # 0.25 * 8 = 2 queued slots allowed
        policy.on_admit(fake_job(tenant="hog"))
    assert policy.decide("hog", "batch").action == "shed"
    assert policy.decide("hog", "batch").reason == "queue_share"
    assert policy.decide("polite", "batch").action == "admit"
    # Dispatching frees queue share (jobs now running, not queued)...
    policy.on_dispatch(fake_job(tenant="hog"))
    assert policy.decide("hog", "batch").action == "admit"


def test_backend_seconds_budget_degrades_then_recovers():
    clock = FakeClock()
    policy, _, _ = make_policy(
        tenants={"burner": {"backend_seconds": 1.0, "window_s": 60.0}},
        degrade_backends=("tabu",),
        clock=clock,
    )
    job = fake_job(tenant="burner", wall=2.0)
    policy.on_admit(job)
    policy.on_dispatch(job)
    policy.on_finish(job)
    decision = policy.decide("burner", "interactive")
    assert decision.action == "degrade"
    assert decision.reason == "backend_seconds"
    assert decision.backends == ("tabu",)
    # The rolling window forgives: an hour later the spend has aged out.
    clock.now += 3600.0
    assert policy.decide("burner", "interactive").action == "admit"


def test_queue_pressure_degrades_best_effort_only():
    policy, queue, _ = make_policy(max_depth=8, degrade_ratio=0.5)
    fill_queue(queue, 4)  # exactly at the ratio
    assert policy.decide("t", "interactive").action == "admit"
    assert policy.decide("t", "batch").action == "admit"
    decision = policy.decide("t", "best_effort")
    assert decision.action == "degrade"
    assert decision.reason == "queue_pressure"


def test_unknown_priority_is_an_error():
    policy, _, _ = make_policy()
    with pytest.raises(ReproError):
        policy.decide("t", "urgent")


def test_budget_validation_rejects_nonsense():
    with pytest.raises(ReproError):
        TenantBudget.from_mapping({"max_inflight": 0})
    with pytest.raises(ReproError):
        TenantBudget.from_mapping({"queue_share": 1.5})
    with pytest.raises(ReproError):
        TenantBudget.from_mapping({"window_s": 0})
    with pytest.raises(ReproError):
        TenantBudget.from_mapping({"wallclock": 5})  # unknown key


# -- Retry-After / expected service time -------------------------------------


def test_retry_after_derives_from_ewma_latency():
    policy, _, board = make_policy()
    assert policy.retry_after_s() == 1  # cold board -> cold default, floor 1
    board.observe("sa", None, objective=1.0, wall_time=3.0)
    assert policy.retry_after_s() == 3
    # Backlog scales it: 9 queued at max_wave=4 is 3 dispatch waves.
    policy2, queue, board2 = make_policy(max_depth=16, max_wave=4)
    board2.observe("sa", None, objective=1.0, wall_time=3.0)
    fill_queue(queue, 9)
    assert policy2.retry_after_s() == 9

def test_expected_service_time_reads_snapshot():
    board = BackendScoreboard()
    assert expected_service_time(board.capacity_snapshot(), ("sa",), default=0.5) == 0.5
    board.observe("sa", None, objective=1.0, wall_time=2.0)
    board.observe("tabu", None, objective=1.0, wall_time=4.0)
    snapshot = board.capacity_snapshot()
    assert expected_service_time(snapshot, ("sa",)) == pytest.approx(2.0)
    assert expected_service_time(snapshot) == pytest.approx(3.0)  # all backends
    # Cache hits never feed latency; a backend seen only through hits
    # still reads as the default.
    board.observe("qaoa", None, objective=1.0, wall_time=9.0, cache_hit=True)
    assert expected_service_time(
        board.capacity_snapshot(), ("qaoa",), default=0.1
    ) == pytest.approx(0.1)


# -- shed-before-register (the eviction-churn bugfix) ------------------------


def test_shed_creates_no_job_and_preserves_finished_history():
    async def scenario():
        service = make_service(max_wave=2, max_queue_depth=2, job_retention=4)
        await service.start()
        first = [service.submit(MQO_SPEC, seed=s) for s in (0, 1)]  # one wave
        await asyncio.gather(*[job.future for job in first])
        # Fill the queue back up (no await between submits, so the
        # dispatcher cannot interleave and the depth holds at max)...
        parked = [service.submit(MQO_SPEC, seed=s) for s in (2, 3)]
        # ...so every further submit sheds with queue_full.
        sheds = []
        for seed in range(4, 11):
            with pytest.raises(AdmissionShed) as excinfo:
                service.submit(MQO_SPEC, seed=seed)
            sheds.append(excinfo.value)
        book_len = len(service.jobs)
        alive = [service.jobs.get(job.id) for job in first]
        await asyncio.gather(*[job.future for job in parked])
        await service.shutdown()
        return service, first, sheds, book_len, alive

    service, first, sheds, book_len, alive = asyncio.run(scenario())
    # No Job was ever created for a shed request: the book held exactly
    # the two finished jobs plus the two parked ones.
    assert book_len == 4
    assert all(job is not None for job in alive)  # history not churned
    assert all(shed.retry_after_s >= 1 for shed in sheds)
    assert all(shed.reason == "queue_full" for shed in sheds)
    # Sheds are rejections, not responses.
    assert service._m["responses"].value(status="done") == 4
    assert service._m["responses"].value(status="error") == 0
    assert service._m["rejected"].value(reason="queue_full") == len(sheds)
    assert service._m["admission"].value(decision="shed", priority="interactive") == len(sheds)


def test_jobbook_eviction_skips_unfinished_jobs_entirely():
    async def scenario():
        book = JobBook(retention=2)
        problem = problem_from_spec(MQO_SPEC)
        jobs = [book.create(problem, seed, MQO_SPEC) for seed in range(5)]
        # Everything is pending: over retention, but nothing is evictable.
        assert len(book) == 5
        assert all(book.get(job.id) is not None for job in jobs)
        for job in jobs[:3]:
            job.status = "done"
            job.finished_at = time.time()
        book.create(problem, 99, MQO_SPEC)  # triggers eviction
        return book, jobs

    book, jobs = asyncio.run(scenario())
    # Finished jobs went oldest-first; unfinished ones all survived.
    assert len(book) == 3
    assert all(book.get(job.id) is None for job in jobs[:3])
    assert all(book.get(job.id) is not None for job in jobs[3:])


# -- per-tenant accounting through the service -------------------------------


def test_tenant_accounting_and_job_json():
    async def scenario():
        service = make_service(max_wave=2)
        await service.start()
        jobs = [
            service.submit(MQO_SPEC, seed=1, tenant="alice", priority="interactive"),
            service.submit(MQO_SPEC, seed=2, tenant="bob", priority="batch"),
        ]
        await asyncio.gather(*[job.future for job in jobs])
        snapshot = service.admission.snapshot()
        text = service.render_metrics()
        readiness = service.readiness()
        await service.shutdown()
        return service, jobs, snapshot, text, readiness

    service, jobs, snapshot, text, readiness = asyncio.run(scenario())
    alice, bob = jobs
    assert alice.tenant == "alice" and alice.priority == "interactive"
    assert bob.tenant == "bob" and bob.priority == "batch"
    body = alice.as_json_dict()
    assert body["tenant"] == "alice"
    assert body["priority"] == "interactive"
    assert body["admission"]["action"] == "admit"
    for tenant in ("alice", "bob"):
        row = snapshot[tenant]
        assert row["admitted"] == 1 and row["finished"] == 1
        assert row["inflight"] == 0 and row["queued"] == 0
        assert row["backend_seconds_used"] >= 0
    assert 'repro_service_tenant_requests_total{decision="admit",tenant="alice"} 1' in text
    assert 'repro_service_tenant_jobs{state="done",tenant="bob"} 1' in text
    assert "repro_service_tenant_latency_seconds_count" in text
    assert 'repro_service_lane_depth{lane="interactive"} 0' in text
    assert readiness["tenants"]["alice"]["finished"] == 1
    import json

    json.dumps(readiness)  # the admission snapshot must stay strict-JSON


def test_bad_tenant_and_priority_reject_before_admission():
    async def scenario():
        service = make_service(max_wave=64)
        await service.start()
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed=0, tenant="")
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed=0, tenant=7)
        with pytest.raises(ReproError):
            service.submit(MQO_SPEC, seed=0, priority="urgent")
        assert service._m["rejected"].value(reason="bad_tenant") == 2
        assert service._m["rejected"].value(reason="bad_priority") == 1
        assert len(service.jobs) == 0
        await service.shutdown()

    asyncio.run(scenario())


# -- degradation determinism -------------------------------------------------


def test_degraded_requests_match_direct_solves_on_the_cheap_tier():
    from repro.api.facade import solve

    async def scenario():
        service = make_service(
            max_wave=2,
            degrade_backends=("tabu",),
            tenants={"burned": {"backend_seconds": 0.0}},
        )
        await service.start()
        degraded = service.submit(MQO_SPEC, seed=3, tenant="burned")
        normal = service.submit(MQO_SPEC, seed=3, tenant="fresh")
        await asyncio.gather(degraded.future, normal.future)
        await service.shutdown()
        return service, degraded, normal

    service, degraded, normal = asyncio.run(scenario())
    assert degraded.status == "done" and normal.status == "done"
    assert degraded.admission["action"] == "degrade"
    assert degraded.admission["reason"] == "backend_seconds"
    assert degraded.admission["backends"] == ["tabu"]
    # The rewrite is visible in the result telemetry...
    assert degraded.result.info["admission"]["backends"] == ["tabu"]
    assert degraded.result.method == "tabu"
    # ...and bit-identical to a direct solve on the degraded backend.
    direct = solve(problem_from_spec(MQO_SPEC), backend="tabu", seed=3)
    assert degraded.result.objective == direct.objective
    assert degraded.result.solution == direct.solution
    # The undegraded companion in the same wave ran the fleet untouched.
    assert normal.result.method == "sa"
    assert "admission" not in normal.result.info
    direct_sa = solve(
        problem_from_spec(MQO_SPEC), backend="sa", seed=3,
        num_reads=4, num_sweeps=50,
    )
    assert normal.result.objective == direct_sa.objective
    assert normal.result.solution == direct_sa.solution
    assert service._m["admission"].value(decision="degrade", priority="interactive") == 1


# -- weighted lanes: determinism regardless of composition --------------------


def test_results_independent_of_lane_composition():
    """Seed 1 interactive alone == seed 1 amid a crowd of other lanes."""

    async def solo():
        service = make_service(max_wave=1)
        await service.start()
        job = service.submit(MQO_SPEC, seed=1, tenant="probe")
        await job.future
        await service.shutdown()
        return job.result

    async def crowded_lanes():
        service = make_service(max_wave=6)
        await service.start()
        jobs = [
            service.submit(MQO_SPEC, seed=1, tenant="probe", priority="interactive"),
            service.submit(MQO_SPEC, seed=9, tenant="a", priority="best_effort"),
            service.submit({**MQO_SPEC, "instance_seed": 8}, seed=1, tenant="b",
                           priority="batch"),
            service.submit(MQO_SPEC, seed=3, tenant="c", priority="best_effort"),
            service.submit(MQO_SPEC, seed=4, tenant="d", priority="batch"),
            service.submit(MQO_SPEC, seed=1, tenant="e", priority="best_effort"),
        ]
        await asyncio.gather(*[job.future for job in jobs])
        await service.shutdown()
        return jobs

    alone = asyncio.run(solo())
    jobs = asyncio.run(crowded_lanes())
    among = jobs[0].result
    assert alone.objective == among.objective
    assert alone.solution == among.solution
    # Single-flight dedup crosses lanes: the best_effort twin of the same
    # (spec, seed) shares the identical result.
    twin = jobs[5].result
    assert twin.objective == among.objective
    assert twin.solution == among.solution


def test_weighted_drain_keeps_interactive_ahead_of_floods():
    """10 best_effort floods queued first still don't push interactive out
    of wave 1 (pure FIFO would: the first 7 floods would fill the wave)."""

    async def scenario():
        service = make_service(max_wave=7)
        await service.start()
        flood = [
            service.submit(MQO_SPEC, seed=10 + i, tenant="flood",
                           priority="best_effort")
            for i in range(10)
        ]
        dash = service.submit(MQO_SPEC, seed=1, tenant="dash",
                              priority="interactive")
        companion = service.submit(MQO_SPEC, seed=2, tenant="dash",
                                   priority="interactive")
        await asyncio.gather(dash.future, companion.future)
        await service.shutdown()  # drains the flood's second wave
        return dash, companion, flood

    dash, companion, flood = asyncio.run(scenario())
    assert dash.wave == 1 and companion.wave == 1
    assert all(job.status == "done" for job in flood)
    # The flood still made progress in wave 1 — slowed, never starved.
    flood_waves = sorted(job.wave for job in flood)
    assert flood_waves.count(1) == 5 and flood_waves.count(2) == 5
