"""Validation tests for the service's ``workload`` problem-spec kind."""

import pytest

from repro.exceptions import ReproError
from repro.service.problems import (
    MAX_RELATIONS,
    MAX_SCRIPT_LENGTH,
    MAX_SCRIPT_STATEMENTS,
    list_kinds,
    problem_from_spec,
)

CATALOG = {
    "tables": {
        "users": {"cardinality": 1000, "distinct": {"uid": 1000, "city": 40}},
        "orders": {"cardinality": 5000, "distinct": {"uid": 900}},
    }
}

SCRIPT = (
    "SELECT * FROM users, orders WHERE users.uid = orders.uid;"
    "SELECT * FROM users WHERE city = 'delft';"
    "UPDATE users SET city = 'x' WHERE uid = 1"
)


def spec(**overrides):
    base = {"kind": "workload", "script": SCRIPT, "catalog": CATALOG}
    base.update(overrides)
    return base


def test_workload_kind_listed():
    assert "workload" in list_kinds()


def test_each_instance_rebuildable():
    names = [problem_from_spec(spec(instance=i)).name for i in range(3)]
    assert names == ["joinorder_leftdeep", "mqo", "txn_schedule"]


def test_default_instance_is_first():
    assert problem_from_spec(spec()).name == "joinorder_leftdeep"


def test_bushy_encoding():
    assert problem_from_spec(spec(bushy=True)).name == "joinorder_bushy"


def test_content_addressable():
    a = problem_from_spec(spec(instance=0)).to_qubo().fingerprint()
    b = problem_from_spec(spec(instance=0)).to_qubo().fingerprint()
    assert a == b


def test_instance_out_of_range():
    with pytest.raises(ReproError, match="'instance'"):
        problem_from_spec(spec(instance=17))


def test_missing_script():
    with pytest.raises(ReproError, match="script"):
        problem_from_spec({"kind": "workload", "catalog": CATALOG})


def test_script_too_long():
    long_script = "SELECT * FROM users; " * (MAX_SCRIPT_LENGTH // 10)
    with pytest.raises(ReproError, match="chars"):
        problem_from_spec(spec(script=long_script))


def test_too_many_statements():
    script = ";".join(["SELECT * FROM users"] * (MAX_SCRIPT_STATEMENTS + 1))
    with pytest.raises(ReproError, match="statements"):
        problem_from_spec(spec(script=script))


def test_too_many_joined_tables():
    wide = "SELECT * FROM " + ", ".join(f"users t{i}" for i in range(MAX_RELATIONS + 1))
    with pytest.raises(ReproError, match="joins"):
        problem_from_spec(spec(script=wide))


def test_parse_error_maps_to_repro_error():
    with pytest.raises(ReproError, match="failed to parse"):
        problem_from_spec(spec(script="SELEC nope"))


def test_unknown_table_rejected():
    with pytest.raises(ReproError, match="unknown table"):
        problem_from_spec(spec(script="SELECT * FROM ghosts, users; SELECT * FROM users"))


def test_catalog_required():
    with pytest.raises(ReproError, match="catalog"):
        problem_from_spec({"kind": "workload", "script": SCRIPT})


def test_bad_distinct_count():
    bad = {"tables": {"users": {"cardinality": 10, "distinct": {"uid": 0}}}}
    with pytest.raises(ReproError, match="distinct"):
        problem_from_spec(spec(catalog=bad))


def test_bad_bushy_type():
    with pytest.raises(ReproError, match="bushy"):
        problem_from_spec(spec(bushy="yes"))
