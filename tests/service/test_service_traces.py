"""The flight-recorder surface: ``/v1/traces``, trace-enriched health, exemplars.

In-process servers (``port=0``, tiny coalescing windows) drive a real HTTP
round trip and then interrogate the trace the service recorded for it — the
ISSUE's acceptance path: one request id resolves to the full
admission -> queue -> wave -> shard -> backend span tree.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

SPEC = {"kind": "mqo", "num_queries": 3, "plans_per_query": 3, "instance_seed": 5}


def _run_with_server(handler, **config_overrides):
    from repro.service import ServiceConfig, SolverService
    from repro.service.http import ServiceServer

    async def scenario():
        config = dict(
            window_s=0.05, max_wave=16, port=0, backends=("sa",),
            backend_opts={"sa": {"num_reads": 2, "num_sweeps": 20}},
            executor="threads", store="",
        )
        config.update(config_overrides)
        server = ServiceServer(SolverService(ServiceConfig(**config)))
        await server.start()
        try:
            return await handler(server)
        finally:
            await server.shutdown()

    return asyncio.run(scenario())


def _get(port, path):
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _solve(port, **extra):
    payload = {"problem": SPEC, "seed": 7, "wait": True, **extra}
    status, body = _post(port, "/v1/solve", payload)
    assert status == 200 and body["status"] == "done"
    return body


class TestTraceEndpoints:
    def test_job_id_resolves_to_the_full_span_tree(self):
        async def handler(server):
            port = server.bound_port
            body = await asyncio.to_thread(_solve, port, tenant="acme")
            assert body["trace_id"]

            status, trace = await asyncio.to_thread(
                _get, port, f"/v1/traces/{body['job_id']}"
            )
            assert status == 200
            assert trace["trace_id"] == body["trace_id"]
            assert trace["job_id"] == body["job_id"]
            assert trace["tenant"] == "acme"
            names = [s["name"] for s in trace["spans"]]
            # The acceptance span chain: HTTP edge -> admission -> queue
            # wait -> wave -> per-shard solve, all under one trace id.
            for required in ("http.request", "service.admission",
                            "service.queue_wait", "service.wave",
                            "service.settle", "facade.solve_many",
                            "engine.shard", "engine.solve"):
                assert required in names, f"missing {required} in {names}"
            assert all(s["trace_id"] == body["trace_id"] for s in trace["spans"])
            # The tree nests from the HTTP root down.
            roots = [n["name"] for n in trace["tree"]]
            assert "http.request" in roots
            # The result's info carries the re-homed join key.
            assert body["result"]["info"]["trace"]["trace_id"] == body["trace_id"]

            # A raw trace id dereferences too (the 202-response spelling).
            status, by_trace = await asyncio.to_thread(
                _get, port, f"/v1/traces/{body['trace_id']}"
            )
            assert status == 200 and by_trace["job_id"] == body["job_id"]

        _run_with_server(handler)

    def test_listing_filters_by_tenant_and_validates_params(self):
        async def handler(server):
            port = server.bound_port
            await asyncio.to_thread(_solve, port, tenant="acme")
            await asyncio.to_thread(_solve, port, tenant="zeta")

            status, body = await asyncio.to_thread(_get, port, "/v1/traces")
            assert status == 200
            assert {"traces", "traces_buffered", "dropped_total"} <= set(body)
            assert len(body["traces"]) == 2
            newest = body["traces"][0]
            assert {"trace_id", "job_id", "root", "span_count",
                    "duration_s"} <= set(newest)

            status, acme = await asyncio.to_thread(
                _get, port, "/v1/traces?tenant=acme&limit=10"
            )
            assert status == 200
            assert [t["tenant"] for t in acme["traces"]] == ["acme"]

            status, none = await asyncio.to_thread(
                _get, port, "/v1/traces?min_duration_s=3600"
            )
            assert status == 200 and none["traces"] == []

            assert (await asyncio.to_thread(
                _get, port, "/v1/traces?limit=zero"))[0] == 400
            assert (await asyncio.to_thread(
                _get, port, "/v1/traces?limit=0"))[0] == 400
            assert (await asyncio.to_thread(
                _get, port, "/v1/traces?min_duration_s=fast"))[0] == 400
            assert (await asyncio.to_thread(
                _get, port, "/v1/traces/job-404404"))[0] == 404

        _run_with_server(handler)

    def test_submit_response_and_job_json_carry_the_trace_id(self):
        async def handler(server):
            port = server.bound_port
            status, accepted = await asyncio.to_thread(
                _post, port, "/v1/solve", {"problem": SPEC, "seed": 1}
            )
            assert status == 202
            assert accepted["trace_id"]
            job = server.service.jobs.get(accepted["job_id"])
            await asyncio.shield(job.future)
            assert job.as_json_dict()["trace_id"] == accepted["trace_id"]

        _run_with_server(handler)

    def test_disabled_tracing_is_a_404_not_a_crash(self):
        async def handler(server):
            port = server.bound_port
            body = await asyncio.to_thread(_solve, port)
            assert body["trace_id"] is None
            status, error = await asyncio.to_thread(_get, port, "/v1/traces")
            assert status == 404 and "disabled" in error["error"]
            assert (await asyncio.to_thread(
                _get, port, f"/v1/traces/{body['job_id']}"))[0] == 404
            status, health = await asyncio.to_thread(_get, port, "/healthz")
            assert status == 200
            assert health["trace"] == {"enabled": False, "traces_buffered": 0,
                                       "dropped_total": 0}

        _run_with_server(handler, trace=False)


class TestHealthSurfaces:
    def test_health_and_readiness_report_version_and_recorder_status(self):
        async def handler(server):
            port = server.bound_port
            await asyncio.to_thread(_solve, port)
            import repro

            status, health = await asyncio.to_thread(_get, port, "/healthz")
            assert status == 200
            assert health["version"] == repro.__version__
            assert health["trace"]["enabled"] is True
            assert health["trace"]["traces_buffered"] == 1
            assert health["trace"]["dropped_total"] == 0

            status, ready = await asyncio.to_thread(_get, port, "/readyz")
            assert status == 200
            assert ready["version"] == repro.__version__
            assert ready["trace"]["traces_buffered"] == 1

        _run_with_server(handler)

    def test_trace_buffer_bound_is_enforced_end_to_end(self):
        async def handler(server):
            port = server.bound_port
            for seed in range(3):
                await asyncio.to_thread(
                    _post, port, "/v1/solve",
                    {"problem": SPEC, "seed": seed, "wait": True},
                )
            trace_status = server.service.trace_status()
            assert trace_status["traces_buffered"] <= 2
            assert trace_status["dropped_total"] > 0

        _run_with_server(handler, trace_buffer=2)


class TestExemplars:
    def test_latency_histogram_carries_trace_exemplars(self):
        async def handler(server):
            port = server.bound_port
            body = await asyncio.to_thread(_solve, port, tenant="acme")
            latency = server.service._m["latency"]
            slots = [e for e in latency.exemplars() if e is not None]
            assert slots, "no exemplar recorded on the latency histogram"
            assert any(e["trace_id"] == body["trace_id"] for e in slots)
            assert all(e["value"] >= 0.0 for e in slots)
            tenant_slots = [
                e for e in server.service._m["tenant_latency"].exemplars(tenant="acme")
                if e is not None
            ]
            assert any(e["trace_id"] == body["trace_id"] for e in tenant_slots)
            # The text exposition stays plain Prometheus 0.0.4 — exemplars
            # must not leak into the scrape format.
            status, _ = await asyncio.to_thread(_get, port, "/healthz")
            assert status == 200
            metrics = server.service.render_metrics()
            assert "trace_id" not in metrics

        _run_with_server(handler)

    def test_exemplars_accessor_shape(self):
        from repro.service.metrics import MetricsRegistry

        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "test", buckets=(0.1, 1.0))
        assert histogram.exemplars() == []
        histogram.observe(0.05, exemplar="aa" * 8)
        histogram.observe(0.5)  # no exemplar: slot stays as-is
        histogram.observe(10.0, exemplar="bb" * 8)  # lands in +Inf
        slots = histogram.exemplars()
        assert len(slots) == 3  # one per bucket + the +Inf slot
        assert slots[0] == {"trace_id": "aa" * 8, "value": 0.05}
        assert slots[1] is None
        assert slots[2] == {"trace_id": "bb" * 8, "value": 10.0}


class TestDeterminismAcrossTracing:
    def test_results_are_identical_with_tracing_on_and_off(self):
        """The service-level spelling of trace invariance: same spec+seed,
        tracing on vs off, byte-identical objective and solution."""
        def scenario(trace):
            async def handler(server):
                port = server.bound_port
                body = await asyncio.to_thread(_solve, port)
                return body["result"]

            return _run_with_server(handler, trace=trace)

        traced, untraced = scenario(True), scenario(False)
        assert traced["objective"] == untraced["objective"]
        assert traced["solution"] == untraced["solution"]
        assert traced["energy"] == untraced["energy"]
        assert (traced["info"]["engine"]["seed"]
                == untraced["info"]["engine"]["seed"])
        assert (traced["info"]["engine"]["fingerprint"]
                == untraced["info"]["engine"]["fingerprint"])


class TestConfigSurface:
    def test_env_and_toml_spell_the_observability_knobs(self, tmp_path,
                                                        monkeypatch):
        from repro.service.config import load_config

        toml = tmp_path / "service.toml"
        toml.write_text(
            "[service]\nlog_level = 'debug'\nlog_format = 'json'\n"
            "trace = false\ntrace_buffer = 32\n"
        )
        config = load_config(toml)
        assert (config.log_level, config.log_format) == ("debug", "json")
        assert config.trace is False and config.trace_buffer == 32

        monkeypatch.setenv("REPRO_SERVICE_LOG_LEVEL", "warning")
        monkeypatch.setenv("REPRO_SERVICE_LOG_FORMAT", "text")
        monkeypatch.setenv("REPRO_SERVICE_TRACE", "yes")
        monkeypatch.setenv("REPRO_SERVICE_TRACE_BUFFER", "64")
        config = load_config(toml)
        assert (config.log_level, config.log_format) == ("warning", "text")
        assert config.trace is True and config.trace_buffer == 64

        monkeypatch.setenv("REPRO_SERVICE_TRACE", "off")
        assert load_config(toml).trace is False

    def test_invalid_observability_config_is_rejected(self):
        from repro.exceptions import ReproError
        from repro.service.config import ServiceConfig

        with pytest.raises(ReproError, match="log_level"):
            ServiceConfig(log_level="loud").validate()
        with pytest.raises(ReproError, match="log_format"):
            ServiceConfig(log_format="xml").validate()
        with pytest.raises(ReproError, match="trace_buffer"):
            ServiceConfig(trace_buffer=0).validate()

    def test_main_wires_log_flags_into_config(self, capsys):
        from repro.service.__main__ import main

        # An invalid choice exits argparse with code 2 before any server.
        with pytest.raises(SystemExit):
            main(["--log-level", "loud"])
        capsys.readouterr()
