"""CoalescingQueue unit behaviour: triggers, backpressure, drain protocol.

Every timing-sensitive claim is pinned by the *size* trigger (a wave
dispatches the moment ``max_wave`` items are pending) or by generous
windows, never by racing the scheduler against a short real-time window.
"""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service.coalesce import CoalescingQueue, QueueClosed, QueueFull


def run(coro):
    return asyncio.run(coro)


def test_size_trigger_dispatches_full_wave_immediately():
    async def scenario():
        queue = CoalescingQueue(window_s=30.0, max_wave=4)
        for item in range(4):
            queue.put(item)
        # The window is half a minute; only the size trigger can fire now.
        wave = await asyncio.wait_for(queue.collect_wave(), timeout=5.0)
        return wave

    assert run(scenario()) == [0, 1, 2, 3]


def test_window_trigger_collects_late_companions():
    async def scenario():
        queue = CoalescingQueue(window_s=0.5, max_wave=64)
        collector = asyncio.create_task(queue.collect_wave())
        queue.put("first")
        await asyncio.sleep(0.02)  # well inside the window
        queue.put("second")
        return await asyncio.wait_for(collector, timeout=5.0)

    assert run(scenario()) == ["first", "second"]


def test_zero_window_still_coalesces_already_pending_items():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=64)
        for item in ("a", "b", "c"):
            queue.put(item)
        return await queue.collect_wave()

    assert run(scenario()) == ["a", "b", "c"]


def test_oversized_backlog_splits_into_max_wave_chunks():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=3)
        for item in range(7):
            queue.put(item)
        waves = [await queue.collect_wave() for _ in range(3)]
        return waves

    assert run(scenario()) == [[0, 1, 2], [3, 4, 5], [6]]


def test_backpressure_raises_queue_full():
    async def scenario():
        queue = CoalescingQueue(window_s=1.0, max_wave=64, max_depth=2)
        queue.put(1)
        queue.put(2)
        with pytest.raises(QueueFull):
            queue.put(3)
        assert queue.depth == 2

    run(scenario())


def test_close_rejects_new_work_but_drains_pending():
    async def scenario():
        queue = CoalescingQueue(window_s=30.0, max_wave=64)
        queue.put("accepted")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("rejected")
        # Pending items are released without waiting out the window...
        wave = await asyncio.wait_for(queue.collect_wave(), timeout=5.0)
        assert wave == ["accepted"]
        # ...and the empty wave is the dispatcher's exit signal.
        assert await queue.collect_wave() == []

    run(scenario())


def test_close_wakes_a_blocked_collector():
    async def scenario():
        queue = CoalescingQueue(window_s=0.05, max_wave=64)
        collector = asyncio.create_task(queue.collect_wave())
        await asyncio.sleep(0.05)  # collector is parked on arrival
        queue.close()
        return await asyncio.wait_for(collector, timeout=5.0)

    assert run(scenario()) == []


def test_constructor_validation():
    with pytest.raises(ReproError):
        CoalescingQueue(window_s=-0.1)
    with pytest.raises(ReproError):
        CoalescingQueue(max_wave=0)
    with pytest.raises(ReproError):
        CoalescingQueue(max_depth=0)
