"""CoalescingQueue unit behaviour: triggers, backpressure, drain protocol.

Every timing-sensitive claim is pinned by the *size* trigger (a wave
dispatches the moment ``max_wave`` items are pending) or by generous
windows, never by racing the scheduler against a short real-time window.
"""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service.coalesce import CoalescingQueue, QueueClosed, QueueFull


def run(coro):
    return asyncio.run(coro)


def test_size_trigger_dispatches_full_wave_immediately():
    async def scenario():
        queue = CoalescingQueue(window_s=30.0, max_wave=4)
        for item in range(4):
            queue.put(item)
        # The window is half a minute; only the size trigger can fire now.
        wave = await asyncio.wait_for(queue.collect_wave(), timeout=5.0)
        return wave

    assert run(scenario()) == [0, 1, 2, 3]


def test_window_trigger_collects_late_companions():
    async def scenario():
        queue = CoalescingQueue(window_s=0.5, max_wave=64)
        collector = asyncio.create_task(queue.collect_wave())
        queue.put("first")
        await asyncio.sleep(0.02)  # well inside the window
        queue.put("second")
        return await asyncio.wait_for(collector, timeout=5.0)

    assert run(scenario()) == ["first", "second"]


def test_zero_window_still_coalesces_already_pending_items():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=64)
        for item in ("a", "b", "c"):
            queue.put(item)
        return await queue.collect_wave()

    assert run(scenario()) == ["a", "b", "c"]


def test_oversized_backlog_splits_into_max_wave_chunks():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=3)
        for item in range(7):
            queue.put(item)
        waves = [await queue.collect_wave() for _ in range(3)]
        return waves

    assert run(scenario()) == [[0, 1, 2], [3, 4, 5], [6]]


def test_backpressure_raises_queue_full():
    async def scenario():
        queue = CoalescingQueue(window_s=1.0, max_wave=64, max_depth=2)
        queue.put(1)
        queue.put(2)
        with pytest.raises(QueueFull):
            queue.put(3)
        assert queue.depth == 2

    run(scenario())


def test_close_rejects_new_work_but_drains_pending():
    async def scenario():
        queue = CoalescingQueue(window_s=30.0, max_wave=64)
        queue.put("accepted")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("rejected")
        # Pending items are released without waiting out the window...
        wave = await asyncio.wait_for(queue.collect_wave(), timeout=5.0)
        assert wave == ["accepted"]
        # ...and the empty wave is the dispatcher's exit signal.
        assert await queue.collect_wave() == []

    run(scenario())


def test_close_wakes_a_blocked_collector():
    async def scenario():
        queue = CoalescingQueue(window_s=0.05, max_wave=64)
        collector = asyncio.create_task(queue.collect_wave())
        await asyncio.sleep(0.05)  # collector is parked on arrival
        queue.close()
        return await asyncio.wait_for(collector, timeout=5.0)

    assert run(scenario()) == []


def test_constructor_validation():
    with pytest.raises(ReproError):
        CoalescingQueue(window_s=-0.1)
    with pytest.raises(ReproError):
        CoalescingQueue(max_wave=0)
    with pytest.raises(ReproError):
        CoalescingQueue(max_depth=0)


# -- priority lanes ----------------------------------------------------------


def test_weighted_drain_order_over_mixed_lanes():
    """Per drain cycle: 4 interactive, 2 batch, 1 best_effort (defaults)."""

    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=7)
        for item in range(6):
            queue.put(f"i{item}", lane="interactive")
        for item in range(4):
            queue.put(f"b{item}", lane="batch")
        for item in range(3):
            queue.put(f"e{item}", lane="best_effort")
        return [await queue.collect_wave() for _ in range(2)]

    first, second = run(scenario())
    assert first == ["i0", "i1", "i2", "i3", "b0", "b1", "e0"]
    # Cycle 2: the 2 remaining interactive, 2 batch, 1 best_effort, then
    # cycle 3 passes empty lanes through and drains the best_effort tail.
    assert second == ["i4", "i5", "b2", "b3", "e1", "e2"]


def test_empty_lane_slots_pass_to_the_next_lane():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=4)
        for item in range(6):
            queue.put(item, lane="best_effort")
        return await queue.collect_wave()

    # No interactive/batch traffic: best_effort still fills the wave
    # (one item per cycle, cycles repeat until the wave is full).
    assert run(scenario()) == [0, 1, 2, 3]


def test_default_lane_preserves_positional_fifo():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=8)
        for item in range(3):
            queue.put(item)  # legacy positional callers -> first lane
        assert queue.lane_depths() == {
            "interactive": 3, "batch": 0, "best_effort": 0,
        }
        return await queue.collect_wave()

    assert run(scenario()) == [0, 1, 2]


def test_unknown_lane_is_an_error_and_enqueues_nothing():
    async def scenario():
        queue = CoalescingQueue(window_s=0.0, max_wave=8)
        with pytest.raises(ReproError):
            queue.put("x", lane="urgent")
        assert queue.depth == 0

    run(scenario())


def test_lane_weight_validation():
    with pytest.raises(ReproError):
        CoalescingQueue(lane_weights={})
    with pytest.raises(ReproError):
        CoalescingQueue(lane_weights={"interactive": 0})
    with pytest.raises(ReproError):
        CoalescingQueue(lane_weights={"interactive": 1.5})


def test_window_anchors_on_earliest_item_across_lanes():
    async def scenario():
        queue = CoalescingQueue(window_s=0.4, max_wave=64)
        queue.put("slow", lane="best_effort")
        await asyncio.sleep(0.05)
        collector = asyncio.create_task(queue.collect_wave())
        await asyncio.sleep(0.02)
        queue.put("late", lane="interactive")
        wave = await asyncio.wait_for(collector, timeout=5.0)
        # Interactive drains first even though best_effort arrived first.
        assert wave == ["late", "slow"]

    run(scenario())
