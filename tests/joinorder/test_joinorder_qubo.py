"""Tests for the left-deep and bushy join-ordering QUBOs."""

import itertools

import numpy as np
import pytest

from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep
from repro.db.generator import chain_query, cycle_query, star_query
from repro.db.plans import leftdeep_tree_from_order
from repro.exceptions import InfeasibleError
from repro.joinorder.bushy_qubo import BushyJoinQubo
from repro.joinorder.leftdeep_qubo import LeftDeepJoinQubo
from repro.joinorder.baselines import (
    solve_bushy_annealing,
    solve_dp_bushy,
    solve_dp_leftdeep,
    solve_greedy,
    solve_leftdeep_annealing,
    solve_leftdeep_qaoa,
)
from repro.qubo.bruteforce import BruteForceSolver


class TestLeftDeepQubo:
    def test_energy_equals_surrogate_for_permutations(self):
        jg = chain_query(4, rng=0)
        builder = LeftDeepJoinQubo(jg)
        model = builder.build()
        for order in itertools.permutations(jg.relations):
            e = builder.energy_of_order(model, list(order))
            assert e == pytest.approx(builder.surrogate_cost(list(order)), abs=1e-6)

    def test_variable_count(self):
        jg = chain_query(5, rng=1)
        model = LeftDeepJoinQubo(jg).build()
        assert model.num_variables == 25

    def test_ground_state_is_surrogate_optimal_permutation(self):
        jg = chain_query(4, rng=2)
        builder = LeftDeepJoinQubo(jg)
        model = builder.build()
        best = BruteForceSolver(max_variables=16).solve(model).best
        order = builder.decode(model, best.bits, repair=False)
        best_surrogate = min(
            builder.surrogate_cost(list(p)) for p in itertools.permutations(jg.relations)
        )
        assert builder.surrogate_cost(order) == pytest.approx(best_surrogate, abs=1e-9)

    def test_decode_repairs_broken_permutation(self):
        jg = chain_query(3, rng=3)
        builder = LeftDeepJoinQubo(jg)
        model = builder.build()
        order = builder.decode(model, np.zeros(model.num_variables, dtype=int))
        assert sorted(order) == jg.relations

    def test_decode_strict_raises(self):
        jg = chain_query(3, rng=3)
        builder = LeftDeepJoinQubo(jg)
        model = builder.build()
        with pytest.raises(InfeasibleError):
            builder.decode(model, np.zeros(model.num_variables, dtype=int), repair=False)

    @pytest.mark.parametrize("gen", [chain_query, star_query, cycle_query])
    def test_sa_close_to_leftdeep_optimum(self, gen):
        jg = gen(5, rng=7)
        # Reference: exact left-deep DP including cross products, since the
        # QUBO search space includes cross-product orders.
        _, ref = dp_optimal_leftdeep(jg, avoid_cross=False)
        outcome = solve_leftdeep_annealing(jg, rng=0)
        assert outcome.cost >= ref - 1e-6
        assert outcome.ratio_to(ref) < 3.0  # log-surrogate may misrank mildly

    def test_qaoa_tiny_instance(self):
        jg = chain_query(3, rng=5)
        _, ref = dp_optimal_leftdeep(jg, avoid_cross=False)
        outcome = solve_leftdeep_qaoa(jg, num_layers=2, maxiter=80, rng=1)
        assert outcome.tree.num_relations() == 3
        assert outcome.cost >= ref - 1e-6


class TestBushyQubo:
    def test_variable_count_acyclic(self):
        jg = chain_query(5, rng=0)
        model = BushyJoinQubo(jg).build()
        # 4 edges x 4 steps.
        assert model.num_variables == 16

    def test_ground_state_decodes_to_valid_tree(self):
        jg = chain_query(4, rng=1)
        builder = BushyJoinQubo(jg)
        model = builder.build()
        best = BruteForceSolver(max_variables=10).solve(model).best
        tree = builder.decode(model, best.bits, repair=False)
        assert tree.relations() == frozenset(jg.relations)

    def test_energy_of_sequence_orders_plausibly(self):
        # Contracting the most selective edge first should not cost more
        # energy than contracting it last on a simple chain.
        jg = chain_query(4, rng=4)
        builder = BushyJoinQubo(jg)
        model = builder.build()
        edges = jg.edges
        seq_a = list(edges)
        seq_b = list(reversed(edges))
        ea = builder.energy_of_sequence(model, seq_a)
        eb = builder.energy_of_sequence(model, seq_b)
        assert ea != pytest.approx(eb)  # the encoding distinguishes orders

    def test_sa_bushy_reasonable_quality(self):
        # The pairwise-truncated surrogate can misrank individual instances
        # (the published mappings share this); require validity always and
        # bounded quality on average.
        ratios = []
        for seed in range(3):
            jg = chain_query(5, rng=seed + 20)
            opt = solve_dp_bushy(jg)
            outcome = solve_bushy_annealing(jg, rng=seed)
            assert outcome.tree.relations() == frozenset(jg.relations)
            assert outcome.ratio_to(opt.cost) < 25.0
            ratios.append(outcome.ratio_to(opt.cost))
        assert sum(ratios) / len(ratios) < 8.0

    def test_cycle_graph_uses_at_most_one(self):
        jg = cycle_query(4, rng=2)
        builder = BushyJoinQubo(jg)
        model = builder.build()
        # 4 edges x 3 steps.
        assert model.num_variables == 12
        outcome = solve_bushy_annealing(jg, rng=0)
        assert outcome.tree.relations() == frozenset(jg.relations)

    def test_bushy_beats_leftdeep_somewhere(self):
        """On chains, bushy DP is at least as good as left-deep DP; the QUBO
        spaces inherit that relationship."""
        found_strict = False
        for seed in range(8):
            jg = chain_query(6, rng=seed)
            bushy = solve_dp_bushy(jg)
            leftdeep = solve_dp_leftdeep(jg)
            assert bushy.cost <= leftdeep.cost + 1e-9
            if bushy.cost < leftdeep.cost * 0.999:
                found_strict = True
        assert found_strict


class TestOutcomeApi:
    def test_ratio(self):
        jg = chain_query(4, rng=0)
        opt = solve_dp_bushy(jg)
        greedy = solve_greedy(jg)
        assert greedy.ratio_to(opt.cost) >= 1.0 - 1e-12
