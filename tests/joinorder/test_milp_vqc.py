"""Tests for the BILP pipeline and the VQC RL agent."""

import numpy as np
import pytest

from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_leftdeep
from repro.db.generator import chain_query, star_query
from repro.db.plans import leftdeep_tree_from_order
from repro.exceptions import InfeasibleError, ReproError
from repro.joinorder.milp import (
    Bilp,
    bilp_to_qubo,
    decode_leftdeep_bilp,
    formulate_leftdeep_bilp,
    solve_branch_and_bound,
)
from repro.joinorder.vqc_agent import JoinOrderEnv, VQCJoinOrderAgent
from repro.qubo.bruteforce import BruteForceSolver


class TestBilp:
    def test_simple_assignment(self):
        bilp = Bilp()
        bilp.set_objective("a", 1.0)
        bilp.set_objective("b", 2.0)
        bilp.add_equality({"a": 1.0, "b": 1.0}, 1.0)
        bits, value = solve_branch_and_bound(bilp)
        assert value == pytest.approx(1.0)
        assert bits[bilp.labels.index("a")] == 1

    def test_implication_respected(self):
        bilp = Bilp()
        bilp.set_objective("x", -5.0)  # wants x=1
        bilp.set_objective("y", 1.0)  # wants y=0
        bilp.add_implication("x", "y")  # x <= y forces y along
        bits, value = solve_branch_and_bound(bilp)
        assert value == pytest.approx(-4.0)
        assert bits.tolist() == [1, 1]

    def test_infeasible(self):
        bilp = Bilp()
        bilp.variable("a")
        bilp.add_equality({"a": 1.0}, 2.0)
        with pytest.raises(InfeasibleError):
            solve_branch_and_bound(bilp)

    def test_bilp_to_qubo_preserves_optimum(self):
        bilp = Bilp()
        bilp.set_objective("a", 1.0)
        bilp.set_objective("b", 2.0)
        bilp.set_objective("c", -1.5)
        bilp.add_equality({"a": 1.0, "b": 1.0}, 1.0)
        bilp.add_implication("c", "a")
        bits, value = solve_branch_and_bound(bilp)
        model = bilp_to_qubo(bilp)
        ground = BruteForceSolver().solve(model).best
        assert ground.energy == pytest.approx(value)
        assert list(ground.bits) == bits.tolist()


class TestLeftDeepBilp:
    @pytest.mark.parametrize("gen,seed", [(chain_query, 3), (star_query, 1)])
    def test_matches_dp_on_small_queries(self, gen, seed):
        jg = gen(4, rng=seed)
        bilp = formulate_leftdeep_bilp(jg)
        bits, _ = solve_branch_and_bound(bilp)
        order = decode_leftdeep_bilp(bilp, bits, jg)
        cm = CostModel(jg)
        bilp_cost = cm.cost(leftdeep_tree_from_order(order))
        # The BILP optimises the log surrogate; its decoded plan should be
        # close to (often equal to) the true left-deep optimum.
        _, dp_cost = dp_optimal_leftdeep(jg, avoid_cross=False)
        assert bilp_cost <= dp_cost * 5.0
        assert sorted(order) == jg.relations

    def test_bilp_qubo_roundtrip_order_valid(self):
        jg = chain_query(3, rng=7)
        bilp = formulate_leftdeep_bilp(jg)
        model = bilp_to_qubo(bilp)
        ground = BruteForceSolver(max_variables=16).solve(model).best
        bits = np.array(ground.bits)
        assert bilp.is_feasible(bits)
        order = decode_leftdeep_bilp(bilp, bits, jg)
        assert sorted(order) == jg.relations


class TestJoinOrderEnv:
    def test_episode_runs_to_completion(self):
        jg = chain_query(4, rng=0)
        env = JoinOrderEnv(jg)
        env.reset()
        steps = 0
        while not env.done:
            env.step(env.valid_actions()[0])
            steps += 1
        assert steps == 4
        assert env.final_cost() > 0

    def test_features_track_progress(self):
        jg = chain_query(3, rng=1)
        env = JoinOrderEnv(jg)
        f0 = env.reset()
        assert f0.sum() == 0
        env.step(0)
        assert env.features().sum() == 1

    def test_valid_actions_prefer_connected(self):
        jg = chain_query(4, rng=2)  # R0-R1-R2-R3
        env = JoinOrderEnv(jg)
        env.reset()
        env.step(0)  # join R0
        valid = env.valid_actions()
        assert valid == [1]  # only R1 is connected to R0

    def test_cannot_join_twice(self):
        jg = chain_query(3, rng=3)
        env = JoinOrderEnv(jg)
        env.reset()
        env.step(0)
        with pytest.raises(ReproError):
            env.step(0)

    def test_final_cost_requires_completion(self):
        jg = chain_query(3, rng=4)
        env = JoinOrderEnv(jg)
        env.reset()
        with pytest.raises(ReproError):
            env.final_cost()


class TestVQCAgent:
    def test_training_improves_cost_ratio(self):
        jg = chain_query(4, rng=2)
        agent = VQCJoinOrderAgent(jg, num_layers=1)
        history = agent.train(episodes=50, rng=0)
        early = float(np.mean(history.ratios[:10]))
        late = history.mean_ratio(10)
        assert late < early

    def test_greedy_order_is_valid_permutation(self):
        jg = chain_query(4, rng=3)
        agent = VQCJoinOrderAgent(jg, num_layers=1)
        agent.train(episodes=30, rng=1)
        order = agent.greedy_order()
        assert sorted(order) == jg.relations

    def test_untrained_greedy_raises(self):
        agent = VQCJoinOrderAgent(chain_query(3, rng=0), num_layers=1)
        with pytest.raises(ReproError):
            agent.greedy_order()

    def test_history_metrics(self):
        jg = chain_query(3, rng=5)
        agent = VQCJoinOrderAgent(jg, num_layers=1)
        history = agent.train(episodes=15, rng=2)
        assert len(history.costs) == 15
        assert len(history.rewards) == 15
        assert all(r <= 0.0 + 1e-12 for r in history.rewards)
