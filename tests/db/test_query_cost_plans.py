"""Tests for join graphs, the cost model, join trees and DP optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.cost import CostModel
from repro.db.dp import (
    dp_optimal_bushy,
    dp_optimal_leftdeep,
    greedy_operator_ordering,
    random_order,
)
from repro.db.generator import chain_query, clique_query, cycle_query, random_query, star_query
from repro.db.plans import (
    JoinTree,
    all_leftdeep_orders,
    leftdeep_tree_from_order,
    tree_from_edge_sequence,
)
from repro.db.query import JoinGraph
from repro.exceptions import ReproError


def _simple_graph():
    return JoinGraph.build(
        {"A": 100, "B": 200, "C": 50},
        {("A", "B"): 0.01, ("B", "C"): 0.1},
    )


class TestJoinGraph:
    def test_build(self):
        jg = _simple_graph()
        assert jg.num_relations == 3
        assert jg.cardinality("B") == 200
        assert jg.selectivity("A", "B") == 0.01
        assert jg.selectivity("A", "C") == 1.0  # no predicate
        assert jg.has_join("B", "C")
        assert not jg.has_join("A", "C")

    def test_neighbors(self):
        assert _simple_graph().neighbors("B") == ["A", "C"]

    def test_connectivity(self):
        jg = _simple_graph()
        assert jg.is_connected()
        assert jg.is_acyclic()
        assert jg.connects({"A"}, {"B", "C"})
        assert not jg.connects({"A"}, {"C"})

    def test_validation(self):
        jg = JoinGraph()
        with pytest.raises(ReproError):
            jg.add_relation("A", 0)
        jg.add_relation("A", 10)
        jg.add_relation("B", 10)
        with pytest.raises(ReproError):
            jg.add_join("A", "A", 0.5)
        with pytest.raises(ReproError):
            jg.add_join("A", "Z", 0.5)
        with pytest.raises(ReproError):
            jg.add_join("A", "B", 0.0)


class TestCostModel:
    def test_pair_cardinality(self):
        cm = CostModel(_simple_graph())
        assert cm.set_cardinality({"A", "B"}) == pytest.approx(100 * 200 * 0.01)
        assert cm.set_cardinality({"A", "C"}) == pytest.approx(100 * 50)

    def test_full_cardinality_applies_all_predicates(self):
        cm = CostModel(_simple_graph())
        assert cm.set_cardinality({"A", "B", "C"}) == pytest.approx(100 * 200 * 50 * 0.01 * 0.1)

    def test_cost_leftdeep(self):
        cm = CostModel(_simple_graph())
        tree = leftdeep_tree_from_order(["A", "B", "C"])
        expected = cm.set_cardinality({"A", "B"}) + cm.set_cardinality({"A", "B", "C"})
        assert cm.cost(tree) == pytest.approx(expected)

    def test_cost_of_order(self):
        cm = CostModel(_simple_graph())
        assert cm.cost_of_order(["A", "B", "C"]) == pytest.approx(
            cm.cost(leftdeep_tree_from_order(["A", "B", "C"]))
        )

    def test_log_cost_monotone_with_cost_for_same_shape(self):
        cm = CostModel(_simple_graph())
        a = cm.log_cost(leftdeep_tree_from_order(["A", "B", "C"]))
        b = cm.log_cost(leftdeep_tree_from_order(["C", "A", "B"]))
        assert a != b

    def test_empty_set_rejected(self):
        with pytest.raises(ReproError):
            CostModel(_simple_graph()).set_cardinality([])


class TestJoinTree:
    def test_leaf(self):
        leaf = JoinTree.leaf("A")
        assert leaf.is_leaf
        assert leaf.relations() == frozenset({"A"})
        assert leaf.is_left_deep()

    def test_join_structure(self):
        t = JoinTree.join(JoinTree.leaf("A"), JoinTree.leaf("B"))
        assert not t.is_leaf
        assert t.relations() == frozenset({"A", "B"})
        assert t.depth() == 1

    def test_overlapping_children_rejected(self):
        with pytest.raises(ReproError):
            JoinTree.join(JoinTree.leaf("A"), JoinTree.leaf("A"))

    def test_leftdeep_from_order(self):
        t = leftdeep_tree_from_order(["A", "B", "C"])
        assert t.is_left_deep()
        assert t.leaves_in_order() == ["A", "B", "C"]
        assert len(list(t.inner_nodes())) == 2

    def test_duplicate_order_rejected(self):
        with pytest.raises(ReproError):
            leftdeep_tree_from_order(["A", "A"])

    def test_bushy_is_not_leftdeep(self):
        ab = JoinTree.join(JoinTree.leaf("A"), JoinTree.leaf("B"))
        cd = JoinTree.join(JoinTree.leaf("C"), JoinTree.leaf("D"))
        bushy = JoinTree.join(ab, cd)
        assert not bushy.is_left_deep()
        assert bushy.depth() == 2

    def test_equality_and_hash(self):
        a = leftdeep_tree_from_order(["A", "B"])
        b = leftdeep_tree_from_order(["A", "B"])
        assert a == b
        assert hash(a) == hash(b)

    def test_edge_sequence_tree(self):
        t = tree_from_edge_sequence([("A", "B"), ("B", "C")], ["A", "B", "C"])
        assert t.relations() == frozenset({"A", "B", "C"})

    def test_edge_sequence_incomplete(self):
        with pytest.raises(ReproError):
            tree_from_edge_sequence([("A", "B")], ["A", "B", "C"])

    def test_edge_sequence_skips_redundant(self):
        t = tree_from_edge_sequence(
            [("A", "B"), ("A", "B"), ("B", "C")], ["A", "B", "C"]
        )
        assert t.relations() == frozenset({"A", "B", "C"})


class TestOptimizers:
    def test_dp_beats_or_ties_everything(self):
        for seed in range(4):
            jg = chain_query(6, rng=seed)
            cm = CostModel(jg)
            _, bushy = dp_optimal_bushy(jg, cm)
            _, leftdeep = dp_optimal_leftdeep(jg, cm)
            _, greedy = greedy_operator_ordering(jg, cm)
            _, rand = random_order(jg, rng=seed, cost_model=cm)
            assert bushy <= leftdeep + 1e-9
            assert leftdeep <= rand * (1 + 1e-9)
            assert bushy <= greedy + 1e-9

    def test_leftdeep_dp_matches_exhaustive(self):
        jg = cycle_query(5, rng=3)
        cm = CostModel(jg)
        _, dp_cost = dp_optimal_leftdeep(jg, cm)
        best = min(cm.cost_of_order(order) for order in all_leftdeep_orders(jg.relations))
        assert dp_cost == pytest.approx(best)

    def test_star_query_bushy_equals_leftdeep(self):
        # On a star, every join must involve the hub: bushy = left-deep.
        jg = star_query(5, rng=1)
        cm = CostModel(jg)
        _, bushy = dp_optimal_bushy(jg, cm)
        _, leftdeep = dp_optimal_leftdeep(jg, cm)
        assert bushy == pytest.approx(leftdeep)

    def test_size_limit(self):
        jg = chain_query(6, rng=0)
        with pytest.raises(ReproError):
            dp_optimal_bushy(jg, max_relations=4)

    def test_greedy_valid_tree(self):
        jg = clique_query(5, rng=2)
        tree, cost = greedy_operator_ordering(jg)
        assert tree.relations() == frozenset(jg.relations)
        assert cost > 0


class TestGenerators:
    def test_chain_shape(self):
        jg = chain_query(5, rng=0)
        assert jg.num_relations == 5
        assert len(jg.edges) == 4
        assert jg.is_acyclic()

    def test_star_shape(self):
        jg = star_query(5, rng=0)
        assert len(jg.edges) == 4
        assert all("R0" in e for e in jg.edges)

    def test_cycle_shape(self):
        jg = cycle_query(5, rng=0)
        assert len(jg.edges) == 5
        assert not jg.is_acyclic()

    def test_clique_shape(self):
        jg = clique_query(5, rng=0)
        assert len(jg.edges) == 10

    def test_random_query_dispatch(self):
        assert random_query(4, "star", rng=0).num_relations == 4
        with pytest.raises(ReproError):
            random_query(4, "mesh", rng=0)

    def test_deterministic_given_seed(self):
        a = chain_query(5, rng=42)
        b = chain_query(5, rng=42)
        assert [a.cardinality(r) for r in a.relations] == [
            b.cardinality(r) for r in b.relations
        ]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=4, max_value=7), st.integers(min_value=0, max_value=10**6),
       st.sampled_from(["chain", "star", "cycle"]))
def test_property_dp_bushy_never_worse_than_leftdeep(n, seed, topology):
    jg = random_query(n, topology, rng=seed)
    cm = CostModel(jg)
    _, bushy = dp_optimal_bushy(jg, cm)
    _, leftdeep = dp_optimal_leftdeep(jg, cm)
    assert bushy <= leftdeep * (1 + 1e-12) + 1e-9
