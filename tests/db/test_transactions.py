"""Tests for transactions, serializability and 2PL simulation."""

import pytest

from repro.db.transactions import (
    LockManager,
    Operation,
    Schedule,
    Transaction,
    conflict_graph,
    is_conflict_serializable,
    simulate_slot_schedule,
)
from repro.exceptions import ReproError


class TestOperations:
    def test_kind_validated(self):
        with pytest.raises(ReproError):
            Operation("T1", "x", "a")

    def test_conflict_rules(self):
        r1 = Operation("T1", "r", "x")
        w2 = Operation("T2", "w", "x")
        r2 = Operation("T2", "r", "x")
        w2y = Operation("T2", "w", "y")
        assert r1.conflicts_with(w2)
        assert not r1.conflicts_with(r2)  # read-read
        assert not r1.conflicts_with(w2y)  # different item
        assert not w2.conflicts_with(Operation("T2", "r", "x"))  # same txn

    def test_from_string(self):
        t = Transaction.from_string("T1", "r(x) w(y)")
        assert [op.kind for op in t.operations] == ["r", "w"]
        assert t.items == {"x", "y"}
        assert t.write_items == {"y"}

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ReproError):
            Transaction.from_string("T1", "rx")

    def test_transaction_conflicts(self):
        t1 = Transaction.from_string("T1", "r(x) w(x)")
        t2 = Transaction.from_string("T2", "r(x)")
        t3 = Transaction.from_string("T3", "r(y)")
        t4 = Transaction.from_string("T4", "r(z) r(x)")
        assert t1.conflicts_with(t2)  # w-r on x
        assert not t1.conflicts_with(t3)
        assert not t2.conflicts_with(t4)  # read-read only


class TestSerializability:
    def test_serial_schedule_is_serializable(self):
        t1 = Transaction.from_string("T1", "r(x) w(x)")
        t2 = Transaction.from_string("T2", "r(x) w(x)")
        assert is_conflict_serializable(Schedule.serial([t1, t2]))

    def test_classic_nonserializable_interleaving(self):
        # T1: r(x) ... w(x); T2: r(x) w(x) in between -> lost update cycle.
        ops = [
            Operation("T1", "r", "x"),
            Operation("T2", "r", "x"),
            Operation("T2", "w", "x"),
            Operation("T1", "w", "x"),
        ]
        assert not is_conflict_serializable(Schedule(ops))

    def test_conflict_graph_edges(self):
        ops = [
            Operation("T1", "w", "x"),
            Operation("T2", "r", "x"),
        ]
        g = conflict_graph(Schedule(ops))
        assert list(g.edges) == [("T1", "T2")]

    def test_schedule_transactions_order(self):
        ops = [Operation("T2", "r", "x"), Operation("T1", "r", "y")]
        assert Schedule(ops).transactions == ["T2", "T1"]


class TestLockManager:
    def test_nonconflicting_run_in_parallel(self):
        t1 = Transaction.from_string("T1", "r(x) w(x)")
        t2 = Transaction.from_string("T2", "r(y) w(y)")
        report = LockManager([t1, t2]).run({"T1": 0, "T2": 0})
        assert report.makespan == 2
        assert report.blocking_time == 0

    def test_conflicting_block(self):
        t1 = Transaction.from_string("T1", "r(x) w(x)")
        t2 = Transaction.from_string("T2", "r(x) w(x)")
        report = LockManager([t1, t2]).run({"T1": 0, "T2": 0})
        assert report.makespan == 4  # serialised
        assert report.blocking_time == 2  # T2 waits for T1's two ticks

    def test_shared_reads_dont_block(self):
        t1 = Transaction.from_string("T1", "r(x)")
        t2 = Transaction.from_string("T2", "r(x)")
        report = LockManager([t1, t2]).run({"T1": 0, "T2": 0})
        assert report.makespan == 1
        assert report.blocking_time == 0

    def test_staggered_starts_avoid_blocking(self):
        t1 = Transaction.from_string("T1", "r(x) w(x)")
        t2 = Transaction.from_string("T2", "r(x) w(x)")
        report = LockManager([t1, t2]).run({"T1": 0, "T2": 2})
        assert report.blocking_time == 0
        assert report.makespan == 4

    def test_rejects_negative_start(self):
        t1 = Transaction.from_string("T1", "r(x)")
        with pytest.raises(ReproError):
            LockManager([t1]).run({"T1": -1})


class TestSlotSchedules:
    def _txns(self):
        return [
            Transaction.from_string("T1", "r(x) w(x)"),
            Transaction.from_string("T2", "w(x) r(y)"),
            Transaction.from_string("T3", "r(z) w(z)"),
        ]

    def test_conflict_free_assignment_no_blocking(self):
        txns = self._txns()
        report = simulate_slot_schedule(txns, {"T1": 0, "T2": 1, "T3": 0})
        assert report.blocking_time == 0
        assert report.conflicting_pairs_colocated == 0
        assert report.makespan == 4

    def test_colocated_conflict_blocks(self):
        txns = self._txns()
        report = simulate_slot_schedule(txns, {"T1": 0, "T2": 0, "T3": 0})
        assert report.conflicting_pairs_colocated == 1
        assert report.blocking_time > 0

    def test_fewer_slots_smaller_makespan_when_safe(self):
        txns = self._txns()
        packed = simulate_slot_schedule(txns, {"T1": 0, "T2": 1, "T3": 0})
        spread = simulate_slot_schedule(txns, {"T1": 0, "T2": 1, "T3": 2})
        assert packed.makespan <= spread.makespan
        assert packed.num_slots_used == 2
