"""Tests for repro.db.relation and repro.db.catalog."""

import pytest

from repro.db.catalog import Catalog
from repro.db.relation import Relation
from repro.exceptions import ReproError


@pytest.fixture
def users():
    return Relation(
        "users",
        ["uid", "name", "city"],
        [(1, "ann", "delft"), (2, "bob", "sf"), (3, "cat", "delft")],
    )


@pytest.fixture
def orders():
    return Relation(
        "orders",
        ["oid", "uid", "total"],
        [(10, 1, 99.0), (11, 1, 5.0), (12, 2, 20.0)],
    )


class TestRelationBasics:
    def test_construction(self, users):
        assert users.cardinality == 3
        assert users.columns == ("uid", "name", "city")

    def test_needs_columns(self):
        with pytest.raises(ReproError):
            Relation("r", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ReproError):
            Relation("r", ["a", "a"])

    def test_insert_arity_checked(self, users):
        with pytest.raises(ReproError):
            users.insert((4, "dan"))

    def test_delete(self, users):
        removed = users.delete(lambda r: r[2] == "delft")
        assert removed == 2
        assert users.cardinality == 1

    def test_update(self, users):
        touched = users.update(lambda r: r[0] == 1, lambda r: (r[0], "ANN", r[2]))
        assert touched == 1
        assert ("ANN" in {r[1] for r in users.rows})

    def test_distinct(self):
        r = Relation("r", ["a"], [(1,), (1,), (2,)])
        assert r.distinct().cardinality == 2


class TestOperators:
    def test_select(self, users):
        delft = users.select(lambda r: r[2] == "delft")
        assert delft.cardinality == 2

    def test_select_eq(self, users):
        assert users.select_eq("city", "sf").cardinality == 1

    def test_project(self, users):
        names = users.project(["name"])
        assert names.columns == ("name",)
        assert ("ann",) in names.rows

    def test_project_reorders(self, users):
        r = users.project(["city", "uid"])
        assert r.rows[0] == ("delft", 1)

    def test_unknown_column(self, users):
        with pytest.raises(ReproError):
            users.project(["nope"])

    def test_hash_join(self, users, orders):
        joined = users.hash_join(orders, "uid", "uid")
        assert joined.cardinality == 3  # ann twice, bob once
        # Columns are qualified.
        assert "users.name" in joined.columns
        assert "orders.total" in joined.columns

    def test_hash_join_matches_nested_loop(self, users, orders):
        ui = users.column_index("uid")
        oi = orders.column_index("uid")
        hj = users.hash_join(orders, "uid", "uid")
        nlj = users.nested_loop_join(orders, lambda l, r: l[ui] == r[oi])
        assert sorted(hj.rows) == sorted(nlj.rows)

    def test_cross(self, users, orders):
        assert users.cross(orders).cardinality == 9


class TestSetOperations:
    def test_union(self):
        a = Relation("a", ["x"], [(1,), (2,)])
        b = Relation("b", ["x"], [(2,), (3,)])
        assert sorted(a.union(b).rows) == [(1,), (2,), (3,)]

    def test_intersect(self):
        a = Relation("a", ["x"], [(1,), (2,), (2,)])
        b = Relation("b", ["x"], [(2,), (3,)])
        assert a.intersect(b).rows == [(2,)]

    def test_difference(self):
        a = Relation("a", ["x"], [(1,), (2,)])
        b = Relation("b", ["x"], [(2,)])
        assert a.difference(b).rows == [(1,)]

    def test_incompatible_arity(self):
        a = Relation("a", ["x"], [(1,)])
        b = Relation("b", ["x", "y"], [(1, 2)])
        with pytest.raises(ReproError):
            a.union(b)


class TestCatalog:
    def test_add_table_stats(self):
        cat = Catalog()
        cat.add_table("t", 100, {"k": 50})
        assert cat.stats("t").cardinality == 100
        assert cat.stats("t").distinct("k") == 50
        assert cat.stats("t").distinct("other") == 100

    def test_add_relation_derives_stats(self, users):
        cat = Catalog()
        cat.add_relation(users)
        assert cat.stats("users").cardinality == 3
        assert cat.stats("users").distinct("city") == 2
        assert cat.relation("users") is users

    def test_unknown_table(self):
        with pytest.raises(ReproError):
            Catalog().stats("ghost")

    def test_negative_cardinality(self):
        with pytest.raises(ReproError):
            Catalog().add_table("t", -1)

    def test_equijoin_selectivity(self, users, orders):
        cat = Catalog()
        cat.add_relation(users)
        cat.add_relation(orders)
        sel = cat.equijoin_selectivity("users", "uid", "orders", "uid")
        assert sel == pytest.approx(1.0 / 3.0)

    def test_table_names(self, users):
        cat = Catalog()
        cat.add_relation(users)
        cat.add_table("zzz", 5)
        assert cat.table_names == ["users", "zzz"]
