"""Tests for the SQL subset parser and executor."""

import pytest

from repro.db.catalog import Catalog
from repro.db.relation import Relation
from repro.db.sql import ColumnRef, Condition, execute, parse_sql
from repro.exceptions import ParseError, ReproError


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_relation(
        Relation(
            "users",
            ["uid", "name", "city"],
            [(1, "ann", "delft"), (2, "bob", "sf"), (3, "cat", "delft")],
        )
    )
    cat.add_relation(
        Relation(
            "orders",
            ["oid", "uid", "total"],
            [(10, 1, 99.0), (11, 1, 5.0), (12, 2, 20.0)],
        )
    )
    cat.add_relation(
        Relation("items", ["oid", "sku"], [(10, "apple"), (12, "pear"), (12, "plum")])
    )
    return cat


class TestParser:
    def test_select_star(self):
        q = parse_sql("SELECT * FROM users")
        assert q.tables == ["users"]
        assert q.projections is None
        assert q.conditions == []

    def test_projection_list(self):
        q = parse_sql("SELECT name, users.city FROM users")
        assert q.projections == [ColumnRef(None, "name"), ColumnRef("users", "city")]

    def test_where_filter(self):
        q = parse_sql("SELECT * FROM users WHERE city = 'delft'")
        assert q.filter_conditions == [Condition(ColumnRef(None, "city"), "=", "delft")]

    def test_where_join(self):
        q = parse_sql("SELECT * FROM users, orders WHERE users.uid = orders.uid")
        assert len(q.join_conditions) == 1
        assert q.join_conditions[0].is_join

    def test_numeric_literals(self):
        q = parse_sql("SELECT * FROM orders WHERE total >= 20.5 AND oid != 3")
        assert q.conditions[0].right == 20.5
        assert q.conditions[1].right == 3

    def test_keywords_case_insensitive(self):
        q = parse_sql("select * from users where city = 'sf'")
        assert q.tables == ["users"]

    def test_errors(self):
        for bad in (
            "SELECT FROM users",
            "SELECT * users",
            "SELECT * FROM",
            "SELECT * FROM users WHERE",
            "SELECT * FROM users WHERE city ~ 'x'",
            "SELECT * FROM users extra",
            "SELECT * FROM users, users",
        ):
            with pytest.raises(ParseError):
                parse_sql(bad)


class TestExecutor:
    def test_full_scan(self, catalog):
        res = execute("SELECT * FROM users", catalog)
        assert res.cardinality == 3

    def test_filter(self, catalog):
        res = execute("SELECT * FROM users WHERE city = 'delft'", catalog)
        assert res.cardinality == 2

    def test_projection(self, catalog):
        res = execute("SELECT name FROM users WHERE uid = 1", catalog)
        assert res.rows == [("ann",)]

    def test_two_way_join(self, catalog):
        res = execute(
            "SELECT users.name, orders.total FROM users, orders WHERE users.uid = orders.uid",
            catalog,
        )
        assert sorted(res.rows) == [("ann", 5.0), ("ann", 99.0), ("bob", 20.0)]

    def test_join_with_filter(self, catalog):
        res = execute(
            "SELECT users.name FROM users, orders "
            "WHERE users.uid = orders.uid AND orders.total > 10",
            catalog,
        )
        assert sorted(res.rows) == [("ann",), ("bob",)]

    def test_three_way_join(self, catalog):
        res = execute(
            "SELECT users.name, items.sku FROM users, orders, items "
            "WHERE users.uid = orders.uid AND orders.oid = items.oid",
            catalog,
        )
        assert sorted(res.rows) == [("ann", "apple"), ("bob", "pear"), ("bob", "plum")]

    def test_unqualified_unambiguous_column(self, catalog):
        res = execute("SELECT name FROM users WHERE city = 'sf'", catalog)
        assert res.rows == [("bob",)]

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(ReproError):
            execute("SELECT * FROM users, orders WHERE uid = 1", catalog)

    def test_inequality_operators(self, catalog):
        res = execute("SELECT oid FROM orders WHERE total <= 20.0", catalog)
        assert sorted(res.rows) == [(11,), (12,)]

    def test_cross_product_when_no_join(self, catalog):
        res = execute("SELECT * FROM users, items", catalog)
        assert res.cardinality == 9
