"""Tests for the SQL subset parser and executor."""

import pytest

from repro.db.catalog import Catalog
from repro.db.relation import Relation
from repro.db.sql import ColumnRef, Condition, execute, parse_sql
from repro.exceptions import ParseError, ReproError


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_relation(
        Relation(
            "users",
            ["uid", "name", "city"],
            [(1, "ann", "delft"), (2, "bob", "sf"), (3, "cat", "delft")],
        )
    )
    cat.add_relation(
        Relation(
            "orders",
            ["oid", "uid", "total"],
            [(10, 1, 99.0), (11, 1, 5.0), (12, 2, 20.0)],
        )
    )
    cat.add_relation(
        Relation("items", ["oid", "sku"], [(10, "apple"), (12, "pear"), (12, "plum")])
    )
    return cat


class TestParser:
    def test_select_star(self):
        q = parse_sql("SELECT * FROM users")
        assert q.tables == ["users"]
        assert q.projections is None
        assert q.conditions == []

    def test_projection_list(self):
        q = parse_sql("SELECT name, users.city FROM users")
        assert q.projections == [ColumnRef(None, "name"), ColumnRef("users", "city")]

    def test_where_filter(self):
        q = parse_sql("SELECT * FROM users WHERE city = 'delft'")
        assert q.filter_conditions == [Condition(ColumnRef(None, "city"), "=", "delft")]

    def test_where_join(self):
        q = parse_sql("SELECT * FROM users, orders WHERE users.uid = orders.uid")
        assert len(q.join_conditions) == 1
        assert q.join_conditions[0].is_join

    def test_numeric_literals(self):
        q = parse_sql("SELECT * FROM orders WHERE total >= 20.5 AND oid != 3")
        assert q.conditions[0].right == 20.5
        assert q.conditions[1].right == 3

    def test_keywords_case_insensitive(self):
        q = parse_sql("select * from users where city = 'sf'")
        assert q.tables == ["users"]

    def test_errors(self):
        for bad in (
            "SELECT FROM users",
            "SELECT * users",
            "SELECT * FROM",
            "SELECT * FROM users WHERE",
            "SELECT * FROM users WHERE city ~ 'x'",
            "SELECT * FROM users extra garbage",
            "SELECT * FROM users, users",
        ):
            with pytest.raises(ParseError):
                parse_sql(bad)


class TestExecutor:
    def test_full_scan(self, catalog):
        res = execute("SELECT * FROM users", catalog)
        assert res.cardinality == 3

    def test_filter(self, catalog):
        res = execute("SELECT * FROM users WHERE city = 'delft'", catalog)
        assert res.cardinality == 2

    def test_projection(self, catalog):
        res = execute("SELECT name FROM users WHERE uid = 1", catalog)
        assert res.rows == [("ann",)]

    def test_two_way_join(self, catalog):
        res = execute(
            "SELECT users.name, orders.total FROM users, orders WHERE users.uid = orders.uid",
            catalog,
        )
        assert sorted(res.rows) == [("ann", 5.0), ("ann", 99.0), ("bob", 20.0)]

    def test_join_with_filter(self, catalog):
        res = execute(
            "SELECT users.name FROM users, orders "
            "WHERE users.uid = orders.uid AND orders.total > 10",
            catalog,
        )
        assert sorted(res.rows) == [("ann",), ("bob",)]

    def test_three_way_join(self, catalog):
        res = execute(
            "SELECT users.name, items.sku FROM users, orders, items "
            "WHERE users.uid = orders.uid AND orders.oid = items.oid",
            catalog,
        )
        assert sorted(res.rows) == [("ann", "apple"), ("bob", "pear"), ("bob", "plum")]

    def test_unqualified_unambiguous_column(self, catalog):
        res = execute("SELECT name FROM users WHERE city = 'sf'", catalog)
        assert res.rows == [("bob",)]

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(ReproError):
            execute("SELECT * FROM users, orders WHERE uid = 1", catalog)

    def test_inequality_operators(self, catalog):
        res = execute("SELECT oid FROM orders WHERE total <= 20.0", catalog)
        assert sorted(res.rows) == [(11,), (12,)]

    def test_cross_product_when_no_join(self, catalog):
        res = execute("SELECT * FROM users, items", catalog)
        assert res.cardinality == 9


class TestAliasesAndEdgeCases:
    def test_alias_bare_and_as(self):
        q = parse_sql("SELECT u.name FROM users u, orders AS o WHERE u.uid = o.uid")
        assert q.tables == ["u", "o"]
        assert q.aliases == {"u": "users", "o": "orders"}
        assert q.base_table("u") == "users"

    def test_self_join_parses(self):
        q = parse_sql(
            "SELECT u1.name, u2.name FROM users u1, users u2 "
            "WHERE u1.city = u2.city AND u1.uid != u2.uid"
        )
        assert q.tables == ["u1", "u2"]
        assert q.base_table("u1") == q.base_table("u2") == "users"

    def test_self_join_executes(self, catalog):
        res = execute(
            "SELECT u1.name, u2.name FROM users u1, users u2 "
            "WHERE u1.city = u2.city AND u1.uid < u2.uid",
            catalog,
        )
        assert sorted(res.rows) == [("ann", "cat")]

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_sql("SELECT * FROM users u, orders u")

    def test_quoted_string_containing_keywords(self):
        q = parse_sql("SELECT * FROM users WHERE name = 'select from where and'")
        assert q.conditions[0].right == "select from where and"

    def test_quoted_semicolon_does_not_split_script(self):
        from repro.db.sql import parse_script

        stmts = parse_script("SELECT * FROM users WHERE name = 'a;b'; SELECT * FROM users")
        assert len(stmts) == 2
        assert stmts[0].conditions[0].right == "a;b"

    def test_qualified_star_parses(self):
        q = parse_sql("SELECT u.*, o.total FROM users u, orders o WHERE u.uid = o.uid")
        assert q.projections[0] == ColumnRef("u", "*")

    def test_qualified_star_executes(self, catalog):
        res = execute(
            "SELECT u.*, orders.total FROM users u, orders WHERE u.uid = orders.uid",
            catalog,
        )
        assert res.columns == ("u.uid", "u.name", "u.city", "orders.total")
        assert res.cardinality == 3

    def test_parse_error_points_at_offending_token(self):
        with pytest.raises(ParseError) as exc:
            parse_sql("SELECT * FROM users WHERE city = 'x' AND uid ^ 3")
        message = str(exc.value)
        assert "^" in message and "position" in message

    def test_parse_error_names_unexpected_word(self):
        with pytest.raises(ParseError) as exc:
            parse_sql("SELECT name, FROM users")
        message = str(exc.value)
        assert "'FROM'" in message and "position" in message


class TestScriptsAndDML:
    def test_parse_script_kinds(self):
        from repro.db.sql import parse_script

        stmts = parse_script(
            "SELECT * FROM users;"
            "INSERT INTO users (uid, name, city) VALUES (4, 'dee', 'sf'), (5, 'eli', 'ny');"
            "UPDATE users SET city = 'sf', name = 'x' WHERE uid = 1;"
            "DELETE FROM orders WHERE total < 10;"
        )
        assert [s.kind for s in stmts] == ["select", "insert", "update", "delete"]
        insert = stmts[1]
        assert insert.columns == ["uid", "name", "city"]
        assert insert.rows == [(4, "dee", "sf"), (5, "eli", "ny")]
        assert insert.write_tables == {"users"}
        update = stmts[2]
        assert update.assignments == [("city", "sf"), ("name", "x")]
        assert update.read_tables == {"users"} and update.write_tables == {"users"}
        delete = stmts[3]
        assert delete.read_tables == {"orders"} and delete.write_tables == {"orders"}

    def test_script_error_names_statement(self):
        from repro.db.sql import parse_script

        with pytest.raises(ParseError, match="statement 2"):
            parse_script("SELECT * FROM users; SELEC oops")

    def test_insert_arity_mismatch(self):
        from repro.db.sql import parse_statement

        with pytest.raises(ParseError, match="2 values for 3 columns"):
            parse_statement("INSERT INTO t (a, b, c) VALUES (1, 2)")

    def test_parse_sql_rejects_dml(self):
        with pytest.raises(ParseError, match="expected a SELECT"):
            parse_sql("DELETE FROM users")

    def test_unfiltered_dml_reads_nothing(self):
        from repro.db.sql import parse_statement

        assert parse_statement("DELETE FROM users").read_tables == set()
        assert parse_statement("UPDATE users SET city = 'x'").read_tables == set()


class TestSubexpressionKeys:
    def test_scan_key_alias_independent(self):
        from repro.db.sql import scan_key

        a = parse_sql("SELECT * FROM users u WHERE u.city = 'delft'")
        b = parse_sql("SELECT * FROM users WHERE city = 'delft'")
        assert scan_key(a, "u") == scan_key(b, "users")

    def test_scan_key_differs_on_filter(self):
        from repro.db.sql import scan_key

        a = parse_sql("SELECT * FROM users WHERE city = 'delft'")
        b = parse_sql("SELECT * FROM users WHERE city = 'sf'")
        assert scan_key(a, "users") != scan_key(b, "users")

    def test_join_key_shared_across_queries(self):
        from repro.db.sql import join_subset_key

        a = parse_sql("SELECT * FROM users u, orders o WHERE u.uid = o.uid")
        b = parse_sql("SELECT * FROM users, orders WHERE users.uid = orders.uid")
        assert join_subset_key(a, ["u", "o"]) == join_subset_key(b, ["users", "orders"])

    def test_subexpression_keys_cover_scans_and_joins(self):
        from repro.db.sql import subexpression_keys

        q = parse_sql(
            "SELECT * FROM users u, orders o, items i "
            "WHERE u.uid = o.uid AND o.oid = i.oid"
        )
        keys = subexpression_keys(q)
        kinds = sorted(k[0] for k in keys)
        assert kinds.count("scan") == 3
        assert kinds.count("join") == 3  # two pairs + the full result
