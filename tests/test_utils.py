"""Tests for shared utilities (bits, rng plumbing, ASCII tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    bits_to_index,
    bitstring_to_index,
    index_to_bits,
    index_to_bitstring,
    parity,
)
from repro.utils.rngtools import ensure_rng, spawn
from repro.utils.tables import format_table


class TestBits:
    def test_index_to_bits(self):
        assert index_to_bits(6, 3) == (1, 1, 0)
        assert index_to_bits(0, 2) == (0, 0)

    def test_bits_to_index(self):
        assert bits_to_index((1, 1, 0)) == 6

    def test_bitstring_roundtrip(self):
        assert index_to_bitstring(5, 4) == "0101"
        assert bitstring_to_index("0101") == 5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bits(8, 3)
        with pytest.raises(ValueError):
            bits_to_index((0, 2))
        with pytest.raises(ValueError):
            bitstring_to_index("01x")

    def test_parity(self):
        assert parity(0b1011) == 1
        assert parity(0b1001) == 0
        assert parity(0) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1023))
    def test_property_roundtrip(self, index):
        assert bits_to_index(index_to_bits(index, 10)) == index


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent(self):
        children = spawn(np.random.default_rng(0), 3)
        assert len(children) == 3
        draws = {c.integers(0, 10**9) for c in children}
        assert len(draws) == 3


class TestTables:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, True]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "yes" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
