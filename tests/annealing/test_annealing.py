"""Tests for the annealing samplers and schedules."""

import numpy as np
import pytest

from repro.annealing.schedule import beta_range, geometric_beta_schedule, linear_schedule
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.annealing.sqa import SimulatedQuantumAnnealingSolver
from repro.exceptions import ReproError
from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one


def _random_model(seed, n=8, density=0.5):
    rng = np.random.default_rng(seed)
    m = QuboModel(n)
    for i in range(n):
        m.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                m.add_quadratic(i, j, float(rng.normal()))
    return m


class TestSchedules:
    def test_linear_endpoints(self):
        s = linear_schedule(0.0, 1.0, 5)
        assert s[0] == 0.0
        assert s[-1] == 1.0
        assert len(s) == 5

    def test_geometric_monotone(self):
        s = geometric_beta_schedule(0.1, 10.0, 20)
        assert np.all(np.diff(s) > 0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_beta_schedule(0.0, 1.0, 5)

    def test_schedule_needs_steps(self):
        with pytest.raises(ReproError):
            linear_schedule(0, 1, 0)

    def test_beta_range_scales(self):
        lo1, hi1 = beta_range(1.0)
        lo2, hi2 = beta_range(10.0)
        assert lo2 == pytest.approx(lo1 / 10)
        assert hi2 == pytest.approx(hi1 / 10)


class TestSimulatedAnnealing:
    @pytest.mark.parametrize("seed", range(4))
    def test_reaches_exact_optimum(self, seed):
        m = _random_model(seed)
        exact = BruteForceSolver().solve(m).best_energy()
        found = SimulatedAnnealingSolver(num_reads=16, num_sweeps=200).solve(m, rng=seed)
        assert found.best_energy() == pytest.approx(exact, abs=1e-9)

    def test_respects_constraints(self):
        m = QuboModel(4)
        rng = np.random.default_rng(5)
        for i in range(4):
            m.add_linear(i, float(rng.normal()) * 0.1)
        add_exactly_one(m, [0, 1, 2, 3], 10.0)
        best = SimulatedAnnealingSolver(num_reads=8, num_sweeps=100).solve(m, rng=1).best
        assert sum(best.bits) == 1

    def test_deterministic_given_seed(self):
        m = _random_model(9)
        a = SimulatedAnnealingSolver(num_reads=4, num_sweeps=50).solve(m, rng=3)
        b = SimulatedAnnealingSolver(num_reads=4, num_sweeps=50).solve(m, rng=3)
        assert a.best.bits == b.best.bits

    def test_custom_beta_schedule_resampled(self):
        m = _random_model(2, n=4)
        solver = SimulatedAnnealingSolver(num_reads=4, num_sweeps=37, beta_schedule=np.array([0.1, 1.0, 10.0]))
        ss = solver.solve(m, rng=0)
        assert len(ss) >= 1

    def test_info_fields(self):
        ss = SimulatedAnnealingSolver(num_reads=4, num_sweeps=10).solve(_random_model(0, n=4), rng=0)
        assert ss.info["solver"] == "simulated_annealing"
        assert ss.info["reads"] == 4

    def test_portfolio_merge_keeps_both_schedules_info(self):
        # The default (no explicit schedule, >= 2 reads) portfolio path must
        # surface both halves in the merged info, not drop the second's.
        ss = SimulatedAnnealingSolver(num_reads=5, num_sweeps=10).solve(_random_model(1, n=4), rng=0)
        assert ss.info["solver"] == "simulated_annealing"
        split = ss.info["schedule_portfolio"]
        assert split == {"coeff_reads": 3, "field_reads": 2}
        assert split["coeff_reads"] + split["field_reads"] == 5


class TestSQA:
    @pytest.mark.parametrize("seed", range(3))
    def test_reaches_exact_optimum(self, seed):
        m = _random_model(seed, n=7)
        exact = BruteForceSolver().solve(m).best_energy()
        found = SimulatedQuantumAnnealingSolver(num_reads=8, num_sweeps=120, num_slices=6).solve(m, rng=seed)
        assert found.best_energy() == pytest.approx(exact, abs=1e-9)

    def test_needs_two_slices(self):
        with pytest.raises(ReproError):
            SimulatedQuantumAnnealingSolver(num_slices=1)

    def test_frustrated_antiferromagnet(self):
        # Ring of antiferromagnetic couplings: ground state alternates.
        m = QuboModel(6)
        for i in range(6):
            m.add_quadratic(i, (i + 1) % 6, 2.0)
            m.add_linear(i, -1.0)
        exact = BruteForceSolver().solve(m).best_energy()
        found = SimulatedQuantumAnnealingSolver(num_reads=8, num_sweeps=100).solve(m, rng=0)
        assert found.best_energy() == pytest.approx(exact, abs=1e-9)

    def test_deterministic_given_seed(self):
        m = _random_model(4, n=5)
        a = SimulatedQuantumAnnealingSolver(num_reads=4, num_sweeps=40).solve(m, rng=8)
        b = SimulatedQuantumAnnealingSolver(num_reads=4, num_sweeps=40).solve(m, rng=8)
        assert a.best.bits == b.best.bits
