"""Tests for Chimera topology, minor embedding and the device pipeline."""

import networkx as nx
import numpy as np
import pytest

from repro.annealing.chimera import chimera_graph, chimera_node
from repro.annealing.device import AnnealerDevice
from repro.annealing.embedding import (
    embed_qubo,
    find_embedding,
    unembed_sampleset,
    verify_embedding,
)
from repro.exceptions import EmbeddingError, ReproError
from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.model import QuboModel


class TestChimera:
    def test_node_count(self):
        g = chimera_graph(2, 2, 4)
        assert g.number_of_nodes() == 2 * 2 * 2 * 4

    def test_edge_count(self):
        # C(m,n,t): m*n*t^2 internal + (m-1)*n*t vertical + m*(n-1)*t horizontal.
        m, n, t = 3, 2, 4
        g = chimera_graph(m, n, t)
        expected = m * n * t * t + (m - 1) * n * t + m * (n - 1) * t
        assert g.number_of_edges() == expected

    def test_cell_is_bipartite_complete(self):
        g = chimera_graph(1, 1, 4)
        for k0 in range(4):
            for k1 in range(4):
                assert g.has_edge(chimera_node(0, 0, 0, k0, 1, 4), chimera_node(0, 0, 1, k1, 1, 4))
        # no intra-side edges
        assert not g.has_edge(chimera_node(0, 0, 0, 0, 1, 4), chimera_node(0, 0, 0, 1, 1, 4))

    def test_inter_cell_couplers(self):
        g = chimera_graph(2, 2, 2)
        n, t = 2, 2
        assert g.has_edge(chimera_node(0, 0, 0, 1, n, t), chimera_node(1, 0, 0, 1, n, t))
        assert g.has_edge(chimera_node(0, 0, 1, 0, n, t), chimera_node(0, 1, 1, 0, n, t))

    def test_default_square(self):
        assert chimera_graph(2).number_of_nodes() == 2 * 2 * 2 * 4

    def test_rejects_bad_dims(self):
        with pytest.raises(ReproError):
            chimera_graph(0)


class TestEmbedding:
    def test_triangle_into_chimera(self):
        # K3 does not fit Chimera natively (bipartite cells): needs a chain.
        source = nx.complete_graph(3)
        target = chimera_graph(1, 1, 4)
        emb = find_embedding(source, target, rng=0)
        assert verify_embedding(source, target, emb)
        assert sum(len(c) for c in emb.values()) >= 4  # at least one chain of 2

    def test_k5_into_chimera(self):
        source = nx.complete_graph(5)
        target = chimera_graph(2, 2, 4)
        emb = find_embedding(source, target, rng=1)
        assert verify_embedding(source, target, emb)

    def test_too_large_source_rejected(self):
        with pytest.raises(EmbeddingError):
            find_embedding(nx.complete_graph(10), nx.path_graph(3), rng=0)

    def test_impossible_embedding_raises(self):
        # A triangle cannot embed into a 3-path (tree has no cycle room).
        with pytest.raises(EmbeddingError):
            find_embedding(nx.complete_graph(3), nx.path_graph(3), rng=0, tries=4)

    def test_empty_source(self):
        assert find_embedding(nx.Graph(), chimera_graph(1), rng=0) == {}

    def test_verify_rejects_overlapping_chains(self):
        source = nx.path_graph(2)
        target = nx.path_graph(3)
        bad = {0: [0, 1], 1: [1, 2]}
        assert not verify_embedding(source, target, bad)

    def test_verify_rejects_disconnected_chain(self):
        source = nx.Graph()
        source.add_node(0)
        target = nx.path_graph(4)
        assert not verify_embedding(source, target, {0: [0, 3]})


class TestEmbedSolveUnembed:
    def _model(self):
        m = QuboModel(3)
        m.add_linear(0, -1.0).add_linear(1, 0.5).add_linear(2, 0.5)
        m.add_quadratic(0, 1, 1.0).add_quadratic(1, 2, -2.0).add_quadratic(0, 2, 1.0)
        return m

    def test_hardware_model_preserves_optimum(self):
        m = self._model()
        target = chimera_graph(1, 1, 4)
        emb = find_embedding(m.interaction_graph(), target, rng=0)
        hw = embed_qubo(m, emb, target)
        hw_best = BruteForceSolver(max_variables=20).solve(hw)
        exact = BruteForceSolver().solve(m).best_energy()
        # With a dominating chain strength the hardware ground energy equals
        # the logical ground energy (intact chains incur zero penalty).
        assert hw_best.best_energy() == pytest.approx(exact)
        logical = unembed_sampleset(hw_best, emb, hw, m)
        assert logical.best_energy() == pytest.approx(exact)
        assert 0.0 <= logical.info["chain_break_fraction"] <= 1.0

    def test_missing_coupler_raises(self):
        m = QuboModel(2)
        m.add_quadratic(0, 1, 1.0)
        target = nx.Graph()
        target.add_nodes_from([10, 11])  # no edges at all
        with pytest.raises(EmbeddingError):
            embed_qubo(m, {0: [10], 1: [11]}, target)


class TestDevice:
    def test_device_reaches_optimum(self):
        rng = np.random.default_rng(3)
        m = QuboModel(6)
        for i in range(6):
            m.add_linear(i, float(rng.normal()))
        for i in range(6):
            for j in range(i + 1, 6):
                if rng.random() < 0.5:
                    m.add_quadratic(i, j, float(rng.normal()))
        exact = BruteForceSolver().solve(m).best_energy()
        for sampler in ("sa", "sqa"):
            dev = AnnealerDevice(sampler=sampler, num_reads=12, num_sweeps=150)
            res = dev.sample(m, rng=7)
            assert res.best_energy() == pytest.approx(exact, abs=1e-9), sampler
            assert res.info["sampler"] == sampler
            assert res.info["max_chain_length"] >= 1

    def test_unknown_sampler(self):
        with pytest.raises(ValueError):
            AnnealerDevice(sampler="magic")

    def test_sample_unembedded(self):
        m = QuboModel(3)
        m.add_linear(0, -1.0)
        dev = AnnealerDevice(sampler="sa", num_reads=4, num_sweeps=30)
        res = dev.sample_unembedded(m, rng=0)
        assert res.best_energy() == pytest.approx(-1.0)

    def test_num_qubits(self):
        assert AnnealerDevice().num_qubits == 128
