"""Shared pytest fixtures.

The ``rng`` fixture seed is overridable via ``REPRO_TEST_SEED`` so CI can
run the whole suite under several seeds (the seed-matrix job): any test
that only passes for one particular RNG stream is hiding a seed dependence
behind a property-style claim, and a matrix run flushes it out.  Locally,
``REPRO_TEST_SEED=777 pytest`` reproduces a matrix leg.
"""

import os

import numpy as np
import pytest

#: The historical default; CI's seed matrix overrides it per leg.
DEFAULT_TEST_SEED = 12345


def repro_test_seed() -> int:
    return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))


@pytest.fixture
def rng():
    """A deterministic RNG for tests (seed from REPRO_TEST_SEED)."""
    return np.random.default_rng(repro_test_seed())
