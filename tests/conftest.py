"""Shared pytest fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)
