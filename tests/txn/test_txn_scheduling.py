"""Tests for quantum transaction scheduling (QUBO + Grover)."""

import pytest

from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.db.transactions import Transaction, simulate_slot_schedule
from repro.exceptions import ReproError
from repro.qubo.bruteforce import BruteForceSolver
from repro.txn.classical import conflict_graph_of, exhaustive_schedule, greedy_coloring_schedule
from repro.txn.generator import generate_transactions
from repro.txn.grover_scheduler import (
    decode_index,
    encode_assignment,
    grover_find_schedule,
    grover_minimum_makespan,
)
from repro.txn.qubo import (
    assignment_conflicts,
    assignment_makespan,
    decode_assignment,
    schedule_to_qubo,
)


def _three_txns():
    return [
        Transaction.from_string("T0", "r(x) w(x)"),
        Transaction.from_string("T1", "w(x) r(y)"),
        Transaction.from_string("T2", "r(z) w(z)"),
    ]


class TestGenerator:
    def test_shape(self):
        txns = generate_transactions(5, num_items=4, rng=0)
        assert len(txns) == 5
        assert all(t.operations for t in txns)

    def test_fewer_items_denser_conflicts(self):
        sparse = generate_transactions(6, num_items=30, rng=1)
        dense = generate_transactions(6, num_items=2, rng=1)
        assert conflict_graph_of(dense).number_of_edges() >= conflict_graph_of(sparse).number_of_edges()

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_transactions(0)


class TestQuboScheduling:
    def test_ground_state_is_conflict_free(self):
        txns = _three_txns()
        model = schedule_to_qubo(txns, num_slots=2)
        ground = BruteForceSolver().solve(model).best
        assignment = decode_assignment(txns, model, ground.bits, 2, repair=False)
        assert assignment_conflicts(txns, assignment) == 0

    def test_ground_state_minimises_makespan(self):
        txns = _three_txns()
        model = schedule_to_qubo(txns, num_slots=3)
        ground = BruteForceSolver(max_variables=9).solve(model).best
        assignment = decode_assignment(txns, model, ground.bits, 3, repair=False)
        _, best_makespan, _ = exhaustive_schedule(txns, 3)
        assert assignment_makespan(txns, assignment) == best_makespan

    def test_sa_schedule_conflict_free(self):
        txns = generate_transactions(5, num_items=5, rng=2)
        slots = max(greedy_coloring_schedule(txns).values()) + 1
        model = schedule_to_qubo(txns, num_slots=slots)
        ss = SimulatedAnnealingSolver(num_reads=16, num_sweeps=250).solve(model, rng=3)
        assignment = decode_assignment(txns, model, ss.best.bits, slots)
        assert assignment_conflicts(txns, assignment) == 0

    def test_conflict_free_schedule_has_zero_blocking_under_2pl(self):
        txns = _three_txns()
        model = schedule_to_qubo(txns, num_slots=2)
        ground = BruteForceSolver().solve(model).best
        assignment = decode_assignment(txns, model, ground.bits, 2)
        report = simulate_slot_schedule(txns, assignment)
        assert report.blocking_time == 0

    def test_decode_repair_places_everything(self):
        txns = _three_txns()
        model = schedule_to_qubo(txns, num_slots=2)
        assignment = decode_assignment(txns, model, [0] * model.num_variables, 2)
        assert set(assignment) == {"T0", "T1", "T2"}

    def test_needs_a_slot(self):
        with pytest.raises(ReproError):
            schedule_to_qubo(_three_txns(), num_slots=0)


class TestClassicalBaselines:
    def test_coloring_is_conflict_free(self):
        for seed in range(4):
            txns = generate_transactions(6, num_items=4, rng=seed)
            assignment = greedy_coloring_schedule(txns)
            assert assignment_conflicts(txns, assignment) == 0

    def test_exhaustive_finds_optimum_or_proves_infeasible(self):
        txns = _three_txns()
        best, makespan, checked = exhaustive_schedule(txns, 2)
        assert checked == 8
        assert best is not None
        assert assignment_conflicts(txns, best) == 0

    def test_exhaustive_detects_infeasibility(self):
        t = [
            Transaction.from_string("A", "w(x)"),
            Transaction.from_string("B", "w(x)"),
            Transaction.from_string("C", "w(x)"),
        ]
        best, makespan, _ = exhaustive_schedule(t, 2)
        assert best is None
        assert makespan is None

    def test_space_limit(self):
        txns = generate_transactions(10, rng=0)
        with pytest.raises(ReproError):
            exhaustive_schedule(txns, 8, max_space=100)


class TestGroverScheduler:
    def test_encode_decode_roundtrip(self):
        txn_ids = ["T0", "T1", "T2"]
        assignment = {"T0": 1, "T1": 0, "T2": 3}
        index = encode_assignment(assignment, txn_ids, 4)
        assert decode_index(index, txn_ids, 4) == assignment

    def test_finds_conflict_free_schedule(self):
        txns = _three_txns()
        result = grover_find_schedule(txns, 2, rng=0)
        assert result.found
        assert assignment_conflicts(txns, result.assignment) == 0

    def test_reports_infeasible(self):
        t = [
            Transaction.from_string("A", "w(x)"),
            Transaction.from_string("B", "w(x)"),
            Transaction.from_string("C", "w(x)"),
        ]
        result = grover_find_schedule(t, 2, rng=1)
        assert not result.found

    def test_minimum_makespan_matches_exhaustive(self):
        txns = _three_txns()
        result = grover_minimum_makespan(txns, 3, rng=2)
        _, best_makespan, _ = exhaustive_schedule(txns, 3)
        assert result.found
        assert result.makespan == best_makespan

    def test_oracle_calls_fewer_than_search_space(self):
        txns = generate_transactions(4, num_items=6, rng=5)
        result = grover_find_schedule(txns, 4, rng=3)
        if result.found:
            assert result.oracle_calls < result.info["search_space"]

    def test_qubit_limit(self):
        txns = generate_transactions(9, rng=0)
        with pytest.raises(ReproError):
            grover_find_schedule(txns, 4, rng=0)
