"""Tier-1 guards for the documentation set.

Two checks ride in the normal test run (CI additionally runs them as
dedicated steps):

* the front-end module docstrings' doctests stay true — ``repro.db.sql``
  and ``repro.qdb.qql`` each carry a doctest-style example stating their
  shared/divergent grammar;
* every intra-repo markdown link in ``docs/`` (and the top-level ``*.md``)
  resolves, via the same checker CI runs (``tools/docs_lint.py``).
"""

import doctest
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_docs_lint():
    spec = importlib.util.spec_from_file_location(
        "docs_lint", REPO_ROOT / "tools" / "docs_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_sql_module_doctest():
    import repro.db.sql as sql

    results = doctest.testmod(sql, verbose=False)
    assert results.attempted > 0, "repro.db.sql lost its module doctest"
    assert results.failed == 0


def test_qql_module_doctest():
    import repro.qdb.qql as qql

    results = doctest.testmod(qql, verbose=False)
    assert results.attempted > 0, "repro.qdb.qql lost its module doctest"
    assert results.failed == 0


def test_workload_doc_exists():
    assert (REPO_ROOT / "docs" / "workload.md").is_file()


def test_intra_repo_markdown_links_resolve():
    docs_lint = _load_docs_lint()
    problems = docs_lint.broken_links(REPO_ROOT)
    assert problems == [], "\n".join(problems)


def test_docs_lint_detects_breakage(tmp_path):
    docs_lint = _load_docs_lint()
    (tmp_path / "index.md").write_text("see [missing](nope.md) and [ok](#anchor)\n")
    problems = docs_lint.broken_links(tmp_path)
    assert len(problems) == 1 and "nope.md" in problems[0]


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(0)
