"""Tests for the SQL workload compiler and runner (ISSUE 10 acceptance)."""

import pytest

from repro.db.catalog import Catalog
from repro.exceptions import ReproError
from repro.workload import WorkloadPlan, compile_workload, run_workload

SCRIPT = (
    "SELECT users.name, orders.total FROM users, orders "
    "WHERE users.uid = orders.uid AND users.city = 'delft';"
    "SELECT u.city, i.sku FROM users u, orders o, items i "
    "WHERE u.uid = o.uid AND o.oid = i.oid;"
    "SELECT * FROM users WHERE city = 'delft';"
    "INSERT INTO orders VALUES (99, 1, 10.0);"
    "UPDATE users SET city = 'sf' WHERE uid = 3;"
    "DELETE FROM items WHERE sku = 'plum'"
)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("users", 1000, {"uid": 1000, "city": 40})
    cat.add_table("orders", 5000, {"oid": 5000, "uid": 900})
    cat.add_table("items", 20000, {"oid": 4800, "sku": 300})
    return cat


class TestCompile:
    def test_six_statements_three_domains(self, catalog):
        plan = compile_workload(SCRIPT, catalog)
        assert len(plan.statements) == 6
        kinds = [inst.kind for inst in plan.instances]
        # >= 3 distinct Table I instances across all three domains.
        assert kinds == ["joinorder", "joinorder", "mqo", "txn"]

    def test_instance_statement_coverage(self, catalog):
        plan = compile_workload(SCRIPT, catalog)
        by_kind = {inst.kind: inst for inst in plan.instances if inst.kind != "joinorder"}
        assert by_kind["mqo"].statements == [0, 1, 2]
        assert by_kind["txn"].statements == [3, 4, 5]
        joinorders = [inst for inst in plan.instances if inst.kind == "joinorder"]
        assert [inst.statements for inst in joinorders] == [[0], [1]]
        # Every statement maps to at least one instance.
        for i in range(6):
            assert plan.instances_of(i), f"statement {i} unmapped"

    def test_mqo_candidates_and_sharing(self, catalog):
        plan = compile_workload(SCRIPT, catalog)
        mqo = next(inst for inst in plan.instances if inst.kind == "mqo").problem.problem
        assert mqo.queries == ["s0", "s1", "s2"]
        # Multi-table queries offer several plans, the scan query exactly one.
        assert len(mqo.plans_of("s0")) >= 2
        assert len(mqo.plans_of("s2")) == 1
        # s0 and s2 both scan users filtered on city='delft' -> a saving exists.
        assert any(
            {qa, qb} == {"s0", "s2"}
            for ((qa, _), (qb, _)) in mqo.savings
        )

    def test_self_join_compiles(self, catalog):
        plan = compile_workload(
            "SELECT * FROM users u1, users u2 WHERE u1.uid = u2.uid;"
            "SELECT * FROM users",
            catalog,
        )
        jo = next(inst for inst in plan.instances if inst.kind == "joinorder")
        assert sorted(jo.problem.graph.relations) == ["u1", "u2"]

    def test_disconnected_from_clause_compiles(self, catalog):
        plan = compile_workload("SELECT * FROM users, items; SELECT * FROM users", catalog)
        jo = next(inst for inst in plan.instances if inst.kind == "joinorder")
        assert jo.problem.graph.is_connected()

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(ReproError, match="unknown table"):
            compile_workload("SELECT * FROM nosuch", catalog)

    def test_empty_script_rejected(self, catalog):
        with pytest.raises(ReproError):
            compile_workload("   ", catalog)

    def test_single_scan_only_script_rejected(self, catalog):
        # One single-table SELECT yields no joinorder, no MQO, no txn.
        with pytest.raises(ReproError, match="no problem instances"):
            compile_workload("SELECT * FROM users", catalog)

    def test_bushy_encoding(self, catalog):
        plan = compile_workload(SCRIPT, catalog, bushy=True)
        jo = next(inst for inst in plan.instances if inst.kind == "joinorder")
        assert jo.problem.name == "joinorder_bushy"


class TestRun:
    def test_end_to_end_plans(self, catalog):
        report = run_workload(SCRIPT, catalog, seed=42)
        assert len(report.results) == 4
        plans = report.statement_plans
        assert sorted(plans[0].join_order) == ["orders", "users"]
        assert sorted(plans[1].join_order) == ["i", "o", "u"]
        for i in (0, 1, 2):
            assert plans[i].mqo_plan is not None
        for i in (3, 4, 5):
            assert plans[i].slot is not None
        # The three DML statements touch disjoint tables: no conflicts, so a
        # feasible schedule runs them all in slot 0.
        assert {plans[i].slot for i in (3, 4, 5)} == {0}

    def test_deterministic_for_fixed_seed(self, catalog):
        first = run_workload(SCRIPT, catalog, seed=1234)
        second = run_workload(SCRIPT, catalog, seed=1234)
        for a, b in zip(first.results, second.results):
            assert a.solution == b.solution
            assert a.objective == b.objective
        assert [p.join_order for p in first.statement_plans] == [
            p.join_order for p in second.statement_plans
        ]

    def test_one_batch_with_labels(self, catalog):
        report = run_workload(SCRIPT, catalog, seed=7)
        for inst, result in zip(report.plan.instances, report.results):
            assert result.info["engine"]["label"] == inst.label

    def test_provenance_maps_every_statement(self, catalog):
        report = run_workload(SCRIPT, catalog, seed=7)
        workload = report.info["workload"]
        assert sorted(workload["statements"]) == [str(i) for i in range(6)]
        for entry in workload["statements"].values():
            assert entry["instances"], f"statement unmapped: {entry}"
            for ref in entry["instances"]:
                assert ref["shard"] is not None
                assert ref["label"] == report.plan.instances[ref["instance"]].label
        # Instance-level provenance is stamped onto each result too.
        for inst, result in zip(report.plan.instances, report.results):
            stamped = result.info["workload"]
            assert stamped["instance"] == inst.index
            assert stamped["statements"] == inst.statements
            assert stamped["shard"] is not None

    def test_precompiled_plan_accepted(self, catalog):
        plan = compile_workload(SCRIPT, catalog)
        assert isinstance(plan, WorkloadPlan)
        report = run_workload(plan, seed=3)
        assert len(report.results) == len(plan.instances)

    def test_text_without_catalog_rejected(self):
        with pytest.raises(ValueError, match="catalog"):
            run_workload("SELECT * FROM users", None)

    def test_bushy_run_stitches_tree(self, catalog):
        report = run_workload(SCRIPT, catalog, seed=5, bushy=True)
        sp = report.statement_plans[1]
        assert sp.join_tree is not None
        assert sorted(sp.join_order) == ["i", "o", "u"]
