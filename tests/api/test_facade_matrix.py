"""The backend x domain matrix: every registered backend solves a tiny
instance of every Table I problem through ``repro.solve``.

The contract checked per cell: the decoded solution is feasible for the
domain and the reported objective is exactly ``problem.evaluate(solution)``.
"""

import math

import pytest

import repro
from repro.api import (
    BushyJoinAdapter,
    LeftDeepJoinAdapter,
    MQOAdapter,
    SchemaMatchingAdapter,
    TxnScheduleAdapter,
    list_backends,
)
from repro.db.generator import chain_query
from repro.integration import generate_schema_pair
from repro.mqo.problem import MQOProblem
from repro.txn import generate_transactions

# Tiny instances keep the exhaustive and gate-model backends fast.
BACKEND_OPTS = {
    "sa": dict(num_reads=8, num_sweeps=100),
    "sqa": dict(num_reads=4, num_sweeps=64),
    "annealer": dict(num_reads=8, num_sweeps=100),
    "qaoa": dict(num_layers=1, maxiter=30, restarts=1, shots=256),
    "vqe": dict(num_layers=1, maxiter=60, restarts=1, shots=256),
}


def _tiny_mqo():
    p = MQOProblem()
    p.add_plan("q0", "p0", 10.0)
    p.add_plan("q0", "p1", 12.0)
    p.add_plan("q1", "p0", 20.0)
    p.add_plan("q1", "p1", 21.0)
    p.add_saving(("q0", "p1"), ("q1", "p1"), 8.0)
    return MQOAdapter(p)


def _problem_factories():
    return {
        "mqo": _tiny_mqo,
        "joinorder_leftdeep": lambda: LeftDeepJoinAdapter(chain_query(3, rng=4)),
        "joinorder_bushy": lambda: BushyJoinAdapter(chain_query(3, rng=4)),
        "schema_matching": lambda: SchemaMatchingAdapter(*generate_schema_pair(4, rng=8)[:2]),
        "txn_schedule": lambda: TxnScheduleAdapter(generate_transactions(3, num_items=4, rng=10)),
    }


@pytest.mark.parametrize("backend", list_backends())
@pytest.mark.parametrize("domain", sorted(_problem_factories()))
def test_every_backend_solves_every_domain(domain, backend):
    problem = _problem_factories()[domain]()
    result = repro.solve(problem, backend=backend, seed=3, **BACKEND_OPTS.get(backend, {}))
    assert result.problem == problem.name
    assert result.method == backend
    assert problem.is_feasible(result.solution), (domain, backend, result.solution)
    assert result.objective == pytest.approx(problem.evaluate(result.solution))
    assert result.wall_time >= 0.0
    # num_variables reports the problem's QUBO size on every path; a NaN
    # energy is the marker for backends that bypass QUBO sampling.
    assert result.num_variables == problem.to_qubo().num_variables
    if backend == "classical":
        assert math.isnan(result.energy) and not result.used_qubo
    else:
        assert not math.isnan(result.energy) and result.used_qubo


@pytest.mark.parametrize("domain", sorted(_problem_factories()))
def test_bruteforce_matches_classical_reference(domain):
    """The QUBO ground state (+ refine) is never worse than the classical
    baseline on instances small enough for both to be exact-ish."""
    problem = _problem_factories()[domain]()
    exact = repro.solve(problem, backend="bruteforce", seed=0)
    reference = repro.solve(problem, backend="classical", seed=0)
    if domain.startswith("joinorder"):
        # The QUBO optimises a log-cost surrogate; allow the surrogate gap.
        assert exact.objective <= reference.objective * 2.0 + 1e-9
    else:
        assert exact.objective <= reference.objective + 1e-9
