"""SolveResult JSON round-trip: NaN-energy convention, numpy leakage.

``to_json_dict`` must produce strict-JSON output (``json.dumps`` with
``allow_nan=False`` clean) for the service tier, and ``from_json_dict``
must restore the NaN-energy convention so ``used_qubo`` survives the wire.
"""

import json
import math

import numpy as np
import pytest

import repro
from repro.api.result import SolveResult
from repro.mqo import generate_mqo_problem


def strict_dumps(payload) -> str:
    return json.dumps(payload, allow_nan=False)


def test_nan_energy_round_trips_as_null():
    result = SolveResult(
        problem="mqo", method="classical", solution={"q0": 1},
        objective=12.5, energy=math.nan, wall_time=0.01, num_variables=9,
    )
    payload = result.to_json_dict()
    assert payload["energy"] is None
    strict_dumps(payload)  # would raise on a bare NaN

    back = SolveResult.from_json_dict(json.loads(strict_dumps(payload)))
    assert math.isnan(back.energy)
    assert back.used_qubo is False
    assert back.objective == 12.5
    assert back.solution == {"q0": 1}


def test_numpy_scalars_and_arrays_become_plain_python():
    result = SolveResult(
        problem="qubo",
        method="sa",
        solution={"x0": np.int64(1), "x1": np.int64(0)},
        objective=np.float64(-3.25),
        energy=np.float64(-3.25),
        wall_time=np.float64(0.002),
        num_variables=np.int64(2),
        info={
            "reads": np.int32(8),
            "bits": np.array([1, 0, 1]),
            "nested": {"scale": np.float32(0.5)},
            "labels": ("x0", "x1"),
            "flags": {np.int64(3), np.int64(1)},
            np.int64(7): "non-string key",
        },
    )
    payload = result.to_json_dict()
    text = strict_dumps(payload)  # nothing numpy/NaN may survive
    decoded = json.loads(text)
    assert decoded["solution"] == {"x0": 1, "x1": 0}
    assert decoded["objective"] == -3.25
    assert decoded["info"]["bits"] == [1, 0, 1]
    assert decoded["info"]["labels"] == ["x0", "x1"]
    assert decoded["info"]["flags"] == [1, 3]
    assert decoded["info"]["7"] == "non-string key"
    assert all(isinstance(k, str) for k in decoded["info"])

    back = SolveResult.from_json_dict(decoded)
    assert back.objective == result.objective
    assert back.num_variables == 2


def test_non_finite_info_values_become_null():
    result = SolveResult(
        problem="p", method="m", solution=[], objective=0.0,
        info={"deadline": math.inf, "quality": math.nan, "ok": 1.0},
    )
    payload = result.to_json_dict()
    assert payload["info"]["deadline"] is None
    assert payload["info"]["quality"] is None
    assert payload["info"]["ok"] == 1.0
    strict_dumps(payload)


def test_real_solve_result_round_trips():
    problem = generate_mqo_problem(3, 3, sharing_density=0.4, rng=7)
    result = repro.solve(problem, backend="sa", seed=11, num_reads=4)
    payload = result.to_json_dict()
    strict_dumps(payload)

    back = SolveResult.from_json_dict(payload)
    assert back.problem == result.problem
    assert back.method == result.method
    assert back.objective == result.objective
    assert back.solution == result.solution
    assert (back.energy == result.energy) or (
        math.isnan(back.energy) and math.isnan(result.energy)
    )
    assert back.used_qubo is result.used_qubo
