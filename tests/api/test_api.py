"""Facade plumbing: registry, seeding, portfolio, batching, dispatch, shims."""

import numpy as np
import pytest

import repro
from repro.api import (
    Backend,
    MQOAdapter,
    SamplerBackend,
    as_problem,
    get_backend,
    list_backends,
    register_backend,
    solve,
    solve_many,
    solve_portfolio,
)
from repro.api.backends import _REGISTRY
from repro.db.generator import chain_query
from repro.exceptions import ReproError
from repro.integration import generate_schema_pair
from repro.mqo import exhaustive_mqo, generate_mqo_problem
from repro.mqo.solve import solve_with_annealer, solve_with_qaoa, solve_with_sampler
from repro.qubo.model import QuboModel
from repro.txn import generate_transactions


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("bruteforce", "tabu", "sa", "sqa", "annealer", "qaoa", "vqe", "classical"):
            assert name in list_backends()

    def test_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown backend"):
            get_backend("no_such_engine")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_backend("sa", lambda **kw: None)

    def test_custom_backend_roundtrip(self):
        class EchoBackend(Backend):
            name = "echo_test"

            def run(self, model, rng=None, **opts):
                from repro.qubo.bruteforce import BruteForceSolver

                return BruteForceSolver().solve(model)

        register_backend("echo_test", EchoBackend)
        try:
            problem = generate_mqo_problem(2, 2, sharing_density=0.5, rng=0)
            _, opt = exhaustive_mqo(problem)
            result = solve(problem, backend="echo_test", seed=0)
            assert result.objective == pytest.approx(opt)
        finally:
            _REGISTRY.pop("echo_test", None)

    def test_backend_opts_rejected_with_instance(self):
        backend = get_backend("sa")
        with pytest.raises(ReproError, match="backend_opts"):
            solve(generate_mqo_problem(2, 2, rng=0), backend=backend, num_reads=4)


class TestSeeding:
    """Identical seeds yield identical SolveResults (the regression the
    facade's `ensure_rng` plumbing guarantees)."""

    @pytest.mark.parametrize("backend", ["sa", "tabu", "sqa", "annealer"])
    def test_int_seed_reproducible(self, backend):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=1)
        a = solve(problem, backend=backend, seed=1234)
        b = solve(problem, backend=backend, seed=1234)
        assert a.solution == b.solution
        assert a.objective == b.objective
        assert a.energy == b.energy

    def test_generator_seed_accepted(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=1)
        a = solve(problem, backend="sa", seed=np.random.default_rng(7))
        b = solve(problem, backend="sa", seed=np.random.default_rng(7))
        assert a.solution == b.solution and a.energy == b.energy

    def test_portfolio_reproducible(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=2)
        a = solve_portfolio(problem, backends=("sa", "tabu"), seed=5)
        b = solve_portfolio(problem, backends=("sa", "tabu"), seed=5)
        assert a.solution == b.solution and a.method == b.method
        assert [(e["method"], e["objective"]) for e in a.info["portfolio"]] == [
            (e["method"], e["objective"]) for e in b.info["portfolio"]
        ]

    def test_solve_many_matches_seeded_singles(self):
        problems = [generate_mqo_problem(3, 2, sharing_density=0.4, rng=s) for s in range(3)]
        batch = solve_many(problems, backend="sa", seed=11)
        again = solve_many(problems, backend="sa", seed=11)
        assert [r.solution for r in batch] == [r.solution for r in again]
        assert [r.energy for r in batch] == [r.energy for r in again]


class TestPortfolioAndBatch:
    def test_portfolio_picks_minimum(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.5, rng=3)
        _, opt = exhaustive_mqo(problem)
        result = solve_portfolio(problem, backends=("bruteforce", "sa", "classical"), seed=0)
        assert result.objective == pytest.approx(opt)
        assert len(result.info["portfolio"]) == 3
        assert result.objective == min(e["objective"] for e in result.info["portfolio"])

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ReproError):
            solve_portfolio(generate_mqo_problem(2, 2, rng=0), backends=())

    def test_batch_reuses_annealer_embedding(self):
        problems = [
            MQOAdapter(generate_mqo_problem(3, 2, sharing_density=0.4, rng=9))
            for _ in range(3)
        ]
        results = solve_many(problems, backend="annealer", seed=4, num_reads=8, num_sweeps=80)
        assert [r.info["embedding_cached"] for r in results] == [False, True, True]

    def test_batch_warm_starts_qaoa(self):
        problems = [
            MQOAdapter(generate_mqo_problem(2, 2, sharing_density=0.5, rng=9))
            for _ in range(2)
        ]
        results = solve_many(
            problems, backend="qaoa", seed=4, num_layers=1, maxiter=25, restarts=1
        )
        assert [r.info["warm_started"] for r in results] == [False, True]


class TestAsProblem:
    def test_dispatch_by_type(self):
        assert as_problem(generate_mqo_problem(2, 2, rng=0)).name == "mqo"
        assert as_problem(chain_query(3, rng=0)).name == "joinorder_leftdeep"
        assert as_problem(chain_query(3, rng=0), bushy=True).name == "joinorder_bushy"
        source, target, _ = generate_schema_pair(3, rng=0)
        assert as_problem((source, target)).name == "schema_matching"
        assert as_problem(generate_transactions(3, rng=0)).name == "txn_schedule"

    def test_adapter_passthrough(self):
        adapter = MQOAdapter(generate_mqo_problem(2, 2, rng=0))
        assert as_problem(adapter) is adapter
        with pytest.raises(ReproError):
            as_problem(adapter, weight=2.0)

    def test_unknown_object_rejected(self):
        with pytest.raises(ReproError, match="cannot infer"):
            as_problem(object())


class TestMQOShims:
    """The legacy mqo.solve entry points are thin aliases over the facade."""

    def test_sampler_shim_matches_facade(self):
        from repro.annealing.simulated_annealing import SimulatedAnnealingSolver

        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=4)
        legacy = solve_with_sampler(
            problem, SimulatedAnnealingSolver(num_reads=8, num_sweeps=100), rng=2
        )
        modern = solve(
            problem,
            SamplerBackend(SimulatedAnnealingSolver(num_reads=8, num_sweeps=100)),
            seed=2,
        )
        assert legacy.selection == modern.solution
        assert legacy.total_cost == pytest.approx(modern.objective)
        assert legacy.energy == modern.energy

    def test_annealer_shim_reports_chain_stats(self):
        problem = generate_mqo_problem(3, 2, sharing_density=0.4, rng=5)
        result = solve_with_annealer(problem, rng=1)
        assert result.method == "annealer[sa]"
        assert "chain_break_fraction" in result.info

    def test_qaoa_shim_reports_qubits(self):
        problem = generate_mqo_problem(2, 2, sharing_density=0.5, rng=6)
        result = solve_with_qaoa(problem, num_layers=1, maxiter=25, restarts=1, rng=1)
        assert result.method == "qaoa[p=1]"
        assert result.info["qubits"] == 4


class TestSamplerBackend:
    def test_rejects_non_sampler(self):
        with pytest.raises(ReproError):
            SamplerBackend(object())

    def test_classical_backend_refuses_qubo(self):
        backend = get_backend("classical")
        with pytest.raises(ReproError):
            backend.run(QuboModel(2))
