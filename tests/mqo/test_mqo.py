"""Tests for the multiple-query-optimization package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import AnnealerDevice, SimulatedAnnealingSolver
from repro.exceptions import InfeasibleError, ReproError
from repro.mqo.classical import exhaustive_mqo, greedy_mqo, hill_climbing_mqo
from repro.mqo.generator import generate_mqo_problem
from repro.mqo.problem import MQOProblem
from repro.mqo.qubo import decode_sample, mqo_to_qubo, penalty_weight, selection_to_bits
from repro.mqo.solve import solve_with_annealer, solve_with_qaoa, solve_with_sampler
from repro.qubo.bruteforce import BruteForceSolver


def _tiny_problem():
    """Two queries, two plans each, one strong saving pair."""
    p = MQOProblem()
    p.add_plan("q0", "p0", 10.0)
    p.add_plan("q0", "p1", 12.0)
    p.add_plan("q1", "p0", 20.0)
    p.add_plan("q1", "p1", 21.0)
    # Choosing the two nominally-expensive plans together is globally best.
    p.add_saving(("q0", "p1"), ("q1", "p1"), 8.0)
    return p


class TestProblem:
    def test_total_cost_no_savings(self):
        p = _tiny_problem()
        assert p.total_cost({"q0": "p0", "q1": "p0"}) == 30.0

    def test_total_cost_with_savings(self):
        p = _tiny_problem()
        assert p.total_cost({"q0": "p1", "q1": "p1"}) == 12.0 + 21.0 - 8.0

    def test_missing_selection_rejected(self):
        with pytest.raises(InfeasibleError):
            _tiny_problem().total_cost({"q0": "p0"})

    def test_unknown_plan_rejected(self):
        with pytest.raises(ReproError):
            _tiny_problem().total_cost({"q0": "p9", "q1": "p0"})

    def test_duplicate_plan_rejected(self):
        p = MQOProblem()
        p.add_plan("q", "p", 1.0)
        with pytest.raises(ReproError):
            p.add_plan("q", "p", 2.0)

    def test_same_query_saving_rejected(self):
        p = MQOProblem()
        p.add_plan("q", "a", 1.0)
        p.add_plan("q", "b", 1.0)
        with pytest.raises(ReproError):
            p.add_saving(("q", "a"), ("q", "b"), 0.5)

    def test_cost_bounds_bracket_optimum(self):
        p = generate_mqo_problem(3, 3, rng=0)
        lo, hi = p.cost_bounds()
        _, opt = exhaustive_mqo(p)
        assert lo <= opt <= hi


class TestGenerator:
    def test_shape(self):
        p = generate_mqo_problem(4, 3, rng=1)
        assert len(p.queries) == 4
        assert p.num_plans == 12

    def test_density_zero_means_no_savings(self):
        p = generate_mqo_problem(3, 2, sharing_density=0.0, rng=2)
        assert not p.savings

    def test_density_one_all_pairs(self):
        p = generate_mqo_problem(2, 2, sharing_density=1.0, rng=3)
        assert len(p.savings) == 4  # 2x2 cross-query pairs

    def test_deterministic(self):
        a = generate_mqo_problem(3, 3, rng=7)
        b = generate_mqo_problem(3, 3, rng=7)
        assert a.savings == b.savings

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_mqo_problem(0, 3)
        with pytest.raises(ReproError):
            generate_mqo_problem(2, 2, sharing_density=1.5)


class TestQuboMapping:
    def test_energy_matches_cost_on_feasible(self):
        p = _tiny_problem()
        model = mqo_to_qubo(p)
        for sel in (
            {"q0": "p0", "q1": "p0"},
            {"q0": "p1", "q1": "p1"},
            {"q0": "p0", "q1": "p1"},
        ):
            bits = selection_to_bits(p, model, sel)
            assert model.energy(bits) == pytest.approx(p.total_cost(sel))

    def test_qubo_optimum_is_problem_optimum(self):
        for seed in range(4):
            p = generate_mqo_problem(3, 2, sharing_density=0.5, rng=seed)
            model = mqo_to_qubo(p)
            best = BruteForceSolver().solve(model).best
            selection = decode_sample(p, model, best.bits, repair=False)
            _, opt = exhaustive_mqo(p)
            assert p.total_cost(selection) == pytest.approx(opt)
            assert best.energy == pytest.approx(opt)

    def test_infeasible_assignments_cost_more(self):
        p = _tiny_problem()
        model = mqo_to_qubo(p)
        _, opt = exhaustive_mqo(p)
        zero = model.energy([0, 0, 0, 0])
        double = model.energy([1, 1, 1, 0])
        assert zero > opt
        assert double > opt

    def test_decode_repairs_empty_query(self):
        p = _tiny_problem()
        model = mqo_to_qubo(p)
        sel = decode_sample(p, model, [0, 0, 1, 0])
        assert sel["q0"] == "p0"  # repaired to cheapest
        assert sel["q1"] == "p0"

    def test_decode_repairs_double_selection(self):
        p = _tiny_problem()
        model = mqo_to_qubo(p)
        sel = decode_sample(p, model, [1, 1, 1, 0])
        assert sel["q0"] == "p0"  # cheapest among selected

    def test_decode_strict_raises(self):
        p = _tiny_problem()
        model = mqo_to_qubo(p)
        with pytest.raises(InfeasibleError):
            decode_sample(p, model, [0, 0, 1, 0], repair=False)

    def test_penalty_weight_dominates(self):
        p = generate_mqo_problem(3, 3, sharing_density=0.5, rng=5)
        for q in p.queries:
            w = penalty_weight(p, q)
            max_cost = max(pl.cost for pl in p.plans_of(q))
            assert w > max_cost


class TestClassicalSolvers:
    def test_exhaustive_is_optimal_reference(self):
        p = _tiny_problem()
        sel, cost = exhaustive_mqo(p)
        assert cost == pytest.approx(25.0)
        assert sel == {"q0": "p1", "q1": "p1"}

    def test_greedy_ignores_sharing(self):
        p = _tiny_problem()
        sel, cost = greedy_mqo(p)
        assert sel == {"q0": "p0", "q1": "p0"}
        assert cost == 30.0

    def test_hill_climbing_finds_optimum_on_small(self):
        for seed in range(3):
            p = generate_mqo_problem(3, 3, sharing_density=0.4, rng=seed)
            _, opt = exhaustive_mqo(p)
            _, cost = hill_climbing_mqo(p, restarts=8, rng=seed)
            assert cost == pytest.approx(opt)

    def test_exhaustive_space_limit(self):
        p = generate_mqo_problem(4, 4, rng=0)
        with pytest.raises(ReproError):
            exhaustive_mqo(p, max_combinations=10)


class TestQuantumSolvers:
    def test_plain_sampler(self):
        p = generate_mqo_problem(4, 3, sharing_density=0.4, rng=0)
        _, opt = exhaustive_mqo(p)
        r = solve_with_sampler(p, SimulatedAnnealingSolver(num_reads=16, num_sweeps=200), rng=1)
        assert r.total_cost == pytest.approx(opt)

    def test_annealer_with_embedding(self):
        p = generate_mqo_problem(4, 3, sharing_density=0.4, rng=1)
        _, opt = exhaustive_mqo(p)
        r = solve_with_annealer(p, rng=2)
        assert r.total_cost == pytest.approx(opt)
        assert "chain_break_fraction" in r.info
        assert r.info["max_chain_length"] >= 1

    def test_annealer_unembedded_ablation(self):
        p = generate_mqo_problem(4, 3, sharing_density=0.4, rng=2)
        _, opt = exhaustive_mqo(p)
        r = solve_with_annealer(p, use_embedding=False, rng=3)
        assert r.total_cost == pytest.approx(opt)

    def test_qaoa_small_instance(self):
        p = generate_mqo_problem(3, 2, sharing_density=0.5, rng=5)
        _, opt = exhaustive_mqo(p)
        r = solve_with_qaoa(p, num_layers=3, maxiter=120, restarts=2, rng=4)
        assert r.total_cost == pytest.approx(opt)
        assert r.info["qubits"] == 6

    def test_result_selection_is_feasible(self):
        p = generate_mqo_problem(3, 3, sharing_density=0.3, rng=6)
        r = solve_with_sampler(p, SimulatedAnnealingSolver(num_reads=8, num_sweeps=100), rng=0)
        p.validate_selection(r.selection)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_property_qubo_ground_equals_mqo_optimum(seed):
    p = generate_mqo_problem(3, 2, sharing_density=0.4, rng=seed)
    model = mqo_to_qubo(p)
    ground = BruteForceSolver().solve(model).best_energy()
    _, opt = exhaustive_mqo(p)
    assert ground == pytest.approx(opt)
