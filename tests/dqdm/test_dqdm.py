"""Tests for distributed quantum data management."""

import copy

import numpy as np
import pytest

from repro.dqdm.consistency import GhzAssistedCommit, TwoPhaseCommit
from repro.dqdm.data import ClassicalDataItem, QuantumDataItem
from repro.dqdm.recovery import simulate_failures_and_recovery
from repro.dqdm.replication import (
    availability_classical,
    availability_quantum,
    simulate_availability,
)
from repro.dqdm.store import DistributedQuantumStore
from repro.exceptions import NoCloningError, ProtocolError, ReproError
from repro.qnet.link import EntanglementLink
from repro.qnet.network import QuantumNetwork
from repro.quantum.state import Statevector


def _item(item_id="q1", with_recipe=True):
    recipe = (lambda: Statevector([1, 1j])) if with_recipe else None
    return QuantumDataItem(item_id, Statevector([1, 1j]), recipe=recipe)


class TestDataItems:
    def test_classical_copyable(self):
        item = ClassicalDataItem("c", b"data")
        dup = item.copy()
        assert dup.payload == item.payload

    def test_quantum_copy_raises(self):
        item = _item()
        with pytest.raises(NoCloningError):
            copy.copy(item)
        with pytest.raises(NoCloningError):
            copy.deepcopy(item)
        with pytest.raises(NoCloningError):
            item.clone()

    def test_take_moves_ownership(self):
        item = _item()
        state = item.take()
        assert not item.is_held
        assert state.num_qubits == 1
        with pytest.raises(ProtocolError):
            item.take()

    def test_put_back(self):
        item = _item()
        state = item.take()
        item.put(state)
        assert item.is_held

    def test_double_put_rejected(self):
        item = _item()
        with pytest.raises(ProtocolError):
            item.put(Statevector.zero_state(1))

    def test_consume_is_destructive(self, rng):
        item = _item()
        bits = item.consume(rng=rng)
        assert bits[0] in (0, 1)
        assert not item.is_held

    def test_reprepare_with_recipe(self):
        item = _item()
        item.take()
        item.reprepare()
        assert item.is_held
        assert item.fidelity_estimate == 1.0

    def test_reprepare_without_recipe_raises(self):
        item = _item(with_recipe=False)
        item.take()
        with pytest.raises(NoCloningError):
            item.reprepare()


class TestStore:
    def _store(self):
        net = QuantumNetwork.chain(4, EntanglementLink(success_prob=0.7, base_fidelity=0.96))
        return DistributedQuantumStore(net)

    def test_put_and_locate(self):
        store = self._store()
        store.put_quantum("n0", _item())
        assert store.locate_quantum("q1") == "n0"
        assert store.quantum_items_at("n0") == ["q1"]

    def test_no_two_copies(self):
        store = self._store()
        store.put_quantum("n0", _item())
        with pytest.raises(NoCloningError):
            store.put_quantum("n2", _item())

    def test_classical_replication_allowed(self):
        store = self._store()
        store.put_classical("n0", ClassicalDataItem("c1", b"x"))
        store.replicate_classical("c1", "n0", "n3")
        assert store.classical_items_at("n3") == ["c1"]
        assert store.classical_items_at("n0") == ["c1"]

    def test_move_quantum_relocates(self):
        store = self._store()
        store.put_quantum("n0", _item())
        receipt = store.move_quantum("q1", "n3", rng=1)
        assert store.locate_quantum("q1") == "n3"
        assert store.quantum_items_at("n0") == []
        assert receipt.path[0] == "n0"
        assert receipt.path[-1] == "n3"
        assert 0.0 < receipt.payload_fidelity < 1.0
        assert store.transfer_log == [receipt]

    def test_move_fidelity_improves_with_purification(self):
        plain_store = self._store()
        plain_store.put_quantum("n0", _item())
        plain = plain_store.move_quantum("q1", "n3", rng=2)
        pure_store = self._store()
        pure_store.put_quantum("n0", _item("q1"))
        purified = pure_store.move_quantum("q1", "n3", rng=2, min_pair_fidelity=0.95)
        assert purified.payload_fidelity > plain.payload_fidelity
        assert purified.pairs_consumed > plain.pairs_consumed

    def test_move_to_same_node_rejected(self):
        store = self._store()
        store.put_quantum("n0", _item())
        with pytest.raises(ProtocolError):
            store.move_quantum("q1", "n0", rng=0)

    def test_unknown_item(self):
        with pytest.raises(ProtocolError):
            self._store().locate_quantum("ghost")


class TestReplicationAnalysis:
    def test_closed_forms(self):
        assert availability_classical(0.9, 3) == pytest.approx(0.999)
        assert availability_quantum(0.9, repreparable=False) == 0.9
        assert availability_quantum(0.9, repreparable=True, recipe_replicas=3) == pytest.approx(0.999)

    def test_monte_carlo_matches(self):
        report = simulate_availability(0.9, num_replicas=3, trials=20000, rng=0)
        assert report.classical_availability == pytest.approx(0.999, abs=0.005)
        assert report.quantum_without_recipe == pytest.approx(0.9, abs=0.01)

    def test_validation(self):
        with pytest.raises(ReproError):
            availability_classical(1.5, 2)
        with pytest.raises(ReproError):
            availability_classical(0.9, 0)


class TestCommitProtocols:
    def test_2pc_no_crash_never_blocks(self):
        stats = TwoPhaseCommit(4, crash_prob=0.0).run(500, rng=0)
        assert stats.blocked == 0
        assert stats.committed + stats.aborted == 500

    def test_2pc_crash_blocks(self):
        stats = TwoPhaseCommit(4, crash_prob=0.2).run(2000, rng=1)
        assert stats.blocking_rate == pytest.approx(0.2, abs=0.03)
        assert stats.divergence_rate == 0.0

    def test_ghz_commit_never_blocks(self):
        proto = GhzAssistedCommit(4, crash_prob=0.2)
        stats = proto.run(2000, rng=2)
        assert stats.blocked == 0
        assert proto.ghz_states_consumed > 0

    def test_ghz_commit_divergence_bounded_by_crashes(self):
        proto = GhzAssistedCommit(4, crash_prob=0.2)
        stats = proto.run(2000, rng=3)
        assert 0.0 < stats.divergence_rate < 0.2

    def test_ghz_messages_fewer_or_equal(self):
        crash = 0.3
        tpc = TwoPhaseCommit(5, crash_prob=crash).run(1000, rng=4)
        ghz = GhzAssistedCommit(5, crash_prob=crash).run(1000, rng=4)
        assert ghz.messages <= tpc.messages + 1000  # same order of messages

    def test_validation(self):
        with pytest.raises(ReproError):
            TwoPhaseCommit(0)


class TestRecovery:
    def _loaded_store(self, with_recipe=True):
        net = QuantumNetwork.chain(4, EntanglementLink(success_prob=0.8))
        store = DistributedQuantumStore(net)
        for i, node in enumerate(["n0", "n1", "n2"]):
            store.put_quantum(node, _item(f"q{i}", with_recipe=with_recipe))
        return store

    def test_repreparable_items_recover(self):
        store = self._loaded_store(with_recipe=True)
        report = simulate_failures_and_recovery(store, node_failure_prob=0.6, rng=1)
        assert report.items_at_risk == report.recovered + len(report.lost)
        assert not report.lost  # recipes exist and healthy nodes remain

    def test_irreplaceable_items_are_lost(self):
        store = self._loaded_store(with_recipe=False)
        report = simulate_failures_and_recovery(store, node_failure_prob=0.9, rng=2)
        assert report.recovered == 0
        assert len(report.lost) == report.items_at_risk
        assert report.items_at_risk > 0

    def test_no_failures_no_risk(self):
        store = self._loaded_store()
        report = simulate_failures_and_recovery(store, node_failure_prob=0.0, rng=3)
        assert report.items_at_risk == 0
        assert report.recovery_rate == 1.0

    def test_relocated_items_findable(self):
        store = self._loaded_store(with_recipe=True)
        report = simulate_failures_and_recovery(store, node_failure_prob=0.5, rng=4)
        for item_id, node in report.relocations.items():
            assert store.locate_quantum(item_id) == node
