"""Tests for QAOA and VQE on QUBO ground-state problems."""

import numpy as np
import pytest

from repro.algorithms.qaoa import QAOA
from repro.algorithms.vqe import VQE, hardware_efficient_ansatz
from repro.exceptions import ReproError
from repro.quantum.pauli import IsingHamiltonian, PauliString, PauliSum
from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.model import QuboModel


def _random_qubo(seed, n=5):
    rng = np.random.default_rng(seed)
    m = QuboModel(n)
    for i in range(n):
        m.add_linear(i, float(rng.normal()))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.6:
                m.add_quadratic(i, j, float(rng.normal()))
    return m


class TestQAOACircuit:
    def test_parameter_count(self):
        q = QAOA(IsingHamiltonian(3, linear={0: 1.0}), num_layers=4)
        assert q.num_parameters == 8

    def test_rejects_zero_layers(self):
        with pytest.raises(ReproError):
            QAOA(IsingHamiltonian(2), num_layers=0)

    def test_rejects_wrong_param_count(self):
        q = QAOA(IsingHamiltonian(2, linear={0: 1.0}), num_layers=1)
        with pytest.raises(ReproError):
            q.circuit(np.zeros(5))

    def test_circuit_structure(self):
        ham = IsingHamiltonian(3, linear={0: 1.0}, quadratic={(0, 1): -0.5})
        q = QAOA(ham, num_layers=2)
        qc = q.circuit(np.array([0.1, 0.2, 0.3, 0.4]))
        ops = qc.count_ops()
        assert ops["h"] == 3
        assert ops["rz"] == 2  # one linear term x two layers
        assert ops["rzz"] == 2
        assert ops["rx"] == 6

    def test_zero_angles_give_uniform_expectation(self):
        ham = IsingHamiltonian(3, linear={1: 1.0})
        q = QAOA(ham, num_layers=1)
        # gamma=beta=0: the state stays uniform, <Z> = 0.
        assert q.expectation(np.zeros(2)) == pytest.approx(np.mean(ham.energies()))


class TestQAOASolving:
    @pytest.mark.parametrize("seed", range(3))
    def test_reaches_optimum_small(self, seed):
        m = _random_qubo(seed, n=4)
        exact = BruteForceSolver().solve(m).best_energy()
        result = QAOA.from_qubo(m, num_layers=3).run(maxiter=120, restarts=2, rng=seed, shots=256)
        assert result.best_energy == pytest.approx(exact, abs=1e-9)

    def test_expectation_above_ground(self):
        m = _random_qubo(7, n=4)
        exact = BruteForceSolver().solve(m).best_energy()
        result = QAOA.from_qubo(m, num_layers=2).run(maxiter=80, rng=0)
        assert result.expectation >= exact - 1e-9

    def test_deeper_is_no_worse(self):
        m = _random_qubo(11, n=4)
        shallow = QAOA.from_qubo(m, num_layers=1).optimize(maxiter=120, restarts=3, rng=0).value
        deep = QAOA.from_qubo(m, num_layers=3).optimize(maxiter=120, restarts=3, rng=0).value
        assert deep <= shallow + 0.15

    def test_spsa_optimizer_path(self):
        m = _random_qubo(2, n=3)
        result = QAOA.from_qubo(m, num_layers=2).run(optimizer="spsa", maxiter=120, rng=4, shots=256)
        exact = BruteForceSolver().solve(m).best_energy()
        assert result.best_energy == pytest.approx(exact, abs=1e-9)

    def test_samples_report_true_energy(self):
        m = _random_qubo(3, n=3)
        q = QAOA.from_qubo(m, num_layers=1)
        samples = q.sample(np.array([0.2, 0.3]), shots=128, rng=0)
        for s in samples:
            assert s.energy == pytest.approx(m.energy(np.array(s.bits)))


class TestAnsatz:
    def test_param_count_enforced(self):
        with pytest.raises(ReproError):
            hardware_efficient_ansatz(3, 2, np.zeros(5))

    def test_ansatz_runs(self):
        qc = hardware_efficient_ansatz(3, 2, np.zeros(9))
        assert qc.num_qubits == 3
        assert qc.count_ops()["ry"] == 9

    def test_zero_params_give_zero_state(self):
        from repro.quantum.simulator import StatevectorSimulator

        qc = hardware_efficient_ansatz(2, 1, np.zeros(4))
        state = StatevectorSimulator().run(qc)
        assert state.probability("00") == pytest.approx(1.0)


class TestVQE:
    @pytest.mark.parametrize("seed", range(3))
    def test_reaches_optimum_small(self, seed):
        # VQE with COBYLA is restart-sensitive; 4 restarts suffice at n=4.
        m = _random_qubo(seed + 20, n=4)
        exact = BruteForceSolver().solve(m).best_energy()
        result = VQE.from_qubo(m, num_layers=2).run(maxiter=300, restarts=4, rng=seed, shots=256)
        assert result.best_energy == pytest.approx(exact, abs=1e-9)

    def test_energy_above_ground(self):
        m = _random_qubo(30, n=4)
        exact = BruteForceSolver().solve(m).best_energy()
        result = VQE.from_qubo(m, num_layers=2).run(maxiter=200, rng=1)
        assert result.energy >= exact - 1e-9

    def test_general_pauli_sum(self):
        # Ground state of -X is |+> with energy -1.
        ham = PauliSum([PauliString("X", -1.0)])
        vqe = VQE(ham, num_layers=1)
        opt = vqe.optimize(maxiter=200, restarts=3, rng=0)
        assert opt.value == pytest.approx(-1.0, abs=1e-4)

    def test_sampling_requires_diagonal(self):
        ham = PauliSum([PauliString("X", -1.0)])
        vqe = VQE(ham, num_layers=1)
        with pytest.raises(ReproError):
            vqe.sample(np.zeros(vqe.num_parameters), shots=16, rng=0)

    def test_rejects_zero_layers(self):
        with pytest.raises(ReproError):
            VQE(IsingHamiltonian(2), num_layers=0)
