"""Tests for Grover search, BBHT and Durr-Hoyer minimum finding."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.grover import (
    CountingOracle,
    GroverSearch,
    classical_minimum,
    classical_search,
    diffusion,
    durr_hoyer_minimum,
    optimal_iterations,
)
from repro.exceptions import SimulationError
from repro.quantum.state import Statevector


class TestOracle:
    def test_marks_phase(self):
        oracle = CountingOracle([2], 2)
        state = Statevector.uniform_superposition(2)
        oracle.apply(state)
        assert state.data[2].real < 0
        assert state.data[0].real > 0

    def test_counts_calls(self):
        oracle = CountingOracle([0], 1)
        state = Statevector.uniform_superposition(1)
        oracle.apply(state)
        oracle.apply(state)
        assert oracle.calls == 2
        oracle.classify(0)
        assert oracle.calls == 3
        oracle.reset()
        assert oracle.calls == 0

    def test_from_predicate(self):
        oracle = CountingOracle.from_predicate(lambda i: i % 3 == 0, 3)
        assert oracle.marked == {0, 3, 6}

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            CountingOracle([8], 3)


class TestDiffusion:
    def test_diffusion_is_inversion_about_mean(self):
        state = Statevector.uniform_superposition(2)
        state.apply_diagonal(np.array([1.0, -1.0, 1.0, 1.0]))
        diffusion(state)
        # Classic n=2 case: one Grover iteration finds the target exactly.
        assert state.probability(1) == pytest.approx(1.0)

    def test_diffusion_preserves_norm(self):
        gen = np.random.default_rng(0)
        data = gen.normal(size=8) + 1j * gen.normal(size=8)
        state = Statevector(data)
        diffusion(state)
        assert state.norm() == pytest.approx(1.0)


class TestOptimalIterations:
    def test_known_values(self):
        # N=4, M=1: angle=pi/6, pi/(4*pi/6)=1.5 -> 1 iteration.
        assert optimal_iterations(4, 1) == 1
        assert optimal_iterations(16, 1) == 3
        assert optimal_iterations(1024, 1) == 25

    def test_scaling_sqrt(self):
        # Iterations grow like sqrt(N).
        i1 = optimal_iterations(2**8, 1)
        i2 = optimal_iterations(2**10, 1)
        assert i2 / i1 == pytest.approx(2.0, rel=0.15)

    def test_all_marked(self):
        assert optimal_iterations(8, 8) == 0

    def test_rejects_zero_marked(self):
        with pytest.raises(SimulationError):
            optimal_iterations(8, 0)


class TestGroverSearch:
    def test_high_success_probability(self):
        oracle = CountingOracle([13], 6)
        search = GroverSearch(oracle)
        assert search.success_probability(optimal_iterations(64, 1)) > 0.95

    def test_run_finds_target(self, rng):
        oracle = CountingOracle([42], 7)
        result = GroverSearch(oracle).run(rng=rng)
        assert result.found
        assert result.found_index == 42
        assert result.oracle_calls == result.iterations

    def test_quadratic_speedup_shape(self):
        """Oracle calls ~ (pi/4) sqrt(N) vs classical ~ N/2."""
        for n in (6, 8, 10):
            N = 2**n
            iters = optimal_iterations(N, 1)
            assert iters <= math.ceil(math.pi / 4 * math.sqrt(N))
            assert iters >= math.floor(math.pi / 4 * math.sqrt(N)) - 1

    def test_multiple_marked(self, rng):
        oracle = CountingOracle([3, 17, 40], 6)
        result = GroverSearch(oracle).run(rng=rng)
        assert result.success_probability > 0.9

    def test_found_bitstring(self):
        # Own literal seed, not the shared fixture: the final measurement
        # succeeds only with probability ~ sin^2((2k+1)theta/2) < 1, so the
        # exact-bitstring claim is not seed-independent (docs/testing.md).
        oracle = CountingOracle([5], 4)
        result = GroverSearch(oracle).run(rng=np.random.default_rng(12345))
        assert result.found_bitstring == "0101"

    def test_bbht_unknown_count(self, rng):
        oracle = CountingOracle([9, 33], 7)
        result = GroverSearch(oracle).search_unknown_count(rng=rng)
        assert result.found
        assert result.found_index in (9, 33)

    def test_bbht_gives_up_on_empty(self, rng):
        oracle = CountingOracle([], 4)
        result = GroverSearch(oracle).search_unknown_count(rng=rng, max_rounds=6)
        assert not result.found


class TestClassicalBaselines:
    def test_classical_search_counts_queries(self, rng):
        oracle = CountingOracle([7], 5)
        idx, calls = classical_search(oracle, rng=rng)
        assert idx == 7
        assert 1 <= calls <= 32

    def test_classical_expected_half(self):
        # Average over seeds should be close to N/2.
        totals = []
        for seed in range(30):
            oracle = CountingOracle([11], 6)
            _, calls = classical_search(oracle, rng=seed)
            totals.append(calls)
        assert np.mean(totals) == pytest.approx(32, rel=0.4)

    def test_classical_minimum(self):
        idx, comparisons = classical_minimum([3.0, 1.0, 2.0])
        assert idx == 1
        assert comparisons == 2

    def test_classical_minimum_empty(self):
        with pytest.raises(SimulationError):
            classical_minimum([])


class TestMinimumFinding:
    @pytest.mark.parametrize("seed", range(4))
    def test_durr_hoyer_finds_minimum(self, seed):
        values = np.random.default_rng(seed).random(40)
        idx, _ = durr_hoyer_minimum(values, rng=seed)
        assert idx == int(np.argmin(values))

    def test_durr_hoyer_fewer_calls_at_scale(self):
        values = np.random.default_rng(1).random(256)
        _, qcalls = durr_hoyer_minimum(values, rng=0)
        _, ccalls = classical_minimum(values)
        assert qcalls < ccalls

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            durr_hoyer_minimum([])


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10**9))
def test_property_grover_beats_uniform(n, seed):
    """After optimal iterations the marked state is above uniform probability."""
    rng = np.random.default_rng(seed)
    target = int(rng.integers(0, 2**n))
    oracle = CountingOracle([target], n)
    prob = GroverSearch(oracle).success_probability(optimal_iterations(2**n, 1))
    assert prob > 1.0 / 2**n
    assert prob > 0.5
