"""Tests for QFT, QPE, variational circuits and classical optimizers."""

import math

import numpy as np
import pytest

from repro.algorithms.optimizers import (
    SPSAOptimizer,
    finite_difference_gradient,
    gradient_descent,
    parameter_shift_gradient,
    scipy_minimize,
)
from repro.algorithms.qft import inverse_qft_circuit, qft_circuit
from repro.algorithms.qpe import estimate_phase, qpe_circuit
from repro.algorithms.vqc import VariationalCircuit
from repro.exceptions import ReproError, SimulationError
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.state import Statevector

SIM = StatevectorSimulator()


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        N = 2**n
        dft = np.array(
            [[np.exp(2j * np.pi * j * k / N) for k in range(N)] for j in range(N)]
        ) / math.sqrt(N)
        assert np.allclose(qft_circuit(n).to_matrix(), dft)

    def test_inverse_qft(self):
        qc = qft_circuit(3).compose(inverse_qft_circuit(3))
        state = SIM.run(qc, initial_state=Statevector.from_label("101"))
        assert state.probability("101") == pytest.approx(1.0)

    def test_qft_of_zero_is_uniform(self):
        state = SIM.run(qft_circuit(3))
        assert np.allclose(state.probabilities(), np.full(8, 1 / 8))


class TestQPE:
    @pytest.mark.parametrize("phi", [0.0, 0.25, 0.5, 5 / 16, 11 / 32])
    def test_exact_phases(self, phi):
        U = np.diag([1.0, np.exp(2j * np.pi * phi)])
        res = estimate_phase(U, Statevector.from_label("1"), num_ancillas=5, shots=128, rng=0)
        assert res.phase == pytest.approx(phi)

    def test_inexact_phase_within_resolution(self):
        phi = 0.313
        U = np.diag([1.0, np.exp(2j * np.pi * phi)])
        res = estimate_phase(U, Statevector.from_label("1"), num_ancillas=6, shots=512, rng=1)
        assert abs(res.phase - phi) <= 2 * res.resolution

    def test_t_gate_phase(self):
        # T|1> = e^{i pi/4}|1>: phase 1/8.
        t_mat = np.diag([1.0, np.exp(1j * np.pi / 4)])
        res = estimate_phase(t_mat, Statevector.from_label("1"), num_ancillas=4, shots=128, rng=2)
        assert res.phase == pytest.approx(1 / 8)

    def test_two_qubit_unitary(self):
        # CZ has eigenvalue -1 on |11>: phase 1/2.
        cz = np.diag([1.0, 1.0, 1.0, -1.0])
        res = estimate_phase(cz, Statevector.from_label("11"), num_ancillas=3, shots=128, rng=3)
        assert res.phase == pytest.approx(0.5)

    def test_rejects_bad_unitary_shape(self):
        with pytest.raises(SimulationError):
            qpe_circuit(np.eye(3), 2)


class TestVQC:
    def test_parameter_count(self):
        assert VariationalCircuit(3, num_layers=2).num_parameters == 12

    def test_rejects_bad_dims(self):
        with pytest.raises(ReproError):
            VariationalCircuit(0)

    def test_probabilities_normalised(self):
        vqc = VariationalCircuit(3, num_layers=2)
        rng = np.random.default_rng(0)
        p = vqc.initial_parameters(rng)
        probs = vqc.probabilities(np.array([0.1, 0.9, 0.4]), p)
        assert probs.sum() == pytest.approx(1.0)

    def test_policy_distribution(self):
        vqc = VariationalCircuit(3, num_layers=1)
        p = vqc.initial_parameters(np.random.default_rng(1))
        pol = vqc.policy(np.array([0.5]), p, num_actions=3)
        assert pol.shape == (3,)
        assert pol.sum() == pytest.approx(1.0)
        assert np.all(pol > 0)

    def test_policy_masks_invalid(self):
        vqc = VariationalCircuit(3, num_layers=1)
        p = vqc.initial_parameters(np.random.default_rng(2))
        pol = vqc.policy(np.array([0.5]), p, num_actions=4, valid_actions=[1, 3])
        assert pol[0] == 0.0
        assert pol[2] == 0.0
        assert pol.sum() == pytest.approx(1.0)

    def test_policy_needs_enough_qubits(self):
        vqc = VariationalCircuit(1, num_layers=1)
        with pytest.raises(ReproError):
            vqc.policy(np.array([0.5]), vqc.initial_parameters(np.random.default_rng(0)), num_actions=5)

    def test_features_affect_output(self):
        vqc = VariationalCircuit(2, num_layers=2)
        p = np.random.default_rng(3).uniform(-0.5, 0.5, vqc.num_parameters)
        a = vqc.expectation_z(np.array([0.1]), p)
        b = vqc.expectation_z(np.array([0.9]), p)
        assert a != pytest.approx(b, abs=1e-6)

    def test_expectation_z_range(self):
        vqc = VariationalCircuit(2, num_layers=1)
        p = vqc.initial_parameters(np.random.default_rng(4))
        z = vqc.expectation_z(np.array([0.3, 0.6]), p, qubit=1)
        assert -1.0 <= z <= 1.0


class TestOptimizers:
    @staticmethod
    def _quadratic(x):
        return float(np.sum((x - 1.5) ** 2))

    def test_scipy_cobyla(self):
        res = scipy_minimize(self._quadratic, np.zeros(3), method="COBYLA", maxiter=300)
        assert res.value < 1e-4
        assert res.evaluations > 0
        assert len(res.history) == res.evaluations

    def test_scipy_nelder_mead(self):
        res = scipy_minimize(self._quadratic, np.zeros(2), method="Nelder-Mead", maxiter=400)
        assert res.value < 1e-6

    def test_spsa_improves(self):
        res = SPSAOptimizer(maxiter=300, a=0.3).minimize(self._quadratic, np.zeros(3), rng=0)
        assert res.value < self._quadratic(np.zeros(3))
        assert res.value < 0.5

    def test_parameter_shift_on_sine(self):
        # f(theta) = sin(theta) obeys the shift rule exactly.
        fn = lambda x: float(np.sin(x[0]))
        grad = parameter_shift_gradient(fn, np.array([0.4]))
        assert grad[0] == pytest.approx(np.cos(0.4))

    def test_parameter_shift_matches_circuit_gradient(self):
        from repro.algorithms.qaoa import QAOA
        from repro.quantum.pauli import IsingHamiltonian

        q = QAOA(IsingHamiltonian(2, linear={0: 1.0}, quadratic={(0, 1): -0.7}), num_layers=1)
        params = np.array([0.3, 0.8])
        fd = finite_difference_gradient(q.expectation, params)
        # RZZ/RZ angles carry Hamiltonian coefficients, so the plain pi/2 shift
        # rule does not apply to gamma; check the beta (mixer) component which
        # is a bare RX angle.  Instead verify FD self-consistency at two eps.
        fd2 = finite_difference_gradient(q.expectation, params, eps=1e-5)
        assert np.allclose(fd, fd2, atol=1e-4)

    def test_gradient_descent_quadratic(self):
        res = gradient_descent(
            self._quadratic,
            np.zeros(2),
            learning_rate=0.2,
            maxiter=100,
            grad_fn=finite_difference_gradient,
        )
        assert res.value < 1e-6
