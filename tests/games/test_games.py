"""Tests for nonlocal games: CHSH, GHZ, XOR games, magic square."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.chsh import (
    CHSH_CLASSICAL_VALUE,
    CHSH_QUANTUM_VALUE,
    chsh_game,
    chsh_quantum_strategy,
)
from repro.games.classical import optimal_classical_value
from repro.games.framework import (
    QuantumStrategy,
    optimize_quantum_strategy,
    play_quantum_rounds,
    quantum_win_probability,
)
from repro.games.ghz import (
    GHZ_QUESTIONS,
    ghz_classical_value,
    ghz_game_quantum_value,
    ghz_quantum_win_probability,
    play_ghz_rounds,
)
from repro.games.magic_square import (
    magic_square_classical_value,
    magic_square_quantum_round,
    magic_square_quantum_value,
    OBSERVABLE_GRID,
)
from repro.games.xor_games import (
    chsh_xor_game,
    random_xor_game,
    xor_classical_value,
    xor_quantum_value,
)
from repro.quantum.bell import bell_state


class TestCHSH:
    """Example IV.2: quantum 0.8536 beats classical 0.75."""

    def test_classical_value(self):
        value, a_map, b_map = optimal_classical_value(chsh_game())
        assert value == pytest.approx(CHSH_CLASSICAL_VALUE)

    def test_quantum_value_exact(self):
        value = quantum_win_probability(chsh_game(), chsh_quantum_strategy())
        assert value == pytest.approx(CHSH_QUANTUM_VALUE)
        assert value == pytest.approx(math.cos(math.pi / 8) ** 2)

    def test_quantum_beats_classical(self):
        assert CHSH_QUANTUM_VALUE > CHSH_CLASSICAL_VALUE

    def test_empirical_play(self, rng):
        rate = play_quantum_rounds(chsh_game(), chsh_quantum_strategy(), 5000, rng=rng)
        assert rate == pytest.approx(CHSH_QUANTUM_VALUE, abs=0.03)

    def test_angle_optimization_recovers_tsirelson(self):
        _, value = optimize_quantum_strategy(chsh_game(), bell_state("phi+"), restarts=6, rng=0)
        assert value == pytest.approx(CHSH_QUANTUM_VALUE, abs=1e-4)

    def test_unentangled_state_stays_classical(self):
        from repro.quantum.state import Statevector

        product = Statevector.from_label("00")
        _, value = optimize_quantum_strategy(chsh_game(), product, restarts=6, rng=1)
        assert value <= CHSH_CLASSICAL_VALUE + 1e-6


class TestGHZ:
    """Sec. IV-A: GHZ entanglement wins with probability 1 vs 0.75."""

    def test_classical_value(self):
        value, _ = ghz_classical_value()
        assert value == pytest.approx(0.75)

    def test_quantum_value_is_one(self):
        assert ghz_game_quantum_value() == pytest.approx(1.0)

    @pytest.mark.parametrize("questions", GHZ_QUESTIONS)
    def test_every_question_wins(self, questions):
        assert ghz_quantum_win_probability(questions) == pytest.approx(1.0)

    def test_sequential_measurement_play(self, rng):
        assert play_ghz_rounds(200, rng) == 1.0


class TestXorGames:
    def test_chsh_as_xor_game(self):
        game = chsh_xor_game()
        assert xor_classical_value(game) == pytest.approx(0.75)
        assert xor_quantum_value(game, rng=0) == pytest.approx(CHSH_QUANTUM_VALUE, abs=1e-6)

    def test_trivial_game_both_one(self):
        # Target constant 0: always answering equal bits wins.
        from repro.games.xor_games import XorGame

        game = XorGame(2, 2, target=lambda x, y: 0)
        assert xor_classical_value(game) == pytest.approx(1.0)
        assert xor_quantum_value(game, rng=1) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_quantum_at_least_classical(self, seed):
        game = random_xor_game(2, 2, rng=seed)
        cv = xor_classical_value(game)
        qv = xor_quantum_value(game, restarts=8, rng=seed)
        assert qv >= cv - 1e-6

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_values_bounded(self, seed):
        game = random_xor_game(3, 3, rng=seed)
        assert 0.5 <= xor_classical_value(game) <= 1.0
        assert xor_quantum_value(game, restarts=6, rng=seed) <= 1.0 + 1e-9


class TestMagicSquare:
    def test_observable_grid_parities(self):
        # Rows multiply to +I, columns to -I (the Peres-Mermin magic).
        eye = np.eye(4)
        for r in range(3):
            prod = OBSERVABLE_GRID[r][0] @ OBSERVABLE_GRID[r][1] @ OBSERVABLE_GRID[r][2]
            assert np.allclose(prod, eye)
        for c in range(3):
            prod = OBSERVABLE_GRID[0][c] @ OBSERVABLE_GRID[1][c] @ OBSERVABLE_GRID[2][c]
            assert np.allclose(prod, -eye)

    def test_classical_value(self):
        assert magic_square_classical_value() == pytest.approx(8 / 9)

    @pytest.mark.parametrize("row,col", [(0, 0), (1, 2), (2, 1)])
    def test_quantum_rounds_always_win(self, row, col, rng):
        for _ in range(5):
            assert magic_square_quantum_round(row, col, rng=rng)

    def test_quantum_value_is_one(self, rng):
        assert magic_square_quantum_value(rounds_per_pair=2, rng=rng) == pytest.approx(1.0)
