#!/usr/bin/env python3
"""Docs link lint: every intra-repo markdown link must resolve.

Scans the repo's markdown files (``docs/``, top-level ``*.md``) for inline
links and images, and checks that relative targets point at files that
exist.  External schemes (http/https/mailto) and pure ``#anchor`` links are
skipped; a ``path#anchor`` target is checked for the file part only.

Exit status 0 when clean, 1 with one line per broken link otherwise —
suitable both for CI and for the tier-1 test that wraps it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — code spans are stripped first.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def broken_links(root: Path) -> list[str]:
    problems = []
    for path in markdown_files(root):
        text = path.read_text(encoding="utf-8")
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_RE.finditer(_CODE_SPAN_RE.sub("", line)):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: broken link -> {target}"
                    )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    problems = broken_links(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken intra-repo link(s)")
        return 1
    count = len(markdown_files(root))
    print(f"docs-lint: {count} markdown files, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
