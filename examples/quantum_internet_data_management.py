"""Data management over a quantum internet (Sec. IV + Fig. 1(c)).

Walks the whole stack: teleportation over a repeater chain, nonlocal-game
advantages, QKD security, no-cloning, and a distributed quantum store with
GHZ-assisted commit.

Run:  python examples/quantum_internet_data_management.py
"""

import numpy as np

from repro.dqdm import (
    DistributedQuantumStore,
    GhzAssistedCommit,
    QuantumDataItem,
    TwoPhaseCommit,
)
from repro.games.chsh import CHSH_CLASSICAL_VALUE, CHSH_QUANTUM_VALUE
from repro.games.ghz import ghz_classical_value, ghz_game_quantum_value
from repro.qnet import (
    EntanglementLink,
    QuantumNetwork,
    UniversalCloner,
    run_bb84,
    teleport,
)
from repro.quantum.state import Statevector
from repro.utils.tables import format_table


def main() -> None:
    # --- Fig. 1(c): teleportation through repeaters -----------------------
    print("teleporting a random qubit over repeater chains (Fig. 1c):")
    rows = []
    for hops in (1, 2, 4, 7):
        net = QuantumNetwork.chain(hops + 1, EntanglementLink(success_prob=0.6, base_fidelity=0.96))
        e2e, tele_f = net.teleport_quality("n0", f"n{hops}", rng=hops)
        rows.append([hops, e2e.swaps, f"{e2e.fidelity:.4f}", f"{tele_f:.4f}", f"{e2e.time:.0f}"])
    print(format_table(["hops", "swaps", "pair fidelity", "teleport fidelity", "time slots"], rows))

    exact = teleport(Statevector(np.array([0.6, 0.8j])), rng=0)
    print(f"\nexact protocol check (perfect pair): output fidelity = {exact.fidelity:.6f}")

    # --- Sec. IV-A: nonlocality advantages --------------------------------
    ghz_c, _ = ghz_classical_value()
    print("\nnonlocal games (classical vs entangled):")
    print(f"  CHSH: {CHSH_CLASSICAL_VALUE:.4f} vs {CHSH_QUANTUM_VALUE:.4f}")
    print(f"  GHZ : {ghz_c:.4f} vs {ghz_game_quantum_value():.4f}")

    # --- secure data transmission ------------------------------------------
    honest = run_bb84(256, eve=False, rng=1)
    attacked = run_bb84(256, eve=True, rng=2)
    print("\nBB84 key distribution:")
    print(f"  honest channel:   QBER {honest.qber:.3f}, key length {len(honest.key)}")
    print(f"  with eavesdropper: QBER {attacked.qber:.3f}, aborted: {attacked.aborted}")

    # --- Sec. IV-B.1: no-cloning and data models ---------------------------
    cloner = UniversalCloner()
    psi = Statevector(np.array([1.0, 1.0j]))
    print(f"\nno-cloning: best physical copier reaches fidelity {cloner.copy_fidelity(psi):.4f} (= 5/6)")

    # --- Sec. IV-B.2: distributed quantum store + commit -------------------
    net = QuantumNetwork.grid(2, 3, EntanglementLink(success_prob=0.7, base_fidelity=0.97))
    store = DistributedQuantumStore(net)
    item = QuantumDataItem("order-embedding", Statevector([1, 1j]), recipe=lambda: Statevector([1, 1j]))
    store.put_quantum("n0_0", item)
    receipt = store.move_quantum("order-embedding", "n1_2", rng=3, min_pair_fidelity=0.9)
    print("\ndistributed store: moved quantum item via", " -> ".join(receipt.path))
    print(f"  payload fidelity {receipt.payload_fidelity:.4f}, pairs consumed {receipt.pairs_consumed:.1f}")

    crash = 0.15
    tpc = TwoPhaseCommit(5, crash_prob=crash).run(3000, rng=4)
    ghz_proto = GhzAssistedCommit(5, crash_prob=crash)
    ghz_stats = ghz_proto.run(3000, rng=5)
    print(f"\ncommit under {crash:.0%} coordinator-crash rate (3000 rounds):")
    print(f"  classical 2PC : blocking rate {tpc.blocking_rate:.3f}, divergence {tpc.divergence_rate:.3f}")
    print(f"  GHZ-assisted  : blocking rate {ghz_stats.blocking_rate:.3f}, "
          f"divergence {ghz_stats.divergence_rate:.3f} ({ghz_proto.ghz_states_consumed} GHZ states)")


if __name__ == "__main__":
    main()
