"""Quickstart: the solver service — coalescing, determinism, metrics.

Boots a :class:`repro.service.SolverService` in-process (no sockets
needed; ``python -m repro.service`` serves the same thing over HTTP),
fires a burst of concurrent single-solve submissions at it, and shows the
coalescing story end to end:

1. the burst's 12 requests ride **one** ``solve_many`` wave;
2. duplicate ``(spec, seed)`` submissions dedup to one engine solve each;
3. every result is **bit-identical** to the direct ``repro.solve`` call
   with the same problem and seed — coalescing amortises dispatch, it
   never changes math;
4. ``/metrics``-style Prometheus output falls out of the same run.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

import asyncio

import repro
from repro.service import ServiceConfig, SolverService, problem_from_spec

# Content-addressable specs: the same spec names the same instance
# everywhere, which is what makes dedup and caching sound.
SPECS = [
    {"kind": "mqo", "num_queries": 4, "plans_per_query": 3,
     "sharing_density": 0.4, "instance_seed": i}
    for i in range(3)
]
SA_OPTS = {"num_reads": 16, "num_sweeps": 200}


async def main() -> None:
    service = SolverService(ServiceConfig(
        window_s=0.25,          # hold the first request 250 ms for companions
        max_wave=16,            # ...or dispatch the moment 16 are pending
        backends=("sa",),
        backend_opts={"sa": dict(SA_OPTS)},
        executor="threads",
    ))
    await service.start()

    # A burst: every (spec, seed) pair submitted twice, all concurrently.
    requests = [(spec, seed) for spec in SPECS for seed in (1, 2)] * 2
    jobs = [service.submit(spec, seed=seed) for spec, seed in requests]
    await asyncio.gather(*[job.future for job in jobs])

    waves = int(service._m["waves"].value())
    unique = int(service._m["unique_solves"].value())
    print(f"{len(jobs)} concurrent requests -> {waves} wave(s), "
          f"{unique} engine solves after dedup\n")

    print(f"{'job':<12}{'seed':>5}{'wave':>6}{'objective':>12}   direct solve")
    for job, (spec, seed) in zip(jobs[:6], requests[:6]):
        direct = repro.solve(problem_from_spec(spec), backend="sa",
                             seed=seed, **SA_OPTS)
        match = "== identical" if direct.objective == job.result.objective else "!!"
        print(f"{job.id:<12}{seed:>5}{job.wave:>6}"
              f"{job.result.objective:>12.4f}   {match}")

    print("\nSelected /metrics lines:")
    for line in service.render_metrics().splitlines():
        if line.startswith(("repro_service_waves_total",
                            "repro_service_deduped_requests_total",
                            "repro_service_wave_unique_solves_total",
                            "repro_backend_capacity")):
            print(" ", line)

    await service.shutdown()
    print("\ndrained and stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
