"""Data integration and transaction management on the annealer (Table I rows
[28]-[31]).

Part 1 matches two noisy schemas via the QUBO mapping vs the Hungarian
optimum; part 2 schedules conflicting transactions into slots via QUBO and
Grover, then verifies zero 2PL blocking with the lock-manager simulator.

Run:  python examples/schema_and_transactions.py
"""

from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.db.transactions import simulate_slot_schedule
from repro.integration import generate_schema_pair, hungarian_matching, matching_to_qubo
from repro.integration.qubo import decode_matching, matching_quality
from repro.txn import (
    generate_transactions,
    greedy_coloring_schedule,
    grover_minimum_makespan,
    schedule_to_qubo,
)
from repro.txn.classical import exhaustive_schedule
from repro.txn.qubo import assignment_conflicts, assignment_makespan, decode_assignment
from repro.utils.tables import format_table


def schema_matching_demo() -> None:
    source, target, truth = generate_schema_pair(8, rename_probability=0.6, rng=11)
    print("source attributes:", source.attribute_names)
    print("target attributes:", target.attribute_names)
    model, sims = matching_to_qubo(source, target)
    samples = SimulatedAnnealingSolver(num_reads=24, num_sweeps=300).solve(model, rng=0)
    qubo_match = decode_matching(model, samples.best.bits)
    hungarian = hungarian_matching(source, target)
    rows = []
    for name, match in [("QUBO + annealing", qubo_match), ("Hungarian (classical optimum)", hungarian)]:
        p, r, f1 = matching_quality(match, truth)
        rows.append([name, len(match), f"{p:.2f}", f"{r:.2f}", f"{f1:.2f}"])
    print(format_table(["method", "matches", "precision", "recall", "F1"], rows,
                       title="\nschema matching vs ground truth"))


def transaction_scheduling_demo() -> None:
    txns = generate_transactions(4, num_items=5, ops_per_transaction=(2, 3), rng=5)
    for t in txns:
        print(f"  {t.txn_id}: {' '.join(map(repr, t.operations))}")
    coloring = greedy_coloring_schedule(txns)
    slots = max(coloring.values()) + 1
    print(f"conflict graph needs {slots} slot(s) (greedy coloring)")

    model = schedule_to_qubo(txns, num_slots=slots)
    samples = SimulatedAnnealingSolver(num_reads=24, num_sweeps=300).solve(model, rng=1)
    qubo_assign = decode_assignment(txns, model, samples.best.bits, slots)
    _, best_makespan, checked = exhaustive_schedule(txns, slots)
    grover = grover_minimum_makespan(txns, slots, rng=2)

    rows = []
    for name, assign, extra in [
        ("QUBO + annealing", qubo_assign, f"{model.num_variables} vars"),
        ("greedy coloring", coloring, "-"),
        ("Grover min-makespan", grover.assignment, f"{grover.oracle_calls} oracle calls"),
    ]:
        report = simulate_slot_schedule(txns, assign)
        rows.append([
            name,
            assignment_conflicts(txns, assign),
            assignment_makespan(txns, assign),
            report.blocking_time,
            extra,
        ])
    print(format_table(
        ["method", "co-located conflicts", "makespan", "2PL blocking", "notes"],
        rows,
        title=f"\ntransaction scheduling (exhaustive optimum makespan = {best_makespan}, "
              f"{checked} states checked)",
    ))


def main() -> None:
    schema_matching_demo()
    print()
    transaction_scheduling_demo()


if __name__ == "__main__":
    main()
