"""Quickstart: the Fig. 2 roadmap on one data-management problem.

Takes a multiple-query-optimization batch, maps it to QUBO (the paper's
central intermediate formulation), and solves it on every backend the
roadmap lists: simulated (quantum) annealing, the embedded annealer device,
gate-based QAOA and VQE, and Grover minimum finding — then compares all of
them against the exhaustive classical optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms.grover import classical_minimum, durr_hoyer_minimum
from repro.algorithms.qaoa import QAOA
from repro.algorithms.vqe import VQE
from repro.annealing import AnnealerDevice, SimulatedAnnealingSolver, SimulatedQuantumAnnealingSolver
from repro.mqo import exhaustive_mqo, generate_mqo_problem
from repro.mqo.qubo import decode_sample, mqo_to_qubo
from repro.qubo.bruteforce import BruteForceSolver
from repro.utils.tables import format_table


def main() -> None:
    # A batch of 3 queries with 2 candidate plans each and shared work.
    problem = generate_mqo_problem(3, 2, sharing_density=0.5, rng=7)
    model = mqo_to_qubo(problem)
    _, optimum = exhaustive_mqo(problem)
    print(f"MQO instance: {problem}")
    print(f"QUBO size: {model.num_variables} binary variables")
    print(f"classical exhaustive optimum: {optimum:.3f}\n")

    rows = []

    def record(method, bits):
        selection = decode_sample(problem, model, bits)
        cost = problem.total_cost(selection)
        rows.append([method, f"{cost:.3f}", f"{cost / optimum:.3f}", selection == best_selection or cost <= optimum + 1e-9])

    best_selection, _ = exhaustive_mqo(problem)

    # Roadmap path 1: QUBO -> quantum annealer (simulated, with embedding).
    device = AnnealerDevice(sampler="sa", num_reads=16, num_sweeps=200)
    record("annealer (Chimera-embedded SA)", device.sample(model, rng=0).best.bits)

    # Path 2: plain simulated annealing / simulated quantum annealing.
    record("simulated annealing", SimulatedAnnealingSolver(num_reads=16, num_sweeps=200).solve(model, rng=1).best.bits)
    record("simulated quantum annealing", SimulatedQuantumAnnealingSolver(num_reads=8, num_sweeps=128).solve(model, rng=2).best.bits)

    # Path 3: QUBO -> Ising -> QAOA (gate model).
    qaoa = QAOA.from_qubo(model, num_layers=3)
    record("QAOA (p=3)", qaoa.run(maxiter=120, restarts=2, rng=3).best_bits)

    # Path 4: QUBO -> Ising -> VQE.
    vqe = VQE.from_qubo(model, num_layers=2)
    record("VQE (2 layers)", vqe.run(maxiter=250, restarts=3, rng=4).best_bits)

    # Path 5: Grover minimum finding over the (small) assignment table.
    energies = model.energies(BruteForceSolver._all_assignments(model.num_variables))
    q_idx, q_calls = durr_hoyer_minimum(energies, rng=5)
    c_idx, c_calls = classical_minimum(energies)
    bits = [int(b) for b in np.binary_repr(q_idx, model.num_variables)]
    record(f"Grover minimum finding ({q_calls} vs {c_calls} classical calls)", bits)

    print(format_table(["method", "total cost", "ratio vs optimum", "optimal?"], rows,
                       title="Fig. 2 roadmap: every backend on the same MQO QUBO"))


if __name__ == "__main__":
    main()
