"""Quickstart: the Fig. 2 roadmap on one data-management problem.

Takes a multiple-query-optimization batch, maps it to QUBO (the paper's
central intermediate formulation), and solves it on every backend the
unified facade registers — exhaustive enumeration, tabu search, simulated
(quantum) annealing, the Chimera-embedded annealer device, gate-based QAOA
and VQE, and the classical per-domain baseline — then compares them all,
plus Grover minimum finding, against the exhaustive optimum.

Every engine is one line:  ``repro.solve(problem, backend=name, seed=...)``.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

import repro
from repro.algorithms.grover import classical_minimum, durr_hoyer_minimum
from repro.mqo import exhaustive_mqo, generate_mqo_problem
from repro.mqo.qubo import decode_sample, mqo_to_qubo
from repro.qubo.bruteforce import BruteForceSolver
from repro.utils.tables import format_table

BACKEND_OPTS = {
    "annealer": dict(sampler="sa", num_reads=16, num_sweeps=200),
    "sa": dict(num_reads=16, num_sweeps=200),
    "sqa": dict(num_reads=8, num_sweeps=128),
    "qaoa": dict(num_layers=3, maxiter=120, restarts=2),
    "vqe": dict(num_layers=2, maxiter=250, restarts=3),
}


def main() -> None:
    # A batch of 3 queries with 2 candidate plans each and shared work.
    problem = generate_mqo_problem(3, 2, sharing_density=0.5, rng=7)
    model = mqo_to_qubo(problem)
    _, optimum = exhaustive_mqo(problem)
    print(f"MQO instance: {problem}")
    print(f"QUBO size: {model.num_variables} binary variables")
    print(f"registered backends: {', '.join(repro.list_backends())}")
    print(f"classical exhaustive optimum: {optimum:.3f}\n")

    rows = []
    for seed, backend in enumerate(repro.list_backends()):
        result = repro.solve(problem, backend=backend, seed=seed, **BACKEND_OPTS.get(backend, {}))
        rows.append([
            backend,
            f"{result.objective:.3f}",
            f"{result.objective / optimum:.3f}",
            f"{result.wall_time * 1e3:.0f} ms",
            result.objective <= optimum + 1e-9,
        ])

    # Grover minimum finding is index- rather than sample-based, so it rides
    # outside the QUBO-sampling facade (over the small assignment table).
    energies = model.energies(BruteForceSolver._all_assignments(model.num_variables))
    q_idx, q_calls = durr_hoyer_minimum(energies, rng=5)
    _, c_calls = classical_minimum(energies)
    bits = [int(b) for b in np.binary_repr(q_idx, model.num_variables)]
    cost = problem.total_cost(decode_sample(problem, model, bits))
    rows.append([
        f"grover minimum finding ({q_calls} vs {c_calls} calls)",
        f"{cost:.3f}", f"{cost / optimum:.3f}", "-", cost <= optimum + 1e-9,
    ])

    print(format_table(
        ["backend", "total cost", "ratio vs optimum", "wall time", "optimal?"], rows,
        title="Fig. 2 roadmap via repro.solve(): every backend on the same MQO QUBO"))

    batch_demo()


def batch_demo() -> None:
    """Batch execution through the engine: sharded-parallel + result cache.

    ``solve_many`` shards the batch by QUBO structure (same-shaped
    instances share a backend instance, so embeddings / warm starts
    amortise within the shard), runs shards in parallel worker processes,
    and memoises results content-addressed on (QUBO fingerprint, backend,
    opts, seed) — a rerun of the same workload is served from cache with
    identical objectives.
    """
    # 8 instances in 4 structure groups of 2.
    problems = [
        generate_mqo_problem(3, 2, sharing_density=0.5, rng=structure)
        for structure in range(4)
        for _ in range(2)
    ]
    opts = dict(num_reads=16, num_sweeps=200)

    print("\nbatch of 8 MQO instances via solve_many(executor='processes', cache=True):")
    for label in ("cold run", "warm rerun"):
        t0 = time.perf_counter()
        results = repro.solve_many(
            problems, backend="sa", seed=7, executor="processes", cache=True, **opts
        )
        elapsed = time.perf_counter() - t0
        hits = sum(r.cache_hit for r in results)
        shards = max(r.info["engine"]["shard"] for r in results) + 1
        print(
            f"  {label:10s}: {elapsed * 1e3:7.1f} ms, {shards} shards, "
            f"cache hits {hits}/{len(results)}, "
            f"total cost {sum(r.objective for r in results):.3f}"
        )


if __name__ == "__main__":
    main()
