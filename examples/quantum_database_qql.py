"""A QQL session: Grover-backed SQL over superposition tables (Sec. III-A).

Run:  python examples/quantum_database_qql.py
"""

from repro.qdb.qql import QQLEngine


def main() -> None:
    engine = QQLEngine()
    session = [
        "CREATE TABLE employees QUBITS 7",
        "INSERT INTO employees VALUES (3, 17, 42, 55, 78, 101)",
        "CREATE TABLE managers QUBITS 7",
        "INSERT INTO managers VALUES (17, 42, 99)",
        "SELECT * FROM employees",
        "SELECT * FROM employees WHERE key = 42",
        "SELECT * FROM employees WHERE key < 50",
        "SELECT * FROM employees INTERSECT managers",
        "SELECT * FROM employees EXCEPT managers",
        "SELECT * FROM employees UNION managers",
        "SELECT * FROM employees JOIN managers",
        "DELETE FROM employees WHERE key = 3",
        "UPDATE employees SET key = 18 WHERE key = 17",
        "SELECT * FROM employees",
    ]
    for i, statement in enumerate(session):
        result = engine.execute(statement, rng=i)
        print(f"qql> {statement}")
        if result.keys is not None:
            print(f"     -> keys {result.keys}  [{result.method}, {result.oracle_calls} oracle calls]")
        elif result.pairs is not None:
            print(f"     -> pairs {result.pairs}  [{result.method}, {result.oracle_calls} oracle calls]")
        else:
            print(f"     -> ok ({result.method}, rows affected: {result.rows_affected})")

    # Show the query-complexity gap on the same point query.
    classical = QQLEngine(backend="classical")
    classical.execute("CREATE TABLE employees QUBITS 7")
    classical.execute("INSERT INTO employees VALUES (3, 18, 42, 55, 78, 101)")
    c = classical.execute("SELECT * FROM employees WHERE key = 42", rng=0)
    q = engine.execute("SELECT * FROM employees WHERE key = 42", rng=0)
    print(f"\npoint query on a 2^7 key space: classical scan used {c.oracle_calls} "
          f"oracle calls, Grover used {q.oracle_calls}")


if __name__ == "__main__":
    main()
