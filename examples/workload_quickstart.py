"""Quickstart: the SQL workload front-end — a script becomes one batch.

Compiles a six-statement mixed SQL script (three SELECTs, three DML
statements) against a small catalog into Table I problem instances —
per-SELECT join ordering, one multi-query-optimization instance over the
SELECT batch, one transaction-scheduling instance over the DML — and
executes all of them as **one** sharded ``solve_many`` batch:

1. every multi-table SELECT gets its join order solved on the quantum
   stack (cost model: C_out over the catalog's statistics);
2. the SELECT batch shares work: both ``city = 'delft'`` scans of
   ``users`` are the same subexpression, so MQO credits plans that
   materialise it in more than one query;
3. the DML statements are scheduled into conflict-free slots;
4. ``report.info["workload"]`` maps every statement back to the
   instances (and engine shards) that planned it.

Run:  PYTHONPATH=src python examples/workload_quickstart.py
"""

from repro.db.catalog import Catalog
from repro.workload import run_workload

SCRIPT = """
SELECT users.name, orders.total FROM users, orders
    WHERE users.uid = orders.uid AND users.city = 'delft';
SELECT u.city, i.sku FROM users u, orders o, items i
    WHERE u.uid = o.uid AND o.oid = i.oid;
SELECT * FROM users WHERE city = 'delft';
INSERT INTO orders VALUES (99, 1, 10.0);
UPDATE users SET city = 'sf' WHERE uid = 3;
DELETE FROM items WHERE sku = 'plum'
"""


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table("users", 1000, {"uid": 1000, "city": 40})
    catalog.add_table("orders", 5000, {"oid": 5000, "uid": 900})
    catalog.add_table("items", 20000, {"oid": 4800, "sku": 300})
    return catalog


def main() -> None:
    report = run_workload(SCRIPT, build_catalog(), backend="sa", seed=42)

    print("instances solved in one batch:")
    for inst, result in zip(report.plan.instances, report.results):
        shard = result.info["engine"]["shard"]
        print(f"  [{inst.index}] {inst.label:<16} kind={inst.kind:<9} "
              f"objective={result.objective:<12.1f} shard={shard}")

    print("\nper-statement plans:")
    for sp in report.statement_plans:
        line = f"  s{sp.statement} {sp.kind.upper():<6} {sp.sql[:48]}..."
        if sp.kind == "select":
            if sp.join_order:
                line += f"\n        join order: {' >> '.join(sp.join_order)}"
            if sp.mqo_plan:
                line += f"   (MQO picked plan {sp.mqo_plan})"
        else:
            line += f"\n        scheduled in slot {sp.slot}"
        print(line)

    workload = report.info["workload"]
    print("\nprovenance (info['workload']):")
    for stmt, entry in sorted(workload["statements"].items(), key=lambda kv: int(kv[0])):
        refs = ", ".join(f"{r['label']}@shard{r['shard']}" for r in entry["instances"])
        print(f"  s{stmt}: {refs}")

    print(f"\ntotal objective across instances: {report.total_objective:.1f}")


if __name__ == "__main__":
    main()
