"""Join ordering four ways (Table I rows [23]-[27]).

For chain and star queries, compares: classical DP optima (left-deep and
bushy), the left-deep permutation QUBO, the bushy edge-sequence QUBO, the
BILP -> QUBO pipeline, and the VQC reinforcement-learning agent.

Run:  python examples/join_ordering_tour.py
"""

import numpy as np

from repro.db.cost import CostModel
from repro.db.generator import chain_query, star_query
from repro.db.plans import leftdeep_tree_from_order
from repro.joinorder.baselines import (
    solve_bushy_annealing,
    solve_dp_bushy,
    solve_dp_leftdeep,
    solve_greedy,
    solve_leftdeep_annealing,
    solve_random,
)
from repro.joinorder.milp import decode_leftdeep_bilp, formulate_leftdeep_bilp, solve_branch_and_bound
from repro.joinorder.vqc_agent import VQCJoinOrderAgent
from repro.utils.tables import format_table


def tour(graph, name: str) -> None:
    cm = CostModel(graph)
    reference = solve_dp_bushy(graph)
    rows = []
    for outcome in (
        reference,
        solve_dp_leftdeep(graph),
        solve_greedy(graph),
        solve_random(graph, rng=0),
        solve_leftdeep_annealing(graph, rng=1),
        solve_bushy_annealing(graph, rng=2),
    ):
        rows.append([outcome.method, f"{outcome.cost:.1f}", f"{outcome.ratio_to(reference.cost):.3f}"])

    # The BILP -> branch & bound pipeline of [24].
    bilp = formulate_leftdeep_bilp(graph)
    bits, _ = solve_branch_and_bound(bilp)
    order = decode_leftdeep_bilp(bilp, bits, graph)
    bilp_cost = cm.cost(leftdeep_tree_from_order(order))
    rows.append(["bilp_branch_and_bound", f"{bilp_cost:.1f}", f"{bilp_cost / reference.cost:.3f}"])

    print(format_table(["method", "C_out", "ratio vs bushy DP"], rows, title=f"\n=== {name} ==="))


def vqc_learning_curve() -> None:
    graph = chain_query(4, rng=2)
    agent = VQCJoinOrderAgent(graph, num_layers=1)
    history = agent.train(episodes=60, rng=0)
    segs = [history.ratios[i : i + 15] for i in range(0, 60, 15)]
    print("\nVQC join-ordering agent (Winker et al. [27]) on a 4-relation chain")
    print("mean cost ratio per 15-episode block:",
          " -> ".join(f"{np.mean(s):.2f}" for s in segs))
    order = agent.greedy_order()
    cost = CostModel(graph).cost(leftdeep_tree_from_order(order))
    print(f"greedy policy after training: {order} (ratio {cost / agent.optimal_cost:.3f})")


def main() -> None:
    tour(chain_query(6, rng=0), "chain query, 6 relations")
    tour(star_query(6, rng=1), "star query, 6 relations")
    vqc_learning_curve()


if __name__ == "__main__":
    main()
