"""Solution containers shared by every QUBO solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class Sample:
    """One solution: an assignment, its energy and a multiplicity."""

    bits: tuple[int, ...]
    energy: float
    num_occurrences: int = 1

    def as_array(self) -> np.ndarray:
        return np.array(self.bits, dtype=int)


class SampleSet:
    """Energy-sorted collection of :class:`Sample` records.

    Mirrors the result object shape of real annealer SDKs: iterate lowest
    energy first, aggregate duplicates, and optionally decode assignments
    back to the model's variable labels.
    """

    def __init__(self, samples: Sequence[Sample], info: "dict | None" = None):
        merged: dict[tuple[int, ...], Sample] = {}
        for s in samples:
            if s.bits in merged:
                old = merged[s.bits]
                merged[s.bits] = Sample(s.bits, old.energy, old.num_occurrences + s.num_occurrences)
            else:
                merged[s.bits] = s
        self._samples = sorted(merged.values(), key=lambda s: (s.energy, s.bits))
        self.info = dict(info or {})

    @classmethod
    def from_arrays(cls, assignments: np.ndarray, energies: np.ndarray, info: "dict | None" = None) -> "SampleSet":
        samples = [
            Sample(tuple(int(b) for b in row), float(e))
            for row, e in zip(np.asarray(assignments, dtype=int), energies)
        ]
        return cls(samples, info=info)

    # -- access ----------------------------------------------------------------

    @property
    def best(self) -> Sample:
        """The lowest-energy sample."""
        if not self._samples:
            raise IndexError("empty sample set")
        return self._samples[0]

    def best_energy(self) -> float:
        return self.best.energy

    def best_bits(self) -> np.ndarray:
        return self.best.as_array()

    def decode_best(self, model) -> dict[Hashable, int]:
        """Best assignment as ``{label: bit}`` for the given model."""
        return model.decode(self.best.bits)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __getitem__(self, i: int) -> Sample:
        return self._samples[i]

    def truncate(self, k: int) -> "SampleSet":
        """Keep only the ``k`` lowest-energy samples."""
        return SampleSet(self._samples[:k], info=self.info)

    def energies(self) -> np.ndarray:
        return np.array([s.energy for s in self._samples])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._samples:
            return "SampleSet(empty)"
        return f"SampleSet({len(self._samples)} samples, best={self.best.energy:.6g})"
