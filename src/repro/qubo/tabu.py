"""Tabu search over QUBO assignments.

A deterministic-neighbourhood local search with a recency-based tabu list —
the classical heuristic baseline the annealing solvers are compared against
(and a fallback solver for QUBOs too large to embed).
"""

from __future__ import annotations

import numpy as np

from repro.qubo.model import QuboModel
from repro.qubo.sampleset import Sample, SampleSet
from repro.utils.rngtools import ensure_rng


class TabuSolver:
    """Multi-restart single-flip tabu search."""

    def __init__(self, num_restarts: int = 8, max_iterations: int = 500, tenure: "int | None" = None):
        self.num_restarts = num_restarts
        self.max_iterations = max_iterations
        self.tenure = tenure

    def solve(self, model: QuboModel, rng=None) -> SampleSet:
        rng = ensure_rng(rng)
        n = model.num_variables
        a, S = model.symmetric_couplings()
        tenure = self.tenure if self.tenure is not None else max(4, n // 4)
        samples = []
        for _ in range(self.num_restarts):
            x = rng.integers(0, 2, size=n)
            best_x, best_e = self._search(model, x, a, S, tenure, rng)
            samples.append(Sample(tuple(int(b) for b in best_x), best_e))
        return SampleSet(samples, info={"solver": "tabu", "restarts": self.num_restarts})

    def _search(self, model, x, a, S, tenure, rng):
        n = x.shape[0]
        fields = S @ x
        energy = model.energy(x)
        best_x, best_e = x.copy(), energy
        tabu_until = np.zeros(n, dtype=int)
        for it in range(self.max_iterations):
            deltas = (1 - 2 * x) * (a + fields)
            allowed = tabu_until <= it
            # Aspiration: a tabu move is allowed if it beats the incumbent.
            aspiring = energy + deltas < best_e - 1e-12
            candidates = np.where(allowed | aspiring)[0]
            if candidates.size == 0:
                break
            i = candidates[np.argmin(deltas[candidates])]
            energy += deltas[i]
            delta_sign = 1 - 2 * x[i]
            x[i] ^= 1
            fields += S[:, i] * delta_sign
            tabu_until[i] = it + tenure
            if energy < best_e - 1e-12:
                best_e = energy
                best_x = x.copy()
        return best_x, float(best_e)
