"""Penalty-term builders for encoding constraints into QUBOs.

These are the building blocks every Table I mapping uses: Trummer & Koch's
"exactly one plan per query", Fritsch & Scherzinger's one-to-one matching
constraints, and Bittner & Groppe's slot-assignment constraints are all
instances of :func:`add_exactly_one` / :func:`add_at_most_one`.

Each group constraint expands to O(k^2) pair couplings; they are emitted
through the bulk :meth:`~repro.qubo.model.QuboModel.add_quadratic_from` API
(pairs enumerated by ``np.triu_indices``, which walks the same
``i < j`` row-major order the historical nested loops did, keeping duplicate
accumulation — and therefore fingerprints — bit-identical).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.qubo.model import QuboModel


_PAIR_TEMPLATES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _pairs(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(idx[i], idx[j])`` with ``i < j``, row-major."""
    template = _PAIR_TEMPLATES.get(idx.size)
    if template is None:
        template = _PAIR_TEMPLATES[idx.size] = np.triu_indices(idx.size, k=1)
    a, b = template
    return idx[a], idx[b]


def add_exactly_one(model: QuboModel, variables: Sequence[Hashable], weight: float) -> QuboModel:
    """Add ``weight * (1 - sum x_i)^2``: zero iff exactly one is set.

    Expansion (using ``x^2 = x``): offset ``+w``, linear ``-w`` each,
    quadratic ``+2w`` per pair.
    """
    if not len(variables):
        raise ValueError("exactly-one constraint over no variables is unsatisfiable")
    idx = model.resolve_indices(variables)
    model.add_offset(weight)
    model.add_linear_from(idx, -float(weight))
    rows, cols = _pairs(idx)
    model.add_quadratic_from(rows, cols, 2.0 * float(weight))
    return model


def add_at_most_one(model: QuboModel, variables: Sequence[Hashable], weight: float) -> QuboModel:
    """Add ``weight * sum_{i<j} x_i x_j``: zero iff at most one is set."""
    idx = model.resolve_indices(variables)
    rows, cols = _pairs(idx)
    model.add_quadratic_from(rows, cols, float(weight))
    return model


def add_exactly_one_groups(model: QuboModel, groups, weight) -> QuboModel:
    """Batched :func:`add_exactly_one` over a ``(G, k)`` index matrix.

    Row ``g`` of ``groups`` is one exactly-one constraint over ``k`` variable
    indices; ``weight`` is a scalar or a length-``G`` array.  Emits one
    linear chunk and one quadratic chunk for all ``G`` constraints (the
    per-key accumulation matches ``G`` sequential :func:`add_exactly_one`
    calls: groups partition or cross-partition variables, never repeat a
    pair, and the offset still accumulates one addition per group).
    """
    groups = np.asarray(groups, dtype=np.int64)
    num_groups, size = groups.shape
    if size == 0:
        raise ValueError("exactly-one constraint over no variables is unsatisfiable")
    w = np.broadcast_to(np.asarray(weight, dtype=np.float64), (num_groups,))
    for g in range(num_groups):
        model.add_offset(w[g])
    model.add_linear_from(groups.ravel(), -np.repeat(w, size))
    if size not in _PAIR_TEMPLATES:
        _pairs(np.arange(size))
    a, b = _PAIR_TEMPLATES[size]
    model.add_quadratic_from(
        groups[:, a].ravel(), groups[:, b].ravel(), 2.0 * np.repeat(w, a.size)
    )
    return model


def add_at_most_one_groups(model: QuboModel, groups, weight) -> QuboModel:
    """Batched :func:`add_at_most_one` over a ``(G, k)`` index matrix."""
    groups = np.asarray(groups, dtype=np.int64)
    num_groups, size = groups.shape
    if size < 2:
        return model
    w = np.broadcast_to(np.asarray(weight, dtype=np.float64), (num_groups,))
    if size not in _PAIR_TEMPLATES:
        _pairs(np.arange(size))
    a, b = _PAIR_TEMPLATES[size]
    model.add_quadratic_from(
        groups[:, a].ravel(), groups[:, b].ravel(), np.repeat(w, a.size)
    )
    return model


def add_equality(model: QuboModel, variables: Sequence[Hashable], target: int, weight: float) -> QuboModel:
    """Add ``weight * (target - sum x_i)^2``."""
    idx = model.resolve_indices(variables)
    model.add_offset(weight * target * target)
    model.add_linear_from(idx, weight * (1.0 - 2.0 * target))
    rows, cols = _pairs(idx)
    model.add_quadratic_from(rows, cols, 2.0 * float(weight))
    return model


def add_implication(model: QuboModel, antecedent: Hashable, consequent: Hashable, weight: float) -> QuboModel:
    """Add ``weight * x_a (1 - x_b)``: penalises ``a`` set without ``b``."""
    model.add_linear(antecedent, weight)
    model.add_quadratic(antecedent, consequent, -weight)
    return model


def add_forbid_pair(model: QuboModel, u: Hashable, v: Hashable, weight: float) -> QuboModel:
    """Add ``weight * x_u x_v``: penalises setting both."""
    model.add_quadratic(u, v, weight)
    return model


def suggest_penalty_weight(model: QuboModel, margin: float = 1.0) -> float:
    """A safe constraint weight for the current objective terms.

    Any single constraint violation must cost more than the largest possible
    objective swing; the sum of absolute coefficients is a (loose but safe)
    upper bound on that swing.
    """
    _, lin_val, _, _, quad_val = model.coo_terms()
    swing = float(np.abs(lin_val).sum()) + float(np.abs(quad_val).sum())
    swing += abs(model.offset)
    return swing + margin
