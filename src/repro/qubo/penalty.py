"""Penalty-term builders for encoding constraints into QUBOs.

These are the building blocks every Table I mapping uses: Trummer & Koch's
"exactly one plan per query", Fritsch & Scherzinger's one-to-one matching
constraints, and Bittner & Groppe's slot-assignment constraints are all
instances of :func:`add_exactly_one` / :func:`add_at_most_one`.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.qubo.model import QuboModel


def add_exactly_one(model: QuboModel, variables: Sequence[Hashable], weight: float) -> QuboModel:
    """Add ``weight * (1 - sum x_i)^2``: zero iff exactly one is set.

    Expansion (using ``x^2 = x``): offset ``+w``, linear ``-w`` each,
    quadratic ``+2w`` per pair.
    """
    if not variables:
        raise ValueError("exactly-one constraint over no variables is unsatisfiable")
    model.add_offset(weight)
    vs = list(variables)
    for v in vs:
        model.add_linear(v, -weight)
    for i in range(len(vs)):
        for j in range(i + 1, len(vs)):
            model.add_quadratic(vs[i], vs[j], 2.0 * weight)
    return model


def add_at_most_one(model: QuboModel, variables: Sequence[Hashable], weight: float) -> QuboModel:
    """Add ``weight * sum_{i<j} x_i x_j``: zero iff at most one is set."""
    vs = list(variables)
    for i in range(len(vs)):
        for j in range(i + 1, len(vs)):
            model.add_quadratic(vs[i], vs[j], weight)
    return model


def add_equality(model: QuboModel, variables: Sequence[Hashable], target: int, weight: float) -> QuboModel:
    """Add ``weight * (target - sum x_i)^2``."""
    vs = list(variables)
    model.add_offset(weight * target * target)
    for v in vs:
        model.add_linear(v, weight * (1.0 - 2.0 * target))
    for i in range(len(vs)):
        for j in range(i + 1, len(vs)):
            model.add_quadratic(vs[i], vs[j], 2.0 * weight)
    return model


def add_implication(model: QuboModel, antecedent: Hashable, consequent: Hashable, weight: float) -> QuboModel:
    """Add ``weight * x_a (1 - x_b)``: penalises ``a`` set without ``b``."""
    model.add_linear(antecedent, weight)
    model.add_quadratic(antecedent, consequent, -weight)
    return model


def add_forbid_pair(model: QuboModel, u: Hashable, v: Hashable, weight: float) -> QuboModel:
    """Add ``weight * x_u x_v``: penalises setting both."""
    model.add_quadratic(u, v, weight)
    return model


def suggest_penalty_weight(model: QuboModel, margin: float = 1.0) -> float:
    """A safe constraint weight for the current objective terms.

    Any single constraint violation must cost more than the largest possible
    objective swing; the sum of absolute coefficients is a (loose but safe)
    upper bound on that swing.
    """
    swing = sum(abs(v) for v in model.linear.values())
    swing += sum(abs(v) for v in model.quadratic.values())
    swing += abs(model.offset)
    return swing + margin
