"""The :class:`QuboModel` builder.

A QUBO is ``E(x) = sum_i a_i x_i + sum_{i<j} b_ij x_i x_j + c`` over binary
variables.  Variables can be pure indices or carry hashable labels (the
application layers label variables with things like ``("q1", "p3")`` for
"plan 3 of query 1").

The coefficient store is **array-native**: terms accumulate into COO-style
``numpy`` arrays (an index/value pair per linear term, an ``(i, j)``/value
triple per coupling), so the bulk builders (:meth:`add_linear_from`,
:meth:`add_quadratic_from`) and every whole-model operation — energies,
matrix views, canonical serialization — run as vector operations instead of
per-term Python.  The historical ``dict`` views (:attr:`linear`,
:attr:`quadratic`) remain available as lazily materialised read views, and
duplicate terms accumulate in exact insertion order, so every coefficient —
and therefore every canonical fingerprint — is bit-identical to what the
old per-term dict accumulation produced.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ReproError

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)

#: Structured dtypes whose ``tobytes()`` is byte-identical to the original
#: per-term ``struct.pack("<qd")`` / ``struct.pack("<qqd")`` encoding.
_LIN_DTYPE = np.dtype([("i", "<i8"), ("c", "<f8")])
_QUAD_DTYPE = np.dtype([("i", "<i8"), ("j", "<i8"), ("c", "<f8")])


class QuboModel:
    """Mutable QUBO under construction.

    Use :meth:`variable` to create/look up labelled variables, then
    :meth:`add_linear` / :meth:`add_quadratic` (per term) or
    :meth:`add_linear_from` / :meth:`add_quadratic_from` (bulk, over numpy
    arrays) to accumulate coefficients.
    """

    def __init__(self, num_variables: int = 0):
        self._labels: list[Hashable] = list(range(num_variables))
        self._index: dict[Hashable, int] = {i: i for i in range(num_variables)}
        # True once any integer label maps to a *different* index; only then
        # does an integer array need per-element label resolution.
        self._int_label_aliasing = False
        self.offset: float = 0.0
        # Committed COO store: deduplicated, sorted by key ((i) / (i, j)).
        self._lin_idx = _EMPTY_I64
        self._lin_val = _EMPTY_F64
        self._quad_i = _EMPTY_I64
        self._quad_j = _EMPTY_I64
        self._quad_val = _EMPTY_F64
        # Pending term chunks, folded into the committed store lazily.  The
        # scalar buffers batch consecutive add_linear/add_quadratic calls;
        # bulk calls append whole array chunks.  Chunk order preserves the
        # caller's insertion order, which fixes the floating-point
        # accumulation order of duplicate terms (fingerprint stability).
        self._lin_buf_i: list[int] = []
        self._lin_buf_v: list[float] = []
        self._lin_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._quad_buf_i: list[int] = []
        self._quad_buf_j: list[int] = []
        self._quad_buf_v: list[float] = []
        self._quad_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        # Cached dict views over the committed store.
        self._lin_view: "dict[int, float] | None" = None
        self._quad_view: "dict[tuple[int, int], float] | None" = None

    # -- variables -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """Variable labels in index order."""
        return tuple(self._labels)

    def variable(self, label: Hashable) -> int:
        """Return the index of ``label``, creating the variable if new."""
        if label in self._index:
            return self._index[label]
        idx = len(self._labels)
        self._labels.append(label)
        self._index[label] = idx
        if isinstance(label, (int, np.integer)) and int(label) != idx:
            self._int_label_aliasing = True
        return idx

    def variables_from(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Bulk :meth:`variable`: create/look up labels, return their indices."""
        return np.array([self.variable(label) for label in labels], dtype=np.int64)

    def index_of(self, label: Hashable) -> int:
        """Index of an existing labelled variable (KeyError if unknown)."""
        return self._index[label]

    def indices_of(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Bulk :meth:`index_of` (KeyError on the first unknown label)."""
        return np.array([self._index[label] for label in labels], dtype=np.int64)

    def resolve_indices(self, variables: Iterable[Hashable]) -> np.ndarray:
        """Bulk label-or-index resolution (the scalar-add lookup, batched).

        Integer arrays short-circuit straight to indices when no integer
        label aliases a different index (the common case: labels are tuples
        or identity ints), skipping the per-element lookup loop.
        """
        if (
            isinstance(variables, np.ndarray)
            and variables.dtype.kind in "iu"
            and not self._int_label_aliasing
        ):
            return variables.astype(np.int64, copy=False)
        return np.array([self._resolve(v) for v in variables], dtype=np.int64)

    def _resolve(self, var: Hashable) -> int:
        """Accept either a known label or an in-range raw index.

        Label lookup takes precedence: a model whose labels are themselves
        integers (e.g. hardware qubit ids) must resolve them as labels, not
        as positional indices.
        """
        try:
            if var in self._index:
                return self._index[var]
        except TypeError:
            pass  # unhashable: cannot be a label
        if isinstance(var, (int, np.integer)) and 0 <= int(var) < len(self._labels):
            return int(var)
        raise ReproError(f"unknown QUBO variable {var!r}")

    # -- coefficient accumulation ---------------------------------------------

    def add_linear(self, var: Hashable, coeff: float) -> "QuboModel":
        """Add ``coeff * x_var``."""
        i = self._resolve(var)
        self._lin_buf_i.append(i)
        self._lin_buf_v.append(float(coeff))
        self._lin_view = None
        return self

    def add_quadratic(self, u: Hashable, v: Hashable, coeff: float) -> "QuboModel":
        """Add ``coeff * x_u x_v`` (u != v; coefficients are merged)."""
        i, j = self._resolve(u), self._resolve(v)
        if i == j:
            # x^2 == x for binary variables.
            return self.add_linear(i, coeff)
        if j < i:
            i, j = j, i
        self._quad_buf_i.append(i)
        self._quad_buf_j.append(j)
        self._quad_buf_v.append(float(coeff))
        self._quad_view = None
        return self

    def _check_bounds(self, idx: np.ndarray, what: str) -> None:
        n = len(self._labels)
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            bad = idx[(idx < 0) | (idx >= n)][0]
            raise ReproError(f"unknown QUBO variable index {int(bad)} in {what}")

    @staticmethod
    def _coeff_array(coeffs, shape) -> np.ndarray:
        val = np.asarray(coeffs, dtype=np.float64)
        if val.ndim == 0:
            return np.full(shape, float(val))
        val = np.ascontiguousarray(val).ravel()
        if val.shape != shape:
            raise ReproError(
                f"coefficient array of shape {val.shape} does not match {shape} indices"
            )
        return val.copy() if val is coeffs else val

    def add_linear_from(self, indices, coeffs) -> "QuboModel":
        """Bulk :meth:`add_linear`: add ``coeffs[k] * x_indices[k]`` for all k.

        ``indices`` is an integer array of existing variable *indices* (use
        :meth:`variables_from` to create labelled variables first);
        ``coeffs`` is a matching float array or a scalar broadcast to every
        index.  Duplicate indices accumulate in array order, exactly as the
        equivalent sequence of scalar :meth:`add_linear` calls would.
        """
        idx = np.array(indices, dtype=np.int64, copy=True).ravel()
        if idx.size == 0:
            return self
        self._check_bounds(idx, "add_linear_from")
        val = self._coeff_array(coeffs, idx.shape)
        self._push_linear_scalars()
        self._lin_chunks.append((idx, val))
        self._lin_view = None
        return self

    def add_quadratic_from(self, rows, cols, coeffs) -> "QuboModel":
        """Bulk :meth:`add_quadratic`: add ``coeffs[k] * x_rows[k] x_cols[k]``.

        Pairs are canonicalised to ``(min, max)`` and merged; diagonal
        entries (``rows[k] == cols[k]``) fold into the linear terms
        (``x^2 == x``).  ``coeffs`` may be a scalar broadcast to every pair.
        """
        i = np.array(rows, dtype=np.int64, copy=True).ravel()
        j = np.array(cols, dtype=np.int64, copy=True).ravel()
        if i.shape != j.shape:
            raise ReproError(
                f"row/col index arrays differ in shape: {i.shape} vs {j.shape}"
            )
        if i.size == 0:
            return self
        self._check_bounds(i, "add_quadratic_from")
        self._check_bounds(j, "add_quadratic_from")
        val = self._coeff_array(coeffs, i.shape)
        diag = i == j
        if diag.any():
            self.add_linear_from(i[diag], val[diag])
            off = ~diag
            i, j, val = i[off], j[off], val[off]
            if i.size == 0:
                return self
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        self._push_quadratic_scalars()
        self._quad_chunks.append((lo, hi, val))
        self._quad_view = None
        return self

    def add_offset(self, value: float) -> "QuboModel":
        self.offset += float(value)
        return self

    def scale(self, factor: float) -> "QuboModel":
        """Multiply every coefficient (and the offset) by ``factor``."""
        self._flush()
        f = float(factor)
        self._lin_val = self._lin_val * f
        self._quad_val = self._quad_val * f
        self.offset *= f
        self._lin_view = None
        self._quad_view = None
        return self

    # -- store consolidation ----------------------------------------------------

    def _push_linear_scalars(self) -> None:
        if self._lin_buf_i:
            self._lin_chunks.append(
                (
                    np.array(self._lin_buf_i, dtype=np.int64),
                    np.array(self._lin_buf_v, dtype=np.float64),
                )
            )
            self._lin_buf_i, self._lin_buf_v = [], []

    def _push_quadratic_scalars(self) -> None:
        if self._quad_buf_i:
            self._quad_chunks.append(
                (
                    np.array(self._quad_buf_i, dtype=np.int64),
                    np.array(self._quad_buf_j, dtype=np.int64),
                    np.array(self._quad_buf_v, dtype=np.float64),
                )
            )
            self._quad_buf_i, self._quad_buf_j, self._quad_buf_v = [], [], []

    def _flush(self) -> None:
        """Fold pending term chunks into the committed (sorted, unique) store.

        ``np.add.at`` accumulates strictly in element order, and committed
        totals are placed ahead of the pending chunks, so every key's value
        is the same left-to-right floating-point sum the per-term dict
        accumulation performed — the invariant canonical fingerprints (and
        every cache keyed on them) rely on.
        """
        self._push_linear_scalars()
        self._push_quadratic_scalars()
        if self._lin_chunks:
            idx = np.concatenate([self._lin_idx] + [c[0] for c in self._lin_chunks])
            val = np.concatenate([self._lin_val] + [c[1] for c in self._lin_chunks])
            uniq, inverse = np.unique(idx, return_inverse=True)
            sums = np.zeros(uniq.size)
            np.add.at(sums, inverse, val)
            self._lin_idx, self._lin_val = uniq, sums
            self._lin_chunks = []
        if self._quad_chunks:
            n = len(self._labels)
            i = np.concatenate([self._quad_i] + [c[0] for c in self._quad_chunks])
            j = np.concatenate([self._quad_j] + [c[1] for c in self._quad_chunks])
            val = np.concatenate([self._quad_val] + [c[2] for c in self._quad_chunks])
            keys = i * np.int64(n) + j
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.zeros(uniq.size)
            np.add.at(sums, inverse, val)
            self._quad_i = uniq // n
            self._quad_j = uniq % n
            self._quad_val = sums
            self._quad_chunks = []

    # -- dict views --------------------------------------------------------------

    @property
    def linear(self) -> dict[int, float]:
        """``{index: coefficient}`` read view of the linear terms.

        Materialised lazily from the array store (keys ascending) and
        invalidated by every mutation; treat it as read-only — writes to the
        returned dict do not reach the model.
        """
        self._flush()
        if self._lin_view is None:
            self._lin_view = dict(zip(self._lin_idx.tolist(), self._lin_val.tolist()))
        return self._lin_view

    @property
    def quadratic(self) -> dict[tuple[int, int], float]:
        """``{(i, j): coefficient}`` read view of the couplings (``i < j``)."""
        self._flush()
        if self._quad_view is None:
            self._quad_view = dict(
                zip(
                    zip(self._quad_i.tolist(), self._quad_j.tolist()),
                    self._quad_val.tolist(),
                )
            )
        return self._quad_view

    def coo_terms(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(lin_idx, lin_val, quad_i, quad_j, quad_val)`` array views.

        The zero-copy face of the model: sorted by key, duplicates merged.
        Callers must not mutate the returned arrays.
        """
        self._flush()
        return self._lin_idx, self._lin_val, self._quad_i, self._quad_j, self._quad_val

    # -- evaluation ------------------------------------------------------------

    def energy(self, bits: "Sequence[int] | np.ndarray | Mapping[Hashable, int]") -> float:
        """Energy of one assignment.

        ``bits`` is either an array in index order or a mapping from labels
        (or indices) to {0, 1}.  Routed through the vectorised
        :meth:`energies` kernel (one batch row), not a per-term loop.
        """
        x = self._as_array(bits)
        return float(self.energies(x[np.newaxis, :])[0])

    def energies(self, assignments: np.ndarray) -> np.ndarray:
        """Vectorised energies for a ``(batch, n)`` 0/1 matrix."""
        X = np.asarray(assignments, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ReproError("assignments must have shape (batch, num_variables)")
        self._flush()
        e = np.full(X.shape[0], self.offset, dtype=float)
        if self._lin_idx.size:
            e += X[:, self._lin_idx] @ self._lin_val
        if self._quad_i.size:
            e += (X[:, self._quad_i] * X[:, self._quad_j]) @ self._quad_val
        return e

    def _as_array(self, bits) -> np.ndarray:
        if isinstance(bits, Mapping):
            x = np.zeros(self.num_variables)
            for k, v in bits.items():
                x[self._resolve(k)] = v
            return x
        x = np.asarray(bits, dtype=float)
        if x.shape != (self.num_variables,):
            raise ReproError(
                f"assignment of length {x.shape} does not match {self.num_variables} variables"
            )
        return x

    def decode(self, bits: "Sequence[int] | np.ndarray") -> dict[Hashable, int]:
        """Map an index-ordered assignment back to ``{label: bit}``."""
        return {label: int(b) for label, b in zip(self._labels, bits)}

    # -- matrix / graph views ----------------------------------------------------

    def to_dense(self) -> tuple[np.ndarray, float]:
        """Upper-triangular coefficient matrix (diagonal = linear) + offset."""
        self._flush()
        n = self.num_variables
        Q = np.zeros((n, n))
        Q[self._lin_idx, self._lin_idx] = self._lin_val
        Q[self._quad_i, self._quad_j] = self._quad_val
        return Q, self.offset

    def symmetric_couplings(self) -> tuple[np.ndarray, np.ndarray]:
        """``(a, S)``: linear vector and symmetric off-diagonal matrix.

        ``energy(x) = a.x + 0.5 * x.S.x + offset`` with ``S_ij = S_ji = b_ij``
        and zero diagonal — the form the annealing solvers consume for O(n)
        single-flip energy deltas.
        """
        self._flush()
        n = self.num_variables
        a = np.zeros(n)
        S = np.zeros((n, n))
        a[self._lin_idx] = self._lin_val
        S[self._quad_i, self._quad_j] = self._quad_val
        S[self._quad_j, self._quad_i] = self._quad_val
        return a, S

    def interaction_graph(self) -> nx.Graph:
        """Graph with one node per variable and edges for nonzero couplings."""
        self._flush()
        g = nx.Graph()
        g.add_nodes_from(range(self.num_variables))
        mask = self._quad_val != 0.0
        g.add_weighted_edges_from(
            zip(
                self._quad_i[mask].tolist(),
                self._quad_j[mask].tolist(),
                self._quad_val[mask].tolist(),
            )
        )
        return g

    def max_abs_coefficient(self) -> float:
        """Largest absolute linear/quadratic coefficient (0 if empty)."""
        self._flush()
        best = 0.0
        if self._lin_val.size:
            best = float(np.abs(self._lin_val).max())
        if self._quad_val.size:
            best = max(best, float(np.abs(self._quad_val).max()))
        return best

    # -- canonical serialization / fingerprint -----------------------------------

    def to_stable_bytes(self, include_labels: bool = True) -> bytes:
        """Canonical byte serialization of the model's content.

        The encoding is independent of insertion order and of dict iteration
        order: linear terms are emitted sorted by index, quadratic terms
        sorted by ``(i, j)``, coefficients as IEEE-754 little-endian doubles,
        and zero coefficients are dropped.  Two models built along different
        code paths therefore serialize identically iff they describe the
        same energy function over the same variables.

        Terms are emitted via ``ndarray.tobytes()`` on packed structured
        arrays over the (already key-sorted) COO store — no per-term Python
        or ``struct`` calls — and the byte stream is identical to the
        original ``struct.pack("<qd"/"<qqd")`` framing, so fingerprints (and
        every cache entry keyed on them) are unchanged.

        ``include_labels=True`` (the default) also folds in ``repr`` of each
        variable label, so models that sample identically but *decode*
        differently get distinct bytes — the property a result cache needs.
        Pass ``include_labels=False`` for a pure coefficient view.
        """
        self._flush()
        lmask = self._lin_val != 0.0
        lin = np.empty(int(lmask.sum()), dtype=_LIN_DTYPE)
        lin["i"] = self._lin_idx[lmask]
        lin["c"] = self._lin_val[lmask]
        qmask = self._quad_val != 0.0
        quad = np.empty(int(qmask.sum()), dtype=_QUAD_DTYPE)
        quad["i"] = self._quad_i[qmask]
        quad["j"] = self._quad_j[qmask]
        quad["c"] = self._quad_val[qmask]
        parts = [
            b"QUBO-v1",
            struct.pack("<q", self.num_variables),
            struct.pack("<q", len(lin)),
            lin.tobytes(),
            struct.pack("<q", len(quad)),
            quad.tobytes(),
            struct.pack("<d", self.offset),
        ]
        if include_labels:
            for label in self._labels:
                encoded = repr(label).encode("utf-8", errors="backslashreplace")
                parts.append(struct.pack("<q", len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    def fingerprint(self, include_labels: bool = True) -> str:
        """Content-addressed SHA-256 hex digest of :meth:`to_stable_bytes`.

        Stable across processes and sessions (``repr`` of the plain-data
        labels the adapters use does not depend on hash randomisation), so
        it can key cross-process result caches.
        """
        return hashlib.sha256(self.to_stable_bytes(include_labels=include_labels)).hexdigest()

    # -- conversions ---------------------------------------------------------------

    def to_ising(self):
        """The equivalent :class:`~repro.quantum.pauli.IsingHamiltonian`."""
        from repro.qubo.ising import qubo_to_ising

        return qubo_to_ising(self)

    def copy(self) -> "QuboModel":
        self._flush()
        dup = QuboModel()
        dup._labels = list(self._labels)
        dup._index = dict(self._index)
        dup._int_label_aliasing = self._int_label_aliasing
        dup._lin_idx = self._lin_idx.copy()
        dup._lin_val = self._lin_val.copy()
        dup._quad_i = self._quad_i.copy()
        dup._quad_j = self._quad_j.copy()
        dup._quad_val = self._quad_val.copy()
        dup.offset = self.offset
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        self._flush()
        return (
            f"QuboModel({self.num_variables} vars, {self._quad_val.size} couplings, "
            f"offset={self.offset:.4g})"
        )
