"""The :class:`QuboModel` builder.

A QUBO is ``E(x) = sum_i a_i x_i + sum_{i<j} b_ij x_i x_j + c`` over binary
variables.  Variables can be pure indices or carry hashable labels (the
application layers label variables with things like ``("q1", "p3")`` for
"plan 3 of query 1").
"""

from __future__ import annotations

import hashlib
import struct
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ReproError


class QuboModel:
    """Mutable QUBO under construction.

    Use :meth:`variable` to create/look up labelled variables, then
    :meth:`add_linear` / :meth:`add_quadratic` to accumulate coefficients.
    """

    def __init__(self, num_variables: int = 0):
        self._labels: list[Hashable] = list(range(num_variables))
        self._index: dict[Hashable, int] = {i: i for i in range(num_variables)}
        self.linear: dict[int, float] = {}
        self.quadratic: dict[tuple[int, int], float] = {}
        self.offset: float = 0.0

    # -- variables -----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """Variable labels in index order."""
        return tuple(self._labels)

    def variable(self, label: Hashable) -> int:
        """Return the index of ``label``, creating the variable if new."""
        if label in self._index:
            return self._index[label]
        idx = len(self._labels)
        self._labels.append(label)
        self._index[label] = idx
        return idx

    def index_of(self, label: Hashable) -> int:
        """Index of an existing labelled variable (KeyError if unknown)."""
        return self._index[label]

    def _resolve(self, var: Hashable) -> int:
        """Accept either a known label or an in-range raw index.

        Label lookup takes precedence: a model whose labels are themselves
        integers (e.g. hardware qubit ids) must resolve them as labels, not
        as positional indices.
        """
        try:
            if var in self._index:
                return self._index[var]
        except TypeError:
            pass  # unhashable: cannot be a label
        if isinstance(var, (int, np.integer)) and 0 <= int(var) < len(self._labels):
            return int(var)
        raise ReproError(f"unknown QUBO variable {var!r}")

    # -- coefficient accumulation ---------------------------------------------

    def add_linear(self, var: Hashable, coeff: float) -> "QuboModel":
        """Add ``coeff * x_var``."""
        i = self._resolve(var)
        self.linear[i] = self.linear.get(i, 0.0) + float(coeff)
        return self

    def add_quadratic(self, u: Hashable, v: Hashable, coeff: float) -> "QuboModel":
        """Add ``coeff * x_u x_v`` (u != v; coefficients are merged)."""
        i, j = self._resolve(u), self._resolve(v)
        if i == j:
            # x^2 == x for binary variables.
            return self.add_linear(i, coeff)
        key = (min(i, j), max(i, j))
        self.quadratic[key] = self.quadratic.get(key, 0.0) + float(coeff)
        return self

    def add_offset(self, value: float) -> "QuboModel":
        self.offset += float(value)
        return self

    def scale(self, factor: float) -> "QuboModel":
        """Multiply every coefficient (and the offset) by ``factor``."""
        self.linear = {i: v * factor for i, v in self.linear.items()}
        self.quadratic = {k: v * factor for k, v in self.quadratic.items()}
        self.offset *= factor
        return self

    # -- evaluation ------------------------------------------------------------

    def energy(self, bits: "Sequence[int] | np.ndarray | Mapping[Hashable, int]") -> float:
        """Energy of one assignment.

        ``bits`` is either an array in index order or a mapping from labels
        (or indices) to {0, 1}.
        """
        x = self._as_array(bits)
        e = self.offset
        for i, a in self.linear.items():
            e += a * x[i]
        for (i, j), b in self.quadratic.items():
            e += b * x[i] * x[j]
        return float(e)

    def energies(self, assignments: np.ndarray) -> np.ndarray:
        """Vectorised energies for a ``(batch, n)`` 0/1 matrix."""
        X = np.asarray(assignments, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ReproError("assignments must have shape (batch, num_variables)")
        e = np.full(X.shape[0], self.offset, dtype=float)
        for i, a in self.linear.items():
            e += a * X[:, i]
        for (i, j), b in self.quadratic.items():
            e += b * X[:, i] * X[:, j]
        return e

    def _as_array(self, bits) -> np.ndarray:
        if isinstance(bits, Mapping):
            x = np.zeros(self.num_variables)
            for k, v in bits.items():
                x[self._resolve(k)] = v
            return x
        x = np.asarray(bits, dtype=float)
        if x.shape != (self.num_variables,):
            raise ReproError(
                f"assignment of length {x.shape} does not match {self.num_variables} variables"
            )
        return x

    def decode(self, bits: "Sequence[int] | np.ndarray") -> dict[Hashable, int]:
        """Map an index-ordered assignment back to ``{label: bit}``."""
        return {label: int(b) for label, b in zip(self._labels, bits)}

    # -- matrix / graph views ----------------------------------------------------

    def to_dense(self) -> tuple[np.ndarray, float]:
        """Upper-triangular coefficient matrix (diagonal = linear) + offset."""
        n = self.num_variables
        Q = np.zeros((n, n))
        for i, a in self.linear.items():
            Q[i, i] = a
        for (i, j), b in self.quadratic.items():
            Q[i, j] = b
        return Q, self.offset

    def symmetric_couplings(self) -> tuple[np.ndarray, np.ndarray]:
        """``(a, S)``: linear vector and symmetric off-diagonal matrix.

        ``energy(x) = a.x + 0.5 * x.S.x + offset`` with ``S_ij = S_ji = b_ij``
        and zero diagonal — the form the annealing solvers consume for O(n)
        single-flip energy deltas.
        """
        n = self.num_variables
        a = np.zeros(n)
        S = np.zeros((n, n))
        for i, v in self.linear.items():
            a[i] = v
        for (i, j), b in self.quadratic.items():
            S[i, j] = b
            S[j, i] = b
        return a, S

    def interaction_graph(self) -> nx.Graph:
        """Graph with one node per variable and edges for nonzero couplings."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_variables))
        for (i, j), b in self.quadratic.items():
            if b != 0.0:
                g.add_edge(i, j, weight=b)
        return g

    def max_abs_coefficient(self) -> float:
        """Largest absolute linear/quadratic coefficient (0 if empty)."""
        values = [abs(v) for v in self.linear.values()]
        values += [abs(v) for v in self.quadratic.values()]
        return max(values, default=0.0)

    # -- canonical serialization / fingerprint -----------------------------------

    def to_stable_bytes(self, include_labels: bool = True) -> bytes:
        """Canonical byte serialization of the model's content.

        The encoding is independent of insertion order and of dict iteration
        order: linear terms are emitted sorted by index, quadratic terms
        sorted by ``(i, j)``, coefficients as IEEE-754 little-endian doubles,
        and zero coefficients are dropped.  Two models built along different
        code paths therefore serialize identically iff they describe the
        same energy function over the same variables.

        ``include_labels=True`` (the default) also folds in ``repr`` of each
        variable label, so models that sample identically but *decode*
        differently get distinct bytes — the property a result cache needs.
        Pass ``include_labels=False`` for a pure coefficient view.
        """
        parts = [b"QUBO-v1", struct.pack("<q", self.num_variables)]
        linear = sorted((i, c) for i, c in self.linear.items() if c != 0.0)
        parts.append(struct.pack("<q", len(linear)))
        for i, c in linear:
            parts.append(struct.pack("<qd", i, c))
        quadratic = sorted((i, j, c) for (i, j), c in self.quadratic.items() if c != 0.0)
        parts.append(struct.pack("<q", len(quadratic)))
        for i, j, c in quadratic:
            parts.append(struct.pack("<qqd", i, j, c))
        parts.append(struct.pack("<d", self.offset))
        if include_labels:
            for label in self._labels:
                encoded = repr(label).encode("utf-8", errors="backslashreplace")
                parts.append(struct.pack("<q", len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    def fingerprint(self, include_labels: bool = True) -> str:
        """Content-addressed SHA-256 hex digest of :meth:`to_stable_bytes`.

        Stable across processes and sessions (``repr`` of the plain-data
        labels the adapters use does not depend on hash randomisation), so
        it can key cross-process result caches.
        """
        return hashlib.sha256(self.to_stable_bytes(include_labels=include_labels)).hexdigest()

    # -- conversions ---------------------------------------------------------------

    def to_ising(self):
        """The equivalent :class:`~repro.quantum.pauli.IsingHamiltonian`."""
        from repro.qubo.ising import qubo_to_ising

        return qubo_to_ising(self)

    def copy(self) -> "QuboModel":
        dup = QuboModel()
        dup._labels = list(self._labels)
        dup._index = dict(self._index)
        dup.linear = dict(self.linear)
        dup.quadratic = dict(self.quadratic)
        dup.offset = self.offset
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuboModel({self.num_variables} vars, {len(self.quadratic)} couplings, "
            f"offset={self.offset:.4g})"
        )
