"""QUBO / Ising modelling toolkit.

QUBO (quadratic unconstrained binary optimization) is the central
intermediate formulation of the paper (Fig. 2): every Table I work maps its
data-management problem to a QUBO, which is then solved either on an
annealer (:mod:`repro.annealing`) or a gate-based machine via QAOA/VQE
(:mod:`repro.algorithms`).
"""

from repro.qubo.bruteforce import BruteForceSolver
from repro.qubo.ising import ising_to_qubo, qubo_to_ising
from repro.qubo.model import QuboModel
from repro.qubo.penalty import (
    add_at_most_one,
    add_at_most_one_groups,
    add_equality,
    add_exactly_one,
    add_exactly_one_groups,
    add_implication,
    suggest_penalty_weight,
)
from repro.qubo.sampleset import Sample, SampleSet
from repro.qubo.tabu import TabuSolver

__all__ = [
    "QuboModel",
    "Sample",
    "SampleSet",
    "BruteForceSolver",
    "TabuSolver",
    "qubo_to_ising",
    "ising_to_qubo",
    "add_exactly_one",
    "add_exactly_one_groups",
    "add_at_most_one",
    "add_at_most_one_groups",
    "add_equality",
    "add_implication",
    "suggest_penalty_weight",
]
