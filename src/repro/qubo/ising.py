"""QUBO <-> Ising conversions.

Binary variables map to spins via ``x = (1 - s) / 2`` (so ``x=0`` is spin
``+1``, the Z eigenvalue of ``|0>``).  Minimising the QUBO over ``x`` is the
same problem as finding the Ising ground state.
"""

from __future__ import annotations

from repro.quantum.pauli import IsingHamiltonian
from repro.qubo.model import QuboModel


def qubo_to_ising(model: QuboModel) -> IsingHamiltonian:
    """Convert a QUBO to the equivalent Ising Hamiltonian.

    With ``E = sum a_i x_i + sum_{i<j} b_ij x_i x_j + c`` and
    ``x_i = (1 - s_i)/2``:

    * ``h_i = -a_i/2 - sum_j b_ij/4``
    * ``J_ij = b_ij / 4``
    * ``offset = c + sum a_i/2 + sum b_ij/4``
    """
    n = model.num_variables
    linear = {i: 0.0 for i in range(n)}
    quadratic: dict[tuple[int, int], float] = {}
    offset = model.offset
    for i, a in model.linear.items():
        linear[i] -= a / 2.0
        offset += a / 2.0
    for (i, j), b in model.quadratic.items():
        quadratic[(i, j)] = quadratic.get((i, j), 0.0) + b / 4.0
        linear[i] -= b / 4.0
        linear[j] -= b / 4.0
        offset += b / 4.0
    linear = {i: h for i, h in linear.items() if h != 0.0}
    quadratic = {k: v for k, v in quadratic.items() if v != 0.0}
    return IsingHamiltonian(max(n, 1), linear=linear, quadratic=quadratic, offset=offset)


def ising_to_qubo(ham: IsingHamiltonian) -> QuboModel:
    """Inverse conversion; labels are plain indices."""
    model = QuboModel(ham.num_qubits)
    model.add_offset(ham.offset)
    for i, h in ham.linear.items():
        # h * s_i = h * (1 - 2 x_i)
        model.add_linear(i, -2.0 * h)
        model.add_offset(h)
    for (i, j), jij in ham.quadratic.items():
        # J s_i s_j = J (1 - 2x_i)(1 - 2x_j)
        model.add_quadratic(i, j, 4.0 * jij)
        model.add_linear(i, -2.0 * jij)
        model.add_linear(j, -2.0 * jij)
        model.add_offset(jij)
    return model
