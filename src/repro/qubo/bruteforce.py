"""Exact QUBO solving by exhaustive enumeration (ground truth for tests)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.qubo.model import QuboModel
from repro.qubo.sampleset import SampleSet


class BruteForceSolver:
    """Enumerates all ``2**n`` assignments; exact but exponential.

    Used as the optimality reference in tests and benchmarks, and as the
    "classical exhaustive baseline" in the experiment harnesses.
    """

    def __init__(self, max_variables: int = 22):
        self.max_variables = max_variables

    def solve(self, model: QuboModel, keep: int = 16) -> SampleSet:
        """Return the ``keep`` lowest-energy assignments."""
        n = model.num_variables
        if n == 0:
            raise ReproError("cannot solve an empty QUBO")
        if n > self.max_variables:
            raise ReproError(
                f"brute force limited to {self.max_variables} variables, model has {n}"
            )
        assignments = self._all_assignments(n)
        energies = model.energies(assignments)
        order = np.argsort(energies, kind="stable")[:keep]
        return SampleSet.from_arrays(
            assignments[order], energies[order], info={"solver": "bruteforce", "evaluated": 2**n}
        )

    @staticmethod
    def _all_assignments(n: int) -> np.ndarray:
        indices = np.arange(2**n)
        shifts = np.arange(n - 1, -1, -1)
        return ((indices[:, None] >> shifts[None, :]) & 1).astype(int)
