"""Compile a SQL script into Table I problem instances.

The planner walks the parsed statements of a script
(:func:`repro.db.sql.parse_script`) and partitions them into the paper's
problem domains:

* every multi-table SELECT contributes a **join-ordering** instance: its
  FROM clause plus equi-join predicates become a
  :class:`~repro.db.query.JoinGraph` with filter-adjusted cardinality
  estimates and catalog selectivities, wrapped in the left-deep (or bushy)
  adapter;
* the SELECTs *as a batch* contribute one **MQO** instance when there are
  at least two of them: each query gets a handful of candidate plans
  (DP-optimal, FROM-order, greedy) costed with the C_out model, and
  cross-query savings are derived from shared canonical subexpressions
  (:func:`repro.db.sql.scan_key` / :func:`~repro.db.sql.join_subset_key`)
  so two statements scanning the same filtered table — or joining the same
  pair — are rewarded for picking plans that materialise the shared piece;
* the DML statements contribute one **transaction-scheduling** instance:
  each INSERT/UPDATE/DELETE becomes a table-granularity
  :class:`~repro.db.transactions.Transaction` (reads from its WHERE scan,
  writes to its target), and the adapter assigns conflict-free slots.

The output is a :class:`WorkloadPlan` whose instances go through one
``solve_many`` call (see :mod:`repro.workload.runner`); every instance
knows which statement indices it covers, which is what the runner's
``info["workload"]`` provenance is stitched from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.api.adapters import BushyJoinAdapter, LeftDeepJoinAdapter, MQOAdapter, TxnScheduleAdapter
from repro.api.problem import Problem
from repro.db.catalog import Catalog
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_leftdeep, greedy_operator_ordering
from repro.db.query import JoinGraph
from repro.db.sql import (
    ParsedQuery,
    join_subset_key,
    parse_script,
    scan_key,
    subexpression_fingerprint,
)
from repro.db.transactions import Operation, Transaction
from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem

#: Fraction of a shared intermediate's estimated cardinality credited as an
#: MQO saving when two plans of different queries both materialise it.
SHARING_CREDIT = 0.5

#: Selectivity assumed for non-equality filter predicates (the classic 1/3).
_INEQUALITY_SELECTIVITY = 1.0 / 3.0


@dataclass
class WorkloadInstance:
    """One compiled Table I problem instance plus its provenance.

    ``statements`` holds the script indices (0-based) this instance
    covers; ``meta`` carries domain specifics the runner needs to stitch
    per-statement plans back out of the instance's ``SolveResult`` (e.g.
    the MQO plan-id -> join-order map).
    """

    index: int
    kind: str            #: "joinorder" | "mqo" | "txn"
    label: str
    problem: Problem
    statements: list[int]
    meta: dict = field(default_factory=dict)


@dataclass
class WorkloadPlan:
    """A compiled script: parsed statements plus the instances they map to."""

    script: str
    statements: list
    instances: list[WorkloadInstance]
    catalog: Catalog

    def problems(self) -> list[Problem]:
        return [inst.problem for inst in self.instances]

    def labels(self) -> list[str]:
        return [inst.label for inst in self.instances]

    def instances_of(self, statement: int) -> list[WorkloadInstance]:
        return [inst for inst in self.instances if statement in inst.statements]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = [inst.kind for inst in self.instances]
        return f"WorkloadPlan({len(self.statements)} statements -> {kinds})"


def _filtered_cardinality(query: ParsedQuery, table: str, catalog: Catalog) -> float:
    """Estimated rows a filtered scan of one FROM entry yields."""
    stats = catalog.stats(query.base_table(table))
    card = float(stats.cardinality)
    for cond in query.filter_conditions:
        owner = cond.left.table
        if owner is None and len(query.tables) == 1:
            owner = table
        if owner != table:
            continue
        if cond.op == "=":
            card /= max(stats.distinct(cond.left.column), 1)
        elif cond.op != "!=":
            card *= _INEQUALITY_SELECTIVITY
    return max(card, 1.0)


def _join_graph(query: ParsedQuery, catalog: Catalog) -> JoinGraph:
    """Join graph for one SELECT: filtered cardinalities, catalog selectivities.

    Disconnected FROM clauses (missing join predicates) are stitched with
    selectivity-1.0 edges between component representatives so the
    optimizers see one connected graph; those edges model the cross
    products the executor would pay anyway.
    """
    jg = JoinGraph()
    for table in query.tables:
        jg.add_relation(table, max(int(round(_filtered_cardinality(query, table, catalog))), 1))
    for cond in query.join_conditions:
        lt, rt = cond.left.table, cond.right.table
        if cond.op != "=" or lt is None or rt is None or lt == rt:
            continue
        if lt not in query.tables or rt not in query.tables:
            raise ReproError(f"join predicate references unknown table: {cond}")
        sel = catalog.equijoin_selectivity(
            query.base_table(lt), cond.left.column, query.base_table(rt), cond.right.column
        )
        jg.add_join(lt, rt, sel)
    if not jg.is_connected():
        import networkx as nx

        reps = sorted(min(c) for c in nx.connected_components(jg.nx_graph()))
        for left, right in zip(reps, reps[1:]):
            jg.add_join(left, right, 1.0)
    return jg


def _candidate_orders(query: ParsedQuery, graph: JoinGraph, max_plans: int) -> list[list[str]]:
    """Up to ``max_plans`` distinct left-deep orders: DP optimum, FROM order, GOO."""
    cm = CostModel(graph)
    candidates: list[list[str]] = []
    tree, _ = dp_optimal_leftdeep(graph, cm, avoid_cross=False)
    candidates.append(tree.leaves_in_order())
    candidates.append(list(query.tables))
    goo_tree, _ = greedy_operator_ordering(graph, cm)
    candidates.append(goo_tree.leaves_in_order())
    unique: list[list[str]] = []
    for order in candidates:
        if order not in unique:
            unique.append(order)
        if len(unique) >= max_plans:
            break
    return unique


def _plan_subexpressions(query: ParsedQuery, order: "list[str] | None") -> set[str]:
    """Fingerprints of every intermediate a concrete plan materialises.

    A left-deep plan over ``order`` materialises each filtered scan plus
    the join of every order prefix; a single-table plan just its scan.
    Canonical keys are alias-independent, so sharing is detected across
    queries that name the same base tables differently.
    """
    keys = {scan_key(query, t) for t in query.tables}
    if order is not None and len(order) > 1:
        for k in range(2, len(order) + 1):
            keys.add(join_subset_key(query, order[:k]))
    return {subexpression_fingerprint(key) for key in keys}


def _subexpression_weights(
    query: ParsedQuery, order: "list[str] | None", graph: "JoinGraph | None", catalog: Catalog
) -> dict[str, float]:
    """Estimated cardinality of each subexpression a plan materialises."""
    weights: dict[str, float] = {}
    for t in query.tables:
        fp = subexpression_fingerprint(scan_key(query, t))
        weights[fp] = _filtered_cardinality(query, t, catalog)
    if order is not None and len(order) > 1 and graph is not None:
        cm = CostModel(graph)
        for k in range(2, len(order) + 1):
            fp = subexpression_fingerprint(join_subset_key(query, order[:k]))
            weights[fp] = cm.set_cardinality(order[:k])
    return weights


def _dml_transaction(index: int, statement) -> Transaction:
    """A table-granularity transaction for one DML statement."""
    txn_id = f"t{index}"
    ops = [Operation(txn_id, "r", table) for table in sorted(statement.read_tables)]
    ops += [Operation(txn_id, "w", table) for table in sorted(statement.write_tables)]
    return Transaction(txn_id, ops)


def compile_workload(
    script: "str | Sequence",
    catalog: Catalog,
    *,
    bushy: bool = False,
    max_candidate_plans: int = 3,
) -> WorkloadPlan:
    """Compile a SQL script into a :class:`WorkloadPlan`.

    Args:
        script: SQL text (statements separated by ``;``) or an already
            parsed statement sequence.
        catalog: Table statistics (and optionally data) the cost model
            estimates against; every referenced table must be registered.
        bushy: Use the bushy join-tree encoding for join-ordering
            instances instead of the left-deep permutation encoding.
        max_candidate_plans: Candidate plans per query offered to the MQO
            instance (distinct left-deep orders; single-table queries
            always contribute exactly one scan plan).

    Returns:
        A plan whose instances appear in a deterministic order: one
        join-ordering instance per multi-table SELECT (statement order),
        then the MQO instance (when >= 2 SELECTs), then the
        transaction-scheduling instance (when >= 1 DML).
    """
    statements = parse_script(script) if isinstance(script, str) else list(script)
    if not statements:
        raise ReproError("empty workload script")
    if max_candidate_plans < 1:
        raise ReproError("max_candidate_plans must be >= 1")
    for statement in statements:
        targets = (
            [statement.base_table(t) for t in statement.tables]
            if statement.kind == "select"
            else [statement.table]
        )
        for table in targets:
            catalog.stats(table)  # raises ReproError for unknown tables

    instances: list[WorkloadInstance] = []
    selects = [(i, s) for i, s in enumerate(statements) if s.kind == "select"]
    dml = [(i, s) for i, s in enumerate(statements) if s.is_dml]

    # -- join-ordering instances (one per multi-table SELECT) ---------------
    graphs: dict[int, JoinGraph] = {}
    for i, query in selects:
        if len(query.tables) < 2:
            continue
        graph = _join_graph(query, catalog)
        graphs[i] = graph
        adapter = BushyJoinAdapter(graph) if bushy else LeftDeepJoinAdapter(graph)
        instances.append(
            WorkloadInstance(
                index=len(instances),
                kind="joinorder",
                label=f"joinorder:s{i}",
                problem=adapter,
                statements=[i],
                meta={"tables": list(query.tables), "bushy": bushy},
            )
        )

    # -- one MQO instance over the SELECT batch -----------------------------
    if len(selects) >= 2:
        mqo = MQOProblem()
        plan_orders: dict[str, dict[str, "list[str] | None"]] = {}
        plan_subexprs: dict[tuple[str, str], set[str]] = {}
        weights: dict[str, float] = {}
        for i, query in selects:
            qid = f"s{i}"
            plan_orders[qid] = {}
            if len(query.tables) < 2:
                order_choices: list = [None]
            else:
                order_choices = _candidate_orders(query, graphs[i], max_candidate_plans)
            cm = CostModel(graphs[i]) if i in graphs else None
            for p, order in enumerate(order_choices):
                pid = f"p{p}"
                if order is None:
                    cost = _filtered_cardinality(query, query.tables[0], catalog)
                else:
                    cost = cm.cost_of_order(order)
                mqo.add_plan(qid, pid, cost)
                plan_orders[qid][pid] = order
                plan_subexprs[(qid, pid)] = _plan_subexpressions(query, order)
                weights.update(
                    _subexpression_weights(query, order, graphs.get(i), catalog)
                )
        keys = sorted(plan_subexprs)
        for a_pos, a in enumerate(keys):
            for b in keys[a_pos + 1 :]:
                if a[0] == b[0]:
                    continue  # savings only between plans of different queries
                shared = plan_subexprs[a] & plan_subexprs[b]
                if not shared:
                    continue
                amount = sum(SHARING_CREDIT * weights[fp] for fp in sorted(shared))
                if amount > 0:
                    mqo.add_saving(a, b, amount)
        instances.append(
            WorkloadInstance(
                index=len(instances),
                kind="mqo",
                label="mqo:selects",
                problem=MQOAdapter(mqo),
                statements=[i for i, _ in selects],
                meta={"plan_orders": plan_orders, "queries": [f"s{i}" for i, _ in selects]},
            )
        )

    # -- one transaction-scheduling instance over the DML batch -------------
    if dml:
        transactions = [_dml_transaction(i, s) for i, s in dml]
        instances.append(
            WorkloadInstance(
                index=len(instances),
                kind="txn",
                label="txn:dml",
                problem=TxnScheduleAdapter(transactions),
                statements=[i for i, _ in dml],
                meta={"transactions": {f"t{i}": i for i, _ in dml}},
            )
        )

    if not instances:
        raise ReproError(
            "workload compiles to no problem instances: it needs a multi-table "
            "SELECT, two or more SELECTs, or at least one DML statement"
        )
    return WorkloadPlan(
        script=script if isinstance(script, str) else "",
        statements=statements,
        instances=instances,
        catalog=catalog,
    )
