"""Execute a compiled workload as one sharded batch and stitch plans back.

:func:`run_workload` is the SQL front door of the whole pipeline: it
compiles the script (:func:`~repro.workload.planner.compile_workload`),
pushes every instance through **one** :func:`repro.solve_many` call — so
structurally identical instances shard together, the adaptive scheduler
can route SQL-derived shards exactly like synthetic ones, and the batch is
deterministic for a fixed seed — then stitches the ``SolveResult``s back
into per-statement plans.

Provenance lives in two places:

* each instance's result gains ``info["workload"]`` — its instance index,
  kind, label, and covered statement indices (the engine additionally
  stamps the same label into ``info["engine"]["label"]``);
* the returned :class:`WorkloadReport` carries the full statement map in
  :attr:`WorkloadReport.info` under ``"workload"`` — for every statement,
  its kind, SQL text, and the instances (with shard ids) that planned it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.api.facade import solve_many
from repro.api.result import SolveResult
from repro.db.catalog import Catalog
from repro.db.plans import JoinTree
from repro.obs import trace as obs
from repro.workload.planner import WorkloadInstance, WorkloadPlan, compile_workload


@dataclass
class StatementPlan:
    """The solved plan for one script statement.

    Which fields are set depends on the statement:

    * multi-table SELECT — ``join_order`` (always, leaves left-to-right)
      and ``join_tree`` (bushy encoding only);
    * any SELECT in an MQO batch — ``mqo_plan`` (the chosen candidate plan
      id) and ``mqo_join_order`` (that plan's order, ``None`` for a
      single-table scan plan);
    * DML — ``slot`` (the transaction's execution slot).
    """

    statement: int
    kind: str
    sql: str
    instances: list[int] = field(default_factory=list)
    join_order: "list[str] | None" = None
    join_tree: "JoinTree | None" = None
    mqo_plan: "str | None" = None
    mqo_join_order: "list[str] | None" = None
    slot: "int | None" = None


@dataclass
class WorkloadReport:
    """Everything :func:`run_workload` produced, stitched per statement."""

    plan: WorkloadPlan
    results: list[SolveResult]
    statement_plans: list[StatementPlan]
    info: dict = field(default_factory=dict)

    def result_of(self, instance: "int | WorkloadInstance") -> SolveResult:
        index = instance.index if isinstance(instance, WorkloadInstance) else instance
        return self.results[index]

    @property
    def total_objective(self) -> float:
        return sum(r.objective for r in self.results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadReport({len(self.statement_plans)} statements, "
            f"{len(self.results)} instances, total={self.total_objective:.6g})"
        )


def _join_order_of(result: SolveResult) -> "tuple[list[str], JoinTree | None]":
    """Normalise the two join-ordering solution shapes to an order (+tree)."""
    solution = result.solution
    if isinstance(solution, JoinTree):
        return solution.leaves_in_order(), solution
    return list(solution), None


def _provenance(plan: WorkloadPlan, results: list[SolveResult]) -> dict:
    """The ``info["workload"]`` schema of ``docs/workload.md``."""
    instances = []
    for inst, result in zip(plan.instances, results):
        instances.append(
            {
                "instance": inst.index,
                "kind": inst.kind,
                "label": inst.label,
                "statements": list(inst.statements),
                "shard": result.engine.get("shard"),
                "signature": result.engine.get("signature"),
            }
        )
    statements = {}
    for i, statement in enumerate(plan.statements):
        statements[str(i)] = {
            "kind": statement.kind,
            "sql": statement.text,
            "instances": [
                {
                    "instance": inst.index,
                    "kind": inst.kind,
                    "label": inst.label,
                    "shard": results[inst.index].engine.get("shard"),
                }
                for inst in plan.instances_of(i)
            ],
        }
    return {"instances": instances, "statements": statements}


def run_workload(
    script: "str | WorkloadPlan",
    catalog: "Catalog | None" = None,
    *,
    backend: "str | Sequence[str]" = "sa",
    seed: "int | None" = None,
    bushy: bool = False,
    max_candidate_plans: int = 3,
    executor: str = "serial",
    scheduler=None,
    cache=None,
    store=None,
    **backend_opts,
) -> WorkloadReport:
    """Compile and solve a SQL workload end to end.

    Args:
        script: SQL text, or a pre-compiled :class:`WorkloadPlan` (then
            ``catalog``/``bushy``/``max_candidate_plans`` are ignored).
        catalog: Table statistics; required when ``script`` is text.
        backend: Backend registry name, or — with ``scheduler=`` — a
            sequence of candidate names the adaptive scheduler routes
            between per shard.
        seed: Batch seed.  The whole workload is one ``solve_many`` batch,
            so the same script + seed reproduces every plan exactly.
        bushy: Bushy join-tree encoding for the join-ordering instances.
        executor / scheduler / cache / store / backend_opts: Forwarded to
            :func:`repro.solve_many` unchanged.

    Returns:
        A :class:`WorkloadReport`: instance results (each stamped with
        ``info["workload"]``), per-statement :class:`StatementPlan`s, and
        the full provenance map under ``report.info["workload"]``.
    """
    if isinstance(script, WorkloadPlan):
        plan = script
    else:
        if catalog is None:
            raise ValueError("run_workload needs a catalog when given SQL text")
        plan = compile_workload(
            script, catalog, bushy=bushy, max_candidate_plans=max_candidate_plans
        )

    with obs.span(
        "workload.run",
        statements=len(plan.statements),
        instances=len(plan.instances),
    ):
        results = solve_many(
            plan.problems(),
            backend=backend,
            seed=seed,
            executor=executor,
            scheduler=scheduler,
            cache=cache,
            store=store,
            labels=plan.labels(),
            **backend_opts,
        )

    provenance = _provenance(plan, results)
    for inst, result in zip(plan.instances, results):
        result.info["workload"] = provenance["instances"][inst.index]

    statement_plans = []
    for i, statement in enumerate(plan.statements):
        sp = StatementPlan(
            statement=i,
            kind=statement.kind,
            sql=statement.text,
            instances=[inst.index for inst in plan.instances_of(i)],
        )
        for inst in plan.instances_of(i):
            result = results[inst.index]
            if inst.kind == "joinorder":
                sp.join_order, sp.join_tree = _join_order_of(result)
            elif inst.kind == "mqo":
                qid = f"s{i}"
                sp.mqo_plan = result.solution.get(qid)
                if sp.mqo_plan is not None:
                    sp.mqo_join_order = inst.meta["plan_orders"][qid][sp.mqo_plan]
            elif inst.kind == "txn":
                sp.slot = result.solution.get(f"t{i}")
        statement_plans.append(sp)

    return WorkloadReport(
        plan=plan,
        results=results,
        statement_plans=statement_plans,
        info={"workload": provenance},
    )
