"""SQL workload front end: scripts of SELECT/DML -> Table I problem batches.

The compiler seam between classical query front ends and quantum kernels:
:func:`compile_workload` plans a SQL script into the paper's problem
domains (MQO across the SELECT batch, join ordering per FROM clause,
transaction scheduling across the DML), and :func:`run_workload` executes
all of them as one sharded ``solve_many`` batch, stitching per-statement
plans and ``info["workload"]`` provenance back out.  See
``docs/workload.md`` for the pipeline walk-through.
"""

from repro.workload.planner import (
    SHARING_CREDIT,
    WorkloadInstance,
    WorkloadPlan,
    compile_workload,
)
from repro.workload.runner import StatementPlan, WorkloadReport, run_workload

__all__ = [
    "SHARING_CREDIT",
    "WorkloadInstance",
    "WorkloadPlan",
    "StatementPlan",
    "WorkloadReport",
    "compile_workload",
    "run_workload",
]
