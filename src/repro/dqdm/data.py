"""Data items with physics-aware copy semantics.

The paper's Sec. IV-B.1 question — "How to design data models, when
quantum data cannot be copied?" — is answered here at the type level:
:class:`QuantumDataItem` is *move-only* (copying raises
:class:`~repro.exceptions.NoCloningError`), optionally carrying a
*classical recipe* that allows re-preparation (which is not copying: the
original may be gone).
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import NoCloningError, ProtocolError
from repro.quantum.state import Statevector


@dataclass
class ClassicalDataItem:
    """Ordinary data: freely copyable and replicable."""

    item_id: str
    payload: bytes

    def copy(self) -> "ClassicalDataItem":
        return ClassicalDataItem(self.item_id, self.payload)


class QuantumDataItem:
    """A quantum payload with move-only semantics.

    The payload is accessed by *taking* it (ownership transfer) or by
    *consuming* it (measurement).  ``copy.copy``/``copy.deepcopy`` raise.
    A ``recipe`` — a classical description able to re-prepare the state —
    makes the item *re-preparable* but never copyable.
    """

    def __init__(
        self,
        item_id: str,
        state: Statevector,
        recipe: "Callable[[], Statevector] | None" = None,
    ):
        self.item_id = item_id
        self._state: "Statevector | None" = state
        self.recipe = recipe
        self.fidelity_estimate = 1.0

    @property
    def is_held(self) -> bool:
        """Whether the payload is currently present (not taken/consumed)."""
        return self._state is not None

    @property
    def is_repreparable(self) -> bool:
        return self.recipe is not None

    def take(self) -> Statevector:
        """Move the payload out; the item becomes empty."""
        if self._state is None:
            raise ProtocolError(f"item {self.item_id!r} holds no state (already taken?)")
        state = self._state
        self._state = None
        return state

    def put(self, state: Statevector) -> None:
        """Move a payload back in (e.g. after teleportation)."""
        if self._state is not None:
            raise ProtocolError(f"item {self.item_id!r} already holds a state")
        self._state = state

    def peek_fidelity(self, reference: Statevector) -> float:
        """Diagnostic fidelity against a reference (simulation-only)."""
        if self._state is None:
            raise ProtocolError(f"item {self.item_id!r} holds no state")
        return self._state.fidelity(reference)

    def consume(self, rng=None) -> tuple[int, ...]:
        """Destructively measure the payload (read-once semantics)."""
        state = self.take()
        bits, _ = state.measure(rng=rng)
        return bits

    def reprepare(self) -> None:
        """Re-create the payload from the classical recipe."""
        if self.recipe is None:
            raise NoCloningError(
                f"item {self.item_id!r} has no classical recipe; the state is "
                "irreplaceable once lost"
            )
        if self._state is not None:
            raise ProtocolError(f"item {self.item_id!r} still holds a state")
        self._state = self.recipe()
        self.fidelity_estimate = 1.0

    # -- no-cloning enforcement ---------------------------------------------------

    def __copy__(self):
        raise NoCloningError(f"quantum item {self.item_id!r} cannot be copied")

    def __deepcopy__(self, memo):
        raise NoCloningError(f"quantum item {self.item_id!r} cannot be copied")

    def clone(self) -> "QuantumDataItem":
        """Explicit copy attempt — always refused."""
        return _copy.copy(self)  # raises NoCloningError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "held" if self.is_held else "empty"
        return f"QuantumDataItem({self.item_id!r}, {status}, repreparable={self.is_repreparable})"
