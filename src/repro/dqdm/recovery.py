"""Failure injection and recovery for distributed quantum stores.

Node crashes destroy the quantum states they host (decoherence on power
loss is total).  Items with classical recipes are re-prepared on a healthy
node; irreplaceable items are permanently lost — the quantitative face of
the paper's fault-tolerance question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dqdm.store import DistributedQuantumStore
from repro.exceptions import NoCloningError
from repro.utils.rngtools import ensure_rng


@dataclass
class RecoveryReport:
    """Outcome of one failure-and-recovery episode."""

    failed_nodes: list[str]
    items_at_risk: int
    recovered: int
    lost: list[str]
    relocations: dict[str, str] = field(default_factory=dict)

    @property
    def recovery_rate(self) -> float:
        if self.items_at_risk == 0:
            return 1.0
        return self.recovered / self.items_at_risk


def simulate_failures_and_recovery(
    store: DistributedQuantumStore,
    node_failure_prob: float = 0.2,
    rng=None,
) -> RecoveryReport:
    """Crash nodes at random; re-prepare what can be re-prepared.

    Re-preparable items are revived on the healthy node with the fewest
    quantum items (simple load balancing); others are lost.
    """
    rng = ensure_rng(rng)
    nodes = store.network.nodes
    failed = [n for n in nodes if rng.random() < node_failure_prob]
    healthy = [n for n in nodes if n not in failed]
    at_risk = []
    for node in failed:
        at_risk.extend((node, item_id) for item_id in store.quantum_items_at(node))
    recovered = 0
    lost: list[str] = []
    relocations: dict[str, str] = {}
    for node, item_id in at_risk:
        item = store._quantum[node].pop(item_id)  # noqa: SLF001 - recovery is privileged
        if item.is_held:
            item.take()  # the state decoheres with the crash
        if not healthy:
            lost.append(item_id)
            continue
        try:
            item.reprepare()
        except NoCloningError:
            lost.append(item_id)
            continue
        target = min(healthy, key=lambda n: len(store.quantum_items_at(n)))
        store._quantum[target][item_id] = item  # noqa: SLF001
        relocations[item_id] = target
        recovered += 1
    return RecoveryReport(
        failed_nodes=failed,
        items_at_risk=len(at_risk),
        recovered=recovered,
        lost=lost,
        relocations=relocations,
    )
