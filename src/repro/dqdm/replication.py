"""Availability: replication vs re-preparation vs irreplaceable state.

Sec. IV-B.2 asks how to ensure reliability/availability when quantum data
cannot be replicated.  The analysis here quantifies the gap:

* classical item, ``k`` replicas: available unless all replicas' nodes are
  down — ``1 - (1-p)^k``;
* quantum item *with* a classical recipe: re-preparable anywhere, so its
  availability follows the recipe's (classical) replication;
* quantum item *without* a recipe: a single point of failure — ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


def availability_classical(node_up_probability: float, num_replicas: int) -> float:
    """``1 - (1 - p)^k`` for ``k`` independent replicas."""
    if not 0.0 <= node_up_probability <= 1.0:
        raise ReproError("probability out of range")
    if num_replicas < 1:
        raise ReproError("need at least one replica")
    return 1.0 - (1.0 - node_up_probability) ** num_replicas


def availability_quantum(
    node_up_probability: float, repreparable: bool, recipe_replicas: int = 1
) -> float:
    """Availability of a quantum item.

    Without a recipe the single hosting node must be up.  With a recipe the
    item is available when *any* node holding the recipe is up (the state
    can be re-prepared there).
    """
    if repreparable:
        return availability_classical(node_up_probability, recipe_replicas)
    return node_up_probability


@dataclass
class AvailabilityReport:
    """Monte-Carlo availability comparison."""

    trials: int
    classical_availability: float
    quantum_with_recipe: float
    quantum_without_recipe: float


def simulate_availability(
    node_up_probability: float,
    num_replicas: int = 3,
    trials: int = 2000,
    rng=None,
) -> AvailabilityReport:
    """Monte-Carlo check of the closed-form availability expressions."""
    rng = ensure_rng(rng)
    classical_hits = 0
    recipe_hits = 0
    bare_hits = 0
    for _ in range(trials):
        up = rng.random(num_replicas) < node_up_probability
        if up.any():
            classical_hits += 1
            recipe_hits += 1
        if up[0]:
            bare_hits += 1
    return AvailabilityReport(
        trials=trials,
        classical_availability=classical_hits / trials,
        quantum_with_recipe=recipe_hits / trials,
        quantum_without_recipe=bare_hits / trials,
    )
