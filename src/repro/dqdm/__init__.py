"""Distributed quantum data management (Sec. IV-B opportunities).

The paper poses the design questions; this package builds concrete
first-cut answers on top of :mod:`repro.qnet`:

* :mod:`.data` — move-only quantum data items (no-cloning enforced at the
  type level) vs freely copyable classical items;
* :mod:`.store` — a distributed store whose quantum payloads move via
  teleportation, consuming end-to-end entanglement;
* :mod:`.replication` — availability analysis: replication (classical) vs
  re-preparation (quantum with a recipe) vs irreplaceable quantum state;
* :mod:`.consistency` — classical two-phase commit vs a GHZ-shared-coin
  termination rule, trading blocking for possible divergence;
* :mod:`.recovery` — failure injection and recovery of stored items.
"""

from repro.dqdm.consistency import CommitStats, GhzAssistedCommit, TwoPhaseCommit
from repro.dqdm.data import ClassicalDataItem, QuantumDataItem
from repro.dqdm.replication import availability_classical, availability_quantum, simulate_availability
from repro.dqdm.recovery import RecoveryReport, simulate_failures_and_recovery
from repro.dqdm.store import DistributedQuantumStore, TransferReceipt

__all__ = [
    "CommitStats",
    "GhzAssistedCommit",
    "TwoPhaseCommit",
    "ClassicalDataItem",
    "QuantumDataItem",
    "availability_classical",
    "availability_quantum",
    "simulate_availability",
    "RecoveryReport",
    "simulate_failures_and_recovery",
    "DistributedQuantumStore",
    "TransferReceipt",
]
