"""A distributed store over a quantum network.

Classical items replicate freely; quantum items live on exactly one node
and *move* via teleportation, consuming one end-to-end entangled pair per
qubit and inheriting the pair's (possibly purified) fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dqdm.data import ClassicalDataItem, QuantumDataItem
from repro.exceptions import NoCloningError, ProtocolError
from repro.qnet.network import QuantumNetwork
from repro.qnet.teleport import teleport_fidelity_via_werner
from repro.utils.rngtools import ensure_rng


@dataclass
class TransferReceipt:
    """Accounting record of one quantum data movement."""

    item_id: str
    source: str
    destination: str
    path: list[str]
    pair_fidelity: float
    payload_fidelity: float
    time: float
    pairs_consumed: float
    info: dict = field(default_factory=dict)


class DistributedQuantumStore:
    """Node-resident classical and quantum items over a quantum network."""

    def __init__(self, network: QuantumNetwork):
        self.network = network
        self._classical: dict[str, dict[str, ClassicalDataItem]] = {n: {} for n in network.nodes}
        self._quantum: dict[str, dict[str, QuantumDataItem]] = {n: {} for n in network.nodes}
        self.transfer_log: list[TransferReceipt] = []

    def _node_bucket(self, node: str, quantum: bool) -> dict:
        table = self._quantum if quantum else self._classical
        if node not in table:
            raise ProtocolError(f"unknown node {node!r}")
        return table[node]

    # -- placement ------------------------------------------------------------------

    def put_classical(self, node: str, item: ClassicalDataItem) -> None:
        self._node_bucket(node, quantum=False)[item.item_id] = item

    def put_quantum(self, node: str, item: QuantumDataItem) -> None:
        bucket = self._node_bucket(node, quantum=True)
        if item.item_id in bucket:
            raise ProtocolError(f"node {node!r} already stores item {item.item_id!r}")
        for other in self.network.nodes:
            if item.item_id in self._quantum[other]:
                raise NoCloningError(
                    f"quantum item {item.item_id!r} already lives on {other!r}; "
                    "quantum data cannot exist at two places"
                )
        bucket[item.item_id] = item

    def locate_quantum(self, item_id: str) -> str:
        for node in self.network.nodes:
            if item_id in self._quantum[node]:
                return node
        raise ProtocolError(f"quantum item {item_id!r} not found")

    def quantum_items_at(self, node: str) -> list[str]:
        return sorted(self._node_bucket(node, quantum=True))

    def classical_items_at(self, node: str) -> list[str]:
        return sorted(self._node_bucket(node, quantum=False))

    # -- movement --------------------------------------------------------------------

    def replicate_classical(self, item_id: str, source: str, destination: str) -> None:
        """Copy a classical item to another node (always allowed)."""
        bucket = self._node_bucket(source, quantum=False)
        if item_id not in bucket:
            raise ProtocolError(f"classical item {item_id!r} not at {source!r}")
        self._node_bucket(destination, quantum=False)[item_id] = bucket[item_id].copy()

    def move_quantum(
        self,
        item_id: str,
        destination: str,
        rng=None,
        min_pair_fidelity: "float | None" = None,
    ) -> TransferReceipt:
        """Teleport a quantum item to ``destination``.

        Consumes one end-to-end pair (per qubit of payload); the payload's
        fidelity estimate is multiplied by the teleportation fidelity the
        pair supports.
        """
        rng = ensure_rng(rng)
        source = self.locate_quantum(item_id)
        if source == destination:
            raise ProtocolError(f"item {item_id!r} is already at {destination!r}")
        item = self._quantum[source][item_id]
        if not item.is_held:
            raise ProtocolError(f"item {item_id!r} holds no state to move")
        e2e = self.network.distribute(source, destination, rng=rng, min_fidelity=min_pair_fidelity)
        state = item.take()
        payload_qubits = state.num_qubits
        tele_f = teleport_fidelity_via_werner(e2e.fidelity)
        del self._quantum[source][item_id]
        item.put(state)
        item.fidelity_estimate *= tele_f**payload_qubits
        self._quantum[destination][item_id] = item
        receipt = TransferReceipt(
            item_id=item_id,
            source=source,
            destination=destination,
            path=e2e.path,
            pair_fidelity=e2e.fidelity,
            payload_fidelity=item.fidelity_estimate,
            time=e2e.time,
            pairs_consumed=e2e.pairs_consumed * payload_qubits,
            info={"swaps": e2e.swaps, "purification_rounds": e2e.purification_rounds},
        )
        self.transfer_log.append(receipt)
        return receipt
