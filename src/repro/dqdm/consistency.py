"""Distributed commit: classical 2PC vs a GHZ-shared-coin termination rule.

The paper (Sec. IV-B.2) asks how distributed data systems should use
quantum-internet protocols.  Quantum mechanics cannot transmit decisions
faster than light, so entanglement does not replace the 2PC decision
broadcast; what a pre-shared GHZ state *does* provide is a perfectly
correlated random bit at every node with no communication at decision
time.  We use it as a symmetric termination rule: when the coordinator
dies after collecting votes (the classic 2PC blocking window),
participants measure their GHZ qubit and all adopt the *same* fallback
decision instead of blocking.

The simulation quantifies the trade: 2PC never diverges but blocks;
GHZ-termination never blocks, always keeps the participants mutually
consistent, and may diverge from a coordinator decision that was already
durably logged — each outcome is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.quantum.bell import ghz_state
from repro.utils.rngtools import ensure_rng


@dataclass
class CommitStats:
    """Aggregate outcomes over simulated commit rounds."""

    rounds: int = 0
    committed: int = 0
    aborted: int = 0
    blocked: int = 0
    diverged_from_log: int = 0
    messages: int = 0

    @property
    def blocking_rate(self) -> float:
        return self.blocked / max(self.rounds, 1)

    @property
    def divergence_rate(self) -> float:
        return self.diverged_from_log / max(self.rounds, 1)


class TwoPhaseCommit:
    """Classical 2PC with a coordinator that may crash mid-protocol."""

    def __init__(self, num_participants: int, vote_yes_prob: float = 0.9, crash_prob: float = 0.0):
        if num_participants < 1:
            raise ReproError("need at least one participant")
        self.n = num_participants
        self.vote_yes_prob = vote_yes_prob
        self.crash_prob = crash_prob

    def run_round(self, stats: CommitStats, rng) -> None:
        stats.rounds += 1
        stats.messages += self.n  # prepare requests
        votes = rng.random(self.n) < self.vote_yes_prob
        stats.messages += self.n  # vote replies
        decision_commit = bool(votes.all())
        # The coordinator logs its decision, then may crash before
        # broadcasting: the classic blocking window.
        if rng.random() < self.crash_prob:
            stats.blocked += 1
            return
        stats.messages += self.n  # decision broadcast
        if decision_commit:
            stats.committed += 1
        else:
            stats.aborted += 1

    def run(self, rounds: int, rng=None) -> CommitStats:
        rng = ensure_rng(rng)
        stats = CommitStats()
        for _ in range(rounds):
            self.run_round(stats, rng)
        return stats


class GhzAssistedCommit(TwoPhaseCommit):
    """2PC with a pre-shared GHZ state as the crash-termination rule.

    A fresh ``n``-qubit GHZ state is distributed during setup (cost tracked
    in ``ghz_states_consumed``).  On coordinator silence every participant
    measures its qubit: all obtain the *same* random bit (commit/abort) and
    terminate symmetrically instead of blocking.
    """

    def __init__(self, num_participants: int, vote_yes_prob: float = 0.9, crash_prob: float = 0.0):
        super().__init__(num_participants, vote_yes_prob, crash_prob)
        self.ghz_states_consumed = 0

    def run_round(self, stats: CommitStats, rng) -> None:
        stats.rounds += 1
        stats.messages += 2 * self.n  # prepare + votes
        votes = rng.random(self.n) < self.vote_yes_prob
        decision_commit = bool(votes.all())
        if rng.random() < self.crash_prob:
            # Coordinator silent: participants measure the shared GHZ state.
            self.ghz_states_consumed += 1
            bits, _ = ghz_state(max(self.n, 2)).measure(rng=rng)
            fallback_bits = set(bits[: self.n]) if self.n > 1 else {bits[0]}
            if len(fallback_bits) != 1:
                raise ReproError("GHZ measurement produced inconsistent bits")
            fallback_commit = bits[0] == 1
            if fallback_commit:
                stats.committed += 1
            else:
                stats.aborted += 1
            # The coordinator's logged decision may disagree.
            if fallback_commit != decision_commit:
                stats.diverged_from_log += 1
            return
        stats.messages += self.n
        if decision_commit:
            stats.committed += 1
        else:
            stats.aborted += 1
