"""Network-level entanglement distribution: topology, routing, end-to-end.

A :class:`QuantumNetwork` is a graph of nodes connected by
:class:`~repro.qnet.link.EntanglementLink` edges (Fig. 1(c) generalised to
arbitrary topologies).  End-to-end entanglement is produced by generating
pairs on every link of a path (in parallel) and swapping at the
intermediate repeaters; routing can minimise hops or maximise end-to-end
fidelity (Dijkstra over ``-log w``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import ProtocolError, ReproError
from repro.qnet.link import EntanglementLink, fidelity_to_werner
from repro.qnet.repeater import chain_fidelity, purify_to_target
from repro.qnet.teleport import teleport_fidelity_via_werner
from repro.utils.rngtools import ensure_rng


@dataclass
class EndToEndResult:
    """One end-to-end entanglement distribution."""

    path: list[str]
    fidelity: float
    time: float
    attempts: int
    swaps: int
    purification_rounds: int = 0
    pairs_consumed: float = 1.0
    info: dict = field(default_factory=dict)


class QuantumNetwork:
    """Nodes + entanglement links with routing and distribution."""

    def __init__(self):
        self._graph = nx.Graph()

    @classmethod
    def chain(cls, num_nodes: int, link: "EntanglementLink | None" = None) -> "QuantumNetwork":
        """A repeater chain ``n0 - n1 - ... - n(k-1)`` (Fig. 1(c) shape)."""
        if num_nodes < 2:
            raise ReproError("a chain needs at least two nodes")
        net = cls()
        for i in range(num_nodes):
            net.add_node(f"n{i}")
        for i in range(num_nodes - 1):
            net.add_link(f"n{i}", f"n{i + 1}", link or EntanglementLink())
        return net

    @classmethod
    def grid(cls, rows: int, cols: int, link: "EntanglementLink | None" = None) -> "QuantumNetwork":
        """A 2-D grid of repeaters (a metro-network shape)."""
        net = cls()
        for r in range(rows):
            for c in range(cols):
                net.add_node(f"n{r}_{c}")
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    net.add_link(f"n{r}_{c}", f"n{r}_{c + 1}", link or EntanglementLink())
                if r + 1 < rows:
                    net.add_link(f"n{r}_{c}", f"n{r + 1}_{c}", link or EntanglementLink())
        return net

    def add_node(self, name: str) -> "QuantumNetwork":
        self._graph.add_node(name)
        return self

    def add_link(self, u: str, v: str, link: "EntanglementLink | None" = None) -> "QuantumNetwork":
        for node in (u, v):
            if node not in self._graph:
                raise ReproError(f"unknown node {node!r}")
        self._graph.add_edge(u, v, link=link or EntanglementLink())
        return self

    @property
    def nodes(self) -> list[str]:
        return sorted(self._graph.nodes)

    def link_between(self, u: str, v: str) -> EntanglementLink:
        data = self._graph.get_edge_data(u, v)
        if data is None:
            raise ProtocolError(f"no link between {u!r} and {v!r}")
        return data["link"]

    # -- routing -----------------------------------------------------------------

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Minimum-hop path."""
        try:
            return nx.shortest_path(self._graph, src, dst)
        except nx.NetworkXNoPath:
            raise ProtocolError(f"no path from {src!r} to {dst!r}") from None

    def best_fidelity_path(self, src: str, dst: str) -> list[str]:
        """Path maximising end-to-end fidelity (min sum of ``-log w``)."""

        def weight(u, v, data):
            w = fidelity_to_werner(data["link"].base_fidelity)
            return -math.log(max(w, 1e-12))

        try:
            return nx.dijkstra_path(self._graph, src, dst, weight=weight)
        except nx.NetworkXNoPath:
            raise ProtocolError(f"no path from {src!r} to {dst!r}") from None

    # -- distribution ---------------------------------------------------------------

    def distribute(
        self,
        src: str,
        dst: str,
        rng=None,
        routing: str = "fidelity",
        min_fidelity: "float | None" = None,
    ) -> EndToEndResult:
        """Create end-to-end entanglement between ``src`` and ``dst``.

        All links of the chosen path generate pairs in parallel (time =
        slowest link); the repeaters then swap.  With ``min_fidelity``,
        entanglement pumping upgrades the end-to-end pair, consuming extra
        pairs.
        """
        rng = ensure_rng(rng)
        if src == dst:
            raise ProtocolError("source and destination coincide")
        path = (
            self.best_fidelity_path(src, dst)
            if routing == "fidelity"
            else self.shortest_path(src, dst)
        )
        link_results = []
        for u, v in zip(path, path[1:]):
            link_results.append(self.link_between(u, v).generate(rng=rng))
        fidelity = chain_fidelity([r.fidelity for r in link_results])
        time = max(r.time for r in link_results)
        attempts = sum(r.attempts for r in link_results)
        swaps = max(0, len(path) - 2)
        rounds = 0
        pairs = 1.0
        if min_fidelity is not None and fidelity < min_fidelity:
            fidelity, rounds, pairs = purify_to_target(fidelity, min_fidelity)
        return EndToEndResult(
            path=path,
            fidelity=fidelity,
            time=time,
            attempts=attempts,
            swaps=swaps,
            purification_rounds=rounds,
            pairs_consumed=pairs,
            info={"routing": routing},
        )

    def teleport_quality(self, src: str, dst: str, rng=None, **kwargs) -> tuple[EndToEndResult, float]:
        """Distribute a pair and report the implied teleportation fidelity."""
        result = self.distribute(src, dst, rng=rng, **kwargs)
        return result, teleport_fidelity_via_werner(result.fidelity)
