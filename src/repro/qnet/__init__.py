"""Quantum-internet substrate (Sec. IV and Fig. 1(c) of the paper).

Protocol layer (exact, statevector-level): :mod:`.epr` (Bell pairs and
Bell measurement), :mod:`.teleport`, :mod:`.superdense`.

Network layer (analytic Werner-state algebra, cross-validated against the
density-matrix simulator): :mod:`.link` (heralded entanglement
generation), :mod:`.repeater` (entanglement swapping, BBPSSW
purification), :mod:`.network` (topologies, fidelity-aware routing,
end-to-end distribution).

Applications: :mod:`.qkd` (BB84 and E91 key distribution), and
:mod:`.nocloning` (no-cloning checks and the Buzek-Hillery universal
cloner) backing the Sec. IV-B data-management discussion.
"""

from repro.qnet.epr import bell_measurement, create_epr_pair
from repro.qnet.link import EntanglementLink, LinkResult
from repro.qnet.network import EndToEndResult, QuantumNetwork
from repro.qnet.nocloning import UniversalCloner, cloning_is_impossible
from repro.qnet.qkd import BB84Result, E91Result, run_bb84, run_e91
from repro.qnet.repeater import purify, purify_to_target, swap_fidelity
from repro.qnet.superdense import superdense_decode, superdense_encode
from repro.qnet.teleport import teleport, teleport_fidelity_via_werner

__all__ = [
    "bell_measurement",
    "create_epr_pair",
    "EntanglementLink",
    "LinkResult",
    "EndToEndResult",
    "QuantumNetwork",
    "UniversalCloner",
    "cloning_is_impossible",
    "BB84Result",
    "E91Result",
    "run_bb84",
    "run_e91",
    "purify",
    "purify_to_target",
    "swap_fidelity",
    "superdense_decode",
    "superdense_encode",
    "teleport",
    "teleport_fidelity_via_werner",
]
