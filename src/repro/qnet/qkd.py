"""Quantum key distribution: BB84 [62] and E91 over the simulator.

Secure communication is the flagship quantum-internet application the
paper cites; both protocols here expose the quantitative security story:

* BB84: an intercept-resend eavesdropper pushes the sifted-key error rate
  (QBER) from ~0 (plus channel noise) to ~25%;
* E91: honest devices violate CHSH (``S ~ 2 sqrt 2``); under intercept-
  resend the correlations become classical (``S <= 2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.quantum.bell import bell_state
from repro.quantum.gates import H_MATRIX, X_MATRIX, ry_matrix
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass
class BB84Result:
    """Outcome of a BB84 session."""

    raw_length: int
    sifted_length: int
    qber: float
    key: list[int]
    aborted: bool
    eve_present: bool
    info: dict = field(default_factory=dict)


def _prepare_bb84_qubit(bit: int, basis: int) -> Statevector:
    """Z basis (0): |0>/|1>; X basis (1): |+>/|->."""
    state = Statevector.zero_state(1)
    if bit:
        state.apply_matrix(X_MATRIX, [0])
    if basis:
        state.apply_matrix(H_MATRIX, [0])
    return state


def _measure_in_basis(state: Statevector, basis: int, rng) -> int:
    probe = state.copy()
    if basis:
        probe.apply_matrix(H_MATRIX, [0])
    bits, _ = probe.measure([0], rng=rng)
    return bits[0]


def run_bb84(
    num_qubits: int = 256,
    eve: bool = False,
    channel_flip_prob: float = 0.0,
    sample_fraction: float = 0.5,
    abort_threshold: float = 0.12,
    rng=None,
) -> BB84Result:
    """One BB84 session with optional intercept-resend eavesdropper."""
    if num_qubits < 8:
        raise ReproError("need at least 8 qubits for a meaningful session")
    rng = ensure_rng(rng)
    alice_bits = rng.integers(0, 2, size=num_qubits)
    alice_bases = rng.integers(0, 2, size=num_qubits)
    bob_bases = rng.integers(0, 2, size=num_qubits)
    bob_bits = np.zeros(num_qubits, dtype=int)
    for i in range(num_qubits):
        state = _prepare_bb84_qubit(int(alice_bits[i]), int(alice_bases[i]))
        if eve:
            eve_basis = int(rng.integers(0, 2))
            eve_bit = _measure_in_basis(state, eve_basis, rng)
            state = _prepare_bb84_qubit(eve_bit, eve_basis)
        if channel_flip_prob > 0.0 and rng.random() < channel_flip_prob:
            state.apply_matrix(X_MATRIX, [0])
        bob_bits[i] = _measure_in_basis(state, int(bob_bases[i]), rng)
    # Sifting: keep rounds with matching bases.
    matching = np.nonzero(alice_bases == bob_bases)[0]
    sifted_alice = alice_bits[matching]
    sifted_bob = bob_bits[matching]
    # Error estimation on a public sample.
    num_sample = max(1, int(len(matching) * sample_fraction))
    sample_idx = rng.choice(len(matching), size=num_sample, replace=False)
    sample_mask = np.zeros(len(matching), dtype=bool)
    sample_mask[sample_idx] = True
    errors = int(np.sum(sifted_alice[sample_mask] != sifted_bob[sample_mask]))
    qber = errors / num_sample
    aborted = qber > abort_threshold
    key = [] if aborted else [int(b) for b in sifted_alice[~sample_mask]]
    return BB84Result(
        raw_length=num_qubits,
        sifted_length=int(len(matching)),
        qber=float(qber),
        key=key,
        aborted=aborted,
        eve_present=eve,
        info={"sampled": num_sample},
    )


@dataclass
class E91Result:
    """Outcome of an E91 session."""

    chsh_value: float
    secure: bool
    key: list[int]
    rounds: int
    info: dict = field(default_factory=dict)


_E91_KEY_ANGLES = (0.0, math.pi / 4)  # matching measurement angles for keys
_A_TEST_ANGLES = (0.0, math.pi / 4)
_B_TEST_ANGLES = (math.pi / 8, -math.pi / 8)


def _correlated_measurement(state: Statevector, angle_a: float, angle_b: float, rng) -> tuple[int, int]:
    probe = state.copy()
    probe.apply_matrix(ry_matrix(-2.0 * angle_a), [0])
    probe.apply_matrix(ry_matrix(-2.0 * angle_b), [1])
    bits, _ = probe.measure(rng=rng)
    return bits[0], bits[1]


def run_e91(
    num_pairs: int = 400,
    eve: bool = False,
    security_threshold: float = 2.0,
    rng=None,
) -> E91Result:
    """One E91 session: CHSH testing + key rounds over shared pairs."""
    rng = ensure_rng(rng)
    correlators = {}
    counts = {}
    key: list[int] = []
    for _ in range(num_pairs):
        state = bell_state("phi+")
        if eve:
            # Intercept-resend in the Z basis on both halves.
            bits, _ = state.measure(rng=rng)
            state = Statevector.from_label(f"{bits[0]}{bits[1]}")
        if rng.random() < 0.5:
            # Test round: random CHSH settings.
            ai = int(rng.integers(0, 2))
            bi = int(rng.integers(0, 2))
            a, b = _correlated_measurement(state, _A_TEST_ANGLES[ai], _B_TEST_ANGLES[bi], rng)
            sign = (1 - 2 * a) * (1 - 2 * b)
            correlators[(ai, bi)] = correlators.get((ai, bi), 0) + sign
            counts[(ai, bi)] = counts.get((ai, bi), 0) + 1
        else:
            # Key round: both measure at the same angle -> correlated bits.
            angle = _E91_KEY_ANGLES[int(rng.integers(0, 2))]
            a, b = _correlated_measurement(state, angle, angle, rng)
            key.append(a)
    s_value = 0.0
    for (ai, bi), total in correlators.items():
        e = total / max(counts[(ai, bi)], 1)
        s_value += e if (ai, bi) != (1, 1) else -e
    secure = abs(s_value) > security_threshold
    return E91Result(
        chsh_value=float(s_value),
        secure=secure,
        key=key if secure else [],
        rounds=num_pairs,
        info={"test_rounds": sum(counts.values())},
    )
