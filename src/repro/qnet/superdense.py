"""Superdense coding: two classical bits through one qubit + entanglement."""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.qnet.epr import bell_measurement, create_epr_pair
from repro.quantum.gates import X_MATRIX, Z_MATRIX
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


def superdense_encode(bits: tuple[int, int]) -> Statevector:
    """Encode two bits by acting on the sender's half of ``|Phi+>``.

    ``00 -> I``, ``01 -> X``, ``10 -> Z``, ``11 -> ZX`` on qubit 0.
    """
    b1, b2 = bits
    if b1 not in (0, 1) or b2 not in (0, 1):
        raise SimulationError("bits must be 0 or 1")
    state = create_epr_pair()
    if b2:
        state.apply_matrix(X_MATRIX, [0])
    if b1:
        state.apply_matrix(Z_MATRIX, [0])
    return state


def superdense_decode(state: Statevector, rng=None) -> tuple[int, int]:
    """Bell-measure both qubits to recover the two bits (deterministic)."""
    rng = ensure_rng(rng)
    (m_z, m_x), _ = bell_measurement(state, (0, 1), rng=rng)
    return (m_z, m_x)
