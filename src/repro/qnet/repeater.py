"""Repeater operations: entanglement swapping and BBPSSW purification.

Both operations are expressed in the Werner-state algebra (exact for
Werner inputs); the test suite cross-validates the swap formula against a
full 4-qubit density-matrix simulation of the Bell measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.qnet.link import fidelity_to_werner, werner_to_fidelity


def swap_fidelity(f1: float, f2: float) -> float:
    """Fidelity after swapping two Werner pairs at a repeater.

    Werner parameters multiply: ``w_out = w1 * w2``, i.e.
    ``F_out = (1 + 3 w1 w2) / 4`` — fidelity decays geometrically with the
    number of swaps, which is why long paths need purification.
    """
    for f in (f1, f2):
        if not 0.25 <= f <= 1.0:
            raise ReproError("swap expects Werner fidelities in [0.25, 1]")
    w = fidelity_to_werner(f1) * fidelity_to_werner(f2)
    return werner_to_fidelity(w)


@dataclass
class PurificationResult:
    """Outcome of one BBPSSW purification round."""

    success_probability: float
    output_fidelity: float


def purify(f1: float, f2: float) -> PurificationResult:
    """BBPSSW purification of two Werner pairs (keep one, consume one).

    Standard formulas (Bennett et al. 1996):

    * ``p = F1 F2 + F1 (1-F2)/3 + (1-F1) F2 / 3 + 5 (1-F1)(1-F2)/9``
    * ``F_out = (F1 F2 + (1-F1)(1-F2)/9) / p``
    """
    for f in (f1, f2):
        if not 0.25 <= f <= 1.0:
            raise ReproError("purification expects fidelities in [0.25, 1]")
    a = f1 * f2
    b = f1 * (1 - f2) / 3.0
    c = (1 - f1) * f2 / 3.0
    d = (1 - f1) * (1 - f2) * 5.0 / 9.0
    p = a + b + c + d
    f_out = (a + (1 - f1) * (1 - f2) / 9.0) / p
    return PurificationResult(success_probability=p, output_fidelity=f_out)


def purify_to_target(
    fidelity: float, target: float, max_rounds: int = 32, scheme: str = "nested"
) -> tuple[float, int, float]:
    """Purify repeatedly until ``target`` fidelity.

    Two schemes:

    * ``"nested"`` (recurrence): purify two pairs of the *current* fidelity
      — converges to 1 for any input above 1/2, at exponentially growing
      pair cost (pairs double per round, divided by the success
      probability).
    * ``"pumping"``: purify the kept pair with a *fresh* base-fidelity pair
      — cheap but saturates at a fixed point below 1.

    Returns ``(achieved_fidelity, rounds, expected_pairs_consumed)``;
    raises when the target is unreachable within ``max_rounds`` (always
    possible for pumping, whose fixed point may sit below the target).
    """
    if not 0.5 < fidelity <= 1.0:
        raise ReproError("purification needs input fidelity above 1/2")
    if scheme not in ("nested", "pumping"):
        raise ReproError("scheme must be 'nested' or 'pumping'")
    current = fidelity
    rounds = 0
    expected_pairs = 1.0
    while current < target:
        if rounds >= max_rounds:
            raise ReproError(
                f"target fidelity {target} unreachable from {fidelity} in {max_rounds} rounds"
            )
        partner = current if scheme == "nested" else fidelity
        step = purify(current, partner)
        if step.output_fidelity <= current + 1e-12:
            raise ReproError(
                f"purification stalled at fidelity {current:.4f} below target {target}"
            )
        if scheme == "nested":
            expected_pairs = 2.0 * expected_pairs / step.success_probability
        else:
            expected_pairs += 1.0 / step.success_probability
        current = step.output_fidelity
        rounds += 1
    return current, rounds, expected_pairs


def chain_fidelity(link_fidelities: list[float]) -> float:
    """End-to-end fidelity of swapping a chain of Werner links."""
    if not link_fidelities:
        raise ReproError("empty repeater chain")
    result = link_fidelities[0]
    for f in link_fidelities[1:]:
        result = swap_fidelity(result, f)
    return result
