"""Bell-pair primitives: creation and Bell-state measurement."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.bell import bell_state
from repro.quantum.gates import H_MATRIX, cnot_gate
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


def create_epr_pair() -> Statevector:
    """A fresh ``|Phi+>`` pair (Example IV.1)."""
    return bell_state("phi+")


def bell_measurement(state: Statevector, qubits: tuple[int, int], rng=None) -> tuple[tuple[int, int], Statevector]:
    """Measure two qubits in the Bell basis.

    Implemented by rotating the Bell basis onto the computational basis
    (CNOT then H) and measuring.  The outcome bits ``(m_z, m_x)`` identify
    the Bell state: ``00 -> Phi+``, ``01 -> Psi+``, ``10 -> Phi-``,
    ``11 -> Psi-``.
    """
    rng = ensure_rng(rng)
    a, b = qubits
    if a == b:
        raise SimulationError("Bell measurement needs two distinct qubits")
    rotated = state.copy()
    rotated.apply_matrix(cnot_gate().matrix, [a, b])
    rotated.apply_matrix(H_MATRIX, [a])
    bits, post = rotated.measure([a, b], rng=rng)
    return (bits[0], bits[1]), post
