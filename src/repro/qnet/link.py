"""Physical entanglement links: heralded generation of Werner pairs.

A link attempts entanglement generation in discrete time slots; each
attempt succeeds with probability ``success_prob`` and delivers a Werner
pair of fidelity ``base_fidelity``.  While a pair waits in memory its
Werner parameter decays exponentially with the memory coherence time —
the standard abstraction for fibre/satellite links like the paper's
248 km / 1203 km demonstrations [5], [6].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


def fidelity_to_werner(fidelity: float) -> float:
    """Werner (depolarizing) parameter ``w = (4F - 1) / 3``."""
    return (4.0 * fidelity - 1.0) / 3.0


def werner_to_fidelity(w: float) -> float:
    """Inverse of :func:`fidelity_to_werner`."""
    return (3.0 * w + 1.0) / 4.0


@dataclass
class LinkResult:
    """One successful entanglement generation."""

    fidelity: float
    attempts: int
    time: float


class EntanglementLink:
    """A point-to-point entanglement generation link."""

    def __init__(
        self,
        success_prob: float = 0.3,
        base_fidelity: float = 0.95,
        attempt_time: float = 1.0,
        memory_coherence_time: float = 1_000.0,
    ):
        if not 0.0 < success_prob <= 1.0:
            raise ReproError("success_prob must be in (0, 1]")
        if not 0.25 <= base_fidelity <= 1.0:
            raise ReproError("base_fidelity must be in [0.25, 1]")
        self.success_prob = success_prob
        self.base_fidelity = base_fidelity
        self.attempt_time = attempt_time
        self.memory_coherence_time = memory_coherence_time

    def generate(self, rng=None) -> LinkResult:
        """Attempt until success; returns the delivered pair."""
        rng = ensure_rng(rng)
        attempts = 1 + int(rng.geometric(self.success_prob) - 1)
        return LinkResult(
            fidelity=self.base_fidelity,
            attempts=attempts,
            time=attempts * self.attempt_time,
        )

    def decohere(self, fidelity: float, wait_time: float) -> float:
        """Fidelity after ``wait_time`` in memory (Werner-parameter decay)."""
        w = fidelity_to_werner(fidelity)
        w *= math.exp(-wait_time / self.memory_coherence_time)
        return werner_to_fidelity(w)

    def expected_attempts(self) -> float:
        """Mean attempts to success (geometric distribution)."""
        return 1.0 / self.success_prob
