"""Quantum teleportation (Fig. 1(c): data transmission over entanglement).

The exact protocol runs on the statevector simulator; the Werner-channel
formula gives the expected fidelity when the shared pair is imperfect,
which the density-matrix test suite cross-validates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.bell import bell_state
from repro.quantum.density import DensityMatrix
from repro.quantum.gates import H_MATRIX, X_MATRIX, Z_MATRIX, cnot_gate
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass
class TeleportResult:
    """Outcome of one teleportation."""

    output_state: Statevector
    correction_bits: tuple[int, int]
    fidelity: float


def teleport(message: Statevector, rng=None) -> TeleportResult:
    """Teleport a single-qubit state over a perfect ``|Phi+>`` pair.

    Register layout: qubit 0 = message, qubits 1 and 2 = the shared pair
    (1 at the sender, 2 at the receiver).
    """
    if message.num_qubits != 1:
        raise SimulationError("teleport moves exactly one qubit")
    rng = ensure_rng(rng)
    system = message.tensor(bell_state("phi+"))
    # Bell measurement of (message, sender half).
    system.apply_matrix(cnot_gate().matrix, [0, 1])
    system.apply_matrix(H_MATRIX, [0])
    bits, post = system.measure([0, 1], rng=rng)
    m_z, m_x = bits
    if m_x:
        post.apply_matrix(X_MATRIX, [2])
    if m_z:
        post.apply_matrix(Z_MATRIX, [2])
    # Extract the receiver qubit: the first two qubits are now classical.
    reduced = post.partial_trace([2])
    eigvals, eigvecs = np.linalg.eigh(reduced)
    output = Statevector(eigvecs[:, int(np.argmax(eigvals))])
    fidelity = float(abs(output.inner(message)) ** 2)
    return TeleportResult(output, (m_z, m_x), fidelity)


def teleport_via_werner(message: Statevector, pair_fidelity: float, rng=None) -> tuple[DensityMatrix, float]:
    """Teleport through a Werner pair of the given fidelity (exact, mixed).

    Returns the receiver's (mixed) output state and its fidelity to the
    message.  Averaged over inputs the fidelity follows
    :func:`teleport_fidelity_via_werner`.
    """
    if message.num_qubits != 1:
        raise SimulationError("teleport moves exactly one qubit")
    rng = ensure_rng(rng)
    rho = DensityMatrix.from_statevector(message).tensor(DensityMatrix.werner(pair_fidelity))
    # Bell measurement on qubits (0, 1), averaged over outcomes with the
    # matching correction applied: the result is outcome-independent for
    # Werner pairs, so apply the 00 branch projectively via Kraus averaging.
    rho.apply_matrix(cnot_gate().matrix, [0, 1])
    rho.apply_matrix(H_MATRIX, [0])
    corrections = {
        (0, 0): np.eye(2, dtype=complex),
        (0, 1): X_MATRIX,
        (1, 0): Z_MATRIX,
        (1, 1): Z_MATRIX @ X_MATRIX,
    }
    dim = rho.dim
    indices = np.arange(dim)
    out = np.zeros((2, 2), dtype=complex)
    for (mz, mx), corr in corrections.items():
        mask = (((indices >> 2) & 1) == mz) & (((indices >> 1) & 1) == mx)
        proj = np.where(mask, 1.0, 0.0)
        branch = rho.matrix * np.outer(proj, proj)
        prob = np.trace(branch).real
        if prob < 1e-12:
            continue
        branch_dm = DensityMatrix(branch / prob, validate=False)
        receiver = branch_dm.partial_trace([2])
        receiver.apply_matrix(corr, [0])
        out += prob * receiver.matrix
    result = DensityMatrix(out)
    return result, result.fidelity_with_pure(message)


def teleport_fidelity_via_werner(pair_fidelity: float) -> float:
    """Average teleportation fidelity over a Werner pair: ``(2F + 1) / 3``."""
    if not 0.0 <= pair_fidelity <= 1.0:
        raise SimulationError("fidelity must be in [0, 1]")
    return (2.0 * pair_fidelity + 1.0) / 3.0
