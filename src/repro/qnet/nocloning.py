"""The no-cloning theorem, operationally (Sec. IV-B.1 of the paper).

Two artefacts back the data-management discussion:

* :func:`cloning_is_impossible` — the linearity argument: no unitary can
  clone two non-orthogonal states (checked numerically for any pair);
* :class:`UniversalCloner` — the optimal Buzek-Hillery 1 -> 2 universal
  cloning machine, whose copies reach fidelity exactly 5/6: the best
  physics allows, and the reason quantum "replication" in Sec. IV-B must
  be re-preparation instead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NoCloningError, SimulationError
from repro.quantum.density import DensityMatrix
from repro.quantum.state import Statevector

UNIVERSAL_CLONER_FIDELITY = 5.0 / 6.0


def cloning_is_impossible(psi: Statevector, phi: Statevector, atol: float = 1e-9) -> bool:
    """Whether linearity forbids a device cloning both ``psi`` and ``phi``.

    A unitary ``U`` with ``U|s,0> = |s,s>`` for both states forces
    ``<psi|phi> = <psi|phi>^2``, possible only for orthogonal or identical
    states.  Returns ``True`` when the pair *cannot* be cloned.
    """
    if psi.num_qubits != phi.num_qubits:
        raise SimulationError("states must share the register width")
    overlap = psi.inner(phi)
    return bool(abs(overlap - overlap**2) > atol)


def attempt_exact_clone(state: Statevector) -> None:
    """A 'copy' API for quantum payloads: always refuses.

    Raised rather than returned so data-management layers can surface the
    physical impossibility as an error class
    (:class:`~repro.exceptions.NoCloningError`).
    """
    raise NoCloningError(
        "arbitrary quantum states cannot be copied (no-cloning theorem); "
        "re-prepare from a classical description or move the state instead"
    )


class UniversalCloner:
    """The optimal universal quantum cloning machine (Buzek-Hillery).

    Each output copy carries the shrunken state
    ``rho = (2/3)|psi><psi| + (1/3)(I/2)``, giving fidelity exactly 5/6
    for every pure input.
    """

    shrink_factor = 2.0 / 3.0

    def clone(self, state: Statevector) -> tuple[DensityMatrix, DensityMatrix]:
        """Return the two (identical, imperfect) output copies."""
        if state.num_qubits != 1:
            raise SimulationError("the universal cloner copies single qubits")
        pure = np.outer(state.data, state.data.conj())
        mixed = self.shrink_factor * pure + (1.0 - self.shrink_factor) * np.eye(2) / 2.0
        copy = DensityMatrix(mixed)
        return copy, copy.copy()

    def copy_fidelity(self, state: Statevector) -> float:
        """Fidelity of each copy to the input (always 5/6)."""
        copy, _ = self.clone(state)
        return copy.fidelity_with_pure(state)
