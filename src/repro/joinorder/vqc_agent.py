"""Join ordering as reinforcement learning with a VQC policy (Winker et al. [27]).

The environment builds a left-deep plan one relation at a time; the policy
is a data re-uploading variational quantum circuit whose measurement
distribution over action qubits selects the next relation.  Training uses
REINFORCE with a moving-average baseline; the reward is the negative
log-cost of the finished plan, so maximising reward minimises plan cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.vqc import VariationalCircuit
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_leftdeep
from repro.db.plans import leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


class JoinOrderEnv:
    """Episodic left-deep plan construction over a join graph."""

    def __init__(self, graph: JoinGraph):
        self.graph = graph
        self.relations = graph.relations
        self.n = len(self.relations)
        self.cost_model = CostModel(graph)
        self._joined: list[str] = []

    def reset(self) -> np.ndarray:
        self._joined = []
        return self.features()

    def features(self) -> np.ndarray:
        """Feature vector: joined-indicator per relation (0/1)."""
        joined = set(self._joined)
        return np.array([1.0 if r in joined else 0.0 for r in self.relations])

    @property
    def done(self) -> bool:
        return len(self._joined) == self.n

    def valid_actions(self) -> list[int]:
        """Remaining relations; prefer graph neighbours of the prefix."""
        joined = set(self._joined)
        remaining = [i for i, r in enumerate(self.relations) if r not in joined]
        if not self._joined:
            return remaining
        connected = [
            i for i in remaining
            if self.graph.connects(joined, [self.relations[i]])
        ]
        return connected or remaining

    def step(self, action: int) -> np.ndarray:
        rel = self.relations[action]
        if rel in self._joined:
            raise ReproError(f"relation {rel} already joined")
        self._joined.append(rel)
        return self.features()

    def final_cost(self) -> float:
        if not self.done:
            raise ReproError("episode not finished")
        return self.cost_model.cost(leftdeep_tree_from_order(self._joined))

    def final_order(self) -> list[str]:
        return list(self._joined)


@dataclass
class TrainingHistory:
    """Per-episode training metrics."""

    costs: list[float] = field(default_factory=list)
    ratios: list[float] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)

    def mean_ratio(self, window: int = 20) -> float:
        """Mean cost ratio (vs optimal) over the last ``window`` episodes."""
        if not self.ratios:
            return float("nan")
        return float(np.mean(self.ratios[-window:]))


class VQCJoinOrderAgent:
    """REINFORCE agent with a variational-quantum-circuit policy."""

    def __init__(
        self,
        graph: JoinGraph,
        num_layers: int = 2,
        learning_rate: float = 0.15,
        gradient_eps: float = 0.05,
    ):
        self.env = JoinOrderEnv(graph)
        self.n = self.env.n
        num_qubits = max(2, (self.n - 1).bit_length(), 2)
        # Qubit count must cover the action space *and* give the encoding
        # enough width for the feature vector.
        self.vqc = VariationalCircuit(max(num_qubits, min(self.n, 6)), num_layers=num_layers)
        self.learning_rate = learning_rate
        self.gradient_eps = gradient_eps
        _, self.optimal_cost = dp_optimal_leftdeep(graph)
        self.params: "np.ndarray | None" = None

    # -- acting ---------------------------------------------------------------

    def _policy(self, features: np.ndarray, valid: list[int], params: np.ndarray) -> np.ndarray:
        return self.vqc.policy(features, params, num_actions=self.n, valid_actions=valid)

    def run_episode(self, params: np.ndarray, rng, greedy: bool = False, exploration: float = 0.0):
        """Play one episode; returns (trajectory, final_cost).

        ``exploration`` mixes the quantum policy with a uniform distribution
        over valid actions (epsilon-greedy style) so early near-deterministic
        policies still explore the plan space.
        """
        env = self.env
        features = env.reset()
        trajectory = []
        while not env.done:
            valid = env.valid_actions()
            probs = self._policy(features, valid, params)
            if greedy:
                action = int(np.argmax(probs))
            else:
                if exploration > 0.0:
                    uniform = np.zeros(self.n)
                    uniform[valid] = 1.0 / len(valid)
                    probs = (1.0 - exploration) * probs + exploration * uniform
                    probs = probs / probs.sum()
                action = int(rng.choice(self.n, p=probs))
            trajectory.append((features.copy(), valid, action))
            features = env.step(action)
        return trajectory, env.final_cost()

    def greedy_order(self, params: "np.ndarray | None" = None) -> list[str]:
        """The deterministic plan under the (trained) policy."""
        params = params if params is not None else self.params
        if params is None:
            raise ReproError("agent is untrained; call train() first")
        rng = ensure_rng(0)
        self.run_episode(params, rng, greedy=True)
        return self.env.final_order()

    # -- training ----------------------------------------------------------------

    def _reward(self, cost: float) -> float:
        """Negative log cost ratio: 0 when optimal, below 0 otherwise."""
        return -math.log10(max(cost / max(self.optimal_cost, 1e-12), 1.0))

    def train(self, episodes: int = 100, rng=None, exploration: float = 0.4) -> TrainingHistory:
        """REINFORCE with finite-difference policy gradients.

        ``exploration`` is the initial epsilon of the uniform mixing; it
        decays linearly to zero over the training run.
        """
        rng = ensure_rng(rng)
        params = rng.uniform(-0.8, 0.8, size=self.vqc.num_parameters)
        history = TrainingHistory()
        baseline = 0.0
        for episode in range(episodes):
            eps = exploration * max(0.0, 1.0 - episode / max(episodes - 1, 1))
            trajectory, cost = self.run_episode(params, rng, exploration=eps)
            reward = self._reward(cost)
            history.costs.append(cost)
            history.ratios.append(cost / max(self.optimal_cost, 1e-12))
            history.rewards.append(reward)
            baseline = reward if episode == 0 else 0.9 * baseline + 0.1 * reward
            advantage = reward - baseline
            if abs(advantage) < 1e-12:
                continue
            grad = np.zeros_like(params)
            for features, valid, action in trajectory:
                grad += self._log_policy_gradient(features, valid, action, params)
            params = params + self.learning_rate * advantage * grad
        self.params = params
        return history

    def _log_policy_gradient(
        self, features: np.ndarray, valid: list[int], action: int, params: np.ndarray
    ) -> np.ndarray:
        """Central finite differences of ``log pi(action | features)``."""
        eps = self.gradient_eps
        grad = np.zeros_like(params)
        for k in range(params.size):
            plus = params.copy()
            plus[k] += eps
            minus = params.copy()
            minus[k] -= eps
            lp = math.log(self._policy(features, valid, plus)[action])
            lm = math.log(self._policy(features, valid, minus)[action])
            grad[k] = (lp - lm) / (2.0 * eps)
        return grad
