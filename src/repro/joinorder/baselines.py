"""Uniform-result wrappers over classical and quantum join-ordering solvers.

The benchmark harness compares many methods; this module gives them all the
same ``JoinOrderOutcome`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.qaoa import QAOA
from repro.annealing.simulated_annealing import SimulatedAnnealingSolver
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep, greedy_operator_ordering, random_order
from repro.db.plans import JoinTree, leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.joinorder.bushy_qubo import BushyJoinQubo
from repro.joinorder.leftdeep_qubo import LeftDeepJoinQubo
from repro.utils.rngtools import ensure_rng


@dataclass
class JoinOrderOutcome:
    """One solver's answer on one query."""

    method: str
    tree: JoinTree
    cost: float
    info: dict = field(default_factory=dict)

    def ratio_to(self, reference_cost: float) -> float:
        """Cost ratio vs a reference optimum (1.0 = optimal)."""
        return self.cost / max(reference_cost, 1e-12)


def solve_dp_bushy(graph: JoinGraph) -> JoinOrderOutcome:
    tree, cost = dp_optimal_bushy(graph)
    return JoinOrderOutcome("dp_bushy", tree, cost)


def solve_dp_leftdeep(graph: JoinGraph) -> JoinOrderOutcome:
    tree, cost = dp_optimal_leftdeep(graph)
    return JoinOrderOutcome("dp_leftdeep", tree, cost)


def solve_greedy(graph: JoinGraph) -> JoinOrderOutcome:
    tree, cost = greedy_operator_ordering(graph)
    return JoinOrderOutcome("greedy", tree, cost)


def solve_random(graph: JoinGraph, rng=None) -> JoinOrderOutcome:
    tree, cost = random_order(graph, rng=rng)
    return JoinOrderOutcome("random", tree, cost)


def solve_leftdeep_annealing(
    graph: JoinGraph,
    num_reads: int = 24,
    num_sweeps: int = 384,
    rng=None,
) -> JoinOrderOutcome:
    """Left-deep permutation QUBO solved with simulated annealing."""
    rng = ensure_rng(rng)
    builder = LeftDeepJoinQubo(graph)
    model = builder.build()
    samples = SimulatedAnnealingSolver(num_reads=num_reads, num_sweeps=num_sweeps).solve(model, rng=rng)
    order = builder.decode(model, samples.best.bits)
    tree = leftdeep_tree_from_order(order)
    return JoinOrderOutcome(
        "qubo_leftdeep_sa",
        tree,
        CostModel(graph).cost(tree),
        info={"energy": samples.best.energy, "qubo_vars": model.num_variables},
    )


def solve_leftdeep_qaoa(
    graph: JoinGraph,
    num_layers: int = 2,
    maxiter: int = 120,
    restarts: int = 2,
    shots: int = 512,
    rng=None,
) -> JoinOrderOutcome:
    """Left-deep QUBO through QAOA (small queries only: n^2 qubits)."""
    rng = ensure_rng(rng)
    builder = LeftDeepJoinQubo(graph)
    model = builder.build()
    qaoa = QAOA.from_qubo(model, num_layers=num_layers)
    result = qaoa.run(maxiter=maxiter, restarts=restarts, shots=shots, rng=rng)
    order = builder.decode(model, result.best_bits)
    tree = leftdeep_tree_from_order(order)
    return JoinOrderOutcome(
        "qubo_leftdeep_qaoa",
        tree,
        CostModel(graph).cost(tree),
        info={"qubits": qaoa.num_qubits, "expectation": result.expectation},
    )


def solve_bushy_annealing(
    graph: JoinGraph,
    num_reads: int = 24,
    num_sweeps: int = 384,
    rng=None,
) -> JoinOrderOutcome:
    """Bushy edge-sequence QUBO solved with simulated annealing."""
    rng = ensure_rng(rng)
    builder = BushyJoinQubo(graph)
    model = builder.build()
    samples = SimulatedAnnealingSolver(num_reads=num_reads, num_sweeps=num_sweeps).solve(model, rng=rng)
    tree = builder.decode(model, samples.best.bits)
    return JoinOrderOutcome(
        "qubo_bushy_sa",
        tree,
        builder.true_cost(tree),
        info={"energy": samples.best.energy, "qubo_vars": model.num_variables},
    )
