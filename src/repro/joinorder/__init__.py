"""Join ordering on quantum hardware (Table I rows [23]-[27]).

Four routes are implemented:

* :mod:`.leftdeep_qubo` — permutation-matrix QUBO for left-deep trees with
  the log-cardinality surrogate cost (Schonberger et al. [23], [24]);
* :mod:`.bushy_qubo` — edge-contraction-sequence QUBO for bushy trees
  (Schonberger/Trummer [25], Nayak et al. [26]);
* :mod:`.milp` — the MILP/BILP intermediate formulation and its
  transformation to QUBO (the [24] co-design pipeline), plus a small exact
  branch-and-bound;
* :mod:`.vqc_agent` — join ordering as reinforcement learning with a
  variational-quantum-circuit policy (Winker et al. [27]).
"""

from repro.joinorder.bushy_qubo import BushyJoinQubo
from repro.joinorder.leftdeep_qubo import LeftDeepJoinQubo
from repro.joinorder.milp import Bilp, bilp_to_qubo, formulate_leftdeep_bilp, solve_branch_and_bound
from repro.joinorder.vqc_agent import JoinOrderEnv, VQCJoinOrderAgent

__all__ = [
    "BushyJoinQubo",
    "LeftDeepJoinQubo",
    "Bilp",
    "bilp_to_qubo",
    "formulate_leftdeep_bilp",
    "solve_branch_and_bound",
    "JoinOrderEnv",
    "VQCJoinOrderAgent",
]
