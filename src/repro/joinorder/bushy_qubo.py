"""Bushy join trees as an edge-contraction-sequence QUBO.

Encoding (in the spirit of Schonberger/Trummer [25] and Nayak et al. [26]):
binary variable ``x[e, s]`` = "join-graph edge e is contracted at step s"
for steps ``s = 0..n-2``.  Contracting an edge joins the two current
subtrees containing its endpoints, so a sequence of ``n-1`` distinct edges
of a connected join graph yields a valid bushy tree (redundant edges —
endpoints already merged — are skipped at decode time and repaired).

The quadratic cost surrogate charges each contraction its *local* log size
(log cardinalities of the two endpoint relations plus the predicate's log
selectivity) and adds a growth interaction: an edge contracted after an
adjacent edge also absorbs that edge's far relation.  This truncates the
exact (non-quadratic) cost at pairwise interactions — the same compromise
the published QUBO mappings make — and decoded trees are re-costed with
exact C_out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.cost import CostModel
from repro.db.plans import JoinTree, tree_from_edge_sequence
from repro.db.query import JoinGraph
from repro.exceptions import InfeasibleError
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_at_most_one_groups, add_exactly_one_groups


class BushyJoinQubo:
    """Builder + decoder for the bushy edge-sequence QUBO."""

    def __init__(self, graph: JoinGraph, penalty: "float | None" = None):
        self.graph = graph
        self.relations = graph.relations
        self.edges = graph.edges
        self.n = len(self.relations)
        self.num_steps = self.n - 1
        self.penalty = penalty

    def _log_card(self, r: str) -> float:
        return math.log10(self.graph.cardinality(r))

    def _log_sel(self, a: str, b: str) -> float:
        return math.log10(self.graph.selectivity(a, b))

    def build(self) -> QuboModel:
        # Variables are created e-major (index = e_pos * num_steps + s); the
        # coefficient groups below are bulk chunks over index arithmetic.
        steps = self.num_steps
        model = QuboModel()
        model.variables_from((e, s) for e in self.edges for s in range(steps))

        # Base cost of contracting edge e at any step: local log size.
        bases = np.array(
            [
                self._log_card(a) + self._log_card(b) + self._log_sel(a, b)
                for a, b in self.edges
            ]
        )
        model.add_linear_from(
            np.arange(len(self.edges) * steps), np.repeat(bases, steps)
        )

        # Growth interaction: if f = (c, d) shares a relation with e and is
        # contracted strictly earlier, e's intermediate also contains f's far
        # relation (and f's predicate applies).  tril_indices walks (s_e, s_f)
        # pairs with s_f < s_e in the same order the nested step loops did.
        s_e, s_f = np.tril_indices(steps, k=-1)
        for ie, e in enumerate(self.edges):
            ea, eb = e
            for jf, f in enumerate(self.edges):
                if f == e:
                    continue
                fa, fb = f
                shared = {ea, eb} & {fa, fb}
                if not shared:
                    continue
                far = fa if fb in shared else fb
                growth = self._log_card(far) + self._log_sel(fa, fb)
                model.add_quadratic_from(ie * steps + s_e, jf * steps + s_f, growth)

        weight = self.penalty if self.penalty is not None else self._default_penalty()
        num_edges = len(self.edges)
        if steps:
            add_exactly_one_groups(
                model,
                np.arange(steps)[:, np.newaxis] + np.arange(num_edges) * steps,
                weight,
            )
            edge_groups = np.arange(num_edges * steps).reshape(num_edges, steps)
            if num_edges == steps:
                add_exactly_one_groups(model, edge_groups, weight)
            else:
                # Cyclic graphs have more edges than steps: each edge at most once.
                add_at_most_one_groups(model, edge_groups, weight)
        return model

    def _default_penalty(self) -> float:
        max_lc = max(self._log_card(r) for r in self.relations)
        return (max_lc + 2.0) * self.n * max(len(self.edges), 1) + 1.0

    # -- decoding -------------------------------------------------------------

    def decode(self, model: QuboModel, bits, repair: bool = True) -> JoinTree:
        """Assignment -> bushy join tree (with repair of invalid sequences)."""
        assignment = model.decode(bits)
        sequence: list[tuple[str, str]] = []
        used: set[tuple[str, str]] = set()
        for s in range(self.num_steps):
            chosen = [e for e in self.edges if assignment.get((e, s), 0) == 1]
            if len(chosen) == 1 and chosen[0] not in used:
                sequence.append(chosen[0])
                used.add(chosen[0])
            elif not repair:
                raise InfeasibleError(f"step {s} selects {len(chosen)} edges")
        if repair:
            for e in self.edges:
                if e not in used:
                    sequence.append(e)
        try:
            return tree_from_edge_sequence(sequence, self.relations)
        except Exception as exc:  # disconnected after skipping redundant edges
            if not repair:
                raise
            raise InfeasibleError(f"unrepairable edge sequence: {exc}") from exc

    def true_cost(self, tree: JoinTree) -> float:
        return CostModel(self.graph).cost(tree)

    def energy_of_sequence(self, model: QuboModel, sequence: list[tuple[str, str]]) -> float:
        """QUBO energy of an explicit edge order (for cross-checks)."""
        bits = np.zeros(model.num_variables, dtype=int)
        for s, e in enumerate(sequence):
            bits[model.index_of((e, s))] = 1
        return model.energy(bits)
