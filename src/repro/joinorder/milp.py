"""The MILP/BILP intermediate formulation of join ordering, and BILP -> QUBO.

Schonberger et al. [24] derive their QUBO through a chain
``JO -> MILP -> BILP -> QUBO``.  This module reproduces that pipeline:

* :class:`Bilp` — binary integer linear programs with equality constraints
  and binary implications (``x_i <= x_j``);
* :func:`solve_branch_and_bound` — a small exact solver on scipy's LP
  relaxation;
* :func:`formulate_leftdeep_bilp` — left-deep join ordering with linearised
  prefix-pair variables;
* :func:`bilp_to_qubo` — the penalty transformation to QUBO.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.db.query import JoinGraph
from repro.exceptions import InfeasibleError, ReproError
from repro.qubo.model import QuboModel


@dataclass
class Bilp:
    """``min c.x`` s.t. ``A_eq x = b_eq``, ``x_i <= x_j`` implications, x binary.

    Variables carry hashable labels (parallel to :class:`QuboModel`).
    """

    labels: list = field(default_factory=list)
    objective: dict[int, float] = field(default_factory=dict)
    equalities: list[tuple[dict[int, float], float]] = field(default_factory=list)
    implications: list[tuple[int, int]] = field(default_factory=list)  # (i, j): x_i <= x_j

    def variable(self, label) -> int:
        try:
            return self.labels.index(label)
        except ValueError:
            self.labels.append(label)
            return len(self.labels) - 1

    @property
    def num_variables(self) -> int:
        return len(self.labels)

    def set_objective(self, label, coeff: float) -> None:
        self.objective[self.variable(label)] = self.objective.get(self.variable(label), 0.0) + coeff

    def add_equality(self, coeffs: dict, rhs: float) -> None:
        self.equalities.append(({self.variable(k): v for k, v in coeffs.items()}, rhs))

    def add_implication(self, smaller, larger) -> None:
        """Constrain ``x_smaller <= x_larger``."""
        self.implications.append((self.variable(smaller), self.variable(larger)))

    def is_feasible(self, bits: np.ndarray, atol: float = 1e-9) -> bool:
        for coeffs, rhs in self.equalities:
            total = sum(v * bits[i] for i, v in coeffs.items())
            if abs(total - rhs) > atol:
                return False
        return all(bits[i] <= bits[j] for i, j in self.implications)

    def objective_value(self, bits: np.ndarray) -> float:
        return float(sum(v * bits[i] for i, v in self.objective.items()))


def _lp_relaxation(bilp: Bilp, fixed: dict[int, int]):
    n = bilp.num_variables
    c = np.zeros(n)
    for i, v in bilp.objective.items():
        c[i] = v
    a_eq = np.zeros((len(bilp.equalities), n))
    b_eq = np.zeros(len(bilp.equalities))
    for row, (coeffs, rhs) in enumerate(bilp.equalities):
        for i, v in coeffs.items():
            a_eq[row, i] = v
        b_eq[row] = rhs
    a_ub = np.zeros((len(bilp.implications), n))
    for row, (i, j) in enumerate(bilp.implications):
        a_ub[row, i] = 1.0
        a_ub[row, j] = -1.0
    b_ub = np.zeros(len(bilp.implications))
    bounds = []
    for i in range(n):
        if i in fixed:
            bounds.append((fixed[i], fixed[i]))
        else:
            bounds.append((0.0, 1.0))
    return linprog(
        c,
        A_eq=a_eq if len(bilp.equalities) else None,
        b_eq=b_eq if len(bilp.equalities) else None,
        A_ub=a_ub if len(bilp.implications) else None,
        b_ub=b_ub if len(bilp.implications) else None,
        bounds=bounds,
        method="highs",
    )


def solve_branch_and_bound(bilp: Bilp, max_nodes: int = 20_000) -> tuple[np.ndarray, float]:
    """Exact BILP optimum via LP-relaxation branch and bound."""
    best_bits: "np.ndarray | None" = None
    best_value = float("inf")
    stack: list[dict[int, int]] = [{}]
    nodes = 0
    while stack:
        fixed = stack.pop()
        nodes += 1
        if nodes > max_nodes:
            raise ReproError("branch and bound exceeded node limit")
        res = _lp_relaxation(bilp, fixed)
        if not res.success:
            continue
        if res.fun >= best_value - 1e-12:
            continue
        x = np.clip(res.x, 0.0, 1.0)
        frac = np.where((x > 1e-6) & (x < 1 - 1e-6))[0]
        if frac.size == 0:
            bits = np.round(x).astype(int)
            if bilp.is_feasible(bits):
                value = bilp.objective_value(bits)
                if value < best_value:
                    best_value = value
                    best_bits = bits
            continue
        branch_var = int(frac[np.argmax(np.minimum(x[frac], 1 - x[frac]))])
        for val in (0, 1):
            child = dict(fixed)
            child[branch_var] = val
            stack.append(child)
    if best_bits is None:
        raise InfeasibleError("BILP has no feasible binary solution")
    return best_bits, best_value


def bilp_to_qubo(bilp: Bilp, penalty: "float | None" = None) -> QuboModel:
    """Penalty transformation: equalities squared, implications as x(1-y)."""
    if penalty is None:
        swing = sum(abs(v) for v in bilp.objective.values()) + 1.0
        penalty = swing
    model = QuboModel()
    for label in bilp.labels:
        model.variable(label)
    for i, v in bilp.objective.items():
        model.add_linear(bilp.labels[i], v)
    for coeffs, rhs in bilp.equalities:
        # penalty * (sum coeffs - rhs)^2
        items = list(coeffs.items())
        model.add_offset(penalty * rhs * rhs)
        for i, v in items:
            model.add_linear(bilp.labels[i], penalty * (v * v - 2.0 * rhs * v))
        for a in range(len(items)):
            for b in range(a + 1, len(items)):
                i, vi = items[a]
                j, vj = items[b]
                model.add_quadratic(bilp.labels[i], bilp.labels[j], 2.0 * penalty * vi * vj)
    for i, j in bilp.implications:
        # x_i <= x_j  <=>  penalise x_i (1 - x_j).
        model.add_linear(bilp.labels[i], penalty)
        model.add_quadratic(bilp.labels[i], bilp.labels[j], -penalty)
    return model


def formulate_leftdeep_bilp(graph: JoinGraph) -> Bilp:
    """Left-deep join ordering as a BILP with linearised prefix pairs.

    Variables:

    * ``("x", r, pos)`` — relation r at position pos (permutation matrix);
    * ``("z", edge, s)`` — both endpoints of ``edge`` inside the length-s
      prefix.  ``z <= y_a`` and ``z <= y_b`` (with ``y`` the prefix
      indicator, a sum of x's) are enforced via one auxiliary per (edge, s):
      because selectivity log-coefficients are negative, the minimiser
      pushes ``z`` to ``min(y_a, y_b)``, which is the AND for binaries.

    Objective: the same log-cost surrogate as
    :class:`~repro.joinorder.leftdeep_qubo.LeftDeepJoinQubo`.
    """
    bilp = Bilp()
    rels = graph.relations
    n = len(rels)
    for r in rels:
        for pos in range(n):
            bilp.variable(("x", r, pos))
    # Permutation constraints.
    for r in rels:
        bilp.add_equality({("x", r, pos): 1.0 for pos in range(n)}, 1.0)
    for pos in range(n):
        bilp.add_equality({("x", r, pos): 1.0 for r in rels}, 1.0)
    # Linear part of the objective (prefix counts, as in the QUBO).
    for r in rels:
        lc = math.log10(graph.cardinality(r))
        for pos in range(n):
            count = n - max(pos + 1, 2) + 1
            if count > 0:
                bilp.set_objective(("x", r, pos), lc * count)
    # Prefix-pair variables for each edge and prefix length s = 2..n-1
    # (the s = n prefix holds for every permutation: constant, skipped).
    for a, b in graph.edges:
        ls = math.log10(graph.selectivity(a, b))
        for s in range(2, n):
            z = ("z", (a, b), s)
            bilp.variable(z)
            bilp.set_objective(z, ls)
            # z <= y_a(s) and z <= y_b(s): since y is a 0/1 *sum* of x's we
            # link z to each position variable via one implication per
            # prefix: z <= sum_{pos<s} x[a,pos] can't be a plain binary
            # implication, so introduce it as an equality-free bound by
            # implying from z to an auxiliary "a in prefix s" indicator.
            ya = ("y", a, s)
            yb = ("y", b, s)
            bilp.variable(ya)
            bilp.variable(yb)
            bilp.add_implication(z, ya)
            bilp.add_implication(z, yb)
    # Tie each y indicator to the permutation: y[r, s] = sum_{pos < s} x[r, pos].
    seen_y = {label for label in bilp.labels if isinstance(label, tuple) and label[0] == "y"}
    for label in sorted(seen_y, key=str):
        _, r, s = label
        coeffs = {("x", r, pos): 1.0 for pos in range(s)}
        coeffs[label] = -1.0
        bilp.add_equality(coeffs, 0.0)
    return bilp


def decode_leftdeep_bilp(bilp: Bilp, bits: np.ndarray, graph: JoinGraph) -> list[str]:
    """Extract the join order from a BILP solution."""
    n = graph.num_relations
    order: list[str] = []
    for pos in range(n):
        for r in graph.relations:
            idx = bilp.labels.index(("x", r, pos))
            if bits[idx] == 1:
                order.append(r)
                break
    if len(order) != n:
        raise InfeasibleError("BILP solution is not a permutation")
    return order
