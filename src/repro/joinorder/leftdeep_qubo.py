"""Left-deep join ordering as a permutation QUBO.

Encoding (Schonberger et al. [23], [24] style): binary variable
``x[r, pos]`` = "relation r sits at position pos" with row/column
exactly-one constraints.  The objective is the standard *log-cost*
surrogate: the sum over prefix lengths ``s >= 2`` of the log cardinality of
the intermediate result after ``s`` relations,

    log |prefix_s| = sum_r log(card_r) [r in prefix_s]
                   + sum_{(a,b) in E} log(sel_ab) [a, b in prefix_s]

Both indicator groups expand to terms linear/quadratic in ``x`` (prefix
membership is a *sum* of position variables), so the whole objective is
quadratic — this is why the log-cost (not C_out itself) is what the
published QUBO mappings optimise.  Decoded orders are always re-costed with
the exact C_out model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.cost import CostModel
from repro.db.plans import leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.exceptions import InfeasibleError
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one_groups


class LeftDeepJoinQubo:
    """Builder + decoder for the left-deep permutation QUBO."""

    def __init__(self, graph: JoinGraph, penalty: "float | None" = None):
        self.graph = graph
        self.relations = graph.relations
        self.n = len(self.relations)
        self.penalty = penalty

    # -- building -------------------------------------------------------------

    def build(self) -> QuboModel:
        """The QUBO over ``n^2`` position variables.

        Variables are created r-major (index = r_pos * n + pos), so every
        coefficient group below is pure index arithmetic over bulk chunks.
        """
        n = self.n
        model = QuboModel()
        model.variables_from((r, pos) for r in self.relations for pos in range(n))

        # Objective: sum over prefix lengths s=2..n of log10 |prefix_s|.
        # A variable x[r, pos] contributes log10(card_r) to every prefix with
        # s >= max(pos+1, 2); there are n - max(pos+1, 2) + 1 such prefixes.
        pos = np.arange(n)
        counts = n - np.maximum(pos + 1, 2) + 1
        live = counts > 0
        log_cards = np.array(
            [math.log10(self.graph.cardinality(r)) for r in self.relations]
        )
        model.add_linear_from(
            (np.arange(n)[:, np.newaxis] * n + pos[live]).ravel(),
            (log_cards[:, np.newaxis] * counts[live].astype(np.float64)).ravel(),
        )
        # A predicate (a, b) contributes log10(sel) to every prefix
        # containing both; the pair (x[a,p], x[b,q]) is inside prefixes with
        # s >= max(p, q) + 1 (and s >= 2, implied since p != q).
        rel_pos = {r: i for i, r in enumerate(self.relations)}
        P, Q = np.meshgrid(pos, pos, indexing="ij")
        offdiag = (P != Q).ravel()
        p, q = P.ravel()[offdiag], Q.ravel()[offdiag]
        pair_counts = (n - np.maximum(p, q)).astype(np.float64)
        for a, b in self.graph.edges:
            ls = math.log10(self.graph.selectivity(a, b))
            model.add_quadratic_from(
                rel_pos[a] * n + p, rel_pos[b] * n + q, ls * pair_counts
            )

        weight = self.penalty if self.penalty is not None else self._default_penalty()
        add_exactly_one_groups(model, pos[:, np.newaxis] * n + pos, weight)
        add_exactly_one_groups(model, pos[np.newaxis, :] * n + pos[:, np.newaxis], weight)
        return model

    def _default_penalty(self) -> float:
        """Dominates the largest possible objective swing of one variable."""
        n = self.n
        max_lc = max(math.log10(self.graph.cardinality(r)) for r in self.relations)
        max_ls = max(abs(math.log10(self.graph.selectivity(a, b))) for a, b in self.graph.edges) if self.graph.edges else 1.0
        return (max_lc + max_ls * max(len(self.graph.edges), 1)) * n + 1.0

    # -- decoding ----------------------------------------------------------------

    def decode(self, model: QuboModel, bits, repair: bool = True) -> list[str]:
        """Assignment -> join order, with greedy repair of broken permutations."""
        assignment = model.decode(bits)
        order: list["str | None"] = [None] * self.n
        used: set[str] = set()
        for pos in range(self.n):
            chosen = [r for r in self.relations if assignment.get((r, pos), 0) == 1]
            if len(chosen) == 1 and chosen[0] not in used:
                order[pos] = chosen[0]
                used.add(chosen[0])
            elif not repair:
                raise InfeasibleError(f"position {pos} has {len(chosen)} relations")
        if repair:
            remaining = [r for r in self.relations if r not in used]
            for pos in range(self.n):
                if order[pos] is None:
                    order[pos] = remaining.pop(0)
        return [r for r in order if r is not None]

    def surrogate_cost(self, order: list[str]) -> float:
        """The log-cost the QUBO optimises, computed directly."""
        cm = CostModel(self.graph)
        return cm.log_cost(leftdeep_tree_from_order(order))

    def true_cost(self, order: list[str]) -> float:
        """Exact C_out of the decoded plan."""
        cm = CostModel(self.graph)
        return cm.cost(leftdeep_tree_from_order(order))

    def energy_of_order(self, model: QuboModel, order: list[str]) -> float:
        """QUBO energy of a (feasible) permutation, for cross-checks."""
        bits = np.zeros(model.num_variables, dtype=int)
        for pos, r in enumerate(order):
            bits[model.index_of((r, pos))] = 1
        return model.energy(bits)
