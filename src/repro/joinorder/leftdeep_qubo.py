"""Left-deep join ordering as a permutation QUBO.

Encoding (Schonberger et al. [23], [24] style): binary variable
``x[r, pos]`` = "relation r sits at position pos" with row/column
exactly-one constraints.  The objective is the standard *log-cost*
surrogate: the sum over prefix lengths ``s >= 2`` of the log cardinality of
the intermediate result after ``s`` relations,

    log |prefix_s| = sum_r log(card_r) [r in prefix_s]
                   + sum_{(a,b) in E} log(sel_ab) [a, b in prefix_s]

Both indicator groups expand to terms linear/quadratic in ``x`` (prefix
membership is a *sum* of position variables), so the whole objective is
quadratic — this is why the log-cost (not C_out itself) is what the
published QUBO mappings optimise.  Decoded orders are always re-costed with
the exact C_out model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.cost import CostModel
from repro.db.plans import leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.exceptions import InfeasibleError
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one


class LeftDeepJoinQubo:
    """Builder + decoder for the left-deep permutation QUBO."""

    def __init__(self, graph: JoinGraph, penalty: "float | None" = None):
        self.graph = graph
        self.relations = graph.relations
        self.n = len(self.relations)
        self.penalty = penalty

    # -- building -------------------------------------------------------------

    def build(self) -> QuboModel:
        """The QUBO over ``n^2`` position variables."""
        n = self.n
        model = QuboModel()
        for r in self.relations:
            for pos in range(n):
                model.variable((r, pos))

        # Objective: sum over prefix lengths s=2..n of log10 |prefix_s|.
        # A variable x[r, pos] contributes log10(card_r) to every prefix with
        # s >= max(pos+1, 2); there are n - max(pos+1, 2) + 1 such prefixes.
        for r in self.relations:
            lc = math.log10(self.graph.cardinality(r))
            for pos in range(n):
                count = n - max(pos + 1, 2) + 1
                if count > 0:
                    model.add_linear((r, pos), lc * count)
        # A predicate (a, b) contributes log10(sel) to every prefix
        # containing both; the pair (x[a,p], x[b,q]) is inside prefixes with
        # s >= max(p, q) + 1 (and s >= 2, implied since p != q).
        for a, b in self.graph.edges:
            ls = math.log10(self.graph.selectivity(a, b))
            for p in range(n):
                for q in range(n):
                    if p == q:
                        continue
                    count = n - max(p, q)
                    model.add_quadratic((a, p), (b, q), ls * count)

        weight = self.penalty if self.penalty is not None else self._default_penalty()
        for r in self.relations:
            add_exactly_one(model, [(r, pos) for pos in range(n)], weight)
        for pos in range(n):
            add_exactly_one(model, [(r, pos) for r in self.relations], weight)
        return model

    def _default_penalty(self) -> float:
        """Dominates the largest possible objective swing of one variable."""
        n = self.n
        max_lc = max(math.log10(self.graph.cardinality(r)) for r in self.relations)
        max_ls = max(abs(math.log10(self.graph.selectivity(a, b))) for a, b in self.graph.edges) if self.graph.edges else 1.0
        return (max_lc + max_ls * max(len(self.graph.edges), 1)) * n + 1.0

    # -- decoding ----------------------------------------------------------------

    def decode(self, model: QuboModel, bits, repair: bool = True) -> list[str]:
        """Assignment -> join order, with greedy repair of broken permutations."""
        assignment = model.decode(bits)
        order: list["str | None"] = [None] * self.n
        used: set[str] = set()
        for pos in range(self.n):
            chosen = [r for r in self.relations if assignment.get((r, pos), 0) == 1]
            if len(chosen) == 1 and chosen[0] not in used:
                order[pos] = chosen[0]
                used.add(chosen[0])
            elif not repair:
                raise InfeasibleError(f"position {pos} has {len(chosen)} relations")
        if repair:
            remaining = [r for r in self.relations if r not in used]
            for pos in range(self.n):
                if order[pos] is None:
                    order[pos] = remaining.pop(0)
        return [r for r in order if r is not None]

    def surrogate_cost(self, order: list[str]) -> float:
        """The log-cost the QUBO optimises, computed directly."""
        cm = CostModel(self.graph)
        return cm.log_cost(leftdeep_tree_from_order(order))

    def true_cost(self, order: list[str]) -> float:
        """Exact C_out of the decoded plan."""
        cm = CostModel(self.graph)
        return cm.cost(leftdeep_tree_from_order(order))

    def energy_of_order(self, model: QuboModel, order: list[str]) -> float:
        """QUBO energy of a (feasible) permutation, for cross-checks."""
        bits = np.zeros(model.num_variables, dtype=int)
        for pos, r in enumerate(order):
            bits[model.index_of((r, pos))] = 1
        return model.energy(bits)
