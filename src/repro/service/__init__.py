"""repro.service — async solver-as-a-service over the ``repro`` engine.

The service tier turns the batch-shaped engine into a request-shaped one:
independent ``POST /v1/solve`` submissions are **coalesced** into
``solve_many`` waves (window + max-wave policy, single-flight dedup)
without changing any result — explicit per-request seeds plus single-item
shards make every coalesced solve bit-identical to the direct facade
call.  See ``docs/service.md`` for the architecture and the HTTP API.

Programmatic entry points::

    from repro.service import SolverService, ServiceServer, load_config

    service = SolverService(load_config("service.toml"))
    server = ServiceServer(service)
    await server.start(); ...; await server.shutdown()

or ``python -m repro.service [--config service.toml] [--host H] [--port P]``.
"""

from repro.service.admission import (
    DEFAULT_LANE_WEIGHTS,
    PRIORITIES,
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionShed,
    TenantBudget,
)
from repro.service.app import SolverService
from repro.service.coalesce import CoalescingQueue, QueueClosed, QueueFull
from repro.service.config import ServiceConfig, load_config
from repro.service.http import ServiceServer
from repro.service.jobs import Job, JobBook
from repro.service.metrics import MetricsRegistry
from repro.service.problems import list_kinds, problem_from_spec

__all__ = [
    "SolverService",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionShed",
    "TenantBudget",
    "PRIORITIES",
    "DEFAULT_LANE_WEIGHTS",
    "ServiceServer",
    "ServiceConfig",
    "load_config",
    "CoalescingQueue",
    "QueueFull",
    "QueueClosed",
    "Job",
    "JobBook",
    "MetricsRegistry",
    "problem_from_spec",
    "list_kinds",
]
