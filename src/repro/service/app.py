"""The solver service: jobs in, coalesced engine waves out, metrics up.

:class:`SolverService` owns the long-lived engine state (one
:class:`~repro.engine.cache.ResultCache`, one
:class:`~repro.engine.scheduler.BackendScoreboard` — wrapped in an
:class:`~repro.engine.scheduler.AdaptiveScheduler` when the fleet has more
than one backend — and optionally one durable
:class:`~repro.engine.store.EngineStore`), the job book, the coalescing
queue, and the dispatcher task that turns queued submissions into
``solve_many`` waves.

**Determinism contract.**  Every wave dispatches with *explicit per-request
seeds* and ``max_shard_size=1``: each request is its own shard leader, so
its result is exactly the one a direct ``repro.solve(problem,
backend=..., seed=...)`` call returns — the same objective, the same
samples, the same cache key — no matter which wave it rode in or with
whom.  Coalescing is therefore free of result skew; what it buys is
amortisation: one executor dispatch per wave instead of per request,
**single-flight dedup** (identical ``(problem fingerprint, seed)``
submissions in one wave are solved once and fanned out), shared cache and
store tiers, and — in fleet mode — scoreboard routing per structure.

Threading model: the event loop owns jobs/queue/metrics bookkeeping; each
wave's engine call runs in a worker thread (``asyncio.to_thread``) and
marshals back to the loop before touching any job.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.scheduler import AdaptiveScheduler, BackendScoreboard
from repro.engine.store import record_best_effort, resolve_store
from repro.exceptions import ReproError
from repro.obs.log import get_logger
from repro.service.admission import (
    DEFAULT_TENANT,
    PRIORITIES,
    AdmissionPolicy,
    AdmissionShed,
    TenantBudget,
)
from repro.service.coalesce import CoalescingQueue
from repro.service.config import ServiceConfig
from repro.service.jobs import STATES, Job, JobBook
from repro.service.metrics import (
    LATENCY_BUCKETS,
    WAVE_BUCKETS,
    MetricsRegistry,
)
from repro.service.problems import problem_from_spec

#: Engine seed ceiling (repro.engine.plan._SEED_RANGE): request seeds must
#: be valid explicit child seeds.
MAX_SEED = 2**63 - 1


class SolverService:
    """Coalescing solver-as-a-service over the ``repro`` engine."""

    def __init__(self, config: "ServiceConfig | None" = None):
        self.config = (config or ServiceConfig()).validate()
        self.jobs = JobBook(retention=self.config.job_retention)
        self.queue = CoalescingQueue(
            window_s=self.config.window_s,
            max_wave=self.config.max_wave,
            max_depth=self.config.max_queue_depth,
            lane_weights=self.config.resolved_lane_weights(),
        )

        # -- long-lived engine state ----------------------------------------
        store_spec = False if self.config.store == "" else self.config.store
        self.store = resolve_store(store_spec)
        cache_spec = self.config.cache
        if cache_spec is True:
            self.cache = ResultCache()
        elif cache_spec in (False, None):
            self.cache = None
        elif isinstance(cache_spec, str):
            self.cache = ResultCache(directory=cache_spec)
        else:
            raise ReproError("service cache must be true/false or a directory path")
        self.scoreboard = BackendScoreboard(store=self.store)
        self.scheduler: "AdaptiveScheduler | None" = None
        if self.config.scheduled:
            self.scheduler = AdaptiveScheduler(
                scoreboard=self.scoreboard,
                epsilon=self.config.epsilon,
                seed=self.config.scheduler_seed,
                deadline_s=self.config.scheduler_deadline_s,
            )
        # Degraded requests run on the classical tier; a multi-name tier
        # gets its own scheduler so routing stays inside the scheduled
        # determinism contract (same scoreboard, same seed discipline).
        self._degrade_scheduler: "AdaptiveScheduler | None" = None
        if len(self.config.degrade_backends) > 1:
            self._degrade_scheduler = AdaptiveScheduler(
                scoreboard=self.scoreboard,
                epsilon=self.config.epsilon,
                seed=self.config.scheduler_seed,
                deadline_s=self.config.scheduler_deadline_s,
            )

        # -- admission -------------------------------------------------------
        self.admission = AdmissionPolicy(
            queue=self.queue,
            scoreboard=self.scoreboard,
            backends=self.config.backends,
            tenants=self.config.tenants,
            default_budget=TenantBudget.from_mapping(
                self.config.default_budget, where="default budget"
            ),
            degrade_backends=self.config.degrade_backends,
            degrade_ratio=self.config.degrade_ratio,
        )

        # -- observability ---------------------------------------------------
        # The recorder is the tracer's sink: every finished span of every
        # request lands in the ring buffer behind GET /v1/traces.  With
        # trace=false both stay None and every span call site degrades to
        # the shared no-op scope.
        self.recorder: "obs.FlightRecorder | None" = None
        self.tracer: "obs.Tracer | None" = None
        if self.config.trace:
            self.recorder = obs.FlightRecorder(max_traces=self.config.trace_buffer)
            self.tracer = obs.Tracer(sink=self.recorder.record)
        self._log = get_logger("service")

        # -- lifecycle -------------------------------------------------------
        self._accepting = False
        self._draining = False
        self._stopped = False
        self._started_at = time.time()
        self._dispatcher: "asyncio.Task | None" = None
        self._wave_tasks: "set[asyncio.Task]" = set()
        self._inflight = asyncio.Semaphore(self.config.max_inflight_waves)
        self._wave_counter = 0

        self._build_metrics()

    # -- metrics ---------------------------------------------------------------

    def _build_metrics(self) -> None:
        reg = self.metrics = MetricsRegistry()
        m = self._m = {}
        m["requests"] = reg.counter(
            "repro_service_requests_total", "Accepted solve submissions."
        )
        m["rejected"] = reg.counter(
            "repro_service_rejected_total",
            "Rejected submissions by reason.",
            labelnames=("reason",),
        )
        m["responses"] = reg.counter(
            "repro_service_responses_total",
            "Finished jobs by terminal status.",
            labelnames=("status",),
        )
        m["waves"] = reg.counter(
            "repro_service_waves_total", "Coalesced solve_many dispatch waves."
        )
        m["unique_solves"] = reg.counter(
            "repro_service_wave_unique_solves_total",
            "Engine solves dispatched after single-flight dedup.",
        )
        m["deduped"] = reg.counter(
            "repro_service_deduped_requests_total",
            "Requests served by another identical request in the same wave.",
        )
        m["wave_size"] = reg.histogram(
            "repro_service_wave_size",
            "Requests per dispatched wave.",
            buckets=WAVE_BUCKETS,
        )
        m["latency"] = reg.histogram(
            "repro_service_request_latency_seconds",
            "Submit-to-finish request latency.",
            buckets=LATENCY_BUCKETS,
        )
        m["admission"] = reg.counter(
            "repro_service_admission_total",
            "Admission decisions by action and priority.",
            labelnames=("decision", "priority"),
        )
        m["tenant_requests"] = reg.counter(
            "repro_service_tenant_requests_total",
            "Admission decisions per tenant.",
            labelnames=("tenant", "decision"),
        )
        m["tenant_latency"] = reg.histogram(
            "repro_service_tenant_latency_seconds",
            "Submit-to-finish latency per tenant.",
            buckets=LATENCY_BUCKETS,
            labelnames=("tenant",),
        )
        m["tenant_jobs"] = reg.gauge(
            "repro_service_tenant_jobs",
            "Retained jobs by tenant and state.",
            labelnames=("tenant", "state"),
        )
        m["queue_depth"] = reg.gauge(
            "repro_service_queue_depth", "Undispatched submissions."
        )
        m["lane_depth"] = reg.gauge(
            "repro_service_lane_depth",
            "Undispatched submissions per priority lane.",
            labelnames=("lane",),
        )
        m["jobs"] = reg.gauge(
            "repro_service_jobs", "Retained jobs by state.", labelnames=("state",)
        )
        m["uptime"] = reg.gauge("repro_service_uptime_seconds", "Seconds since boot.")
        m["ready"] = reg.gauge(
            "repro_service_ready", "1 when accepting submissions, else 0."
        )
        m["cache"] = reg.gauge(
            "repro_engine_cache", "ResultCache counters.", labelnames=("event",)
        )
        m["backend"] = reg.gauge(
            "repro_backend_capacity",
            "Per-backend scoreboard capacity stats (EWMA latency/quality, rates).",
            labelnames=("backend", "stat"),
        )
        m["store"] = reg.gauge(
            "repro_engine_store", "Durable EngineStore row/byte totals.",
            labelnames=("stat",),
        )

    def render_metrics(self) -> str:
        """Refresh scrape-time gauges and render the exposition text.

        Every scrape-derived labelled gauge family is **cleared before it
        is re-populated** — a label set whose source disappeared (an
        evicted tenant, a swapped cache, a reset scoreboard) must vanish
        from the exposition, not keep reporting its last value forever.
        """
        m = self._m
        m["queue_depth"].set(self.queue.depth)
        m["uptime"].set(time.time() - self._started_at)
        m["ready"].set(1.0 if self.ready else 0.0)
        counts = self.jobs.counts()
        for state in STATES:
            m["jobs"].set(counts.get(state, 0), state=state)
        m["lane_depth"].clear()
        for lane, depth in self.queue.lane_depths().items():
            m["lane_depth"].set(depth, lane=lane)
        m["tenant_jobs"].clear()
        for (tenant, state), count in self.jobs.tenant_counts().items():
            m["tenant_jobs"].set(count, tenant=tenant, state=state)
        m["cache"].clear()
        if self.cache is not None:
            for event, value in self.cache.stats.items():
                m["cache"].set(value, event=event)
        m["backend"].clear()
        for backend, row in self.scoreboard.capacity_snapshot().items():
            for stat, value in row.items():
                if isinstance(value, (int, float)):
                    m["backend"].set(float(value), backend=backend, stat=stat)
        m["store"].clear()
        if self.store is not None:
            for stat, value in self.store.stats().items():
                m["store"].set(value, stat=stat)
        return self.metrics.render()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher; the service accepts work once this returns."""
        if self._dispatcher is not None:
            raise ReproError("service already started")
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-service-dispatcher"
        )
        self._accepting = True

    async def shutdown(self) -> None:
        """Graceful stop: reject new work, drain every accepted job, flush.

        Idempotent.  Pending submissions are dispatched (the queue releases
        them in waves once closed), in-flight waves are awaited, and any
        unflushed scoreboard observations are pushed into the durable store
        so the next boot starts warm.
        """
        if self._stopped:
            return
        self._accepting = False
        self._draining = True
        self.queue.close()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._wave_tasks:
            await asyncio.gather(*self._wave_tasks)
        if self.store is not None:
            record_best_effort(self.scoreboard.flush, "service shutdown flush")
        self._draining = False
        self._stopped = True

    @property
    def ready(self) -> bool:
        """Accepting work with queue headroom (the ``/readyz`` verdict)."""
        return (
            self._accepting
            and not self._draining
            and self.queue.depth < self.config.max_queue_depth
        )

    @property
    def stopped(self) -> bool:
        return self._stopped

    def trace_status(self) -> dict:
        """Recorder health (``/healthz`` + ``/readyz``): on/off + pressure."""
        status = {"enabled": self.tracer is not None}
        if self.recorder is not None:
            status.update(self.recorder.stats())
        else:
            status.update(traces_buffered=0, dropped_total=0)
        return status

    def readiness(self) -> dict:
        """The ``/readyz`` body: verdict plus the capacity read model."""
        from repro import __version__

        return {
            "ready": self.ready,
            "version": __version__,
            "trace": self.trace_status(),
            "draining": self._draining,
            "queue_depth": self.queue.depth,
            "lane_depths": self.queue.lane_depths(),
            "max_queue_depth": self.config.max_queue_depth,
            "backends": list(self.config.backends),
            "degrade_backends": list(self.config.degrade_backends),
            "capacity": _scrub(self.scoreboard.capacity_snapshot()),
            "tenants": _scrub(self.admission.snapshot()),
        }

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: Any,
        seed: int = 0,
        tenant: str = DEFAULT_TENANT,
        priority: str = "interactive",
    ) -> Job:
        """Validate, run admission, and only then register + enqueue the job.

        Raises :class:`~repro.exceptions.ReproError` subclasses the HTTP
        layer maps to 400 (bad spec/seed/tenant/priority), 429 with
        ``Retry-After`` (:class:`~repro.service.admission.AdmissionShed`),
        or 503 (draining).  Rejections of every kind happen **before a Job
        exists** — a sustained 429 flood must not churn the job book's
        retention and evict real history.  On success the job is pending
        (possibly with a degraded backend fleet, recorded on
        ``job.admission``) and its ``future`` resolves when the wave
        carrying it completes.
        """
        if not self._accepting:
            self._m["rejected"].inc(reason="draining")
            raise ReproError("service is draining; not accepting new work")
        if isinstance(seed, bool) or not isinstance(seed, int) or not 0 <= seed < MAX_SEED:
            self._m["rejected"].inc(reason="bad_seed")
            raise ReproError(f"seed must be an integer in [0, {MAX_SEED}), got {seed!r}")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
            self._m["rejected"].inc(reason="bad_tenant")
            raise ReproError("tenant must be a non-empty string (at most 128 chars)")
        if priority not in PRIORITIES:
            self._m["rejected"].inc(reason="bad_priority")
            raise ReproError(
                f"priority must be one of {list(PRIORITIES)}, got {priority!r}"
            )
        try:
            problem = problem_from_spec(spec)
        except ReproError:
            self._m["rejected"].inc(reason="bad_spec")
            raise

        admission_span = None
        if self.tracer is not None:
            admission_span = self.tracer.begin(
                "service.admission",
                parent=obs.current_context(),
                tenant=tenant,
                priority=priority,
            )
        decision = self.admission.decide(tenant, priority)
        if admission_span is not None:
            admission_span["attrs"].update(
                action=decision.action, reason=getattr(decision, "reason", None)
            )
            self.tracer.end(admission_span)
        self._m["admission"].inc(decision=decision.action, priority=priority)
        self._m["tenant_requests"].inc(tenant=tenant, decision=decision.action)
        if decision.action == "shed":
            self._m["rejected"].inc(reason=decision.reason)
            self._log.info(
                "request shed",
                extra={"fields": {"tenant": tenant, "priority": priority,
                                  "reason": decision.reason}},
            )
            raise AdmissionShed(
                f"request shed ({decision.reason}); retry after "
                f"{decision.retry_after_s}s",
                retry_after_s=decision.retry_after_s,
                reason=decision.reason,
            )

        job = self.jobs.create(
            problem, seed, dict(spec), tenant=tenant, priority=priority
        )
        job.admission = decision.as_record()
        if decision.action == "degrade":
            job.backends = decision.backends
        if self.tracer is not None:
            # The job's trace: the HTTP request's when one is open on this
            # context, else the fresh trace the admission span started.
            trace_id, span_id = obs.current_ids()
            if trace_id is None:
                trace_id = admission_span["trace_id"]
            job.trace_id = trace_id
            job._trace_ctx = obs.TraceContext(trace_id, span_id)
            if self.recorder is not None:
                self.recorder.annotate(
                    trace_id, job_id=job.id, tenant=tenant, priority=priority
                )
            # Queue wait starts here on the handler task and ends on the
            # dispatcher when the wave picks the job up — a manual span
            # because it crosses tasks.
            job._queue_span = self.tracer.begin(
                "service.queue_wait", parent=job._trace_ctx, lane=priority
            )
        try:
            self.queue.put(job, lane=priority)
        except ReproError:
            # Admission said yes but the queue disagreed (its own depth
            # backstop, or a close racing in): the job never ran, so it
            # must not linger in the book as history.
            self.jobs.discard(job.id)
            if not job.future.done():
                job.future.cancel()
            queue_span = getattr(job, "_queue_span", None)
            if queue_span is not None:
                self.tracer.end(queue_span, error="queue_refused")
            self._m["rejected"].inc(reason="queue_refused")
            raise
        self.admission.on_admit(job)
        self._m["requests"].inc()
        self._log.debug(
            "job admitted",
            extra={"fields": {"job_id": job.id, "tenant": tenant,
                              "priority": priority, "action": decision.action}},
        )
        return job

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Collect waves forever; exit once the closed queue runs dry."""
        while True:
            wave = await self.queue.collect_wave()
            if not wave:
                if self.queue.closed:
                    return
                continue
            await self._inflight.acquire()
            task = asyncio.create_task(self._run_wave(wave))
            self._wave_tasks.add(task)

            def _done(finished: asyncio.Task) -> None:
                self._wave_tasks.discard(finished)
                self._inflight.release()

            task.add_done_callback(_done)

    async def _run_wave(self, jobs: "list[Job]") -> None:
        self._wave_counter += 1
        wave_id = self._wave_counter
        now = time.time()
        wave_spans: "dict[str, dict]" = {}
        for job in jobs:
            job.status = "running"
            job.started_at = now
            job.wave = wave_id
            self.admission.on_dispatch(job)
            if self.tracer is not None:
                queue_span = getattr(job, "_queue_span", None)
                if queue_span is not None:
                    queue_span["attrs"]["wave"] = wave_id
                    self.tracer.end(queue_span)
                    job._queue_span = None
                ctx = getattr(job, "_trace_ctx", None)
                if ctx is not None:
                    wave_spans[job.id] = self.tracer.begin(
                        "service.wave", parent=ctx, wave=wave_id, size=len(jobs)
                    )
                if self.recorder is not None and job.trace_id is not None:
                    self.recorder.annotate(job.trace_id, wave=wave_id)
        self._m["waves"].inc()
        self._m["wave_size"].observe(len(jobs))
        self._log.debug(
            "wave dispatched",
            extra={"fields": {"wave": wave_id, "size": len(jobs)}},
        )

        # Every job in the wave must reach a terminal state and resolve
        # its future, whatever throws: an exception after the engine call
        # (short results, a poisoned metrics observer, a bookkeeping bug)
        # must not strand `wait=true` clients on forever-"running" jobs.
        failure: "str | None" = None
        results: "list | None" = None
        engine_spans: list = []
        try:
            out = await asyncio.to_thread(self._solve_wave, jobs)
            # Tolerate a bare results list (test doubles patch _solve_wave).
            if isinstance(out, tuple) and len(out) == 2:
                results, engine_spans = out
            else:
                results = out
            if len(results) != len(jobs):
                raise ReproError(
                    f"wave returned {len(results)} results for {len(jobs)} jobs"
                )
        except Exception as exc:  # an engine failure fails the wave, not the service
            failure = f"{type(exc).__name__}: {exc}"
            self._log.warning(
                "wave failed",
                extra={"fields": {"wave": wave_id, "error": failure}},
            )
        try:
            if failure is None:
                for job, result in zip(jobs, results):
                    self._graft_engine_spans(job, result, engine_spans,
                                             wave_spans.get(job.id))
                    self._finish_traced(job, wave_spans, status="done", result=result)
            else:
                for job in jobs:
                    self._finish_traced(job, wave_spans, status="error", error=failure)
        except Exception as exc:  # a finish-loop bug still terminalises the rest
            failure = f"{type(exc).__name__}: {exc}"
        finally:
            for job in jobs:
                wave_span = wave_spans.pop(job.id, None)
                if wave_span is not None:
                    self.tracer.end(wave_span, error=failure)
                if not job.finished or (job.future is not None and not job.future.done()):
                    self._settle(job, failure or "wave finish loop failed")

    def _finish_traced(self, job: Job, wave_spans: dict, **kwargs) -> None:
        """Finish one job under a ``service.settle`` span and close its wave."""
        wave_span = wave_spans.pop(job.id, None)
        if wave_span is None:
            self._finish(job, **kwargs)
            return
        settle_span = self.tracer.begin(
            "service.settle", parent=wave_span, status=kwargs.get("status")
        )
        try:
            self._finish(job, **kwargs)
        finally:
            self.tracer.end(settle_span)
            self.tracer.end(wave_span)

    def _graft_engine_spans(
        self, job: Job, result, engine_spans: list, wave_span: "dict | None"
    ) -> None:
        """Copy one request's engine spans into its own trace.

        A coalesced wave runs the engine once under a synthetic collector
        trace, so the engine spans of *every* rider interleave.  Each
        result's ``info["trace"]`` stamp names the ``engine.solve`` (or
        ``cache.lookup``) span that produced it; ``request_slice`` selects
        that request's subtree plus the shared per-call work, and the
        copies are re-homed onto the job's trace — orphaned parents (the
        collector's root lives in no job's trace) re-point at the job's
        ``service.wave`` span.
        """
        if self.recorder is None or wave_span is None or not engine_spans:
            return
        info = getattr(result, "info", None)
        stamp = info.get("trace") if isinstance(info, dict) else None
        if not isinstance(stamp, dict):
            return
        sliced = obs.request_slice(engine_spans, stamp.get("span_id"))
        kept_ids = {s["span_id"] for s in sliced}
        for span in sliced:
            copy = dict(span, attrs=dict(span["attrs"]), trace_id=job.trace_id)
            if copy.get("parent_id") not in kept_ids:
                copy["parent_id"] = wave_span["span_id"]
            self.recorder.record(copy)
        # Re-home the result's join stamp too: deduped siblings share the
        # result object, so the stamp names the last sibling's trace — the
        # span id stays valid in every sibling's trace.
        info["trace"] = {"trace_id": job.trace_id, "span_id": stamp.get("span_id")}

    def _finish(self, job: Job, status: str, result=None, error=None) -> None:
        job.status = status
        job.result = result
        job.error = error
        job.finished_at = time.time()
        self.admission.on_finish(job)
        self._m["responses"].inc(status=status)
        latency = job.latency_s
        if latency is not None:
            # Span-duration exemplars: the trace id rides the histogram so
            # a slow bucket points straight at a flight-recorder trace.
            self._m["latency"].observe(latency, exemplar=job.trace_id)
            self._m["tenant_latency"].observe(
                latency, exemplar=job.trace_id, tenant=job.tenant
            )
        if job.future is not None and not job.future.done():
            job.future.set_result(job)

    def _settle(self, job: Job, message: str) -> None:
        """Last-resort terminal state: never raises, always resolves."""
        try:
            if not job.finished:
                job.status = "error"
                job.error = job.error or message
                job.finished_at = job.finished_at or time.time()
                self.admission.on_finish(job)
                self._m["responses"].inc(status="error")
        except Exception:  # pragma: no cover - bookkeeping must not re-raise
            pass
        if job.future is not None and not job.future.done():
            job.future.set_result(job)

    def _solve_wave(self, jobs: "list[Job]") -> list:
        """One coalesced engine dispatch (worker thread; no job mutation).

        A wave may mix admission outcomes: admitted jobs run on the
        configured fleet, degraded jobs on their rewritten classical tier.
        Jobs are grouped by effective fleet and each group dispatches as
        its own ``solve_many`` batch — still one worker-thread hop per
        wave, and each request remains its own shard leader with an
        explicit seed, so the determinism contract survives degradation.
        Degraded groups stamp the fleet rewrite into every result's
        ``info["admission"]``.

        With tracing on, the engine runs under a *synthetic* collector
        trace (one engine call serves many requests, so no single job's
        trace can own the live contextvars) and the collected spans return
        alongside the results; ``_run_wave`` grafts each request's slice
        into its own trace afterwards.  Returns ``(results, spans)``.
        """
        collector = obs.SpanCollector() if self.tracer is not None else None
        if collector is None:
            return self._dispatch_groups(jobs), []
        with obs.activate(collector):
            with obs.span("service.wave_solve", jobs=len(jobs)):
                results = self._dispatch_groups(jobs)
        return results, collector.drain()

    def _dispatch_groups(self, jobs: "list[Job]") -> list:
        groups: "dict[tuple | None, list[int]]" = {}
        for index, job in enumerate(jobs):
            groups.setdefault(job.backends, []).append(index)
        results: list = [None] * len(jobs)
        for fleet, indices in groups.items():
            group_results = self._solve_group(fleet, [jobs[i] for i in indices])
            if fleet is not None:
                for result in group_results:
                    result.info.setdefault(
                        "admission",
                        {
                            "action": "degrade",
                            "backends": list(fleet),
                            "fleet": list(self.config.backends),
                        },
                    )
            for index, result in zip(indices, group_results):
                results[index] = result
        return results

    def _solve_group(self, fleet: "tuple | None", jobs: "list[Job]") -> list:
        """One fleet's share of a wave, single-flight deduped.

        Requests naming the same ``(QUBO fingerprint, seed)`` are
        literally the same solve under the service's determinism contract,
        so only the first is dispatched and the rest share its result
        object (results are treated as immutable once returned).  The
        survivors go through ``solve_many`` with explicit seeds and
        single-item shards.
        """
        config = self.config
        order: "dict[tuple[str, int], int]" = {}
        assignment: list[int] = []
        problems: list = []
        seeds: list[int] = []
        for job in jobs:
            key = (job.problem.to_qubo().fingerprint(), job.seed)
            slot = order.get(key)
            if slot is None:
                slot = len(problems)
                order[key] = slot
                problems.append(job.problem)
                seeds.append(job.seed)
            assignment.append(slot)
        self._m["unique_solves"].inc(len(problems))
        self._m["deduped"].inc(len(jobs) - len(problems))

        from repro.api.facade import solve_many

        backends = tuple(config.backends) if fleet is None else tuple(fleet)
        scheduler = self.scheduler if fleet is None else self._degrade_scheduler
        if len(backends) > 1 and scheduler is not None:
            results = solve_many(
                problems,
                backend=backends,
                scheduler=scheduler,
                seeds=seeds,
                refine=config.refine,
                top_k=config.top_k,
                executor=config.executor,
                cache=self.cache,
                max_shard_size=1,
                store=self.store if self.store is not None else False,
                **{
                    name: dict(opts)
                    for name, opts in config.backend_opts.items()
                    if name in backends
                },
            )
        else:
            backend = backends[0]
            results = solve_many(
                problems,
                backend=backend,
                seeds=seeds,
                refine=config.refine,
                top_k=config.top_k,
                executor=config.executor,
                cache=self.cache,
                max_shard_size=1,
                store=self.store if self.store is not None else False,
                **dict(config.backend_opts.get(backend, {})),
            )
            # The scheduled path feeds the scoreboard itself; the fixed-
            # backend path feeds it here so capacity stats exist either way.
            for result in results:
                self.scoreboard.observe_result(result)
            if self.store is not None:
                record_best_effort(self.scoreboard.flush, "wave scoreboard flush")
        return [results[slot] for slot in assignment]


def _scrub(value):
    """NaN/inf -> None so readiness JSON stays strict-JSON clean."""
    import math

    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value
