"""``python -m repro.service`` — boot the solver service and run until signalled.

Prints one line once bound (``repro.service listening on http://host:port``,
flushed, with the *real* port so ``--port 0`` smoke tests can parse it),
then serves until SIGTERM/SIGINT, at which point it drains gracefully:
new submissions are rejected with 503, every accepted job finishes, the
scoreboard delta is flushed to the durable store, and the process exits 0.

Operational output goes through :mod:`repro.obs.log` (``--log-level`` /
``--log-format``, or the ``REPRO_SERVICE_LOG_*`` environment spellings);
the resolved configuration is logged exactly once at startup.  The
``listening on`` line itself stays a plain stdout print — it is the
machine-parsed contract of the smoke tests.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.exceptions import ReproError
from repro.obs.log import FORMATS, LEVELS, configure, get_logger
from repro.service.app import SolverService
from repro.service.config import load_config
from repro.service.http import ServiceServer


def _parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Coalescing solver-as-a-service over the repro engine.",
    )
    parser.add_argument("--config", default=None, help="TOML config file")
    parser.add_argument("--host", default=None, help="bind address override")
    parser.add_argument(
        "--port", type=int, default=None,
        help="bind port override (0 asks the OS for an ephemeral port)",
    )
    parser.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="log verbosity (default from config / REPRO_SERVICE_LOG_LEVEL)",
    )
    parser.add_argument(
        "--log-format", default=None, choices=list(FORMATS),
        help="log shape: text, or json (one object per line; "
             "default from config / REPRO_SERVICE_LOG_FORMAT)",
    )
    return parser.parse_args(argv)


def _banner_fields(config) -> dict:
    """The one-time resolved-config record (secrets-free by construction)."""
    return {
        "host": config.host,
        "port": config.port,
        "backends": list(config.backends),
        "executor": config.executor,
        "window_s": config.window_s,
        "max_wave": config.max_wave,
        "max_queue_depth": config.max_queue_depth,
        "store": config.store,
        "trace": config.trace,
        "trace_buffer": config.trace_buffer,
        "log_level": config.log_level,
        "log_format": config.log_format,
    }


async def _serve(server: ServiceServer) -> None:
    log = get_logger("service")
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await server.start()
    print(
        f"repro.service listening on http://{server.host}:{server.bound_port}",
        flush=True,
    )
    log.info(
        "service started",
        extra={"fields": dict(_banner_fields(server.service.config),
                              bound_port=server.bound_port)},
    )
    await stop.wait()
    print("repro.service draining...", flush=True)
    log.info("service draining")
    await server.shutdown()
    print("repro.service stopped", flush=True)
    log.info("service stopped")


def main(argv: "list[str] | None" = None) -> int:
    args = _parse_args(argv)
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.log_level is not None:
        overrides["log_level"] = args.log_level
    if args.log_format is not None:
        overrides["log_format"] = args.log_format
    try:
        config = load_config(args.config, **overrides)
        configure(level=config.log_level, fmt=config.log_format)
        service = SolverService(config)
    except ReproError as exc:
        print(f"repro.service: {exc}", file=sys.stderr, flush=True)
        return 2
    asyncio.run(_serve(ServiceServer(service)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
