"""``python -m repro.service`` — boot the solver service and run until signalled.

Prints one line once bound (``repro.service listening on http://host:port``,
flushed, with the *real* port so ``--port 0`` smoke tests can parse it),
then serves until SIGTERM/SIGINT, at which point it drains gracefully:
new submissions are rejected with 503, every accepted job finishes, the
scoreboard delta is flushed to the durable store, and the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.exceptions import ReproError
from repro.service.app import SolverService
from repro.service.config import load_config
from repro.service.http import ServiceServer


def _parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Coalescing solver-as-a-service over the repro engine.",
    )
    parser.add_argument("--config", default=None, help="TOML config file")
    parser.add_argument("--host", default=None, help="bind address override")
    parser.add_argument(
        "--port", type=int, default=None,
        help="bind port override (0 asks the OS for an ephemeral port)",
    )
    return parser.parse_args(argv)


async def _serve(server: ServiceServer) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await server.start()
    print(
        f"repro.service listening on http://{server.host}:{server.bound_port}",
        flush=True,
    )
    await stop.wait()
    print("repro.service draining...", flush=True)
    await server.shutdown()
    print("repro.service stopped", flush=True)


def main(argv: "list[str] | None" = None) -> int:
    args = _parse_args(argv)
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    try:
        config = load_config(args.config, **overrides)
        service = SolverService(config)
    except ReproError as exc:
        print(f"repro.service: {exc}", file=sys.stderr, flush=True)
        return 2
    asyncio.run(_serve(ServiceServer(service)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
