"""The coalescing request queue: single submits -> ``solve_many`` waves.

The engine's amortisation — sharded dispatch, content-addressed caching,
scoreboard routing, store prefetch — only pays when work arrives in
batches, but interactive clients submit one problem at a time.  This queue
is the adapter between the two: concurrent submissions accumulate, and the
dispatcher collects them into **waves** under a two-trigger policy:

* **window** — the first pending submission opens a window of
  ``window_s`` seconds; companions arriving inside it ride the same wave
  (bounded added latency, tunable to the deployment's traffic);
* **size** — the moment ``max_wave`` submissions are pending the wave
  dispatches immediately, window notwithstanding (a burst never waits).

Submissions land in **priority lanes** (one FIFO per priority class, see
:data:`~repro.service.admission.DEFAULT_LANE_WEIGHTS`), and a wave drains
the lanes in *weighted round-robin* order: per drain cycle, up to
``weight`` items per lane, highest lane first.  A flood in one lane can
slow the others — every lane still drains — but never starve them: an
interactive submission is always within one cycle of dispatching.  Drain
order is a pure function of lane contents, so wave composition (and with
it the engine's determinism contract) stays reproducible.

Backpressure is explicit: past ``max_depth`` undispatched items,
:meth:`CoalescingQueue.put` raises :class:`QueueFull` (HTTP 429 at the
edge) instead of buffering without bound — the admission policy normally
sheds *before* this point, so the queue's own guard is the backstop.
Closing the queue rejects new work but lets the dispatcher drain every
accepted item — the graceful-shutdown contract: accepted jobs always
finish.

Single-loop discipline: every method is called from the service's event
loop (submissions via the HTTP handlers, collection via the dispatcher
task), so the queue needs no lock — only the ``asyncio.Event`` that wakes
the dispatcher.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.exceptions import ReproError
from repro.service.admission import DEFAULT_LANE_WEIGHTS


class QueueFull(ReproError):
    """Raised by :meth:`CoalescingQueue.put` past ``max_depth`` (HTTP 429)."""


class QueueClosed(ReproError):
    """Raised by :meth:`CoalescingQueue.put` after close (HTTP 503)."""


class CoalescingQueue:
    """Accumulate concurrent submissions; release them in weighted waves."""

    def __init__(
        self,
        window_s: float = 0.05,
        max_wave: int = 64,
        max_depth: int = 1024,
        lane_weights: "dict[str, int] | None" = None,
    ):
        if window_s < 0:
            raise ReproError("window_s must be >= 0")
        if max_wave < 1:
            raise ReproError("max_wave must be >= 1")
        if max_depth < 1:
            raise ReproError("max_depth must be >= 1")
        weights = dict(DEFAULT_LANE_WEIGHTS if lane_weights is None else lane_weights)
        if not weights:
            raise ReproError("lane_weights needs at least one lane")
        for lane, weight in weights.items():
            if isinstance(weight, bool) or not isinstance(weight, int) or weight < 1:
                raise ReproError(f"lane {lane!r} weight must be an integer >= 1")
        self.window_s = window_s
        self.max_wave = max_wave
        self.max_depth = max_depth
        self.lane_weights = weights
        self._lanes: "dict[str, deque[tuple[float, Any]]]" = {
            lane: deque() for lane in weights
        }
        self._default_lane = next(iter(weights))
        self._arrived = asyncio.Event()
        self._closed = False

    @property
    def depth(self) -> int:
        """Undispatched submissions across lanes (the depth gauge feed)."""
        return sum(len(items) for items in self._lanes.values())

    def lane_depths(self) -> "dict[str, int]":
        """Per-lane undispatched counts (metrics / readiness)."""
        return {lane: len(items) for lane, items in self._lanes.items()}

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any, lane: "str | None" = None) -> None:
        """Enqueue one submission (synchronous: admission is loop-side)."""
        if self._closed:
            raise QueueClosed("service is draining; not accepting new work")
        if self.depth >= self.max_depth:
            raise QueueFull(
                f"queue depth limit reached ({self.max_depth} undispatched requests)"
            )
        target = self._default_lane if lane is None else lane
        if target not in self._lanes:
            raise ReproError(
                f"unknown lane {target!r} (known: {sorted(self._lanes)})"
            )
        loop = asyncio.get_running_loop()
        self._lanes[target].append((loop.time(), item))
        self._arrived.set()

    def close(self) -> None:
        """Reject future submissions; pending items remain collectable."""
        self._closed = True
        self._arrived.set()  # wake a dispatcher blocked on arrival

    def _first_arrival(self) -> "float | None":
        heads = [items[0][0] for items in self._lanes.values() if items]
        return min(heads) if heads else None

    async def collect_wave(self) -> "list[Any]":
        """Block until a wave is due; return its items (``[]`` = shut down).

        The window anchors on the *arrival time of the wave's earliest
        item* (across lanes), not on when the dispatcher got around to
        asking — a slow previous wave must not extend the next wave's
        collection past what the latency budget promised.  After
        :meth:`close`, pending items are released immediately (in
        ``max_wave``-sized waves) and the empty list is returned once
        drained, which is the dispatcher's signal to exit.
        """
        loop = asyncio.get_running_loop()
        while not self.depth:
            if self._closed:
                return []
            self._arrived.clear()
            # Re-check before awaiting: a put() between the while-check and
            # clear() would otherwise be slept through.
            if self.depth or self._closed:
                continue
            await self._arrived.wait()

        deadline = self._first_arrival() + self.window_s
        while self.depth < self.max_wave and not self._closed:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._arrived.clear()
            if self.depth >= self.max_wave or self._closed:
                continue
            try:
                await asyncio.wait_for(self._arrived.wait(), timeout=remaining)
            except asyncio.TimeoutError:  # distinct from builtin on 3.10
                break

        return self._drain()

    def _drain(self) -> "list[Any]":
        """Pop up to ``max_wave`` items in weighted round-robin lane order.

        Deterministic in the lane contents: repeat the drain cycle
        (``weight`` slots per lane, declaration order) until the wave is
        full or the queue is empty; an empty lane's slots pass to the
        next lane rather than stalling the cycle.
        """
        wave: "list[Any]" = []
        lanes = list(self._lanes.items())
        while len(wave) < self.max_wave and self.depth:
            for lane, items in lanes:
                take = min(
                    self.lane_weights[lane], self.max_wave - len(wave), len(items)
                )
                for _ in range(take):
                    wave.append(items.popleft()[1])
                if len(wave) >= self.max_wave:
                    break
        return wave
