"""The coalescing request queue: single submits -> ``solve_many`` waves.

The engine's amortisation — sharded dispatch, content-addressed caching,
scoreboard routing, store prefetch — only pays when work arrives in
batches, but interactive clients submit one problem at a time.  This queue
is the adapter between the two: concurrent submissions accumulate, and the
dispatcher collects them into **waves** under a two-trigger policy:

* **window** — the first pending submission opens a window of
  ``window_s`` seconds; companions arriving inside it ride the same wave
  (bounded added latency, tunable to the deployment's traffic);
* **size** — the moment ``max_wave`` submissions are pending the wave
  dispatches immediately, window notwithstanding (a burst never waits).

Backpressure is explicit: past ``max_depth`` undispatched items,
:meth:`CoalescingQueue.put` raises :class:`QueueFull` (HTTP 429 at the
edge) instead of buffering without bound.  Closing the queue rejects new
work but lets the dispatcher drain every accepted item — the graceful-
shutdown contract: accepted jobs always finish.

Single-loop discipline: every method is called from the service's event
loop (submissions via the HTTP handlers, collection via the dispatcher
task), so the queue needs no lock — only the ``asyncio.Event`` that wakes
the dispatcher.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.exceptions import ReproError


class QueueFull(ReproError):
    """Raised by :meth:`CoalescingQueue.put` past ``max_depth`` (HTTP 429)."""


class QueueClosed(ReproError):
    """Raised by :meth:`CoalescingQueue.put` after close (HTTP 503)."""


class CoalescingQueue:
    """Accumulate concurrent submissions; release them in waves."""

    def __init__(self, window_s: float = 0.05, max_wave: int = 64, max_depth: int = 1024):
        if window_s < 0:
            raise ReproError("window_s must be >= 0")
        if max_wave < 1:
            raise ReproError("max_wave must be >= 1")
        if max_depth < 1:
            raise ReproError("max_depth must be >= 1")
        self.window_s = window_s
        self.max_wave = max_wave
        self.max_depth = max_depth
        self._items: "deque[tuple[float, Any]]" = deque()
        self._arrived = asyncio.Event()
        self._closed = False

    @property
    def depth(self) -> int:
        """Undispatched submissions (the queue-depth gauge feed)."""
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue one submission (synchronous: admission is loop-side)."""
        if self._closed:
            raise QueueClosed("service is draining; not accepting new work")
        if len(self._items) >= self.max_depth:
            raise QueueFull(
                f"queue depth limit reached ({self.max_depth} undispatched requests)"
            )
        loop = asyncio.get_running_loop()
        self._items.append((loop.time(), item))
        self._arrived.set()

    def close(self) -> None:
        """Reject future submissions; pending items remain collectable."""
        self._closed = True
        self._arrived.set()  # wake a dispatcher blocked on arrival

    async def collect_wave(self) -> "list[Any]":
        """Block until a wave is due; return its items (``[]`` = shut down).

        The window anchors on the *arrival time of the wave's first item*,
        not on when the dispatcher got around to asking — a slow previous
        wave must not extend the next wave's collection past what the
        latency budget promised.  After :meth:`close`, pending items are
        released immediately (in ``max_wave``-sized waves) and the empty
        list is returned once drained, which is the dispatcher's signal to
        exit.
        """
        loop = asyncio.get_running_loop()
        while not self._items:
            if self._closed:
                return []
            self._arrived.clear()
            # Re-check before awaiting: a put() between the while-check and
            # clear() would otherwise be slept through.
            if self._items or self._closed:
                continue
            await self._arrived.wait()

        deadline = self._items[0][0] + self.window_s
        while len(self._items) < self.max_wave and not self._closed:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._arrived.clear()
            if len(self._items) >= self.max_wave or self._closed:
                continue
            try:
                await asyncio.wait_for(self._arrived.wait(), timeout=remaining)
            except asyncio.TimeoutError:  # distinct from builtin on 3.10
                break

        wave = []
        while self._items and len(wave) < self.max_wave:
            wave.append(self._items.popleft()[1])
        return wave
