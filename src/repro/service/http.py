"""A small asyncio HTTP/1.1 edge for :class:`~repro.service.app.SolverService`.

Stdlib only — ``asyncio.start_server`` plus a hand-rolled request parser —
because the service's API surface is five fixed routes and the repo's
no-new-runtime-deps rule is worth more than a framework:

====== ======================= ==========================================
Method Path                    Purpose
====== ======================= ==========================================
POST   ``/v1/solve``           Submit ``{"problem": spec, "seed": n}``
                               (optional ``"tenant"``, ``"priority"``);
                               ``"wait": true`` blocks for the result.
GET    ``/v1/jobs/<id>``       Job status/result (404 for unknown ids).
GET    ``/v1/traces``          Recent flight-recorder traces; filters
                               ``?tenant=``, ``?min_duration_s=``,
                               ``?limit=``.
GET    ``/v1/traces/<job_id>`` One request's full span tree by job id
                               (also accepts a raw trace id).
GET    ``/healthz``            Liveness (200 while the process serves).
GET    ``/readyz``             Readiness + capacity snapshot (503
                               draining).
GET    ``/metrics``            Prometheus text exposition (0.0.4).
====== ======================= ==========================================

Error mapping: malformed requests (bad JSON, bad spec/seed/tenant/
priority, a negative Content-Length, a truncated body) are 400, unknown
routes 404, oversized bodies 413, queue backpressure and admission sheds
429 (sheds carry ``Retry-After`` seconds derived from the scoreboard's
EWMA service time), draining 503.  Every response carries
``Connection: close`` — one request per connection keeps the parser to a
page of code, and the client for this service is a scraper or an SDK
retry loop, not a browser holding keep-alives.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs

from repro import obs
from repro.service.admission import AdmissionShed
from repro.service.app import SolverService
from repro.service.coalesce import QueueClosed, QueueFull
from repro.exceptions import ReproError

#: Request bodies past this are rejected (413) before JSON parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Carries a status + JSON-able body (+ extra headers) up to the handler."""

    def __init__(self, status: int, message: str, headers: "dict | None" = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class ServiceServer:
    """Bind, serve, and close the HTTP edge around one service instance."""

    def __init__(self, service: SolverService, host: "str | None" = None,
                 port: "int | None" = None):
        self.service = service
        self.host = service.config.host if host is None else host
        self.port = service.config.port if port is None else port
        self._server: "asyncio.base_events.Server | None" = None

    @property
    def bound_port(self) -> int:
        """The real port (meaningful after :meth:`start` with port 0)."""
        if self._server is None:
            raise ReproError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    async def shutdown(self) -> None:
        """Stop accepting connections, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.shutdown()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            headers: dict = {}
            try:
                method, path, query, body = await _read_request(reader)
                status, payload, content_type = await self._route_traced(
                    method, path, query, body
                )
            except HttpError as exc:
                status, payload, content_type = (
                    exc.status, {"error": exc.message}, "application/json",
                )
                headers = exc.headers
            except Exception as exc:  # a handler bug must not kill the server
                status, payload, content_type = (
                    500, {"error": f"{type(exc).__name__}: {exc}"}, "application/json",
                )
            await _write_response(writer, status, payload, content_type, headers)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # client went away first
                pass

    async def _route_traced(self, method: str, path: str, query: str, body: bytes):
        """Open the request's root span for traced routes, then route.

        Only ``/v1/solve`` gets an ``http.request`` span: tracing every
        ``/metrics`` or probe poll would churn the flight recorder's ring
        buffer and evict the solve traces it exists to keep.
        """
        tracer = self.service.tracer
        if tracer is None or path != "/v1/solve":
            return await self._route(method, path, query, body)
        with obs.activate(tracer):
            with obs.span("http.request", method=method, path=path) as root:
                status, payload, content_type = await self._route(
                    method, path, query, body
                )
                root.set(status=status)
                return status, payload, content_type

    async def _route(self, method: str, path: str, query: str, body: bytes):
        service = self.service
        if path == "/v1/solve":
            if method != "POST":
                raise HttpError(405, "use POST /v1/solve")
            return await self._solve(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise HttpError(405, "use GET /v1/jobs/<id>")
            job = service.jobs.get(path[len("/v1/jobs/"):])
            if job is None:
                raise HttpError(404, "unknown job id")
            return 200, job.as_json_dict(), "application/json"
        if path == "/v1/traces" or path.startswith("/v1/traces/"):
            if method != "GET":
                raise HttpError(405, "use GET /v1/traces[/<job_id>]")
            return self._traces(path, query)
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET /healthz")
            return 200, {
                "ok": True,
                "stopped": service.stopped,
                "version": _version(),
                "trace": service.trace_status(),
            }, "application/json"
        if path == "/readyz":
            if method != "GET":
                raise HttpError(405, "use GET /readyz")
            body_json = service.readiness()
            return (200 if body_json["ready"] else 503), body_json, "application/json"
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET /metrics")
            return 200, service.render_metrics(), "text/plain; version=0.0.4; charset=utf-8"
        raise HttpError(404, f"no route for {path}")

    def _traces(self, path: str, query: str):
        """``GET /v1/traces`` (recent, filterable) and ``/v1/traces/<job_id>``."""
        recorder = self.service.recorder
        if recorder is None:
            raise HttpError(404, "tracing is disabled (service config trace = false)")
        key = path[len("/v1/traces"):].strip("/")
        if key:
            # Primarily a job-id lookup; a raw trace id works too, so the
            # trace_id stamped on a job JSON is directly dereferenceable.
            trace = recorder.get_by_job(key) or recorder.get(key)
            if trace is None:
                raise HttpError(404, "no trace recorded for that job or trace id")
            return 200, trace, "application/json"
        params = parse_qs(query)
        tenant = params.get("tenant", [None])[0]
        try:
            limit = int(params.get("limit", ["50"])[0])
            raw_min = params.get("min_duration_s", [None])[0]
            min_duration_s = float(raw_min) if raw_min is not None else None
        except ValueError as exc:
            raise HttpError(400, f"bad trace filter: {exc}") from exc
        if limit < 1:
            raise HttpError(400, "limit must be >= 1")
        summaries = recorder.recent(
            limit=limit, tenant=tenant, min_duration_s=min_duration_s
        )
        return 200, {"traces": summaries, **recorder.stats()}, "application/json"

    async def _solve(self, body: bytes):
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(request, dict) or "problem" not in request:
            raise HttpError(400, 'request body must be {"problem": {...}, ...}')
        spec = request["problem"]
        if not isinstance(spec, dict):
            raise HttpError(400, '"problem" must be a spec object')
        seed = request.get("seed", 0)
        wait = request.get("wait", False)
        if not isinstance(wait, bool):
            raise HttpError(400, '"wait" must be a boolean')
        tenant = request.get("tenant", "default")
        priority = request.get("priority", "interactive")
        if not isinstance(tenant, str):
            raise HttpError(400, '"tenant" must be a string')
        if not isinstance(priority, str):
            raise HttpError(400, '"priority" must be a string')
        try:
            job = self.service.submit(spec, seed=seed, tenant=tenant, priority=priority)
        except AdmissionShed as exc:
            raise HttpError(
                429, str(exc), headers={"Retry-After": str(exc.retry_after_s)}
            ) from exc
        except QueueFull as exc:
            raise HttpError(429, str(exc)) from exc
        except QueueClosed as exc:
            raise HttpError(503, str(exc)) from exc
        except ReproError as exc:
            status = 503 if "draining" in str(exc) else 400
            raise HttpError(status, str(exc)) from exc
        if wait:
            await asyncio.shield(job.future)
            return 200, job.as_json_dict(), "application/json"
        return 202, {
            "job_id": job.id, "status": job.status, "trace_id": job.trace_id,
        }, "application/json"


def _version() -> str:
    from repro import __version__

    return __version__


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: ``(method, path, query, body)``; HttpError on junk."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise HttpError(400, "unreadable request line") from exc
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise HttpError(400, "malformed HTTP request line")
    method, target, _http_version = parts
    path, _, query = target.partition("?")

    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise HttpError(400, "bad Content-Length header") from exc
            if content_length < 0:
                # -5 is truthy and passes a `> MAX` check; readexactly(-5)
                # would raise ValueError and surface as a 500.  It's the
                # client's malformed header: 400.
                raise HttpError(400, "Content-Length must be >= 0")
    if content_length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        body = await reader.readexactly(content_length) if content_length else b""
    except asyncio.IncompleteReadError as exc:
        raise HttpError(
            400,
            f"request body truncated ({len(exc.partial)} of {content_length} bytes)",
        ) from exc
    return method.upper(), path, query, body


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload, content_type: str,
                          headers: "dict | None" = None) -> None:
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    try:
        writer.write(head + body)
        await writer.drain()
    except (ConnectionError, OSError):  # client vanished mid-write
        pass
