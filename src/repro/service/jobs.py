"""Job bookkeeping: submissions, lifecycle states, bounded retention.

A job is one ``POST /v1/solve`` submission.  Lifecycle::

    pending ──(wave dispatched)──> running ──> done
                                      └──────> error

Jobs carry an :class:`asyncio.Future` resolved at completion so a
``wait=true`` submission can block on the result without polling, and the
:class:`JobBook` keeps a bounded history — finished jobs beyond the
retention cap are evicted oldest-first so a long-lived service cannot leak
memory through its own status endpoint.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.api.problem import Problem
    from repro.api.result import SolveResult

#: Lifecycle states (also the ``state`` label of the jobs gauge).
STATES = ("pending", "running", "done", "error")


@dataclass
class Job:
    """One submitted solve request and everything learned about it."""

    id: str
    problem: "Problem"
    seed: int
    spec: dict
    tenant: str = "default"
    priority: str = "interactive"
    #: The admission decision record (see :class:`~repro.service.admission.
    #: AdmissionDecision.as_record`); ``backends`` is the degraded fleet
    #: override the wave honours (``None`` = the configured fleet).
    admission: "dict | None" = None
    backends: "tuple | None" = None
    #: Flight-recorder trace id (``GET /v1/traces/<job_id>``); ``None``
    #: when the service runs with tracing disabled.
    trace_id: "str | None" = None
    status: str = "pending"
    submitted_at: float = field(default_factory=time.time)
    started_at: "float | None" = None
    finished_at: "float | None" = None
    wave: "int | None" = None
    result: "SolveResult | None" = None
    error: "str | None" = None
    future: "asyncio.Future | None" = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "error")

    @property
    def latency_s(self) -> "float | None":
        """Submit-to-finish seconds (the request latency histogram feed)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def as_json_dict(self) -> dict:
        """The ``GET /v1/jobs/<id>`` response body."""
        return {
            "job_id": self.id,
            "status": self.status,
            "seed": self.seed,
            "tenant": self.tenant,
            "priority": self.priority,
            "admission": self.admission,
            "trace_id": self.trace_id,
            "problem": self.spec,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wave": self.wave,
            "result": self.result.to_json_dict() if self.result is not None else None,
            "error": self.error,
        }


class JobBook:
    """Id -> :class:`Job` registry with bounded finished-job retention.

    Single-event-loop discipline: every mutation happens on the service's
    loop (wave completion marshals back before touching jobs), so no lock
    is needed.  Ids are monotonic (``job-000001``) — diagnosable in logs
    and unguessable ids are not a service goal.
    """

    def __init__(self, retention: int = 4096):
        if retention < 1:
            raise ReproError("job retention must be >= 1")
        self.retention = retention
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = itertools.count(1)

    def create(
        self,
        problem: "Problem",
        seed: int,
        spec: dict,
        tenant: str = "default",
        priority: str = "interactive",
    ) -> Job:
        job = Job(
            id=f"job-{next(self._counter):06d}",
            problem=problem,
            seed=seed,
            spec=dict(spec),
            tenant=tenant,
            priority=priority,
            future=asyncio.get_running_loop().create_future(),
        )
        self._jobs[job.id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> "Job | None":
        return self._jobs.get(job_id)

    def discard(self, job_id: str) -> None:
        """Drop one job unconditionally (admission rollback, not eviction)."""
        self._jobs.pop(job_id, None)

    def counts(self) -> dict:
        """``{state: count}`` over retained jobs (the jobs gauge feed)."""
        counts = dict.fromkeys(STATES, 0)
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def tenant_counts(self) -> "dict[tuple[str, str], int]":
        """``{(tenant, state): count}`` (the per-tenant jobs gauge feed)."""
        counts: "dict[tuple[str, str], int]" = {}
        for job in self._jobs.values():
            key = (job.tenant, job.status)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._jobs)

    def _evict(self) -> None:
        # Never evict live work: an id must stay resolvable at least until
        # its solve finishes, whatever the retention cap says.
        if len(self._jobs) <= self.retention:
            return
        for job_id, job in list(self._jobs.items()):
            if len(self._jobs) <= self.retention:
                break
            if job.finished:
                del self._jobs[job_id]
