"""Admission control: decide *before* the queue whether a request runs at all.

NISQ-era backends are a shared, scarce resource with hard capacity limits
and wildly varying service times, so the service edge cannot be a pure
FIFO: a flood of cheap best-effort work must not starve interactive
traffic, and a tenant that has burned its budget must not keep burning
everyone else's.  :class:`AdmissionPolicy` sits between
``SolverService.submit()`` and the :class:`~repro.service.coalesce.
CoalescingQueue`` and makes one of three decisions per request:

* **admit** — the request enters the per-priority lane of the queue
  (``interactive`` | ``batch`` | ``best_effort``); lanes drain in weighted
  order so a batch flood cannot starve interactive traffic;
* **degrade** — the request still runs, but its backend fleet is rewritten
  to the cheap classical tier (``degrade_backends``, tabu/sa by default).
  The rewrite is recorded in the decision, stamped into the job JSON and
  the result's ``info["admission"]``; the determinism contract is
  untouched — a degraded solve is bit-identical to a direct
  ``solve(problem, backend=<degraded>, seed=...)`` call;
* **shed** — rejected with HTTP 429 *before a Job is ever created* (no
  job-book churn, no future, no retention pressure), carrying a
  ``Retry-After`` derived from the scoreboard's EWMA service time via
  :func:`~repro.engine.scheduler.expected_service_time`.

Budgets are per-tenant (:class:`TenantBudget`): max in-flight jobs,
backend-seconds per rolling window, and a share of the queue depth.
Accounting is loop-side only — ``submit`` and wave completion both run on
the service's event loop — so the ledger needs no lock.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.engine.scheduler import expected_service_time
from repro.exceptions import ReproError

#: Priority classes, highest first — also the queue's lane names.
PRIORITIES = ("interactive", "batch", "best_effort")

#: Default weighted drain order: per 7 wave slots, 4 interactive,
#: 2 batch, 1 best_effort (a flood can slow the lower lanes, never
#: starve the higher ones — and vice versa).
DEFAULT_LANE_WEIGHTS = {"interactive": 4, "batch": 2, "best_effort": 1}

#: Tenant requests carry when the client names none.
DEFAULT_TENANT = "default"

#: Expected seconds per solve before the scoreboard has seen anything.
COLD_SERVICE_TIME_S = 0.25

#: Retry-After ceiling: past this the client should re-plan, not sleep.
MAX_RETRY_AFTER_S = 60


class AdmissionShed(ReproError):
    """A shed decision as an exception (HTTP 429 + ``Retry-After``)."""

    def __init__(self, message: str, retry_after_s: int, reason: str):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


@dataclass(frozen=True)
class TenantBudget:
    """Per-tenant resource envelope (``None`` = unlimited).

    Attributes:
        max_inflight: Jobs a tenant may have pending or running at once.
        backend_seconds: Backend wall-seconds the tenant may consume per
            rolling ``window_s``; past it requests *degrade* to the cheap
            classical tier instead of being shed — the tenant keeps
            getting answers, just not on the scarce fleet.
        window_s: Length of the rolling backend-seconds window.
        queue_share: Fraction of ``max_queue_depth`` this tenant may
            occupy with undispatched requests; past it requests shed.
    """

    max_inflight: "int | None" = None
    backend_seconds: "float | None" = None
    window_s: float = 60.0
    queue_share: "float | None" = None

    _FIELDS = ("max_inflight", "backend_seconds", "window_s", "queue_share")

    @classmethod
    def from_mapping(cls, mapping: Mapping, where: str = "tenant budget") -> "TenantBudget":
        unknown = set(mapping) - set(cls._FIELDS)
        if unknown:
            raise ReproError(
                f"unknown key(s) {sorted(unknown)} in {where} "
                f"(known: {sorted(cls._FIELDS)})"
            )
        budget = cls(**{k: mapping[k] for k in cls._FIELDS if k in mapping})
        return budget.validate(where)

    def validate(self, where: str = "tenant budget") -> "TenantBudget":
        if self.max_inflight is not None and (
            isinstance(self.max_inflight, bool)
            or not isinstance(self.max_inflight, int)
            or self.max_inflight < 1
        ):
            raise ReproError(f"{where}: max_inflight must be an integer >= 1 or omitted")
        if self.backend_seconds is not None and (
            not isinstance(self.backend_seconds, (int, float))
            or self.backend_seconds < 0
        ):
            raise ReproError(f"{where}: backend_seconds must be a number >= 0 or omitted")
        if not isinstance(self.window_s, (int, float)) or self.window_s <= 0:
            raise ReproError(f"{where}: window_s must be a number > 0")
        if self.queue_share is not None and not (
            isinstance(self.queue_share, (int, float)) and 0.0 < self.queue_share <= 1.0
        ):
            raise ReproError(f"{where}: queue_share must be in (0, 1] or omitted")
        return self


@dataclass(frozen=True)
class AdmissionDecision:
    """One policy verdict, attachable to jobs and result telemetry."""

    action: str                      #: "admit" | "degrade" | "shed"
    tenant: str
    priority: str
    reason: str                      #: e.g. "ok", "backend_seconds", "queue_full"
    backends: "tuple | None" = None  #: rewritten fleet (degrade only)
    retry_after_s: "int | None" = None  #: shed only

    def as_record(self) -> dict:
        """The ``admission`` entry of the job JSON / ``info["admission"]``."""
        record = {
            "action": self.action,
            "tenant": self.tenant,
            "priority": self.priority,
            "reason": self.reason,
        }
        if self.backends is not None:
            record["backends"] = list(self.backends)
        if self.retry_after_s is not None:
            record["retry_after_s"] = self.retry_after_s
        return record


@dataclass
class _Ledger:
    """Loop-side accounting for one tenant."""

    queued: int = 0     #: admitted, not yet dispatched into a wave
    inflight: int = 0   #: admitted, not yet finished (queued + running)
    admitted: int = 0
    degraded: int = 0
    shed: int = 0
    finished: int = 0
    #: (monotonic finish time, backend wall seconds) per finished job,
    #: pruned to the budget window on read.
    usage: "deque[tuple[float, float]]" = field(default_factory=deque)

    def spend(self, now: float, seconds: float) -> None:
        self.usage.append((now, seconds))

    def spent(self, now: float, window_s: float) -> float:
        while self.usage and self.usage[0][0] < now - window_s:
            self.usage.popleft()
        return sum(seconds for _, seconds in self.usage)


class AdmissionPolicy:
    """Budget- and capacity-aware admit/degrade/shed decisions.

    Consumes the scoreboard's :meth:`~repro.engine.scheduler.
    BackendScoreboard.capacity_snapshot` (EWMA latency feeds
    ``Retry-After``) plus live queue depth, and keeps the per-tenant
    ledger the decisions read.  The owning service reports lifecycle
    transitions through :meth:`on_admit` / :meth:`on_dispatch` /
    :meth:`on_finish`; everything runs on the service's event loop, so
    no locking.

    Decision order (first match wins):

    1. tenant at ``max_inflight``                       → **shed**
    2. queue at ``max_depth``                           → **shed**
    3. tenant at ``queue_share`` of the depth           → **shed**
    4. tenant over ``backend_seconds`` in its window    → **degrade**
    5. ``best_effort`` while queue ≥ ``degrade_ratio``  → **degrade**
    6. otherwise                                        → **admit**
    """

    def __init__(
        self,
        queue,
        scoreboard,
        backends: tuple,
        tenants: "Mapping[str, Any] | None" = None,
        default_budget: "TenantBudget | Mapping | None" = None,
        degrade_backends: tuple = ("tabu",),
        degrade_ratio: float = 0.75,
        clock=time.monotonic,
    ):
        self._queue = queue
        self._scoreboard = scoreboard
        self._backends = tuple(backends)
        self._budgets = {
            name: budget if isinstance(budget, TenantBudget)
            else TenantBudget.from_mapping(budget, where=f"tenant {name!r} budget")
            for name, budget in dict(tenants or {}).items()
        }
        if default_budget is None:
            self._default_budget = TenantBudget()
        elif isinstance(default_budget, TenantBudget):
            self._default_budget = default_budget.validate("default budget")
        else:
            self._default_budget = TenantBudget.from_mapping(
                default_budget, where="default budget"
            )
        if not degrade_backends:
            raise ReproError("degrade_backends needs at least one registry name")
        self.degrade_backends = tuple(degrade_backends)
        if not 0.0 <= degrade_ratio <= 1.0:
            raise ReproError("degrade_ratio must be in [0, 1]")
        self.degrade_ratio = degrade_ratio
        self._clock = clock
        self._ledgers: "dict[str, _Ledger]" = {}

    # -- deciding --------------------------------------------------------------

    def budget_for(self, tenant: str) -> TenantBudget:
        return self._budgets.get(tenant, self._default_budget)

    def decide(self, tenant: str, priority: str) -> AdmissionDecision:
        """One verdict for one request; updates the shed counter only.

        The admit/degrade side effects (queue occupancy, in-flight count)
        are applied by :meth:`on_admit` once the service has actually
        enqueued the job — a decision alone reserves nothing.
        """
        if priority not in PRIORITIES:
            raise ReproError(
                f"priority must be one of {list(PRIORITIES)}, got {priority!r}"
            )
        budget = self.budget_for(tenant)
        ledger = self._ledgers.setdefault(tenant, _Ledger())
        depth, max_depth = self._queue.depth, self._queue.max_depth

        if budget.max_inflight is not None and ledger.inflight >= budget.max_inflight:
            return self._shed(tenant, priority, ledger, "max_inflight")
        if depth >= max_depth:
            return self._shed(tenant, priority, ledger, "queue_full")
        if budget.queue_share is not None:
            allowed = max(1, math.floor(budget.queue_share * max_depth))
            if ledger.queued >= allowed:
                return self._shed(tenant, priority, ledger, "queue_share")

        if (
            budget.backend_seconds is not None
            and ledger.spent(self._clock(), budget.window_s) >= budget.backend_seconds
        ):
            return self._degrade(tenant, priority, "backend_seconds")
        if priority == "best_effort" and depth >= self.degrade_ratio * max_depth:
            return self._degrade(tenant, priority, "queue_pressure")

        return AdmissionDecision(
            action="admit", tenant=tenant, priority=priority, reason="ok"
        )

    def _degrade(self, tenant: str, priority: str, reason: str) -> AdmissionDecision:
        return AdmissionDecision(
            action="degrade",
            tenant=tenant,
            priority=priority,
            reason=reason,
            backends=self.degrade_backends,
        )

    def _shed(self, tenant, priority, ledger: _Ledger, reason: str) -> AdmissionDecision:
        ledger.shed += 1
        return AdmissionDecision(
            action="shed",
            tenant=tenant,
            priority=priority,
            reason=reason,
            retry_after_s=self.retry_after_s(),
        )

    def retry_after_s(self) -> int:
        """Whole seconds a shed client should back off before retrying.

        Derived from the scoreboard's EWMA per-solve latency (cold default
        when nothing has been observed yet) scaled by how many max-wave
        dispatches the current backlog represents, clamped to
        ``[1, MAX_RETRY_AFTER_S]``.
        """
        per_solve = expected_service_time(
            self._scoreboard.capacity_snapshot(),
            self._backends,
            default=COLD_SERVICE_TIME_S,
        )
        waves_ahead = max(1, math.ceil((self._queue.depth + 1) / self._queue.max_wave))
        return int(min(MAX_RETRY_AFTER_S, max(1, math.ceil(per_solve * waves_ahead))))

    # -- accounting ------------------------------------------------------------

    def on_admit(self, job) -> None:
        """An admitted (or degraded) job entered the queue."""
        ledger = self._ledgers.setdefault(job.tenant, _Ledger())
        ledger.queued += 1
        ledger.inflight += 1
        ledger.admitted += 1
        if getattr(job, "backends", None) is not None:
            ledger.degraded += 1

    def on_dispatch(self, job) -> None:
        """An admitted job left the queue for a wave."""
        ledger = self._ledgers.setdefault(job.tenant, _Ledger())
        ledger.queued = max(0, ledger.queued - 1)

    def on_finish(self, job) -> None:
        """A job reached a terminal state; release and bill its tenant."""
        ledger = self._ledgers.setdefault(job.tenant, _Ledger())
        ledger.inflight = max(0, ledger.inflight - 1)
        ledger.finished += 1
        seconds = _backend_seconds(job)
        if seconds > 0:
            ledger.spend(self._clock(), seconds)

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> "dict[str, dict]":
        """Per-tenant ledger view for ``/readyz`` and the metrics scrape."""
        now = self._clock()
        rows = {}
        for tenant, ledger in self._ledgers.items():
            budget = self.budget_for(tenant)
            rows[tenant] = {
                "queued": ledger.queued,
                "inflight": ledger.inflight,
                "admitted": ledger.admitted,
                "degraded": ledger.degraded,
                "shed": ledger.shed,
                "finished": ledger.finished,
                "backend_seconds_used": round(
                    ledger.spent(now, budget.window_s), 6
                ),
            }
        return rows


def _backend_seconds(job) -> float:
    """Backend wall seconds one finished job consumed (best available)."""
    result = getattr(job, "result", None)
    wall = getattr(result, "wall_time", None)
    if isinstance(wall, (int, float)) and math.isfinite(wall) and wall >= 0:
        return float(wall)
    started = getattr(job, "started_at", None)
    finished = getattr(job, "finished_at", None)
    if started is not None and finished is not None:
        return max(0.0, finished - started)
    return 0.0
