"""Service configuration: defaults -> TOML file -> environment overrides.

The loader is stdlib-only (``tomllib``): a config file is optional, every
field has a production-sane default, and a handful of ``REPRO_SERVICE_*``
environment variables override both — the twelve-factor shape a container
deployment needs.  Unknown TOML keys are an error, not a silent ignore: a
typo in ``window_s`` must not quietly run the service with a default.

TOML layout (every table and key optional)::

    [service]
    host = "127.0.0.1"
    port = 8735
    max_queue_depth = 1024
    job_retention = 4096

    [coalesce]
    window_s = 0.05
    max_wave = 64
    max_inflight_waves = 1

    [engine]
    backends = ["sa", "tabu"]          # >1 name enables adaptive routing
    executor = "threads"
    refine = true
    top_k = 8
    cache = true                        # true | false | "/path/to/dir"
    store = "/var/lib/repro/engine.db"  # omit to consult REPRO_STORE
    epsilon = 0.1
    scheduler_seed = 0

    [engine.backend_opts.sa]
    num_reads = 16
"""

from __future__ import annotations

import os

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10: env/kwargs config only
    tomllib = None
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.exceptions import ReproError

#: Environment overrides: variable -> (config field, parser).
_ENV_OVERRIDES = {
    "REPRO_SERVICE_HOST": ("host", str),
    "REPRO_SERVICE_PORT": ("port", int),
    "REPRO_SERVICE_WINDOW_S": ("window_s", float),
    "REPRO_SERVICE_MAX_WAVE": ("max_wave", int),
    "REPRO_SERVICE_MAX_QUEUE_DEPTH": ("max_queue_depth", int),
    "REPRO_SERVICE_EXECUTOR": ("executor", str),
    "REPRO_SERVICE_BACKENDS": (
        "backends",
        lambda raw: tuple(name.strip() for name in raw.split(",") if name.strip()),
    ),
    "REPRO_SERVICE_STORE": ("store", str),
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service tier needs to boot, in one value object.

    Attributes:
        host: Bind address; ``port`` 0 asks the OS for an ephemeral port
            (the bound port is printed by ``python -m repro.service``).
        max_queue_depth: Submissions beyond this many undispatched jobs
            are rejected with 429 (backpressure, not unbounded memory).
        job_retention: Finished jobs kept for ``GET /v1/jobs/<id>``;
            oldest finished jobs are evicted past this count.
        window_s: Coalescing window — how long the queue holds the first
            pending submission open for companions before dispatching the
            wave.  Latency-vs-amortisation knob.
        max_wave: A wave dispatches immediately once this many
            submissions are pending, window notwithstanding.
        max_inflight_waves: Concurrent ``solve_many`` waves; further
            waves queue behind a semaphore while collection continues.
        backends: Backend fleet (registry names).  One name solves every
            wave on that backend; several enable an
            :class:`~repro.engine.scheduler.AdaptiveScheduler` that
            routes each request's structure by scoreboard telemetry.
        backend_opts: Per-backend factory options keyed by registry name.
        executor: Engine executor for wave dispatch (``threads`` default;
            any :func:`~repro.engine.executors.list_executors` entry).
        cache: ``True`` (service-owned in-memory cache), ``False``, or a
            directory path for the disk tier.
        store: Durable :class:`~repro.engine.store.EngineStore` path.
            ``None`` consults ``REPRO_STORE`` (the engine convention);
            ``""`` forces the store off.
        epsilon / scheduler_seed / scheduler_deadline_s: Adaptive-routing
            knobs, forwarded to the scheduler (fleet mode only).
        refine / top_k: Solve-kernel options shared by every request —
            they are part of the cache key, so the service pins them
            fleet-wide rather than letting requests fragment the cache.
    """

    host: str = "127.0.0.1"
    port: int = 8735
    max_queue_depth: int = 1024
    job_retention: int = 4096
    window_s: float = 0.05
    max_wave: int = 64
    max_inflight_waves: int = 1
    backends: tuple = ("sa",)
    backend_opts: dict = field(default_factory=dict)
    executor: str = "threads"
    refine: bool = True
    top_k: int = 8
    cache: Any = True
    store: "str | None" = None
    epsilon: float = 0.1
    scheduler_seed: int = 0
    scheduler_deadline_s: "float | None" = None

    def validate(self) -> "ServiceConfig":
        if not 0 <= self.port <= 65535:
            raise ReproError(f"service port must be in [0, 65535], got {self.port}")
        if self.max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1")
        if self.job_retention < 1:
            raise ReproError("job_retention must be >= 1")
        if self.window_s < 0:
            raise ReproError("coalesce window_s must be >= 0")
        if self.max_wave < 1:
            raise ReproError("max_wave must be >= 1")
        if self.max_inflight_waves < 1:
            raise ReproError("max_inflight_waves must be >= 1")
        if not self.backends:
            raise ReproError("the backend fleet needs at least one registry name")
        unknown = set(self.backend_opts) - set(self.backends)
        if unknown:
            raise ReproError(
                f"backend_opts for {sorted(unknown)} match no fleet backend"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ReproError("epsilon must be in [0, 1]")
        if self.top_k < 1:
            raise ReproError("top_k must be >= 1")
        return self

    @property
    def scheduled(self) -> bool:
        """Whether the fleet is large enough to need adaptive routing."""
        return len(self.backends) > 1


def _take(table: Mapping, known: dict, where: str) -> dict:
    """Map TOML keys to config fields, rejecting anything unknown."""
    out = {}
    for key, value in table.items():
        if key not in known:
            raise ReproError(
                f"unknown key {key!r} in [{where}] (known: {sorted(known)})"
            )
        out[known[key]] = value
    return out


def load_config(
    path: "str | os.PathLike | None" = None,
    env: "Mapping[str, str] | None" = None,
    **overrides,
) -> ServiceConfig:
    """Build a :class:`ServiceConfig`: defaults <- TOML <- env <- kwargs.

    Args:
        path: Optional TOML file (see the module docstring for the layout).
        env: Environment mapping (defaults to ``os.environ``) consulted
            for ``REPRO_SERVICE_*`` overrides.
        **overrides: Final programmatic overrides (e.g. ``port=0`` from
            the CLI) applied after everything else.
    """
    env = os.environ if env is None else env
    fields: dict = {}

    if path is not None:
        if tomllib is None:
            raise ReproError(
                "TOML config files need Python 3.11+ (stdlib tomllib); use "
                "REPRO_SERVICE_* environment variables or kwargs instead"
            )
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        unknown = set(data) - {"service", "coalesce", "engine"}
        if unknown:
            raise ReproError(
                f"unknown table(s) {sorted(unknown)} in {path} "
                "(known: service, coalesce, engine)"
            )
        fields.update(_take(data.get("service", {}), {
            "host": "host", "port": "port",
            "max_queue_depth": "max_queue_depth", "job_retention": "job_retention",
        }, "service"))
        fields.update(_take(data.get("coalesce", {}), {
            "window_s": "window_s", "max_wave": "max_wave",
            "max_inflight_waves": "max_inflight_waves",
        }, "coalesce"))
        engine = dict(data.get("engine", {}))
        opts = engine.pop("backend_opts", {})
        if not isinstance(opts, dict) or not all(isinstance(v, dict) for v in opts.values()):
            raise ReproError("[engine.backend_opts.<name>] tables must map option -> value")
        fields.update(_take(engine, {
            "backends": "backends", "executor": "executor", "refine": "refine",
            "top_k": "top_k", "cache": "cache", "store": "store",
            "epsilon": "epsilon", "scheduler_seed": "scheduler_seed",
            "deadline_s": "scheduler_deadline_s",
        }, "engine"))
        if opts:
            fields["backend_opts"] = {name: dict(v) for name, v in opts.items()}
        if "backends" in fields:
            backends = fields["backends"]
            if isinstance(backends, str):
                backends = [backends]
            fields["backends"] = tuple(str(b) for b in backends)

    for variable, (target, parse) in _ENV_OVERRIDES.items():
        raw = env.get(variable)
        if raw is not None and raw != "":
            try:
                fields[target] = parse(raw)
            except ValueError as exc:
                raise ReproError(f"bad {variable}={raw!r}: {exc}") from exc

    config = replace(ServiceConfig(), **fields)
    if overrides:
        config = replace(config, **overrides)
    return config.validate()
