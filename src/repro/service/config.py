"""Service configuration: defaults -> TOML file -> environment overrides.

The loader is stdlib-only (``tomllib``): a config file is optional, every
field has a production-sane default, and a handful of ``REPRO_SERVICE_*``
environment variables override both — the twelve-factor shape a container
deployment needs.  Unknown TOML keys are an error, not a silent ignore: a
typo in ``window_s`` must not quietly run the service with a default.

TOML layout (every table and key optional)::

    [service]
    host = "127.0.0.1"
    port = 8735
    max_queue_depth = 1024
    job_retention = 4096
    log_level = "info"                  # debug | info | warning | error
    log_format = "text"                 # text | json (one object per line)
    trace = true                        # end-to-end tracing + flight recorder
    trace_buffer = 256                  # traces kept in the flight recorder

    [coalesce]
    window_s = 0.05
    max_wave = 64
    max_inflight_waves = 1

    [engine]
    backends = ["sa", "tabu"]          # >1 name enables adaptive routing
    executor = "threads"
    refine = true
    top_k = 8
    cache = true                        # true | false | "/path/to/dir"
    store = "/var/lib/repro/engine.db"  # omit to consult REPRO_STORE
    epsilon = 0.1
    scheduler_seed = 0

    [engine.backend_opts.sa]
    num_reads = 16

    [admission]
    degrade_backends = ["tabu"]         # the cheap classical tier
    degrade_ratio = 0.75                # queue fill ratio that degrades best_effort
    lane_weights = {interactive = 4, batch = 2, best_effort = 1}

    [admission.default_budget]          # tenants without a named budget
    max_inflight = 256

    [admission.tenants.crawler]         # per-tenant budget overrides
    max_inflight = 8
    backend_seconds = 30.0
    window_s = 60.0
    queue_share = 0.25
"""

from __future__ import annotations

import os

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10: env/kwargs config only
    tomllib = None
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.service.admission import DEFAULT_LANE_WEIGHTS, PRIORITIES, TenantBudget


def _parse_tenant_budgets(raw: str) -> dict:
    """``"crawler:max_inflight=8:backend_seconds=30;lab:queue_share=0.5"``
    -> ``{"crawler": {...}, "lab": {...}}`` (the env spelling of
    ``[admission.tenants.<name>]``)."""
    tenants: dict = {}
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, *settings = chunk.split(":")
        name = name.strip()
        if not name:
            raise ValueError(f"tenant budget chunk {chunk!r} is missing a tenant name")
        budget: dict = {}
        for setting in settings:
            key, sep, value = setting.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(f"tenant budget setting {setting!r} is not key=value")
            number = float(value.strip())
            budget[key] = int(number) if key == "max_inflight" else number
        tenants[name] = budget
    return tenants


#: Environment overrides: variable -> (config field, parser).
_ENV_OVERRIDES = {
    "REPRO_SERVICE_HOST": ("host", str),
    "REPRO_SERVICE_PORT": ("port", int),
    "REPRO_SERVICE_WINDOW_S": ("window_s", float),
    "REPRO_SERVICE_MAX_WAVE": ("max_wave", int),
    "REPRO_SERVICE_MAX_QUEUE_DEPTH": ("max_queue_depth", int),
    "REPRO_SERVICE_EXECUTOR": ("executor", str),
    "REPRO_SERVICE_BACKENDS": (
        "backends",
        lambda raw: tuple(name.strip() for name in raw.split(",") if name.strip()),
    ),
    "REPRO_SERVICE_STORE": ("store", str),
    "REPRO_SERVICE_DEGRADE_BACKENDS": (
        "degrade_backends",
        lambda raw: tuple(name.strip() for name in raw.split(",") if name.strip()),
    ),
    "REPRO_SERVICE_TENANTS": ("tenants", _parse_tenant_budgets),
    "REPRO_SERVICE_LOG_LEVEL": ("log_level", str),
    "REPRO_SERVICE_LOG_FORMAT": ("log_format", str),
    "REPRO_SERVICE_TRACE": (
        "trace",
        lambda raw: raw.strip().lower() in ("1", "true", "yes", "on"),
    ),
    "REPRO_SERVICE_TRACE_BUFFER": ("trace_buffer", int),
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service tier needs to boot, in one value object.

    Attributes:
        host: Bind address; ``port`` 0 asks the OS for an ephemeral port
            (the bound port is printed by ``python -m repro.service``).
        max_queue_depth: Submissions beyond this many undispatched jobs
            are rejected with 429 (backpressure, not unbounded memory).
        job_retention: Finished jobs kept for ``GET /v1/jobs/<id>``;
            oldest finished jobs are evicted past this count.
        window_s: Coalescing window — how long the queue holds the first
            pending submission open for companions before dispatching the
            wave.  Latency-vs-amortisation knob.
        max_wave: A wave dispatches immediately once this many
            submissions are pending, window notwithstanding.
        max_inflight_waves: Concurrent ``solve_many`` waves; further
            waves queue behind a semaphore while collection continues.
        backends: Backend fleet (registry names).  One name solves every
            wave on that backend; several enable an
            :class:`~repro.engine.scheduler.AdaptiveScheduler` that
            routes each request's structure by scoreboard telemetry.
        backend_opts: Per-backend factory options keyed by registry name.
        executor: Engine executor for wave dispatch (``threads`` default;
            any :func:`~repro.engine.executors.list_executors` entry).
        cache: ``True`` (service-owned in-memory cache), ``False``, or a
            directory path for the disk tier.
        store: Durable :class:`~repro.engine.store.EngineStore` path.
            ``None`` consults ``REPRO_STORE`` (the engine convention);
            ``""`` forces the store off.
        epsilon / scheduler_seed / scheduler_deadline_s: Adaptive-routing
            knobs, forwarded to the scheduler (fleet mode only).
        refine / top_k: Solve-kernel options shared by every request —
            they are part of the cache key, so the service pins them
            fleet-wide rather than letting requests fragment the cache.
        tenants: Per-tenant budget tables (``{name: {max_inflight,
            backend_seconds, window_s, queue_share}}``, every key
            optional — see :class:`~repro.service.admission.TenantBudget`).
        default_budget: Budget applied to tenants without a named entry
            (empty = unlimited).
        lane_weights: Per-priority wave-drain weights overlaying
            :data:`~repro.service.admission.DEFAULT_LANE_WEIGHTS`.
        degrade_backends: The cheap classical tier degraded requests are
            rewritten to (``("tabu",)`` default; >1 name routes the
            degraded group through its own adaptive scheduler).
        degrade_ratio: Queue fill fraction at which ``best_effort``
            requests degrade pre-emptively (1.0 disables).
        log_level / log_format: Structured-logging knobs for
            :func:`repro.obs.log.configure` (``REPRO_SERVICE_LOG_LEVEL`` /
            ``REPRO_SERVICE_LOG_FORMAT`` env spellings).
        trace: End-to-end tracing; off swaps the tracer for the zero-
            overhead no-op and disables the flight recorder endpoints.
        trace_buffer: Traces retained by the flight recorder ring buffer.
    """

    host: str = "127.0.0.1"
    port: int = 8735
    max_queue_depth: int = 1024
    job_retention: int = 4096
    window_s: float = 0.05
    max_wave: int = 64
    max_inflight_waves: int = 1
    backends: tuple = ("sa",)
    backend_opts: dict = field(default_factory=dict)
    executor: str = "threads"
    refine: bool = True
    top_k: int = 8
    cache: Any = True
    store: "str | None" = None
    epsilon: float = 0.1
    scheduler_seed: int = 0
    scheduler_deadline_s: "float | None" = None
    tenants: dict = field(default_factory=dict)
    default_budget: dict = field(default_factory=dict)
    lane_weights: dict = field(default_factory=dict)
    degrade_backends: tuple = ("tabu",)
    degrade_ratio: float = 0.75
    log_level: str = "info"
    log_format: str = "text"
    trace: bool = True
    trace_buffer: int = 256

    def validate(self) -> "ServiceConfig":
        if not 0 <= self.port <= 65535:
            raise ReproError(f"service port must be in [0, 65535], got {self.port}")
        if self.max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1")
        if self.job_retention < 1:
            raise ReproError("job_retention must be >= 1")
        if self.window_s < 0:
            raise ReproError("coalesce window_s must be >= 0")
        if self.max_wave < 1:
            raise ReproError("max_wave must be >= 1")
        if self.max_inflight_waves < 1:
            raise ReproError("max_inflight_waves must be >= 1")
        if not self.backends:
            raise ReproError("the backend fleet needs at least one registry name")
        unknown = set(self.backend_opts) - set(self.backends)
        if unknown:
            raise ReproError(
                f"backend_opts for {sorted(unknown)} match no fleet backend"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ReproError("epsilon must be in [0, 1]")
        if self.top_k < 1:
            raise ReproError("top_k must be >= 1")
        if not isinstance(self.tenants, Mapping):
            raise ReproError("tenants must map tenant name -> budget table")
        for name, budget in self.tenants.items():
            TenantBudget.from_mapping(budget, where=f"tenant {name!r} budget")
        TenantBudget.from_mapping(self.default_budget, where="default budget")
        unknown = set(self.lane_weights) - set(PRIORITIES)
        if unknown:
            raise ReproError(
                f"lane_weights for {sorted(unknown)} match no priority "
                f"(known: {list(PRIORITIES)})"
            )
        for lane, weight in self.lane_weights.items():
            if isinstance(weight, bool) or not isinstance(weight, int) or weight < 1:
                raise ReproError(f"lane {lane!r} weight must be an integer >= 1")
        if not self.degrade_backends:
            raise ReproError("degrade_backends needs at least one registry name")
        if not 0.0 <= self.degrade_ratio <= 1.0:
            raise ReproError("degrade_ratio must be in [0, 1]")
        from repro.obs.log import FORMATS, LEVELS

        if str(self.log_level).lower() not in LEVELS:
            raise ReproError(
                f"log_level must be one of {sorted(LEVELS)}, got {self.log_level!r}"
            )
        if self.log_format not in FORMATS:
            raise ReproError(
                f"log_format must be one of {list(FORMATS)}, got {self.log_format!r}"
            )
        if self.trace_buffer < 1:
            raise ReproError("trace_buffer must be >= 1")
        return self

    @property
    def scheduled(self) -> bool:
        """Whether the fleet is large enough to need adaptive routing."""
        return len(self.backends) > 1

    def resolved_lane_weights(self) -> dict:
        """Defaults overlaid with this config's ``lane_weights``."""
        weights = dict(DEFAULT_LANE_WEIGHTS)
        weights.update(self.lane_weights)
        return weights


def _take(table: Mapping, known: dict, where: str) -> dict:
    """Map TOML keys to config fields, rejecting anything unknown."""
    out = {}
    for key, value in table.items():
        if key not in known:
            raise ReproError(
                f"unknown key {key!r} in [{where}] (known: {sorted(known)})"
            )
        out[known[key]] = value
    return out


def load_config(
    path: "str | os.PathLike | None" = None,
    env: "Mapping[str, str] | None" = None,
    **overrides,
) -> ServiceConfig:
    """Build a :class:`ServiceConfig`: defaults <- TOML <- env <- kwargs.

    Args:
        path: Optional TOML file (see the module docstring for the layout).
        env: Environment mapping (defaults to ``os.environ``) consulted
            for ``REPRO_SERVICE_*`` overrides.
        **overrides: Final programmatic overrides (e.g. ``port=0`` from
            the CLI) applied after everything else.
    """
    env = os.environ if env is None else env
    fields: dict = {}

    if path is not None:
        if tomllib is None:
            raise ReproError(
                "TOML config files need Python 3.11+ (stdlib tomllib); use "
                "REPRO_SERVICE_* environment variables or kwargs instead"
            )
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        unknown = set(data) - {"service", "coalesce", "engine", "admission"}
        if unknown:
            raise ReproError(
                f"unknown table(s) {sorted(unknown)} in {path} "
                "(known: service, coalesce, engine, admission)"
            )
        fields.update(_take(data.get("service", {}), {
            "host": "host", "port": "port",
            "max_queue_depth": "max_queue_depth", "job_retention": "job_retention",
            "log_level": "log_level", "log_format": "log_format",
            "trace": "trace", "trace_buffer": "trace_buffer",
        }, "service"))
        fields.update(_take(data.get("coalesce", {}), {
            "window_s": "window_s", "max_wave": "max_wave",
            "max_inflight_waves": "max_inflight_waves",
        }, "coalesce"))
        engine = dict(data.get("engine", {}))
        opts = engine.pop("backend_opts", {})
        if not isinstance(opts, dict) or not all(isinstance(v, dict) for v in opts.values()):
            raise ReproError("[engine.backend_opts.<name>] tables must map option -> value")
        fields.update(_take(engine, {
            "backends": "backends", "executor": "executor", "refine": "refine",
            "top_k": "top_k", "cache": "cache", "store": "store",
            "epsilon": "epsilon", "scheduler_seed": "scheduler_seed",
            "deadline_s": "scheduler_deadline_s",
        }, "engine"))
        if opts:
            fields["backend_opts"] = {name: dict(v) for name, v in opts.items()}
        if "backends" in fields:
            backends = fields["backends"]
            if isinstance(backends, str):
                backends = [backends]
            fields["backends"] = tuple(str(b) for b in backends)
        admission = dict(data.get("admission", {}))
        tenants = admission.pop("tenants", {})
        if not isinstance(tenants, dict) or not all(
            isinstance(v, dict) for v in tenants.values()
        ):
            raise ReproError(
                "[admission.tenants.<name>] tables must map budget key -> value"
            )
        default_budget = admission.pop("default_budget", {})
        if not isinstance(default_budget, dict):
            raise ReproError("[admission.default_budget] must be a table")
        lane_weights = admission.pop("lane_weights", {})
        if not isinstance(lane_weights, dict):
            raise ReproError("admission lane_weights must map priority -> weight")
        fields.update(_take(admission, {
            "degrade_backends": "degrade_backends", "degrade_ratio": "degrade_ratio",
        }, "admission"))
        if "degrade_backends" in fields:
            degraded = fields["degrade_backends"]
            if isinstance(degraded, str):
                degraded = [degraded]
            fields["degrade_backends"] = tuple(str(b) for b in degraded)
        if tenants:
            fields["tenants"] = {name: dict(v) for name, v in tenants.items()}
        if default_budget:
            fields["default_budget"] = dict(default_budget)
        if lane_weights:
            fields["lane_weights"] = dict(lane_weights)

    for variable, (target, parse) in _ENV_OVERRIDES.items():
        raw = env.get(variable)
        if raw is not None and raw != "":
            try:
                fields[target] = parse(raw)
            except ValueError as exc:
                raise ReproError(f"bad {variable}={raw!r}: {exc}") from exc

    config = replace(ServiceConfig(), **fields)
    if overrides:
        config = replace(config, **overrides)
    return config.validate()
