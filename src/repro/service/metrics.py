"""Prometheus text-format metrics, stdlib only.

A deliberately small subset of the client-library surface — counters,
gauges, and cumulative histograms with fixed buckets — rendered in the
text exposition format (version 0.0.4) that Prometheus, VictoriaMetrics,
and every scraper in between ingest.  The service derives most values at
scrape time from telemetry the engine already keeps (scoreboard capacity
snapshots, cache hit counters), so this module stays a renderer, not a
second bookkeeping system.

Thread-safety: a single lock per metric family.  Waves complete on worker
threads while ``/metrics`` renders on the event loop, so increments and
render snapshots must not interleave mid-update.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ReproError

#: Default latency buckets (seconds): interactive solves through slow waves.
LATENCY_BUCKETS = (0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default wave-size buckets: powers of two up to a wide wave.
WAVE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


class _Metric:
    """Shared machinery: one value (or histogram state) per label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict = {}

    def _key(self, labels: Mapping[str, str]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ReproError(
                f"metric {self.name} expects labels {self.labelnames}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_map(self, key: tuple) -> dict:
        return dict(zip(self.labelnames, key))

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]


class Counter(_Metric):
    """Monotonically increasing total (optionally labelled)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ReproError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(self._label_map(key))} {_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A value that can go anywhere (queue depth, capacity stats)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def clear(self) -> None:
        """Drop every label set (scrape-time derived gauges re-populate)."""
        with self._lock:
            self._values.clear()

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(self._label_map(key))} {_format_value(value)}"
            )
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram (wave sizes, request latencies)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ):
        super().__init__(name, help_text, labelnames)
        if not buckets or sorted(buckets) != list(buckets):
            raise ReproError("histogram buckets must be a sorted non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, exemplar: "str | None" = None, **labels) -> None:
        """Record one observation; ``exemplar`` ties it to a trace.

        The exemplar (a trace id) is stored per bucket — last writer wins —
        so "which request landed in the slow bucket?" is answerable from
        the flight recorder.  Exemplars stay out of the text exposition
        (Prometheus 0.0.4 format has no exemplar syntax); read them with
        :meth:`exemplars`.
        """
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {
                    "counts": [0] * len(self.buckets), "sum": 0.0, "count": 0,
                    "exemplars": [None] * (len(self.buckets) + 1),
                }
                self._values[key] = state
            landed = len(self.buckets)  # the +Inf overflow slot
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][i] += 1
                    landed = min(landed, i)
            state["sum"] += float(value)
            state["count"] += 1
            if exemplar is not None:
                state["exemplars"][landed] = {
                    "trace_id": exemplar, "value": float(value),
                }

    def count(self, **labels) -> int:
        with self._lock:
            state = self._values.get(self._key(labels))
            return state["count"] if state else 0

    def exemplars(self, **labels) -> "list[dict | None]":
        """Per-bucket exemplars (one slot per bucket plus +Inf), or ``[]``."""
        with self._lock:
            state = self._values.get(self._key(labels))
            if not state:
                return []
            return [
                dict(e) if e else None for e in state.get("exemplars", [])
            ]

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(
                (key, {"counts": list(s["counts"]), "sum": s["sum"], "count": s["count"]})
                for key, s in self._values.items()
            )
        lines = self.header()
        if not items and not self.labelnames:
            items = [((), {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0})]
        for key, state in items:
            base = self._label_map(key)
            for bound, cumulative in zip(self.buckets, state["counts"]):
                labels = dict(base, le=_format_value(bound))
                lines.append(
                    f"{self.name}_bucket{_format_labels(labels)} {cumulative}"
                )
            labels = dict(base, le="+Inf")
            lines.append(f"{self.name}_bucket{_format_labels(labels)} {state['count']}")
            lines.append(
                f"{self.name}_sum{_format_labels(base)} {_format_value(state['sum'])}"
            )
            lines.append(f"{self.name}_count{_format_labels(base)} {state['count']}")
        return lines

    def _key(self, labels: Mapping[str, str]) -> tuple:  # le is reserved
        if "le" in labels:
            raise ReproError("'le' is a reserved histogram label")
        return super()._key(labels)


class MetricsRegistry:
    """Ordered collection of metrics with one text-exposition renderer."""

    def __init__(self):
        self._metrics: "dict[str, _Metric]" = {}

    def register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ReproError(f"metric {metric.name!r} is already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self.register(Histogram(name, help_text, buckets, labelnames))

    def render(self) -> str:
        lines: list[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def __iter__(self) -> Iterable[_Metric]:  # pragma: no cover - convenience
        return iter(self._metrics.values())
