"""Wire-format problem specs -> :class:`~repro.api.problem.Problem` adapters.

A service request cannot ship a live python object, so ``POST /v1/solve``
carries a small JSON spec and this module rebuilds the problem behind it.
Three kinds cover the service's traffic:

* ``{"kind": "mqo", "num_queries": 4, "plans_per_query": 3,
  "sharing_density": 0.4, "instance_seed": 7}`` — a generated multiple-
  query-optimization instance.  ``instance_seed`` pins the generator RNG,
  so the same spec names the same instance on every node: specs are
  *content-addressable*, which is what lets the engine's fingerprint cache
  collapse identical requests.
* ``{"kind": "joinorder", "topology": "chain"|"star"|"cycle",
  "num_relations": 5, "instance_seed": 7, "encoding": "leftdeep"|"bushy"}``
  — a generated join-ordering instance.
* ``{"kind": "qubo", "linear": {"x0": -1.0}, "quadratic":
  [["x0", "x1", 2.0]], "offset": 0.0}`` — a raw QUBO, for callers that
  formulate themselves.
* ``{"kind": "workload", "script": "SELECT ...; UPDATE ...",
  "catalog": {"tables": {"users": {"cardinality": 1000,
  "distinct": {"uid": 1000}}}}, "instance": 0, "bushy": false}`` — one
  instance of a compiled SQL workload (``docs/workload.md``): the script
  is compiled with :func:`repro.workload.compile_workload` against the
  inline statistics-only catalog and the ``instance``-th Table I problem
  is returned.  A spec is content-addressable — same script + catalog +
  index names the same instance everywhere — so coalescing and the
  fingerprint cache work exactly as for generated instances.

Specs are validated with explicit bounds (a public endpoint must not let
one request formulate an exponential instance), and every error is a
:class:`~repro.exceptions.ReproError` the HTTP layer maps to 400.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.problem import Problem
from repro.exceptions import ReproError
from repro.qubo.model import QuboModel

#: Instance-size ceilings: large enough for every benchmark shape the repo
#: generates, small enough that formulation stays interactive.
MAX_QUERIES = 32
MAX_PLANS = 32
MAX_RELATIONS = 12
MAX_QUBO_VARIABLES = 1024
MAX_SCRIPT_LENGTH = 8192
MAX_SCRIPT_STATEMENTS = 24
MAX_CATALOG_TABLES = 64
MAX_TABLE_CARDINALITY = 10**9


class RawQuboProblem(Problem):
    """A caller-formulated QUBO behind the uniform Problem contract.

    Solutions are ``{label: bit}`` assignments; the exact objective *is*
    the QUBO energy (there is no hidden domain cost to re-evaluate), so
    ``energy`` and ``objective`` agree on this adapter.
    """

    name = "qubo"

    def __init__(self, model: QuboModel):
        self.model = model

    def build_qubo(self) -> QuboModel:
        return self.model

    def decode(self, bits) -> dict:
        return self.to_qubo().decode(bits)

    def evaluate(self, solution: Mapping) -> float:
        return self.to_qubo().energy(solution)


def _require_int(spec: Mapping, key: str, lo: int, hi: int, default=None) -> int:
    value = spec.get(key, default)
    if value is None:
        raise ReproError(f"problem spec is missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"problem spec field {key!r} must be an integer")
    if not lo <= value <= hi:
        raise ReproError(f"problem spec field {key!r} must be in [{lo}, {hi}], got {value}")
    return value


def _mqo_from_spec(spec: Mapping) -> Problem:
    from repro.api.adapters import MQOAdapter
    from repro.mqo.generator import generate_mqo_problem

    density = spec.get("sharing_density", 0.3)
    if not isinstance(density, (int, float)) or not 0.0 <= float(density) <= 1.0:
        raise ReproError("sharing_density must be a number in [0, 1]")
    return MQOAdapter(
        generate_mqo_problem(
            _require_int(spec, "num_queries", 1, MAX_QUERIES),
            _require_int(spec, "plans_per_query", 1, MAX_PLANS),
            sharing_density=float(density),
            rng=_require_int(spec, "instance_seed", 0, 2**31 - 1, default=0),
        )
    )


def _joinorder_from_spec(spec: Mapping) -> Problem:
    from repro.api.adapters import BushyJoinAdapter, LeftDeepJoinAdapter
    from repro.db.generator import chain_query, cycle_query, star_query

    topologies = {"chain": chain_query, "star": star_query, "cycle": cycle_query}
    topology = spec.get("topology", "chain")
    if topology not in topologies:
        raise ReproError(f"joinorder topology must be one of {sorted(topologies)}")
    graph = topologies[topology](
        _require_int(spec, "num_relations", 2 if topology != "cycle" else 3, MAX_RELATIONS),
        rng=_require_int(spec, "instance_seed", 0, 2**31 - 1, default=0),
    )
    encoding = spec.get("encoding", "leftdeep")
    if encoding == "leftdeep":
        return LeftDeepJoinAdapter(graph)
    if encoding == "bushy":
        return BushyJoinAdapter(graph)
    raise ReproError("joinorder encoding must be 'leftdeep' or 'bushy'")


def _qubo_from_spec(spec: Mapping) -> Problem:
    linear = spec.get("linear", {})
    quadratic = spec.get("quadratic", [])
    if not isinstance(linear, Mapping):
        raise ReproError("qubo 'linear' must map variable label -> coefficient")
    if not isinstance(quadratic, (list, tuple)):
        raise ReproError("qubo 'quadratic' must be a list of [u, v, coefficient] triples")
    if not linear and not quadratic:
        raise ReproError("a qubo spec needs at least one linear or quadratic term")
    model = QuboModel()
    try:
        for label, coeff in linear.items():
            model.add_linear(str(label), float(coeff))
        for entry in quadratic:
            u, v, coeff = entry
            model.add_quadratic(str(u), str(v), float(coeff))
        model.add_offset(float(spec.get("offset", 0.0)))
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed qubo term: {exc}") from exc
    if model.num_variables > MAX_QUBO_VARIABLES:
        raise ReproError(
            f"qubo spec has {model.num_variables} variables "
            f"(limit {MAX_QUBO_VARIABLES})"
        )
    return RawQuboProblem(model)


def _catalog_from_spec(spec: Mapping):
    from repro.db.catalog import Catalog

    tables = spec.get("tables")
    if not isinstance(tables, Mapping) or not tables:
        raise ReproError("workload 'catalog' must carry a non-empty 'tables' object")
    if len(tables) > MAX_CATALOG_TABLES:
        raise ReproError(
            f"workload catalog has {len(tables)} tables (limit {MAX_CATALOG_TABLES})"
        )
    catalog = Catalog()
    for name, stats in tables.items():
        if not isinstance(stats, Mapping):
            raise ReproError(f"catalog table {name!r} must be an object")
        cardinality = _require_int(stats, "cardinality", 1, MAX_TABLE_CARDINALITY)
        distinct = stats.get("distinct", {})
        if not isinstance(distinct, Mapping):
            raise ReproError(f"catalog table {name!r} 'distinct' must map column -> count")
        distinct_values = {}
        for column, count in distinct.items():
            if isinstance(count, bool) or not isinstance(count, int) or count < 1:
                raise ReproError(
                    f"distinct count for {name}.{column} must be a positive integer"
                )
            distinct_values[str(column)] = count
        catalog.add_table(str(name), cardinality, distinct_values)
    return catalog


def _workload_from_spec(spec: Mapping) -> Problem:
    from repro.db.sql import parse_script
    from repro.exceptions import ParseError
    from repro.workload import compile_workload

    script = spec.get("script")
    if not isinstance(script, str) or not script.strip():
        raise ReproError("workload spec needs a non-empty 'script' string")
    if len(script) > MAX_SCRIPT_LENGTH:
        raise ReproError(
            f"workload script is {len(script)} chars (limit {MAX_SCRIPT_LENGTH})"
        )
    catalog_spec = spec.get("catalog")
    if not isinstance(catalog_spec, Mapping):
        raise ReproError("workload spec needs a 'catalog' object with table statistics")
    bushy = spec.get("bushy", False)
    if not isinstance(bushy, bool):
        raise ReproError("workload 'bushy' must be a boolean")
    try:
        statements = parse_script(script)
    except ParseError as exc:
        raise ReproError(f"workload script failed to parse: {exc}") from exc
    if len(statements) > MAX_SCRIPT_STATEMENTS:
        raise ReproError(
            f"workload script has {len(statements)} statements "
            f"(limit {MAX_SCRIPT_STATEMENTS})"
        )
    for statement in statements:
        if statement.kind == "select" and len(statement.tables) > MAX_RELATIONS:
            raise ReproError(
                f"a SELECT joins {len(statement.tables)} tables (limit {MAX_RELATIONS})"
            )
    plan = compile_workload(statements, _catalog_from_spec(catalog_spec), bushy=bushy)
    index = _require_int(spec, "instance", 0, len(plan.instances) - 1, default=0)
    return plan.instances[index].problem


_KINDS = {
    "mqo": _mqo_from_spec,
    "joinorder": _joinorder_from_spec,
    "qubo": _qubo_from_spec,
    "workload": _workload_from_spec,
}


def problem_from_spec(spec: Any) -> Problem:
    """Rebuild the :class:`Problem` a JSON problem spec names.

    Raises :class:`~repro.exceptions.ReproError` (HTTP 400 at the edge)
    for an unknown kind, a missing/ill-typed field, or an instance beyond
    the size ceilings.
    """
    if not isinstance(spec, Mapping):
        raise ReproError("problem spec must be a JSON object with a 'kind' field")
    kind = spec.get("kind")
    builder = _KINDS.get(kind)
    if builder is None:
        raise ReproError(f"unknown problem kind {kind!r} (known: {sorted(_KINDS)})")
    return builder(spec)


def list_kinds() -> list[str]:
    """Spec kinds the service accepts (diagnostics / docs)."""
    return sorted(_KINDS)
