"""Wire-format problem specs -> :class:`~repro.api.problem.Problem` adapters.

A service request cannot ship a live python object, so ``POST /v1/solve``
carries a small JSON spec and this module rebuilds the problem behind it.
Three kinds cover the service's traffic:

* ``{"kind": "mqo", "num_queries": 4, "plans_per_query": 3,
  "sharing_density": 0.4, "instance_seed": 7}`` — a generated multiple-
  query-optimization instance.  ``instance_seed`` pins the generator RNG,
  so the same spec names the same instance on every node: specs are
  *content-addressable*, which is what lets the engine's fingerprint cache
  collapse identical requests.
* ``{"kind": "joinorder", "topology": "chain"|"star"|"cycle",
  "num_relations": 5, "instance_seed": 7, "encoding": "leftdeep"|"bushy"}``
  — a generated join-ordering instance.
* ``{"kind": "qubo", "linear": {"x0": -1.0}, "quadratic":
  [["x0", "x1", 2.0]], "offset": 0.0}`` — a raw QUBO, for callers that
  formulate themselves.

Specs are validated with explicit bounds (a public endpoint must not let
one request formulate an exponential instance), and every error is a
:class:`~repro.exceptions.ReproError` the HTTP layer maps to 400.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.problem import Problem
from repro.exceptions import ReproError
from repro.qubo.model import QuboModel

#: Instance-size ceilings: large enough for every benchmark shape the repo
#: generates, small enough that formulation stays interactive.
MAX_QUERIES = 32
MAX_PLANS = 32
MAX_RELATIONS = 12
MAX_QUBO_VARIABLES = 1024


class RawQuboProblem(Problem):
    """A caller-formulated QUBO behind the uniform Problem contract.

    Solutions are ``{label: bit}`` assignments; the exact objective *is*
    the QUBO energy (there is no hidden domain cost to re-evaluate), so
    ``energy`` and ``objective`` agree on this adapter.
    """

    name = "qubo"

    def __init__(self, model: QuboModel):
        self.model = model

    def build_qubo(self) -> QuboModel:
        return self.model

    def decode(self, bits) -> dict:
        return self.to_qubo().decode(bits)

    def evaluate(self, solution: Mapping) -> float:
        return self.to_qubo().energy(solution)


def _require_int(spec: Mapping, key: str, lo: int, hi: int, default=None) -> int:
    value = spec.get(key, default)
    if value is None:
        raise ReproError(f"problem spec is missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"problem spec field {key!r} must be an integer")
    if not lo <= value <= hi:
        raise ReproError(f"problem spec field {key!r} must be in [{lo}, {hi}], got {value}")
    return value


def _mqo_from_spec(spec: Mapping) -> Problem:
    from repro.api.adapters import MQOAdapter
    from repro.mqo.generator import generate_mqo_problem

    density = spec.get("sharing_density", 0.3)
    if not isinstance(density, (int, float)) or not 0.0 <= float(density) <= 1.0:
        raise ReproError("sharing_density must be a number in [0, 1]")
    return MQOAdapter(
        generate_mqo_problem(
            _require_int(spec, "num_queries", 1, MAX_QUERIES),
            _require_int(spec, "plans_per_query", 1, MAX_PLANS),
            sharing_density=float(density),
            rng=_require_int(spec, "instance_seed", 0, 2**31 - 1, default=0),
        )
    )


def _joinorder_from_spec(spec: Mapping) -> Problem:
    from repro.api.adapters import BushyJoinAdapter, LeftDeepJoinAdapter
    from repro.db.generator import chain_query, cycle_query, star_query

    topologies = {"chain": chain_query, "star": star_query, "cycle": cycle_query}
    topology = spec.get("topology", "chain")
    if topology not in topologies:
        raise ReproError(f"joinorder topology must be one of {sorted(topologies)}")
    graph = topologies[topology](
        _require_int(spec, "num_relations", 2 if topology != "cycle" else 3, MAX_RELATIONS),
        rng=_require_int(spec, "instance_seed", 0, 2**31 - 1, default=0),
    )
    encoding = spec.get("encoding", "leftdeep")
    if encoding == "leftdeep":
        return LeftDeepJoinAdapter(graph)
    if encoding == "bushy":
        return BushyJoinAdapter(graph)
    raise ReproError("joinorder encoding must be 'leftdeep' or 'bushy'")


def _qubo_from_spec(spec: Mapping) -> Problem:
    linear = spec.get("linear", {})
    quadratic = spec.get("quadratic", [])
    if not isinstance(linear, Mapping):
        raise ReproError("qubo 'linear' must map variable label -> coefficient")
    if not isinstance(quadratic, (list, tuple)):
        raise ReproError("qubo 'quadratic' must be a list of [u, v, coefficient] triples")
    if not linear and not quadratic:
        raise ReproError("a qubo spec needs at least one linear or quadratic term")
    model = QuboModel()
    try:
        for label, coeff in linear.items():
            model.add_linear(str(label), float(coeff))
        for entry in quadratic:
            u, v, coeff = entry
            model.add_quadratic(str(u), str(v), float(coeff))
        model.add_offset(float(spec.get("offset", 0.0)))
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed qubo term: {exc}") from exc
    if model.num_variables > MAX_QUBO_VARIABLES:
        raise ReproError(
            f"qubo spec has {model.num_variables} variables "
            f"(limit {MAX_QUBO_VARIABLES})"
        )
    return RawQuboProblem(model)


_KINDS = {
    "mqo": _mqo_from_spec,
    "joinorder": _joinorder_from_spec,
    "qubo": _qubo_from_spec,
}


def problem_from_spec(spec: Any) -> Problem:
    """Rebuild the :class:`Problem` a JSON problem spec names.

    Raises :class:`~repro.exceptions.ReproError` (HTTP 400 at the edge)
    for an unknown kind, a missing/ill-typed field, or an instance beyond
    the size ceilings.
    """
    if not isinstance(spec, Mapping):
        raise ReproError("problem spec must be a JSON object with a 'kind' field")
    kind = spec.get("kind")
    builder = _KINDS.get(kind)
    if builder is None:
        raise ReproError(f"unknown problem kind {kind!r} (known: {sorted(_KINDS)})")
    return builder(spec)


def list_kinds() -> list[str]:
    """Spec kinds the service accepts (diagnostics / docs)."""
    return sorted(_KINDS)
