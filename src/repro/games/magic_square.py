"""The Mermin-Peres magic square game (extension beyond the tutorial).

Alice receives a row, Bob a column of a 3x3 grid; Alice outputs three +-1
entries with product +1, Bob three entries with product -1; they win iff
they agree on the shared cell.  Classically at most 8/9 of the question
pairs can be satisfied; with two shared Bell pairs and the Peres-Mermin
observable grid the quantum strategy wins with probability 1 — a pseudo-
telepathy game, strengthening the GHZ story of Sec. IV-A.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.quantum.gates import I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


def _kron(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.kron(a, b)


# The Peres-Mermin observable grid on two qubits: rows multiply to +I,
# columns to -I.
OBSERVABLE_GRID = [
    [_kron(I_MATRIX, Z_MATRIX), _kron(Z_MATRIX, I_MATRIX), _kron(Z_MATRIX, Z_MATRIX)],
    [_kron(X_MATRIX, I_MATRIX), _kron(I_MATRIX, X_MATRIX), _kron(X_MATRIX, X_MATRIX)],
    [-_kron(X_MATRIX, Z_MATRIX), -_kron(Z_MATRIX, X_MATRIX), _kron(Y_MATRIX, Y_MATRIX)],
]


def magic_square_classical_value() -> float:
    """Exact classical value 8/9 by enumerating deterministic fillings.

    Alice's strategy: one even-parity +-1 triple per row; Bob's: one
    odd-parity triple per column.
    """
    even_triples = [t for t in itertools.product((1, -1), repeat=3) if np.prod(t) == 1]
    odd_triples = [t for t in itertools.product((1, -1), repeat=3) if np.prod(t) == -1]
    best = 0.0
    for alice in itertools.product(even_triples, repeat=3):
        for bob in itertools.product(odd_triples, repeat=3):
            wins = sum(
                1
                for r in range(3)
                for c in range(3)
                if alice[r][c] == bob[c][r]
            )
            best = max(best, wins / 9.0)
            if best == 8 / 9:
                # 8/9 is the known optimum; stop as soon as it is reached to
                # keep the double enumeration fast.
                return best
    return best


def _double_bell_state() -> Statevector:
    """Two Bell pairs: Alice holds qubits 0, 1; Bob holds 2, 3.

    Pairing: (0, 2) and (1, 3) are the EPR pairs.
    """
    amp = 0.5
    data = np.zeros(16, dtype=complex)
    # (|00>+|11>)_{0,2} (x) (|00>+|11>)_{1,3} expanded on qubits 0..3.
    for q02 in (0, 1):
        for q13 in (0, 1):
            index = (q02 << 3) | (q13 << 2) | (q02 << 1) | q13
            data[index] = amp
    return Statevector(data, validate=False)


def _embed(op: np.ndarray, qubits: tuple[int, int], n: int = 4) -> np.ndarray:
    """Embed a two-qubit operator into the n-qubit register."""
    mats = []
    # Build via tensor placement: op acts on the given qubits in order.
    # Decompose op into the basis of Pauli products for a clean embedding.
    paulis = [I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX]
    total = np.zeros((2**n, 2**n), dtype=complex)
    for i, p in enumerate(paulis):
        for j, q in enumerate(paulis):
            coeff = np.trace(_kron(p, q).conj().T @ op) / 4.0
            if abs(coeff) < 1e-12:
                continue
            factors = [I_MATRIX] * n
            factors[qubits[0]] = p
            factors[qubits[1]] = q
            term = factors[0]
            for f in factors[1:]:
                term = np.kron(term, f)
            total += coeff * term
    return total


def _measure_observable(state: Statevector, observable: np.ndarray, rng) -> tuple[int, Statevector]:
    """Projectively measure a +-1 observable; returns (outcome, post-state)."""
    dim = state.dim
    p_plus = (np.eye(dim) + observable) / 2.0
    prob_plus = float(np.real(np.vdot(state.data, p_plus @ state.data)))
    if rng.random() < prob_plus:
        new = p_plus @ state.data
        return 1, Statevector(new)
    p_minus = (np.eye(dim) - observable) / 2.0
    new = p_minus @ state.data
    return -1, Statevector(new)


def magic_square_quantum_round(row: int, col: int, rng=None) -> bool:
    """Play one quantum round; returns whether the players won.

    Alice measures the three (commuting) row observables on her qubits,
    Bob the three column observables on his; the parity constraints hold
    automatically and the shared cell always agrees.
    """
    rng = ensure_rng(rng)
    state = _double_bell_state()
    alice_answers = []
    for c in range(3):
        obs = _embed(OBSERVABLE_GRID[row][c], (0, 1))
        outcome, state = _measure_observable(state, obs, rng)
        alice_answers.append(outcome)
    bob_answers = []
    for r in range(3):
        obs = _embed(OBSERVABLE_GRID[r][col], (2, 3))
        outcome, state = _measure_observable(state, obs, rng)
        bob_answers.append(outcome)
    if int(np.prod(alice_answers)) != 1:
        return False
    if int(np.prod(bob_answers)) != -1:
        return False
    return alice_answers[col] == bob_answers[row]


def magic_square_quantum_value(rounds_per_pair: int = 4, rng=None) -> float:
    """Empirical quantum value over all nine question pairs (should be 1)."""
    rng = ensure_rng(rng)
    wins = 0
    total = 0
    for row in range(3):
        for col in range(3):
            for _ in range(rounds_per_pair):
                total += 1
                if magic_square_quantum_round(row, col, rng=rng):
                    wins += 1
    return wins / total
