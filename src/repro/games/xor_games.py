"""General two-player XOR games and their classical/quantum values.

An XOR game wins iff ``a XOR b == f(x, y)``.  Its bias (2*value - 1) has
clean theory: the classical bias maximises a +-1 matrix form over sign
vectors; Tsirelson's theorem turns the quantum bias into a maximisation
over unit vectors, which alternating optimization solves (each half-step
is a closed-form normalisation, so the bilinear objective converges; with
restarts it reliably finds the global optimum on small games).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng


@dataclass(frozen=True)
class XorGame:
    """An XOR game given by its target function and question distribution."""

    num_questions_a: int
    num_questions_b: int
    target: Callable[[int, int], int]
    distribution: "np.ndarray | None" = None

    def probability_matrix(self) -> np.ndarray:
        if self.distribution is not None:
            pi = np.asarray(self.distribution, dtype=float)
            if pi.shape != (self.num_questions_a, self.num_questions_b):
                raise ReproError("distribution shape mismatch")
            return pi / pi.sum()
        size = self.num_questions_a * self.num_questions_b
        return np.full((self.num_questions_a, self.num_questions_b), 1.0 / size)

    def sign_matrix(self) -> np.ndarray:
        """``G[x, y] = pi(x, y) * (-1)^{f(x, y)}`` — the game matrix."""
        pi = self.probability_matrix()
        signs = np.array(
            [
                [1.0 if self.target(x, y) == 0 else -1.0 for y in range(self.num_questions_b)]
                for x in range(self.num_questions_a)
            ]
        )
        return pi * signs


def chsh_xor_game() -> XorGame:
    """CHSH as an XOR game (target = AND)."""
    return XorGame(2, 2, target=lambda x, y: x & y)


def xor_classical_bias(game: XorGame) -> float:
    """``max_{u, v in {+-1}} u^T G v`` by enumeration over one side."""
    G = game.sign_matrix()
    best = -1.0
    for u_bits in itertools.product((1.0, -1.0), repeat=game.num_questions_a):
        u = np.array(u_bits)
        # For fixed u the optimal v is the sign of u^T G.
        row = u @ G
        best = max(best, float(np.sum(np.abs(row))))
    return best


def xor_classical_value(game: XorGame) -> float:
    """Classical value ``(1 + bias) / 2``."""
    return 0.5 * (1.0 + xor_classical_bias(game))


def xor_quantum_bias(game: XorGame, restarts: int = 12, iterations: int = 200, rng=None) -> float:
    """Tsirelson bias via alternating unit-vector optimization.

    ``max sum_xy G[x,y] <u_x, v_y>`` with all vectors on the unit sphere of
    dimension ``min(|X|, |Y|)`` (sufficient by Tsirelson's theorem).
    """
    rng = ensure_rng(rng)
    G = game.sign_matrix()
    dim = min(game.num_questions_a, game.num_questions_b) + 1
    best = -1.0
    for _ in range(restarts):
        U = rng.normal(size=(game.num_questions_a, dim))
        U /= np.linalg.norm(U, axis=1, keepdims=True)
        V = rng.normal(size=(game.num_questions_b, dim))
        V /= np.linalg.norm(V, axis=1, keepdims=True)
        value = -1.0
        for _ in range(iterations):
            # Optimal V given U: v_y ~ sum_x G[x, y] u_x.
            V = G.T @ U
            norms = np.linalg.norm(V, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            V = V / norms
            U = G @ V
            norms = np.linalg.norm(U, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            U = U / norms
            new_value = float(np.sum(G * (U @ V.T)))
            if abs(new_value - value) < 1e-12:
                value = new_value
                break
            value = new_value
        best = max(best, value)
    return best


def xor_quantum_value(game: XorGame, restarts: int = 12, rng=None) -> float:
    """Quantum value ``(1 + quantum bias) / 2``."""
    return 0.5 * (1.0 + xor_quantum_bias(game, restarts=restarts, rng=rng))


def random_xor_game(num_a: int, num_b: int, rng=None) -> XorGame:
    """A uniformly random XOR target (for property tests and benches)."""
    rng = ensure_rng(rng)
    table = rng.integers(0, 2, size=(num_a, num_b))
    return XorGame(num_a, num_b, target=lambda x, y, t=table: int(t[x, y]))
