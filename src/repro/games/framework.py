"""Two-player nonlocal games: the referee, the strategies, the values.

A game has question sets ``X``, ``Y`` with a distribution ``pi(x, y)`` and
a win predicate ``V(x, y, a, b)`` over one-bit answers.  A *quantum
strategy* is a shared two-qubit state plus one measurement angle per
question: player ``P`` measures their qubit in the basis rotated by the
angle for the received question.  Win probabilities are computed exactly
from the statevector (and can also be estimated by sampled play).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.quantum.gates import ry_matrix
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass(frozen=True)
class TwoPlayerGame:
    """A two-player one-bit-answer nonlocal game."""

    name: str
    questions_a: tuple
    questions_b: tuple
    predicate: Callable[[int, int, int, int], bool]
    distribution: "dict[tuple, float] | None" = None

    def question_pairs(self) -> list[tuple]:
        return [(x, y) for x in self.questions_a for y in self.questions_b]

    def probability_of(self, x, y) -> float:
        if self.distribution is None:
            return 1.0 / (len(self.questions_a) * len(self.questions_b))
        return self.distribution.get((x, y), 0.0)


@dataclass
class QuantumStrategy:
    """Shared state + per-question measurement angles.

    Measuring in the basis rotated by ``theta`` is implemented as applying
    ``RY(-2 theta)`` and measuring in the computational basis.
    """

    state: Statevector
    angles_a: dict
    angles_b: dict

    def outcome_distribution(self, x, y) -> np.ndarray:
        """P(a, b | x, y) as a 2x2 array (exact)."""
        if self.state.num_qubits != 2:
            raise ReproError("two-player strategies need a two-qubit shared state")
        rotated = self.state.copy()
        rotated.apply_matrix(ry_matrix(-2.0 * self.angles_a[x]), [0])
        rotated.apply_matrix(ry_matrix(-2.0 * self.angles_b[y]), [1])
        probs = rotated.probabilities()
        return probs.reshape(2, 2)


def quantum_win_probability(game: TwoPlayerGame, strategy: QuantumStrategy) -> float:
    """Exact success probability of the strategy on the game."""
    total = 0.0
    for x, y in game.question_pairs():
        weight = game.probability_of(x, y)
        if weight == 0.0:
            continue
        dist = strategy.outcome_distribution(x, y)
        for a in (0, 1):
            for b in (0, 1):
                if game.predicate(x, y, a, b):
                    total += weight * dist[a, b]
    return total


def play_quantum_rounds(
    game: TwoPlayerGame, strategy: QuantumStrategy, rounds: int, rng=None
) -> float:
    """Empirical win rate over sampled rounds (finite statistics)."""
    rng = ensure_rng(rng)
    pairs = game.question_pairs()
    weights = np.array([game.probability_of(x, y) for x, y in pairs])
    weights = weights / weights.sum()
    wins = 0
    for _ in range(rounds):
        x, y = pairs[int(rng.choice(len(pairs), p=weights))]
        dist = strategy.outcome_distribution(x, y).reshape(-1)
        outcome = int(rng.choice(4, p=dist / dist.sum()))
        a, b = outcome >> 1, outcome & 1
        if game.predicate(x, y, a, b):
            wins += 1
    return wins / rounds


def optimize_quantum_strategy(
    game: TwoPlayerGame,
    state: Statevector,
    restarts: int = 8,
    rng=None,
) -> tuple[QuantumStrategy, float]:
    """Tune measurement angles for a fixed shared state (Nelder-Mead)."""
    from scipy.optimize import minimize

    rng = ensure_rng(rng)
    qa = list(game.questions_a)
    qb = list(game.questions_b)

    def unpack(vec: np.ndarray) -> QuantumStrategy:
        return QuantumStrategy(
            state,
            {x: float(vec[i]) for i, x in enumerate(qa)},
            {y: float(vec[len(qa) + j]) for j, y in enumerate(qb)},
        )

    def loss(vec: np.ndarray) -> float:
        return -quantum_win_probability(game, unpack(vec))

    best_vec = None
    best_value = float("inf")
    for _ in range(restarts):
        x0 = rng.uniform(-math.pi / 2, math.pi / 2, size=len(qa) + len(qb))
        result = minimize(loss, x0, method="Nelder-Mead", options={"maxiter": 400})
        if result.fun < best_value:
            best_value = float(result.fun)
            best_vec = result.x
    strategy = unpack(best_vec)
    return strategy, -best_value
