"""Optimal classical values by exhaustive deterministic-strategy search.

Shared randomness never helps beyond the best deterministic strategy (the
value is a max over a convex combination), so enumerating deterministic
strategies yields the exact classical value.
"""

from __future__ import annotations

import itertools

from repro.games.framework import TwoPlayerGame


def optimal_classical_value(game: TwoPlayerGame) -> tuple[float, dict, dict]:
    """Exact classical value and an optimal deterministic strategy pair.

    Returns ``(value, alice_answers, bob_answers)`` where the answer maps
    send each question to the fixed bit the player outputs.
    """
    best = -1.0
    best_a: dict = {}
    best_b: dict = {}
    qa = list(game.questions_a)
    qb = list(game.questions_b)
    for a_bits in itertools.product((0, 1), repeat=len(qa)):
        a_map = dict(zip(qa, a_bits))
        for b_bits in itertools.product((0, 1), repeat=len(qb)):
            b_map = dict(zip(qb, b_bits))
            value = sum(
                game.probability_of(x, y)
                for x in qa
                for y in qb
                if game.predicate(x, y, a_map[x], b_map[y])
            )
            if value > best:
                best = value
                best_a, best_b = a_map, b_map
    return best, best_a, best_b
