"""The CHSH game (Example IV.2 of the paper; Clauser et al. [64]).

Alice gets ``x``, Bob gets ``y`` (uniform bits); they answer ``a``, ``b``
and win iff ``x AND y == a XOR b``.  Classically the best strategies win
with probability 3/4; sharing the Bell state of Example IV.1 and measuring
at the canonical angles wins with ``cos^2(pi/8) ~ 0.8536`` — the paper's
"0.85 vs 0.75".
"""

from __future__ import annotations

import math

from repro.games.framework import QuantumStrategy, TwoPlayerGame
from repro.quantum.bell import bell_state

CHSH_QUANTUM_VALUE = math.cos(math.pi / 8) ** 2
CHSH_CLASSICAL_VALUE = 0.75


def chsh_game() -> TwoPlayerGame:
    """The CHSH game: win iff ``x & y == a ^ b``."""
    return TwoPlayerGame(
        name="CHSH",
        questions_a=(0, 1),
        questions_b=(0, 1),
        predicate=lambda x, y, a, b: (x & y) == (a ^ b),
    )


def chsh_quantum_strategy() -> QuantumStrategy:
    """The canonical optimal strategy on ``|Phi+>``.

    Alice measures at 0 or pi/4; Bob at pi/8 or -pi/8.
    """
    return QuantumStrategy(
        state=bell_state("phi+"),
        angles_a={0: 0.0, 1: math.pi / 4},
        angles_b={0: math.pi / 8, 1: -math.pi / 8},
    )
