"""Nonlocal games (Sec. IV-A): the theory behind quantum-internet advantages.

* :mod:`.framework` — two-player game IR, strategies, exact win
  probabilities;
* :mod:`.classical` — optimal classical values by deterministic-strategy
  enumeration;
* :mod:`.chsh` — the CHSH game of Example IV.2 (0.75 vs cos^2(pi/8));
* :mod:`.ghz` — the three-player GHZ game (0.75 vs 1.0);
* :mod:`.xor_games` — general two-player XOR games and Tsirelson-style
  quantum values via alternating optimization;
* :mod:`.magic_square` — the Mermin-Peres magic square (extension).
"""

from repro.games.chsh import chsh_game, chsh_quantum_strategy
from repro.games.classical import optimal_classical_value
from repro.games.framework import QuantumStrategy, TwoPlayerGame
from repro.games.ghz import ghz_classical_value, ghz_game_quantum_value, ghz_quantum_win_probability
from repro.games.xor_games import XorGame, xor_classical_value, xor_quantum_value

__all__ = [
    "chsh_game",
    "chsh_quantum_strategy",
    "optimal_classical_value",
    "QuantumStrategy",
    "TwoPlayerGame",
    "ghz_classical_value",
    "ghz_game_quantum_value",
    "ghz_quantum_win_probability",
    "XorGame",
    "xor_classical_value",
    "xor_quantum_value",
]
