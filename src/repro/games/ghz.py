"""The three-player GHZ game (Greenberger-Horne-Zeilinger [65]).

Questions ``(r, s, t)`` are drawn uniformly from {000, 011, 101, 110};
the players win iff ``a XOR b XOR c = r OR s OR t``.  Classical strategies
reach at most 3/4; measuring a shared GHZ state in the X basis (question 0)
or Y basis (question 1) wins with probability exactly 1 — the paper's
"with entanglement, we can achieve a task that is not possible with
classical resources".
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.quantum.bell import ghz_state
from repro.quantum.state import Statevector

GHZ_QUESTIONS = ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0))

_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)


def ghz_predicate(questions: tuple[int, int, int], answers: tuple[int, int, int]) -> bool:
    """Win condition: XOR of answers equals OR of questions."""
    r, s, t = questions
    a, b, c = answers
    return (a ^ b ^ c) == (r | s | t)


def ghz_classical_value() -> tuple[float, tuple]:
    """Exact classical value (3/4) by deterministic enumeration.

    Each player's strategy is a function of their own bit: 4 options per
    player, 64 joint strategies.
    """
    best = -1.0
    best_strategy = None
    options = list(itertools.product((0, 1), repeat=2))  # answer for input 0, input 1
    for fa in options:
        for fb in options:
            for fc in options:
                wins = sum(
                    1
                    for (r, s, t) in GHZ_QUESTIONS
                    if ghz_predicate((r, s, t), (fa[r], fb[s], fc[t]))
                )
                value = wins / len(GHZ_QUESTIONS)
                if value > best:
                    best = value
                    best_strategy = (fa, fb, fc)
    return best, best_strategy


def _measure_basis(state: Statevector, qubit: int, basis: int, rng) -> tuple[int, Statevector]:
    """Measure ``qubit`` in the X (basis=0) or Y (basis=1) basis."""
    rotated = state.copy()
    if basis == 0:
        rotated.apply_matrix(_H, [qubit])
    else:
        rotated.apply_matrix(_H @ _SDG, [qubit])
    bits, post = rotated.measure([qubit], rng=rng)
    return bits[0], post


def ghz_quantum_win_probability(questions: tuple[int, int, int]) -> float:
    """Exact win probability of the GHZ strategy on one question triple."""
    state = ghz_state(3)
    # Rotate every qubit into its measurement basis, then read the joint
    # distribution and sum the winning outcomes.
    rotated = state.copy()
    for qubit, q in enumerate(questions):
        if q == 0:
            rotated.apply_matrix(_H, [qubit])
        else:
            rotated.apply_matrix(_H @ _SDG, [qubit])
    probs = rotated.probabilities()
    total = 0.0
    for idx in range(8):
        answers = ((idx >> 2) & 1, (idx >> 1) & 1, idx & 1)
        if ghz_predicate(questions, answers):
            total += probs[idx]
    return float(total)


def ghz_game_quantum_value() -> float:
    """Exact quantum value: the average over the four question triples."""
    return float(np.mean([ghz_quantum_win_probability(q) for q in GHZ_QUESTIONS]))


def play_ghz_rounds(rounds: int, rng) -> float:
    """Empirical win rate of the quantum strategy with sequential measurement."""
    wins = 0
    for _ in range(rounds):
        questions = GHZ_QUESTIONS[int(rng.integers(0, len(GHZ_QUESTIONS)))]
        state = ghz_state(3)
        answers = []
        for qubit, q in enumerate(questions):
            bit, state = _measure_basis(state, qubit, q, rng)
            answers.append(bit)
        if ghz_predicate(questions, tuple(answers)):
            wins += 1
    return wins / rounds
