"""QQL — a small quantum query language.

An SQL-flavoured front end over the quantum-database primitives, in the
spirit of the "quantum query languages akin to SQL" line of work the paper
cites ([45]-[51]).  Supported statements::

    CREATE TABLE t QUBITS 4
    INSERT INTO t VALUES (1, 5, 9)
    DELETE FROM t WHERE key = 5
    UPDATE t SET key = 7 WHERE key = 9
    SELECT * FROM t
    SELECT * FROM t WHERE key = 5
    SELECT * FROM t WHERE key < 8
    SELECT * FROM a INTERSECT b
    SELECT * FROM a UNION b
    SELECT * FROM a EXCEPT b
    SELECT * FROM a JOIN b

Selections with a WHERE clause run Grover search; set operations run the
amplitude-amplified set algorithms; JOIN runs the pair-register Grover
join.  Every result reports its oracle-call count.

**Relation to the classical SQL dialect** (:mod:`repro.db.sql`): the two
front ends share the ``SELECT * FROM t [WHERE ...]``,
``INSERT INTO t VALUES (...)``, ``DELETE FROM t WHERE ...`` and
``UPDATE t SET ... WHERE ...`` statement shapes, with the same six
comparison operators.  They diverge everywhere else: QQL predicates are
restricted to the single ``key`` register (tables are key sets, not
schemas), and QQL adds ``CREATE TABLE ... QUBITS n`` plus the quantum
set-operation / ``JOIN`` productions above — while the SQL dialect adds
projections, multi-table FROM clauses with aliases, join predicates, and
multi-statement scripts that compile into Table I problem batches via
:mod:`repro.workload`.

Doctest (the ``classical`` backend is deterministic)::

    >>> from repro.qdb.qql import QQLEngine
    >>> engine = QQLEngine(backend="classical")
    >>> _ = engine.execute("CREATE TABLE t QUBITS 3")
    >>> _ = engine.execute("INSERT INTO t VALUES (1, 5, 7)")
    >>> engine.execute("SELECT * FROM t WHERE key >= 5").keys
    [5, 7]
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import ParseError, ReproError
from repro.qdb.join import quantum_join
from repro.qdb.search import classical_select, quantum_select
from repro.qdb.setops import quantum_difference, quantum_intersection, quantum_union
from repro.qdb.table import QuantumTable
from repro.utils.rngtools import ensure_rng

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CREATE_RE = re.compile(r"^CREATE\s+TABLE\s+(\w+)\s+QUBITS\s+(\d+)$", re.IGNORECASE)
_INSERT_RE = re.compile(r"^INSERT\s+INTO\s+(\w+)\s+VALUES\s*\(([^)]*)\)$", re.IGNORECASE)
_DELETE_RE = re.compile(
    r"^DELETE\s+FROM\s+(\w+)\s+WHERE\s+key\s*(=|!=|<=|>=|<|>)\s*(\d+)$", re.IGNORECASE
)
_UPDATE_RE = re.compile(
    r"^UPDATE\s+(\w+)\s+SET\s+key\s*=\s*(\d+)\s+WHERE\s+key\s*=\s*(\d+)$", re.IGNORECASE
)
_SELECT_ALL_RE = re.compile(r"^SELECT\s+\*\s+FROM\s+(\w+)$", re.IGNORECASE)
_SELECT_WHERE_RE = re.compile(
    r"^SELECT\s+\*\s+FROM\s+(\w+)\s+WHERE\s+key\s*(=|!=|<=|>=|<|>)\s*(\d+)$", re.IGNORECASE
)
_SETOP_RE = re.compile(
    r"^SELECT\s+\*\s+FROM\s+(\w+)\s+(INTERSECT|UNION|EXCEPT)\s+(\w+)$", re.IGNORECASE
)
_JOIN_RE = re.compile(r"^SELECT\s+\*\s+FROM\s+(\w+)\s+JOIN\s+(\w+)$", re.IGNORECASE)


@dataclass
class QQLResult:
    """Outcome of one QQL statement."""

    statement: str
    keys: "list[int] | None" = None
    pairs: "list[tuple[int, int]] | None" = None
    oracle_calls: int = 0
    method: str = "classical"
    rows_affected: int = 0
    info: dict = field(default_factory=dict)


class QQLEngine:
    """Holds named quantum tables and executes QQL statements."""

    def __init__(self, backend: str = "quantum"):
        if backend not in ("quantum", "classical"):
            raise ReproError("backend must be 'quantum' or 'classical'")
        self.backend = backend
        self.tables: dict[str, QuantumTable] = {}

    def table(self, name: str) -> QuantumTable:
        if name not in self.tables:
            raise ReproError(f"unknown table {name!r}")
        return self.tables[name]

    def execute(self, statement: str, rng=None) -> QQLResult:
        """Parse and run one statement."""
        rng = ensure_rng(rng)
        text = statement.strip().rstrip(";").strip()

        match = _CREATE_RE.match(text)
        if match:
            name, qubits = match.group(1), int(match.group(2))
            if name in self.tables:
                raise ReproError(f"table {name!r} already exists")
            self.tables[name] = QuantumTable(name, qubits)
            return QQLResult(text, method="ddl")

        match = _INSERT_RE.match(text)
        if match:
            table = self.table(match.group(1))
            values = [int(v) for v in match.group(2).split(",") if v.strip()]
            if not values:
                raise ParseError("INSERT needs at least one value")
            inserted = sum(1 for v in values if table.insert(v))
            return QQLResult(text, method="dml", rows_affected=inserted)

        match = _DELETE_RE.match(text)
        if match:
            table = self.table(match.group(1))
            cmp_fn = _COMPARATORS[match.group(2)]
            value = int(match.group(3))
            removed = table.delete_where(lambda k: cmp_fn(k, value))
            return QQLResult(text, method="dml", rows_affected=removed)

        match = _UPDATE_RE.match(text)
        if match:
            table = self.table(match.group(1))
            new, old = int(match.group(2)), int(match.group(3))
            changed = table.update(old, new)
            return QQLResult(text, method="dml", rows_affected=int(changed))

        match = _SELECT_WHERE_RE.match(text)
        if match:
            table = self.table(match.group(1))
            cmp_fn = _COMPARATORS[match.group(2)]
            value = int(match.group(3))
            select = quantum_select if self.backend == "quantum" else classical_select
            result = select(table, lambda k: cmp_fn(k, value), rng=rng)
            return QQLResult(
                text,
                keys=result.matches,
                oracle_calls=result.oracle_calls,
                method=result.method,
                info=result.info,
            )

        match = _SELECT_ALL_RE.match(text)
        if match:
            table = self.table(match.group(1))
            return QQLResult(text, keys=sorted(table.keys), method="scan")

        match = _SETOP_RE.match(text)
        if match:
            a = self.table(match.group(1))
            op = match.group(2).upper()
            b = self.table(match.group(3))
            if self.backend == "classical":
                keys = {
                    "INTERSECT": a.keys & b.keys,
                    "UNION": a.keys | b.keys,
                    "EXCEPT": a.keys - b.keys,
                }[op]
                return QQLResult(text, keys=sorted(keys), oracle_calls=a.cardinality, method="classical_setop")
            fn = {
                "INTERSECT": quantum_intersection,
                "UNION": quantum_union,
                "EXCEPT": quantum_difference,
            }[op]
            result = fn(a, b, rng=rng)
            return QQLResult(
                text,
                keys=sorted(result.keys),
                oracle_calls=result.oracle_calls,
                method=result.method,
                info=result.info,
            )

        match = _JOIN_RE.match(text)
        if match:
            a = self.table(match.group(1))
            b = self.table(match.group(2))
            result = quantum_join(a, b, rng=rng)
            return QQLResult(
                text,
                pairs=sorted(result.pairs),
                oracle_calls=result.oracle_calls,
                method=result.method,
                info=result.info,
            )

        raise ParseError(f"cannot parse QQL statement: {statement!r}")
