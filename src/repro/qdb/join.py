"""Quantum equi-join: Grover over the pair register (Cockshott [45] lineage).

The pair space ``A x B`` is encoded on ``n_A + n_B`` qubits; an oracle
marks pairs satisfying the join predicate; repeated amplification extracts
every matching pair.  Classical comparator: nested-loop probing of the
same predicate oracle (``|A| * |B|`` calls worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.algorithms.grover import CountingOracle
from repro.exceptions import ReproError
from repro.qdb.setops import _reflect_about
from repro.qdb.table import QuantumTable
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass
class JoinResult:
    """Outcome of a (quantum or classical) join."""

    pairs: frozenset[tuple[int, int]]
    oracle_calls: int
    method: str
    info: dict = field(default_factory=dict)


def _pair_state(a: QuantumTable, b: QuantumTable) -> Statevector:
    return a.prepare_state().tensor(b.prepare_state())


def quantum_join(
    a: QuantumTable,
    b: QuantumTable,
    predicate: "Callable[[int, int], bool] | None" = None,
    rng=None,
    max_attempts_per_match: int = 24,
) -> JoinResult:
    """Join ``a`` and ``b`` on ``predicate`` (default: key equality)."""
    rng = ensure_rng(rng)
    predicate = predicate if predicate is not None else (lambda x, y: x == y)
    n_pair = a.num_qubits + b.num_qubits
    if n_pair > 20:
        raise ReproError(f"pair register of {n_pair} qubits exceeds the simulation limit")
    matches = {
        a.encoding.pair_index(ka, kb, b.encoding)
        for ka in a.keys
        for kb in b.keys
        if predicate(ka, kb)
    }
    expected = {
        a.encoding.split_pair_index(i, b.encoding) for i in matches
    }
    if not matches:
        return JoinResult(frozenset(), 0, "quantum_join", info={"empty": True})
    source_size = a.cardinality * b.cardinality
    found: set[int] = set()
    total_calls = 0
    budget = len(matches) * max_attempts_per_match
    attempts = 0
    while len(found) < len(matches) and attempts < budget:
        attempts += 1
        remaining = matches - found
        oracle = CountingOracle(remaining, n_pair)
        reference = _pair_state(a, b)
        state = _pair_state(a, b)
        angle = np.arcsin(np.sqrt(len(remaining) / source_size))
        iterations = max(0, int(np.floor(np.pi / (4 * angle))))
        for _ in range(iterations):
            oracle.apply(state)
            _reflect_about(reference, state)
        probs = state.probabilities()
        outcome = int(rng.choice(len(probs), p=probs / probs.sum()))
        total_calls += oracle.calls + 1  # +1 verification
        if oracle.classify(outcome) and outcome in matches:
            found.add(outcome)
    if len(found) < len(matches):
        raise ReproError("quantum join extraction did not converge")
    pairs = frozenset(a.encoding.split_pair_index(i, b.encoding) for i in found)
    assert pairs == frozenset(expected)
    return JoinResult(
        pairs,
        total_calls,
        "quantum_join",
        info={"pair_space": 2**n_pair, "source_pairs": source_size, "matches": len(matches)},
    )


def classical_join(
    a: QuantumTable,
    b: QuantumTable,
    predicate: "Callable[[int, int], bool] | None" = None,
) -> JoinResult:
    """Nested-loop join probing the predicate once per candidate pair."""
    predicate = predicate if predicate is not None else (lambda x, y: x == y)
    calls = 0
    pairs = set()
    for ka in sorted(a.keys):
        for kb in sorted(b.keys):
            calls += 1
            if predicate(ka, kb):
                pairs.add((ka, kb))
    return JoinResult(frozenset(pairs), calls, "classical_nested_loop")
