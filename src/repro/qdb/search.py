"""Grover record search over quantum tables, with query accounting.

Reproduces the Sec. III-A framing: find the record(s) with ``f(x) = 1``
in an unsorted table.  The classical baseline scans in random order; both
sides count queries against the same oracle abstraction, making the
``O(N)`` vs ``O(sqrt N)`` shapes directly measurable (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms.grover import CountingOracle, GroverSearch, optimal_iterations
from repro.exceptions import ReproError
from repro.qdb.table import QuantumTable
from repro.utils.rngtools import ensure_rng


@dataclass
class QuantumSearchResult:
    """Outcome of a quantum (or classical) record search."""

    matches: list[int]
    oracle_calls: int
    success_probability: float = 1.0
    iterations: int = 0
    method: str = "grover"
    info: dict = field(default_factory=dict)


def _oracle_for(table: QuantumTable, predicate: Callable[[int], bool]) -> CountingOracle:
    marked = [k for k in sorted(table.keys) if predicate(k)]
    return CountingOracle(marked, table.num_qubits)


def quantum_select(
    table: QuantumTable,
    predicate: Callable[[int], bool],
    rng=None,
    max_attempts: int = 12,
) -> QuantumSearchResult:
    """Find all keys of ``table`` matching ``predicate`` via Grover rounds.

    Each round amplifies the remaining marked keys, measures once and
    verifies classically (one extra query); found keys are removed from the
    oracle so the loop drains the whole answer set.
    """
    rng = ensure_rng(rng)
    oracle = _oracle_for(table, predicate)
    total_marked = oracle.num_marked
    if total_marked == 0:
        return QuantumSearchResult([], oracle.calls, success_probability=0.0, method="grover")
    found: list[int] = []
    remaining = set(oracle.marked)
    total_calls = 0
    success = 1.0
    iterations_used = 0
    attempts = 0
    while remaining and attempts < max_attempts * total_marked:
        attempts += 1
        round_oracle = CountingOracle(remaining, table.num_qubits)
        search = GroverSearch(round_oracle)
        result = search.run(rng=rng)
        total_calls += round_oracle.calls
        iterations_used += result.iterations
        if result.found and result.found_index in remaining:
            found.append(result.found_index)
            remaining.discard(result.found_index)
            success = min(success, result.success_probability)
    if remaining:
        raise ReproError("Grover extraction failed to drain the answer set")
    return QuantumSearchResult(
        sorted(found),
        total_calls,
        success_probability=success,
        iterations=iterations_used,
        method="grover",
        info={"search_space": table.encoding.capacity, "num_marked": total_marked},
    )


def classical_select(
    table: QuantumTable,
    predicate: Callable[[int], bool],
    rng=None,
) -> QuantumSearchResult:
    """Random-order classical scan over the *key space* (the oracle model).

    In the query-complexity setting of Sec. III-A the classical algorithm
    must probe ``f`` on labels until it has seen every match — the fair
    comparator for Grover's oracle counts.
    """
    rng = ensure_rng(rng)
    oracle = _oracle_for(table, predicate)
    total_marked = oracle.num_marked
    matches: list[int] = []
    order = rng.permutation(table.encoding.capacity)
    for label in order:
        if oracle.classify(int(label)):
            matches.append(int(label))
            if len(matches) == total_marked:
                break
    return QuantumSearchResult(
        sorted(matches),
        oracle.calls,
        success_probability=1.0,
        method="classical_scan",
        info={"search_space": table.encoding.capacity, "num_marked": total_marked},
    )


def expected_grover_calls(capacity: int, num_marked: int) -> int:
    """Theory line for the benches: ``(pi/4) sqrt(N/M)`` per extraction."""
    if num_marked <= 0:
        return 0
    return optimal_iterations(capacity, num_marked)
