"""Basis-state encoding of records.

A record with an integer key ``k`` is encoded as the computational basis
state ``|k>`` of an ``n``-qubit register; a table of records becomes the
uniform superposition over its keys (Sec. III-A's "database of N = 2^n
records identified by n-bit labels").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.quantum.state import Statevector


class KeyEncoding:
    """Fixed-width integer-key encoding for one register."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ReproError("encoding needs at least one qubit")
        self.num_qubits = num_qubits
        self.capacity = 2**num_qubits

    @classmethod
    def for_domain(cls, max_key: int) -> "KeyEncoding":
        """The narrowest encoding fitting keys ``0..max_key``."""
        if max_key < 0:
            raise ReproError("keys must be non-negative")
        return cls(max(1, max_key.bit_length()))

    def validate(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < self.capacity:
            raise ReproError(f"key {key} outside encoding domain [0, {self.capacity})")
        return key

    def encode_key(self, key: int) -> Statevector:
        """``|key>`` as a statevector."""
        return Statevector.from_basis_index(self.validate(key), self.num_qubits)

    def encode_table(self, keys: Iterable[int]) -> Statevector:
        """Uniform superposition over the (distinct) keys."""
        distinct = sorted({self.validate(k) for k in keys})
        if not distinct:
            raise ReproError("cannot encode an empty table")
        return Statevector.uniform_over(distinct, self.num_qubits)

    def decode_counts(self, counts: dict[str, int]) -> dict[int, int]:
        """Measurement counts keyed by integer key."""
        return {int(bits, 2): c for bits, c in counts.items()}

    def pair_encoding(self, other: "KeyEncoding") -> "KeyEncoding":
        """Encoding for the concatenated (self, other) key pair."""
        return KeyEncoding(self.num_qubits + other.num_qubits)

    def pair_index(self, left_key: int, right_key: int, other: "KeyEncoding") -> int:
        """Basis index of ``|left>|right>`` in the pair register."""
        return (self.validate(left_key) << other.num_qubits) | other.validate(right_key)

    def split_pair_index(self, index: int, other: "KeyEncoding") -> tuple[int, int]:
        """Inverse of :meth:`pair_index`."""
        right = index & (other.capacity - 1)
        left = index >> other.num_qubits
        return self.validate(left), other.validate(right)
