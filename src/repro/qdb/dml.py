"""Data manipulation directly on superposition states (Younes [51]).

These functions transform an *existing* database superposition without
re-preparing it from scratch — the amplitude-redistribution view of
INSERT/DELETE in the quantum-DB literature.  :class:`~repro.qdb.table.QuantumTable`
offers the classical-description counterpart; both views agree, which the
tests verify.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ReproError
from repro.quantum.state import Statevector

_ATOL = 1e-9


def support(state: Statevector, atol: float = _ATOL) -> frozenset[int]:
    """Basis indices with non-negligible amplitude."""
    return frozenset(int(i) for i in np.nonzero(np.abs(state.data) > atol)[0])


def insert_into_superposition(state: Statevector, key: int) -> Statevector:
    """Add ``|key>`` to a uniform superposition, staying uniform.

    With ``k`` records, the new state is
    ``sqrt(k/(k+1)) |db> + sqrt(1/(k+1)) |key>``.
    """
    if not 0 <= key < state.dim:
        raise ReproError(f"key {key} outside the register domain")
    keys = support(state)
    if key in keys:
        raise ReproError(f"key {key} already present in the superposition")
    k = len(keys)
    new_data = math.sqrt(k / (k + 1)) * state.data.copy()
    new_data[key] += math.sqrt(1.0 / (k + 1))
    return Statevector(new_data)


def delete_from_superposition(state: Statevector, key: int) -> Statevector:
    """Project ``|key>`` out of the superposition and renormalise."""
    if not 0 <= key < state.dim:
        raise ReproError(f"key {key} outside the register domain")
    keys = support(state)
    if key not in keys:
        raise ReproError(f"key {key} not present in the superposition")
    if len(keys) == 1:
        raise ReproError("cannot delete the last record of a superposition")
    new_data = state.data.copy()
    new_data[key] = 0.0
    return Statevector(new_data)


def update_superposition(state: Statevector, old_key: int, new_key: int) -> Statevector:
    """Move the amplitude of ``old_key`` onto ``new_key``.

    This is a permutation of basis states (a unitary), so unlike insert or
    delete it needs no renormalisation.
    """
    keys = support(state)
    if old_key not in keys:
        raise ReproError(f"key {old_key} not present")
    if new_key in keys:
        raise ReproError(f"key {new_key} already present")
    new_data = state.data.copy()
    new_data[new_key] = new_data[old_key]
    new_data[old_key] = 0.0
    return Statevector(new_data, validate=False)
