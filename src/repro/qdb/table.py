"""The :class:`QuantumTable`: a keyed table with a superposition view.

The classical key set is the table's *classical description*; the quantum
state is (re-)prepared from it on demand.  DML operations (Younes [51],
Gueddana et al. [46], [49]) update the key set and therefore the state the
next preparation yields — re-preparation rather than copying is exactly
what the no-cloning theorem permits.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import ReproError
from repro.qdb.encoding import KeyEncoding
from repro.quantum.state import Statevector


class QuantumTable:
    """A named set of integer keys with quantum encoding."""

    def __init__(self, name: str, num_qubits: int, keys: "Iterable[int] | None" = None):
        self.name = name
        self.encoding = KeyEncoding(num_qubits)
        self._keys: set[int] = set()
        for k in keys or []:
            self.insert(k)

    @property
    def num_qubits(self) -> int:
        return self.encoding.num_qubits

    @property
    def keys(self) -> frozenset[int]:
        return frozenset(self._keys)

    @property
    def cardinality(self) -> int:
        return len(self._keys)

    # -- DML --------------------------------------------------------------------

    def insert(self, key: int) -> bool:
        """Add ``key``; returns False when it was already present."""
        key = self.encoding.validate(key)
        if key in self._keys:
            return False
        self._keys.add(key)
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when absent."""
        key = self.encoding.validate(key)
        if key not in self._keys:
            return False
        self._keys.remove(key)
        return True

    def delete_where(self, predicate: Callable[[int], bool]) -> int:
        """Remove all keys matching ``predicate``; returns removed count."""
        victims = {k for k in self._keys if predicate(k)}
        self._keys -= victims
        return len(victims)

    def update(self, old_key: int, new_key: int) -> bool:
        """Rename a key (delete + insert as one logical operation)."""
        old_key = self.encoding.validate(old_key)
        new_key = self.encoding.validate(new_key)
        if old_key not in self._keys:
            return False
        if new_key in self._keys and new_key != old_key:
            raise ReproError(f"key {new_key} already exists in table {self.name!r}")
        self._keys.remove(old_key)
        self._keys.add(new_key)
        return True

    def contains(self, key: int) -> bool:
        return self.encoding.validate(key) in self._keys

    # -- quantum view --------------------------------------------------------------

    def prepare_state(self) -> Statevector:
        """A fresh uniform superposition over the current keys.

        Every call prepares a *new* state: quantum data cannot be copied
        (no-cloning), only re-prepared from the classical description.
        """
        if not self._keys:
            raise ReproError(f"table {self.name!r} is empty; nothing to prepare")
        return self.encoding.encode_table(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantumTable({self.name!r}, {self.num_qubits}q, {len(self._keys)} keys)"
