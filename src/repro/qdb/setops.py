"""Quantum set operations (Salman & Baram [47], Pang et al. [48]).

Intersection, union and difference over key sets, executed as amplitude
amplification: prepare the superposition of one operand, mark membership in
the other with a counting oracle, amplify and extract.  Results are exact
(extraction verifies classically); the interesting quantity is the oracle
count, which the benches compare against classical scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.grover import CountingOracle
from repro.exceptions import ReproError
from repro.qdb.table import QuantumTable
from repro.quantum.state import Statevector
from repro.utils.rngtools import ensure_rng


@dataclass
class SetOpResult:
    """Outcome of a quantum set operation."""

    keys: frozenset[int]
    oracle_calls: int
    method: str
    info: dict = field(default_factory=dict)


def _reflect_about(state_ref: Statevector, state: Statevector) -> Statevector:
    """Reflection ``2|ref><ref| - I`` applied to ``state``."""
    overlap = complex(np.vdot(state_ref.data, state.data))
    state._data = 2.0 * overlap * state_ref.data - state.data  # noqa: SLF001
    return state


def _amplify_and_extract(
    source: QuantumTable,
    oracle: CountingOracle,
    rng,
    max_attempts_per_item: int = 24,
) -> tuple[set[int], int]:
    """Drain all source keys marked by the oracle via amplitude amplification.

    Generalised Grover: the diffusion reflects about the *table* state
    (uniform over the source keys) rather than the uniform state over the
    whole key space.
    """
    rng = ensure_rng(rng)
    source_keys = sorted(source.keys)
    marked_in_source = set(k for k in source_keys if k in oracle.marked)
    found: set[int] = set()
    total_calls = 0
    budget = max(1, len(marked_in_source)) * max_attempts_per_item
    attempts = 0
    while found != marked_in_source and attempts < budget:
        attempts += 1
        remaining = marked_in_source - found
        round_oracle = CountingOracle(remaining, source.num_qubits)
        reference = source.prepare_state()
        state = source.prepare_state()
        m = len(remaining)
        n_src = len(source_keys)
        angle = np.arcsin(np.sqrt(m / n_src)) if m else 0.0
        iterations = max(0, int(np.floor(np.pi / (4 * angle)))) if angle > 0 else 0
        for _ in range(iterations):
            round_oracle.apply(state)
            _reflect_about(reference, state)
        probs = state.probabilities()
        outcome = int(rng.choice(len(probs), p=probs / probs.sum()))
        total_calls += round_oracle.calls
        if round_oracle.classify(outcome):
            total_calls += 1
            found.add(outcome)
        else:
            total_calls += 1
    if found != marked_in_source:
        raise ReproError("set-operation extraction did not converge")
    return found, total_calls


def _check_compatible(a: QuantumTable, b: QuantumTable) -> None:
    if a.num_qubits != b.num_qubits:
        raise ReproError(
            f"set operation on incompatible encodings ({a.num_qubits} vs {b.num_qubits} qubits)"
        )


def quantum_intersection(a: QuantumTable, b: QuantumTable, rng=None) -> SetOpResult:
    """``A intersect B``: amplify members of A that B's oracle marks."""
    _check_compatible(a, b)
    rng = ensure_rng(rng)
    oracle = CountingOracle(b.keys, a.num_qubits)
    if not a.keys & b.keys:
        return SetOpResult(frozenset(), 0, "quantum_intersection", info={"empty": True})
    found, calls = _amplify_and_extract(a, oracle, rng)
    return SetOpResult(frozenset(found), calls, "quantum_intersection")


def quantum_difference(a: QuantumTable, b: QuantumTable, rng=None) -> SetOpResult:
    """``A - B``: amplify members of A that B's oracle does *not* mark."""
    _check_compatible(a, b)
    rng = ensure_rng(rng)
    complement = set(range(a.encoding.capacity)) - set(b.keys)
    oracle = CountingOracle(complement, a.num_qubits)
    if not (a.keys - b.keys):
        return SetOpResult(frozenset(), 0, "quantum_difference", info={"empty": True})
    found, calls = _amplify_and_extract(a, oracle, rng)
    return SetOpResult(frozenset(found), calls, "quantum_difference")


def quantum_union(a: QuantumTable, b: QuantumTable, rng=None) -> SetOpResult:
    """``A union B``: superpose both tables and drain by sampling.

    Union needs no oracle; the cost counted is the number of preparation +
    measurement rounds until every element has been seen (coupon-collector
    over the union superposition).
    """
    _check_compatible(a, b)
    rng = ensure_rng(rng)
    target = set(a.keys) | set(b.keys)
    if not target:
        raise ReproError("union of two empty tables")
    state_template = Statevector.uniform_over(sorted(target), a.num_qubits)
    seen: set[int] = set()
    rounds = 0
    budget = 64 * max(len(target), 1)
    while seen != target and rounds < budget:
        rounds += 1
        probs = state_template.probabilities()
        outcome = int(rng.choice(len(probs), p=probs / probs.sum()))
        seen.add(outcome)
    if seen != target:
        raise ReproError("union sampling did not converge")
    return SetOpResult(frozenset(seen), rounds, "quantum_union", info={"rounds": rounds})


def classical_intersection_calls(a: QuantumTable, b: QuantumTable) -> int:
    """Oracle-model classical cost: one membership probe per element of A."""
    return a.cardinality
