"""Quantum database search and manipulation (Sec. III-A of the paper).

* :mod:`.encoding` / :mod:`.table` — basis-state encoding of records and
  the :class:`~repro.qdb.table.QuantumTable` abstraction;
* :mod:`.search` — Grover record search with query-complexity accounting
  ([19], [39]-[44]);
* :mod:`.setops` — quantum set intersection/union/difference ([47], [48]);
* :mod:`.join` — Grover-over-pairs equi-join ([45], [50]);
* :mod:`.dml` — insert/update/delete on superposition databases
  ([46], [49], [51]);
* :mod:`.qql` — a small SQL-like quantum query language front end.
"""

from repro.qdb.encoding import KeyEncoding
from repro.qdb.join import quantum_join
from repro.qdb.qql import QQLEngine, QQLResult
from repro.qdb.search import QuantumSearchResult, quantum_select, classical_select
from repro.qdb.setops import quantum_difference, quantum_intersection, quantum_union
from repro.qdb.table import QuantumTable

__all__ = [
    "KeyEncoding",
    "quantum_join",
    "QQLEngine",
    "QQLResult",
    "QuantumSearchResult",
    "quantum_select",
    "classical_select",
    "quantum_difference",
    "quantum_intersection",
    "quantum_union",
    "QuantumTable",
]
