"""The multiple-query-optimization problem model (Sellis [52]).

Given a batch of queries, each with several candidate plans, choose one
plan per query minimising total cost, where pairs of plans (of different
queries) that share intermediate results yield cost *savings* when selected
together.  NP-hard; the QUBO mapping is due to Trummer & Koch [20].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import InfeasibleError, ReproError

PlanKey = tuple[str, str]  # (query_id, plan_id)


@dataclass(frozen=True)
class PlanChoice:
    """One candidate plan for one query."""

    query: str
    plan: str
    cost: float

    @property
    def key(self) -> PlanKey:
        return (self.query, self.plan)


class MQOProblem:
    """Queries, candidate plans and pairwise savings."""

    def __init__(self):
        self._plans: dict[str, list[PlanChoice]] = {}
        self._savings: dict[tuple[PlanKey, PlanKey], float] = {}

    # -- construction -------------------------------------------------------------

    def add_plan(self, query: str, plan: str, cost: float) -> PlanChoice:
        if cost < 0:
            raise ReproError("plan cost must be non-negative")
        choice = PlanChoice(query, plan, float(cost))
        bucket = self._plans.setdefault(query, [])
        if any(p.plan == plan for p in bucket):
            raise ReproError(f"duplicate plan {plan!r} for query {query!r}")
        bucket.append(choice)
        return choice

    def add_saving(self, a: PlanKey, b: PlanKey, amount: float) -> None:
        """Record that selecting both plans saves ``amount`` cost units."""
        if amount < 0:
            raise ReproError("savings must be non-negative")
        if a[0] == b[0]:
            raise ReproError("savings apply to plans of *different* queries")
        self._plan_or_raise(a)
        self._plan_or_raise(b)
        key = (min(a, b), max(a, b))
        self._savings[key] = self._savings.get(key, 0.0) + float(amount)

    def _plan_or_raise(self, key: PlanKey) -> PlanChoice:
        for p in self._plans.get(key[0], []):
            if p.plan == key[1]:
                return p
        raise ReproError(f"unknown plan {key!r}")

    # -- accessors ----------------------------------------------------------------

    @property
    def queries(self) -> list[str]:
        return sorted(self._plans)

    def plans_of(self, query: str) -> list[PlanChoice]:
        if query not in self._plans:
            raise ReproError(f"unknown query {query!r}")
        return list(self._plans[query])

    @property
    def all_plans(self) -> list[PlanChoice]:
        return [p for q in self.queries for p in self._plans[q]]

    @property
    def savings(self) -> dict[tuple[PlanKey, PlanKey], float]:
        return dict(self._savings)

    @property
    def num_plans(self) -> int:
        return sum(len(v) for v in self._plans.values())

    # -- evaluation ---------------------------------------------------------------

    def validate_selection(self, selection: Mapping[str, str]) -> None:
        """Every query must have exactly one known plan selected."""
        missing = [q for q in self.queries if q not in selection]
        if missing:
            raise InfeasibleError(f"queries without a selected plan: {missing}")
        for q, plan in selection.items():
            self._plan_or_raise((q, plan))

    def total_cost(self, selection: Mapping[str, str]) -> float:
        """Total plan cost minus all savings activated by the selection."""
        self.validate_selection(selection)
        cost = sum(self._plan_or_raise((q, p)).cost for q, p in selection.items())
        for ((qa, pa), (qb, pb)), amount in self._savings.items():
            if selection.get(qa) == pa and selection.get(qb) == pb:
                cost -= amount
        return cost

    def cost_bounds(self) -> tuple[float, float]:
        """(loose lower bound, upper bound) on achievable total cost."""
        lower = sum(min(p.cost for p in self._plans[q]) for q in self.queries)
        lower -= sum(self._savings.values())
        upper = sum(max(p.cost for p in self._plans[q]) for q in self.queries)
        return lower, upper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MQOProblem({len(self._plans)} queries, {self.num_plans} plans, "
            f"{len(self._savings)} savings)"
        )
