"""The Trummer-Koch logical QUBO mapping for MQO [20].

One binary variable per (query, plan) pair; the energy is

    E(x) = sum_p cost_p x_p  -  sum_{p,p'} saving_{pp'} x_p x_{p'}
           + w_L * sum_q (1 - sum_{p in q} x_p)^2

The penalty weight ``w_L`` dominates every possible objective swing so the
minimum always selects exactly one plan per query (their "logical level");
the "physical level" — embedding onto the annealer topology — is handled by
:class:`repro.annealing.device.AnnealerDevice`.
"""

from __future__ import annotations

from itertools import chain
from typing import Mapping

import numpy as np

from repro.exceptions import InfeasibleError
from repro.mqo.problem import MQOProblem, PlanKey
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one, add_exactly_one_groups


def penalty_weight(problem: MQOProblem, query: "str | None" = None) -> float:
    """Penalty weight dominating the energy swing of one query's choices.

    Violating the exactly-one constraint of query ``q`` can gain at most the
    largest plan cost of ``q`` plus all savings touching ``q``'s plans, so a
    per-query weight just above that swing suffices (a tight weight keeps
    the QUBO well conditioned for annealers — Trummer & Koch's choice).
    Without ``query``, returns the maximum over all queries.
    """
    queries = [query] if query is not None else problem.queries
    weights = _penalty_weights(problem)
    return max(weights[q] for q in queries)


def _penalty_weights(problem: MQOProblem) -> dict[str, float]:
    """Per-query penalty weights, in one pass over the savings map.

    Each saving touches the queries of both endpoints, so a single sweep
    accumulates every query's "touching" sum in savings order — the same
    left-to-right float accumulation the per-query filtered scans performed,
    without the O(queries x savings) rescans.
    """
    touching = {q: 0.0 for q in problem.queries}
    for (a, b), amount in problem.savings.items():
        touching[a[0]] += amount
        if b[0] != a[0]:
            touching[b[0]] += amount
    return {
        q: max(p.cost for p in problem.plans_of(q)) + touching[q] + 1.0
        for q in problem.queries
    }


def mqo_to_qubo(problem: MQOProblem, weight: "float | None" = None) -> QuboModel:
    """Build the logical QUBO; variable labels are ``(query, plan)`` keys.

    Coefficients are emitted through the bulk array API in three chunks —
    plan costs, shared-savings couplings, per-query exactly-one penalties —
    in the same phase order the historical per-term build used.
    """
    model = QuboModel()
    plans = problem.all_plans
    idx = model.variables_from(plan.key for plan in plans)
    costs = np.array([plan.cost for plan in plans], dtype=np.float64)
    model.add_linear_from(idx, costs)

    savings = problem.savings
    rows = cols = amounts = None
    if savings:
        flat = model.indices_of(chain.from_iterable(savings))
        rows, cols = flat[0::2], flat[1::2]
        amounts = np.array(list(savings.values()), dtype=np.float64)
        model.add_quadratic_from(rows, cols, -amounts)

    # all_plans groups plans contiguously by (sorted) query, so each query's
    # variables are the slice [starts[k], starts[k] + counts[k]).
    queries = problem.queries
    counts = np.array([len(problem.plans_of(q)) for q in queries], dtype=np.int64)
    starts = np.zeros(len(queries), dtype=np.int64)
    if len(queries):
        starts[1:] = np.cumsum(counts)[:-1]
    weights = None
    if weight is None:
        # penalty_weight, batched: a saving always touches two *different*
        # queries, so interleaving both endpoints' contributions per saving
        # reproduces each query's savings-order sum exactly (np.add.at
        # accumulates strictly in element order).
        touching = np.zeros(len(queries))
        if savings:
            query_of_plan = np.repeat(np.arange(len(queries)), counts)
            np.add.at(
                touching,
                np.column_stack([query_of_plan[rows], query_of_plan[cols]]).ravel(),
                np.repeat(amounts, 2),
            )
        max_costs = np.maximum.reduceat(costs, starts) if len(queries) else touching
        weights = (max_costs + touching) + 1.0
    if len(queries) and counts.min() == counts.max():
        group_w = weights if weights is not None else np.full(len(queries), float(weight))
        add_exactly_one_groups(model, idx.reshape(len(queries), -1), group_w)
    else:
        for k in range(len(queries)):
            w = float(weights[k]) if weights is not None else weight
            add_exactly_one(model, idx[starts[k] : starts[k] + counts[k]], w)
    return model


def decode_sample(
    problem: MQOProblem, model: QuboModel, bits, repair: bool = True
) -> dict[str, str]:
    """Turn a QUBO assignment into a plan selection.

    With ``repair=True`` (the post-processing every annealing paper applies)
    queries with zero or multiple selected plans fall back to their cheapest
    (or cheapest-selected) plan; with ``repair=False`` invalid assignments
    raise :class:`~repro.exceptions.InfeasibleError`.
    """
    assignment = model.decode(bits)
    selection: dict[str, str] = {}
    for q in problem.queries:
        chosen = [p for p in problem.plans_of(q) if assignment.get((q, p.plan), 0) == 1]
        if len(chosen) == 1:
            selection[q] = chosen[0].plan
        elif not repair:
            raise InfeasibleError(
                f"query {q!r} has {len(chosen)} plans selected in the sample"
            )
        elif chosen:
            selection[q] = min(chosen, key=lambda p: p.cost).plan
        else:
            selection[q] = min(problem.plans_of(q), key=lambda p: p.cost).plan
    return selection


def selection_to_bits(problem: MQOProblem, model: QuboModel, selection: Mapping[str, str]) -> list[int]:
    """Inverse of :func:`decode_sample` for tests and warm starts."""
    bits = [0] * model.num_variables
    for q, plan in selection.items():
        bits[model.index_of((q, plan))] = 1
    return bits
