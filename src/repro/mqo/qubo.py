"""The Trummer-Koch logical QUBO mapping for MQO [20].

One binary variable per (query, plan) pair; the energy is

    E(x) = sum_p cost_p x_p  -  sum_{p,p'} saving_{pp'} x_p x_{p'}
           + w_L * sum_q (1 - sum_{p in q} x_p)^2

The penalty weight ``w_L`` dominates every possible objective swing so the
minimum always selects exactly one plan per query (their "logical level");
the "physical level" — embedding onto the annealer topology — is handled by
:class:`repro.annealing.device.AnnealerDevice`.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import InfeasibleError
from repro.mqo.problem import MQOProblem, PlanKey
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_exactly_one


def penalty_weight(problem: MQOProblem, query: "str | None" = None) -> float:
    """Penalty weight dominating the energy swing of one query's choices.

    Violating the exactly-one constraint of query ``q`` can gain at most the
    largest plan cost of ``q`` plus all savings touching ``q``'s plans, so a
    per-query weight just above that swing suffices (a tight weight keeps
    the QUBO well conditioned for annealers — Trummer & Koch's choice).
    Without ``query``, returns the maximum over all queries.
    """
    queries = [query] if query is not None else problem.queries
    weights = []
    for q in queries:
        max_cost = max(p.cost for p in problem.plans_of(q))
        touching = sum(
            amount
            for (a, b), amount in problem.savings.items()
            if a[0] == q or b[0] == q
        )
        weights.append(max_cost + touching + 1.0)
    return max(weights)


def mqo_to_qubo(problem: MQOProblem, weight: "float | None" = None) -> QuboModel:
    """Build the logical QUBO; variable labels are ``(query, plan)`` keys."""
    model = QuboModel()
    for plan in problem.all_plans:
        model.variable(plan.key)
        model.add_linear(plan.key, plan.cost)
    for (a, b), amount in problem.savings.items():
        model.add_quadratic(a, b, -amount)
    for q in problem.queries:
        w = penalty_weight(problem, q) if weight is None else weight
        add_exactly_one(model, [p.key for p in problem.plans_of(q)], w)
    return model


def decode_sample(
    problem: MQOProblem, model: QuboModel, bits, repair: bool = True
) -> dict[str, str]:
    """Turn a QUBO assignment into a plan selection.

    With ``repair=True`` (the post-processing every annealing paper applies)
    queries with zero or multiple selected plans fall back to their cheapest
    (or cheapest-selected) plan; with ``repair=False`` invalid assignments
    raise :class:`~repro.exceptions.InfeasibleError`.
    """
    assignment = model.decode(bits)
    selection: dict[str, str] = {}
    for q in problem.queries:
        chosen = [p for p in problem.plans_of(q) if assignment.get((q, p.plan), 0) == 1]
        if len(chosen) == 1:
            selection[q] = chosen[0].plan
        elif not repair:
            raise InfeasibleError(
                f"query {q!r} has {len(chosen)} plans selected in the sample"
            )
        elif chosen:
            selection[q] = min(chosen, key=lambda p: p.cost).plan
        else:
            selection[q] = min(problem.plans_of(q), key=lambda p: p.cost).plan
    return selection


def selection_to_bits(problem: MQOProblem, model: QuboModel, selection: Mapping[str, str]) -> list[int]:
    """Inverse of :func:`decode_sample` for tests and warm starts."""
    bits = [0] * model.num_variables
    for q, plan in selection.items():
        bits[model.index_of((q, plan))] = 1
    return bits
