"""Classical MQO baselines: exhaustive, greedy, and hill climbing.

These play the role of the "state-of-the-art MQO solutions" Trummer & Koch
compare their annealer against; the exhaustive solver doubles as the
ground-truth optimum for quality measurements.
"""

from __future__ import annotations

import itertools

from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem
from repro.utils.rngtools import ensure_rng


def exhaustive_mqo(problem: MQOProblem, max_combinations: int = 2_000_000) -> tuple[dict[str, str], float]:
    """Enumerate every plan combination (exact, exponential)."""
    space = 1
    for q in problem.queries:
        space *= len(problem.plans_of(q))
    if space > max_combinations:
        raise ReproError(f"search space {space} exceeds limit {max_combinations}")
    best_sel = None
    best_cost = float("inf")
    plan_lists = [problem.plans_of(q) for q in problem.queries]
    for combo in itertools.product(*plan_lists):
        selection = {p.query: p.plan for p in combo}
        cost = problem.total_cost(selection)
        if cost < best_cost:
            best_cost = cost
            best_sel = selection
    return best_sel, best_cost


def greedy_mqo(problem: MQOProblem) -> tuple[dict[str, str], float]:
    """Pick each query's cheapest plan, ignoring sharing."""
    selection = {
        q: min(problem.plans_of(q), key=lambda p: p.cost).plan for q in problem.queries
    }
    return selection, problem.total_cost(selection)


def local_search_from(problem: MQOProblem, selection: dict[str, str]) -> tuple[dict[str, str], float]:
    """First-improvement plan-swap descent from a given selection.

    This is the classical half of the hybrid pipeline (Sec. III-C.2 of the
    paper): the quantum sampler proposes a basin, a cheap local search
    finishes the job.
    """
    selection = dict(selection)
    cost = problem.total_cost(selection)
    improved = True
    while improved:
        improved = False
        for q in problem.queries:
            current = selection[q]
            for p in problem.plans_of(q):
                if p.plan == current:
                    continue
                candidate = dict(selection)
                candidate[q] = p.plan
                c = problem.total_cost(candidate)
                if c < cost - 1e-12:
                    selection, cost = candidate, c
                    improved = True
                    break
            if improved:
                break
    return selection, cost


def hill_climbing_mqo(
    problem: MQOProblem, restarts: int = 8, max_iterations: int = 200, rng=None
) -> tuple[dict[str, str], float]:
    """First-improvement hill climbing over single-query plan swaps."""
    rng = ensure_rng(rng)
    best_sel = None
    best_cost = float("inf")
    for _ in range(restarts):
        selection = {
            q: problem.plans_of(q)[int(rng.integers(0, len(problem.plans_of(q))))].plan
            for q in problem.queries
        }
        cost = problem.total_cost(selection)
        for _ in range(max_iterations):
            improved = False
            for q in problem.queries:
                current = selection[q]
                for p in problem.plans_of(q):
                    if p.plan == current:
                        continue
                    candidate = dict(selection)
                    candidate[q] = p.plan
                    c = problem.total_cost(candidate)
                    if c < cost - 1e-12:
                        selection, cost = candidate, c
                        improved = True
                        break
                if improved:
                    break
            if not improved:
                break
        if cost < best_cost:
            best_cost = cost
            best_sel = selection
    return best_sel, best_cost
