"""End-to-end MQO solvers: annealing-based [20] and gate-based (QAOA) [21], [22]."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.qaoa import QAOA
from repro.annealing.device import AnnealerDevice
from repro.mqo.classical import local_search_from
from repro.mqo.problem import MQOProblem
from repro.mqo.qubo import decode_sample, mqo_to_qubo
from repro.utils.rngtools import ensure_rng


@dataclass
class MQOResult:
    """A solved MQO instance."""

    selection: dict[str, str]
    total_cost: float
    method: str
    energy: float = 0.0
    info: dict = field(default_factory=dict)


def solve_with_sampler(
    problem: MQOProblem, sampler, rng=None, method: str = "sampler", refine: bool = True
) -> MQOResult:
    """Solve via any object with ``solve(model, rng) -> SampleSet``.

    ``refine`` applies the hybrid classical polish (Sec. III-C.2): a
    plan-swap descent starting from the decoded quantum sample.
    """
    rng = ensure_rng(rng)
    model = mqo_to_qubo(problem)
    samples = sampler.solve(model, rng=rng)
    selection = _pick_selection(problem, model, samples, refine)
    return MQOResult(
        selection=selection,
        total_cost=problem.total_cost(selection),
        method=method,
        energy=samples.best.energy,
        info=dict(samples.info),
    )


def _pick_selection(problem, model, samples, refine: bool, top_k: int = 8) -> dict[str, str]:
    """Decode the best samples and (optionally) polish each classically.

    Post-processing every read — not just the single best — is how the
    published annealing pipelines extract value from the sample diversity.
    """
    best_selection = None
    best_cost = float("inf")
    for sample in samples.truncate(top_k):
        selection = decode_sample(problem, model, sample.bits)
        if refine:
            selection, cost = local_search_from(problem, selection)
        else:
            cost = problem.total_cost(selection)
        if cost < best_cost:
            best_cost = cost
            best_selection = selection
    return best_selection


def solve_with_annealer(
    problem: MQOProblem,
    device: "AnnealerDevice | None" = None,
    use_embedding: bool = True,
    rng=None,
    refine: bool = True,
) -> MQOResult:
    """The Trummer-Koch pipeline: logical QUBO -> physical embedding -> anneal.

    ``use_embedding=False`` skips the topology (the "ideal annealer"
    ablation).
    """
    rng = ensure_rng(rng)
    device = device or AnnealerDevice(sampler="sa", num_reads=24, num_sweeps=256)
    model = mqo_to_qubo(problem)
    if use_embedding:
        samples = device.sample(model, rng=rng)
    else:
        samples = device.sample_unembedded(model, rng=rng)
    selection = _pick_selection(problem, model, samples, refine)
    return MQOResult(
        selection=selection,
        total_cost=problem.total_cost(selection),
        method=f"annealer[{device.sampler_name}]",
        energy=samples.best.energy,
        info=dict(samples.info),
    )


def solve_with_qaoa(
    problem: MQOProblem,
    num_layers: int = 2,
    maxiter: int = 150,
    restarts: int = 2,
    shots: int = 512,
    rng=None,
    refine: bool = True,
) -> MQOResult:
    """The gate-based pipeline of Fankhauser et al.: QUBO -> Ising -> QAOA."""
    rng = ensure_rng(rng)
    model = mqo_to_qubo(problem)
    qaoa = QAOA.from_qubo(model, num_layers=num_layers)
    result = qaoa.run(maxiter=maxiter, restarts=restarts, shots=shots, rng=rng)
    selection = _pick_selection(problem, model, result.samples, refine)
    return MQOResult(
        selection=selection,
        total_cost=problem.total_cost(selection),
        method=f"qaoa[p={num_layers}]",
        energy=result.best_energy,
        info={
            "expectation": result.expectation,
            "qubits": qaoa.num_qubits,
            "optimizer_evaluations": result.optimizer_evaluations,
        },
    )
