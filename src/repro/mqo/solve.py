"""End-to-end MQO solvers — deprecated aliases over :mod:`repro.api`.

``solve_with_annealer`` / ``solve_with_qaoa`` / ``solve_with_sampler``
predate the unified facade; they now delegate to
``repro.solve(MQOAdapter(problem), backend=...)`` and merely repackage the
:class:`~repro.api.result.SolveResult` into the historical
:class:`MQOResult` shape.  New code should call the facade directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mqo.problem import MQOProblem


@dataclass
class MQOResult:
    """A solved MQO instance (legacy result shape)."""

    selection: dict[str, str]
    total_cost: float
    method: str
    energy: float = 0.0
    info: dict = field(default_factory=dict)


def _from_solve_result(result, method: str) -> MQOResult:
    return MQOResult(
        selection=result.solution,
        total_cost=result.objective,
        method=method,
        energy=result.energy,
        info=dict(result.info),
    )


def solve_with_sampler(
    problem: MQOProblem, sampler, rng=None, method: str = "sampler", refine: bool = True
) -> MQOResult:
    """Solve via any object with ``solve(model, rng) -> SampleSet``.

    Deprecated: use ``repro.solve(problem, SamplerBackend(sampler))``.
    """
    from repro.api import MQOAdapter, SamplerBackend, solve

    result = solve(
        MQOAdapter(problem), SamplerBackend(sampler, name=method), seed=rng, refine=refine
    )
    return _from_solve_result(result, method)


def solve_with_annealer(
    problem: MQOProblem,
    device=None,
    use_embedding: bool = True,
    rng=None,
    refine: bool = True,
) -> MQOResult:
    """The Trummer-Koch pipeline: logical QUBO -> physical embedding -> anneal.

    ``use_embedding=False`` skips the topology (the "ideal annealer"
    ablation).  Deprecated: use ``repro.solve(problem, "annealer", ...)``.
    """
    from repro.annealing.device import AnnealerDevice
    from repro.api import AnnealerBackend, MQOAdapter, solve

    device = device or AnnealerDevice(sampler="sa", num_reads=24, num_sweeps=256)
    backend = AnnealerBackend(device=device, use_embedding=use_embedding)
    result = solve(MQOAdapter(problem), backend, seed=rng, refine=refine)
    return _from_solve_result(result, f"annealer[{device.sampler_name}]")


def solve_with_qaoa(
    problem: MQOProblem,
    num_layers: int = 2,
    maxiter: int = 150,
    restarts: int = 2,
    shots: int = 512,
    rng=None,
    refine: bool = True,
) -> MQOResult:
    """The gate-based pipeline of Fankhauser et al.: QUBO -> Ising -> QAOA.

    Deprecated: use ``repro.solve(problem, "qaoa", num_layers=..., ...)``.
    """
    from repro.api import MQOAdapter, QAOABackend, solve

    backend = QAOABackend(
        num_layers=num_layers, maxiter=maxiter, restarts=restarts, shots=shots
    )
    result = solve(MQOAdapter(problem), backend, seed=rng, refine=refine)
    return _from_solve_result(result, f"qaoa[p={num_layers}]")
