"""Multiple query optimization on quantum hardware.

Reproduces the Table I MQO row: the Trummer & Koch [20] QUBO mapping
(annealing-based) and the Fankhauser et al. [21], [22] gate-based variant
via QAOA, against classical exhaustive / greedy / hill-climbing baselines.
"""

from repro.mqo.classical import (
    exhaustive_mqo,
    greedy_mqo,
    hill_climbing_mqo,
)
from repro.mqo.generator import generate_mqo_problem
from repro.mqo.problem import MQOProblem, PlanChoice
from repro.mqo.qubo import decode_sample, mqo_to_qubo
from repro.mqo.solve import MQOResult, solve_with_annealer, solve_with_qaoa, solve_with_sampler

__all__ = [
    "exhaustive_mqo",
    "greedy_mqo",
    "hill_climbing_mqo",
    "generate_mqo_problem",
    "MQOProblem",
    "PlanChoice",
    "decode_sample",
    "mqo_to_qubo",
    "MQOResult",
    "solve_with_annealer",
    "solve_with_qaoa",
    "solve_with_sampler",
]
