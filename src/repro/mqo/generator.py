"""Synthetic MQO workload generator.

Mirrors the synthetic benchmark of Trummer & Koch [20]: ``q`` queries with
``p`` candidate plans each, and randomly chosen cross-query plan pairs that
share intermediate results (a sharing density knob controls how many).
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem
from repro.utils.rngtools import ensure_rng


def generate_mqo_problem(
    num_queries: int,
    plans_per_query: int,
    sharing_density: float = 0.3,
    cost_range: tuple[float, float] = (10.0, 50.0),
    max_saving_fraction: float = 0.8,
    rng=None,
) -> MQOProblem:
    """Generate a random MQO instance.

    Args:
        num_queries: Number of queries in the batch.
        plans_per_query: Candidate plans per query.
        sharing_density: Probability that a cross-query plan pair shares an
            intermediate result.
        cost_range: Uniform range of individual plan costs.
        max_saving_fraction: A sharing pair saves a uniform fraction (up to
            this value) of the cheaper plan's cost, keeping totals positive.
        rng: Seed or generator.
    """
    if num_queries < 1 or plans_per_query < 1:
        raise ReproError("need at least one query and one plan per query")
    if not 0.0 <= sharing_density <= 1.0:
        raise ReproError("sharing_density must be in [0, 1]")
    rng = ensure_rng(rng)
    problem = MQOProblem()
    lo, hi = cost_range
    for q in range(num_queries):
        for p in range(plans_per_query):
            problem.add_plan(f"q{q}", f"p{p}", float(rng.uniform(lo, hi)))
    plans = problem.all_plans
    for i, a in enumerate(plans):
        for b in plans[i + 1 :]:
            if a.query == b.query:
                continue
            if rng.random() < sharing_density:
                cheaper = min(a.cost, b.cost)
                saving = float(rng.uniform(0.1, max_saving_fraction) * cheaper)
                problem.add_saving(a.key, b.key, saving)
    return problem
