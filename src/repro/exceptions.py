"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single except clause while
still being able to distinguish individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """A quantum simulation was asked to do something physically invalid.

    Examples: applying a gate to an out-of-range qubit, normalising a zero
    vector, or measuring an empty register.
    """


class NoCloningError(ReproError):
    """An operation attempted to copy an unknown quantum state.

    Raised by :mod:`repro.dqdm.data` and :mod:`repro.qnet.nocloning` when
    client code tries to duplicate a quantum payload, which the no-cloning
    theorem forbids.
    """


class EmbeddingError(ReproError):
    """Minor embedding of a logical QUBO onto a hardware graph failed."""


class InfeasibleError(ReproError):
    """An optimization problem has no feasible solution.

    Raised e.g. when a decoded QUBO sample violates hard constraints and no
    repair is possible, or a MILP is proven infeasible.
    """


class ParseError(ReproError):
    """A query string (SQL or QQL) could not be parsed."""


class ProtocolError(ReproError):
    """A distributed/quantum-network protocol was used out of order.

    Examples: teleporting over a link with no entangled pair available, or
    committing a distributed transaction that was never prepared.
    """
