"""Attribute similarity metrics for schema matching.

The standard lexical matchers: normalised Levenshtein, n-gram Jaccard, and
a type-compatibility prior, combined into one score in [0, 1].
"""

from __future__ import annotations

from repro.integration.schema import Attribute

_TYPE_AFFINITY = {
    ("int", "int"): 1.0,
    ("float", "float"): 1.0,
    ("string", "string"): 1.0,
    ("date", "date"): 1.0,
    ("bool", "bool"): 1.0,
    ("int", "float"): 0.8,
    ("int", "bool"): 0.4,
    ("string", "date"): 0.5,
    ("int", "string"): 0.3,
    ("float", "string"): 0.3,
}


def _normalise(name: str) -> str:
    return "".join(c for c in name.lower() if c.isalnum())


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - distance / max_len`` on normalised names."""
    a, b = _normalise(a), _normalise(b)
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaccard_ngrams(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets (padded)."""
    a, b = _normalise(a), _normalise(b)

    def grams(s: str) -> set[str]:
        padded = f"#{s}#"
        if len(padded) < n:
            return {padded}
        return {padded[i : i + n] for i in range(len(padded) - n + 1)}

    ga, gb = grams(a), grams(b)
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


def type_compatibility(a: str, b: str) -> float:
    """Affinity of two attribute types in [0, 1]."""
    if a == b:
        return 1.0
    return _TYPE_AFFINITY.get((a, b), _TYPE_AFFINITY.get((b, a), 0.1))


def combined_similarity(a: Attribute, b: Attribute, name_weight: float = 0.8) -> float:
    """Weighted blend of lexical similarity and type compatibility."""
    lexical = 0.5 * levenshtein_similarity(a.name, b.name) + 0.5 * jaccard_ngrams(a.name, b.name)
    return name_weight * lexical + (1.0 - name_weight) * type_compatibility(a.dtype, b.dtype)
