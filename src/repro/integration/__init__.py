"""Data integration: schema matching on quantum computers (Table I row [28]).

Fritsch & Scherzinger map the hard one-to-one schema-matching variant to a
QUBO solved with QAOA/annealing; this package reproduces the mapping with
name/type similarity metrics, classical baselines (Hungarian algorithm,
greedy), and a synthetic schema-pair generator with ground truth.
"""

from repro.integration.classical import greedy_matching, hungarian_matching
from repro.integration.generator import generate_schema_pair
from repro.integration.qubo import decode_matching, matching_to_qubo
from repro.integration.schema import Attribute, Schema
from repro.integration.similarity import (
    combined_similarity,
    jaccard_ngrams,
    levenshtein_similarity,
    type_compatibility,
)

__all__ = [
    "greedy_matching",
    "hungarian_matching",
    "generate_schema_pair",
    "decode_matching",
    "matching_to_qubo",
    "Attribute",
    "Schema",
    "combined_similarity",
    "jaccard_ngrams",
    "levenshtein_similarity",
    "type_compatibility",
]
