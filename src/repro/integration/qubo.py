"""The schema-matching QUBO (Fritsch & Scherzinger [28]).

One binary variable per candidate attribute pair; maximising total
similarity subject to one-to-one constraints becomes

    E(x) = - sum_{(a,b)} sim(a,b) x_{ab}
           + w * sum_a  AtMostOne(x_{a,*})
           + w * sum_b  AtMostOne(x_{*,b})

Low-similarity pairs are pruned from the variable set (their selection is
never profitable), matching the paper's candidate filtering.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.integration.schema import Schema
from repro.integration.similarity import combined_similarity
from repro.qubo.model import QuboModel
from repro.qubo.penalty import add_at_most_one

MatchKey = tuple[str, str]


def similarity_matrix(source: Schema, target: Schema) -> dict[MatchKey, float]:
    """Similarity of every cross-schema attribute pair."""
    return {
        (a.name, b.name): combined_similarity(a, b)
        for a in source
        for b in target
    }


def matching_to_qubo(
    source: Schema,
    target: Schema,
    threshold: float = 0.25,
    weight: "float | None" = None,
) -> tuple[QuboModel, dict[MatchKey, float]]:
    """Build the QUBO; returns it with the (pruned) similarity map."""
    sims = {
        key: s for key, s in similarity_matrix(source, target).items() if s >= threshold
    }
    if weight is None:
        weight = max(sims.values(), default=1.0) + 1.0
    model = QuboModel()
    idx = model.variables_from(sims)
    model.add_linear_from(idx, -np.array(list(sims.values()), dtype=np.float64))
    # One pass groups every variable index by source and target attribute
    # (insertion order within each group matches the sims iteration order
    # the historical per-attribute scans produced).
    by_source: dict[str, list[int]] = defaultdict(list)
    by_target: dict[str, list[int]] = defaultdict(list)
    for (a, b), i in zip(sims, idx.tolist()):
        by_source[a].append(i)
        by_target[b].append(i)
    for a in source.attribute_names:
        group = by_source.get(a, ())
        if len(group) > 1:
            add_at_most_one(model, np.array(group, dtype=np.int64), weight)
    for b in target.attribute_names:
        group = by_target.get(b, ())
        if len(group) > 1:
            add_at_most_one(model, np.array(group, dtype=np.int64), weight)
    return model, sims


def decode_matching(model: QuboModel, bits, repair: bool = True) -> dict[str, str]:
    """Assignment -> ``{source_attr: target_attr}`` mapping.

    Repair drops the lower-similarity pair of any one-to-one violation
    (greedy by the model's own linear coefficients).
    """
    assignment = model.decode(bits)
    chosen = [key for key, bit in assignment.items() if bit == 1]
    if repair:
        # Greedy keep-best: iterate by ascending energy coefficient
        # (most-negative = highest similarity first).
        chosen.sort(key=lambda k: model.linear.get(model.index_of(k), 0.0))
        used_a: set[str] = set()
        used_b: set[str] = set()
        result: dict[str, str] = {}
        for a, b in chosen:
            if a in used_a or b in used_b:
                continue
            used_a.add(a)
            used_b.add(b)
            result[a] = b
        return result
    return {a: b for a, b in chosen}


def matching_quality(
    predicted: dict[str, str], truth: dict[str, str]
) -> tuple[float, float, float]:
    """(precision, recall, F1) of a predicted mapping vs ground truth."""
    predicted_pairs = set(predicted.items())
    truth_pairs = set(truth.items())
    if not predicted_pairs:
        return (0.0, 0.0, 0.0) if truth_pairs else (1.0, 1.0, 1.0)
    tp = len(predicted_pairs & truth_pairs)
    precision = tp / len(predicted_pairs)
    recall = tp / len(truth_pairs) if truth_pairs else 1.0
    f1 = 0.0 if precision + recall == 0 else 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def matching_similarity_total(matching: dict[str, str], sims: dict[MatchKey, float]) -> float:
    """Total similarity score of a mapping (the objective being maximised)."""
    return sum(sims.get((a, b), 0.0) for a, b in matching.items())
