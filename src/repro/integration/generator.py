"""Synthetic schema-pair generator with ground-truth correspondences.

Builds a source schema from a realistic attribute pool, then derives a
target schema by renaming (abbreviations, synonyms, typos), retyping,
dropping and adding attributes — the noise model typical of schema-matching
benchmarks.
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.integration.schema import ATTRIBUTE_TYPES, Attribute, Schema
from repro.utils.rngtools import ensure_rng

_ATTRIBUTE_POOL = [
    ("customer_id", "int"),
    ("customer_name", "string"),
    ("order_id", "int"),
    ("order_date", "date"),
    ("total_amount", "float"),
    ("shipping_address", "string"),
    ("email_address", "string"),
    ("phone_number", "string"),
    ("product_id", "int"),
    ("product_name", "string"),
    ("unit_price", "float"),
    ("quantity", "int"),
    ("discount_rate", "float"),
    ("is_active", "bool"),
    ("created_at", "date"),
    ("updated_at", "date"),
    ("country_code", "string"),
    ("postal_code", "string"),
    ("birth_date", "date"),
    ("account_balance", "float"),
]

_SYNONYMS = {
    "customer_id": "client_id",
    "customer_name": "client_name",
    "order_date": "purchase_date",
    "total_amount": "order_total",
    "shipping_address": "delivery_address",
    "email_address": "email",
    "phone_number": "phone",
    "unit_price": "price_per_unit",
    "quantity": "qty",
    "is_active": "active_flag",
    "account_balance": "balance",
}


def _abbreviate(name: str) -> str:
    parts = name.split("_")
    return "_".join(p[:4] for p in parts)


def _typo(name: str, rng) -> str:
    if len(name) < 3:
        return name
    i = int(rng.integers(1, len(name) - 1))
    return name[:i] + name[i + 1 :]


def generate_schema_pair(
    num_attributes: int,
    rename_probability: float = 0.6,
    drop_probability: float = 0.1,
    extra_attributes: int = 1,
    rng=None,
) -> tuple[Schema, Schema, dict[str, str]]:
    """Generate ``(source, target, ground_truth)``.

    ``ground_truth`` maps source attribute names to their true target
    counterparts (dropped attributes are absent).
    """
    if num_attributes < 1 or num_attributes > len(_ATTRIBUTE_POOL):
        raise ReproError(f"num_attributes must be in 1..{len(_ATTRIBUTE_POOL)}")
    rng = ensure_rng(rng)
    pool_idx = rng.choice(len(_ATTRIBUTE_POOL), size=num_attributes, replace=False)
    source_attrs = [Attribute(*_ATTRIBUTE_POOL[i]) for i in pool_idx]
    target_attrs = []
    truth: dict[str, str] = {}
    for attr in source_attrs:
        if rng.random() < drop_probability:
            continue
        name = attr.name
        if rng.random() < rename_probability:
            style = rng.random()
            if style < 0.4 and name in _SYNONYMS:
                name = _SYNONYMS[name]
            elif style < 0.7:
                name = _abbreviate(name)
            else:
                name = _typo(name, rng)
        dtype = attr.dtype
        if rng.random() < 0.1:
            dtype = str(rng.choice([t for t in ATTRIBUTE_TYPES if t != attr.dtype]))
        target_attrs.append(Attribute(name, dtype))
        truth[attr.name] = name
    for j in range(extra_attributes):
        target_attrs.append(Attribute(f"extra_field_{j}", "string"))
    rng.shuffle(target_attrs)
    # Guard against accidental duplicate names after renaming.
    seen: set[str] = set()
    unique_attrs = []
    renames: dict[str, str] = {}
    for a in target_attrs:
        name = a.name
        while name in seen:
            name = name + "_x"
        if name != a.name:
            renames[a.name] = name
        seen.add(name)
        unique_attrs.append(Attribute(name, a.dtype))
    if renames:
        truth = {k: renames.get(v, v) for k, v in truth.items()}
    return (
        Schema("source", source_attrs),
        Schema("target", unique_attrs),
        truth,
    )
