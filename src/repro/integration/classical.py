"""Classical schema-matching baselines."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.integration.qubo import MatchKey
from repro.integration.schema import Schema
from repro.integration.similarity import combined_similarity


def hungarian_matching(
    source: Schema, target: Schema, threshold: float = 0.25
) -> dict[str, str]:
    """Optimal one-to-one matching by the Hungarian algorithm.

    Maximises total similarity; pairs below ``threshold`` are never matched
    (enforced via dummy columns), so the result is directly comparable with
    the QUBO optimum.
    """
    rows = source.attribute_names
    cols = target.attribute_names
    sim = np.zeros((len(rows), len(cols)))
    for i, a in enumerate(source):
        for j, b in enumerate(target):
            sim[i, j] = combined_similarity(a, b)
    # Pad to square with zeros ("match to nothing" option).
    size = max(len(rows), len(cols)) + len(rows)
    padded = np.zeros((size, size))
    padded[: len(rows), : len(cols)] = np.where(sim >= threshold, sim, 0.0)
    r_idx, c_idx = linear_sum_assignment(-padded)
    result: dict[str, str] = {}
    for i, j in zip(r_idx, c_idx):
        if i < len(rows) and j < len(cols) and padded[i, j] > 0:
            result[rows[i]] = cols[j]
    return result


def greedy_matching(
    source: Schema, target: Schema, threshold: float = 0.25
) -> dict[str, str]:
    """Greedy best-pair-first matching (the common heuristic baseline)."""
    pairs: list[tuple[float, MatchKey]] = []
    for a in source:
        for b in target:
            s = combined_similarity(a, b)
            if s >= threshold:
                pairs.append((s, (a.name, b.name)))
    pairs.sort(reverse=True)
    used_a: set[str] = set()
    used_b: set[str] = set()
    result: dict[str, str] = {}
    for _, (a, b) in pairs:
        if a in used_a or b in used_b:
            continue
        used_a.add(a)
        used_b.add(b)
        result[a] = b
    return result
