"""Schemas and attributes for the matching problem."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError

ATTRIBUTE_TYPES = ("int", "float", "string", "date", "bool")


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a schema."""

    name: str
    dtype: str = "string"

    def __post_init__(self):
        if self.dtype not in ATTRIBUTE_TYPES:
            raise ReproError(f"unknown attribute type {self.dtype!r}; choose from {ATTRIBUTE_TYPES}")


@dataclass
class Schema:
    """A named list of attributes."""

    name: str
    attributes: list[Attribute] = field(default_factory=list)

    def __post_init__(self):
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate attribute names in schema {self.name!r}")

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise ReproError(f"schema {self.name!r} has no attribute {name!r}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)
