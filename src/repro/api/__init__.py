"""The unified solver API: one Problem -> QUBO -> Backend -> Result pipeline.

This package is the explicit form of the paper's Fig. 2 thesis — every
quantum data-management workload funnels through QUBO — and the layered
hybrid architecture argued for by Zajac & Störl:

* :mod:`.problem` — the declarative :class:`Problem` contract
  (``to_qubo`` / ``decode`` / ``evaluate`` / ``refine``);
* :mod:`.adapters` — the four Table I domains behind that contract;
* :mod:`.backends` — every solver engine (exact, heuristic, annealing,
  gate-model, classical baselines) behind one ``run`` signature plus the
  string registry;
* :mod:`.facade` — ``solve`` / ``solve_portfolio`` / ``solve_many``, thin
  front-ends over the execution engine in :mod:`repro.engine` (planner,
  sharded executors, content-addressed result cache);
* :mod:`.result` — the uniform :class:`SolveResult`.

The SQL front end (:mod:`repro.workload`) re-exports here too:
:func:`compile_workload` plans a SQL script into Table I instances and
:func:`run_workload` executes them as one ``solve_many`` batch.
"""

from repro.api.adapters import (
    BushyJoinAdapter,
    LeftDeepJoinAdapter,
    MQOAdapter,
    SchemaMatchingAdapter,
    TxnScheduleAdapter,
    as_problem,
    as_problems,
)
from repro.api.backends import (
    AnnealerBackend,
    Backend,
    BruteForceBackend,
    ClassicalBaselineBackend,
    QAOABackend,
    SamplerBackend,
    SimulatedAnnealingBackend,
    SimulatedQuantumAnnealingBackend,
    TabuBackend,
    VQEBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.api.facade import solve, solve_many, solve_portfolio
from repro.api.problem import Problem, qubo_signature
from repro.api.result import SolveResult
from repro.engine import (
    AdaptiveScheduler,
    BackendScoreboard,
    EngineStore,
    ExecutionPlan,
    ResultCache,
    compile_plan,
    execute_plan,
    engine_store,
    list_executors,
    resolve_store,
)

# Imported last: repro.workload builds on repro.api.facade, so the facade
# (and the engine it fronts) must be fully initialised first.
from repro.workload import (  # noqa: E402
    WorkloadPlan,
    WorkloadReport,
    compile_workload,
    run_workload,
)

__all__ = [
    "Problem",
    "qubo_signature",
    "SolveResult",
    "Backend",
    "register_backend",
    "get_backend",
    "list_backends",
    "BruteForceBackend",
    "TabuBackend",
    "SimulatedAnnealingBackend",
    "SimulatedQuantumAnnealingBackend",
    "AnnealerBackend",
    "QAOABackend",
    "VQEBackend",
    "SamplerBackend",
    "ClassicalBaselineBackend",
    "MQOAdapter",
    "LeftDeepJoinAdapter",
    "BushyJoinAdapter",
    "SchemaMatchingAdapter",
    "TxnScheduleAdapter",
    "as_problem",
    "as_problems",
    "solve",
    "solve_portfolio",
    "solve_many",
    "ExecutionPlan",
    "ResultCache",
    "AdaptiveScheduler",
    "BackendScoreboard",
    "EngineStore",
    "engine_store",
    "resolve_store",
    "compile_plan",
    "execute_plan",
    "list_executors",
    "WorkloadPlan",
    "WorkloadReport",
    "compile_workload",
    "run_workload",
]
