"""Problem-protocol adapters for the four Table I domains.

Each adapter wraps an existing domain formulation (QUBO builder + decoder +
exact objective + classical baseline) behind the uniform
:class:`~repro.api.problem.Problem` contract, so the facade can drive all
of them through any backend.  :func:`as_problem` additionally accepts the
raw domain objects (an :class:`~repro.mqo.problem.MQOProblem`, a
:class:`~repro.db.query.JoinGraph`, a schema pair, a transaction list) and
picks the right adapter.
"""

from __future__ import annotations

from typing import Any

from repro.api.adapters.integration import SchemaMatchingAdapter
from repro.api.adapters.joinorder import BushyJoinAdapter, LeftDeepJoinAdapter
from repro.api.adapters.mqo import MQOAdapter
from repro.api.adapters.qubo import RawQuboProblem
from repro.api.adapters.txn import TxnScheduleAdapter
from repro.api.problem import Problem
from repro.exceptions import ReproError

__all__ = [
    "MQOAdapter",
    "LeftDeepJoinAdapter",
    "BushyJoinAdapter",
    "SchemaMatchingAdapter",
    "TxnScheduleAdapter",
    "RawQuboProblem",
    "as_problem",
    "as_problems",
]


def as_problem(obj: Any, **kwargs) -> Problem:
    """Coerce a domain object into a :class:`Problem`.

    Accepts an adapter unchanged, or wraps: ``MQOProblem`` -> MQO,
    ``JoinGraph`` -> left-deep join ordering (pass ``bushy=True`` for the
    bushy encoding), ``(source, target)`` schema pair -> matching, and a
    transaction sequence -> slot scheduling.  Extra kwargs go to the chosen
    adapter.
    """
    if isinstance(obj, Problem):
        if kwargs:
            raise ReproError("cannot re-parameterise an existing Problem adapter")
        return obj

    from repro.db.query import JoinGraph
    from repro.db.transactions import Transaction
    from repro.integration.schema import Schema
    from repro.mqo.problem import MQOProblem
    from repro.qubo.model import QuboModel

    if isinstance(obj, QuboModel):
        return RawQuboProblem(obj, **kwargs)
    if isinstance(obj, MQOProblem):
        return MQOAdapter(obj, **kwargs)
    if isinstance(obj, JoinGraph):
        if kwargs.pop("bushy", False):
            return BushyJoinAdapter(obj, **kwargs)
        return LeftDeepJoinAdapter(obj, **kwargs)
    if (
        isinstance(obj, tuple)
        and len(obj) == 2
        and all(isinstance(s, Schema) for s in obj)
    ):
        return SchemaMatchingAdapter(obj[0], obj[1], **kwargs)
    if isinstance(obj, (list, tuple)) and obj and all(isinstance(t, Transaction) for t in obj):
        return TxnScheduleAdapter(list(obj), **kwargs)
    raise ReproError(
        f"cannot infer a Problem adapter for {type(obj).__name__}; "
        "wrap it explicitly (see repro.api.adapters)"
    )


def as_problems(objs: Any, **kwargs) -> "list[Problem]":
    """Coerce a whole batch for the engine planner, with a clear error trail.

    Applies :func:`as_problem` (sharing ``kwargs`` across the batch) to each
    entry and tags coercion failures with the batch position.  A bare
    transaction list is ambiguous here — ``as_problem`` would read it as a
    *single* scheduling problem — so batches of transaction workloads must
    wrap each entry in a :class:`TxnScheduleAdapter` first; anything
    iterable else-wise is treated as one problem per element.
    """
    problems = []
    for index, obj in enumerate(objs):
        try:
            problems.append(as_problem(obj, **kwargs))
        except ReproError as exc:
            raise ReproError(f"batch item {index}: {exc}") from None
    return problems
