"""Problem adapter for transaction slot-scheduling (Bittner & Groppe [29], [30])."""

from __future__ import annotations

from typing import Sequence

from repro.api.problem import Problem
from repro.db.transactions import Transaction
from repro.txn.classical import exhaustive_schedule, greedy_coloring_schedule
from repro.txn.qubo import (
    assignment_conflicts,
    assignment_makespan,
    decode_assignment,
    schedule_to_qubo,
)


class TxnScheduleAdapter(Problem):
    """Slot assignment under 2PL conflicts: solutions are ``{txn_id: slot}``.

    The exact objective is makespan plus a conflict penalty large enough
    that any conflict-free schedule beats any conflicting one — mirroring
    the QUBO's penalty structure but computed exactly.
    """

    name = "txn_schedule"

    def __init__(self, transactions: Sequence[Transaction], num_slots: "int | None" = None):
        self.transactions = list(transactions)
        if num_slots is None:
            # Greedy colouring bounds the slots any conflict-free schedule needs.
            num_slots = max(greedy_coloring_schedule(self.transactions).values()) + 1
        self.num_slots = num_slots
        self._conflict_penalty = sum(t.duration() for t in self.transactions) * max(num_slots, 1) + 1.0

    def build_qubo(self):
        return schedule_to_qubo(self.transactions, self.num_slots)

    def decode(self, bits) -> dict[str, int]:
        return decode_assignment(self.transactions, self.to_qubo(), bits, self.num_slots)

    def evaluate(self, solution: dict[str, int]) -> float:
        conflicts = assignment_conflicts(self.transactions, solution)
        return conflicts * self._conflict_penalty + assignment_makespan(self.transactions, solution)

    def refine(self, solution: dict[str, int]) -> dict[str, int]:
        """First-improvement single-transaction reslotting."""
        assignment = dict(solution)
        cost = self.evaluate(assignment)
        improved = True
        while improved:
            improved = False
            for t in self.transactions:
                for s in range(self.num_slots):
                    if s == assignment[t.txn_id]:
                        continue
                    candidate = dict(assignment)
                    candidate[t.txn_id] = s
                    c = self.evaluate(candidate)
                    if c < cost - 1e-12:
                        assignment, cost = candidate, c
                        improved = True
                        break
                if improved:
                    break
        return assignment

    def is_feasible(self, solution: dict[str, int]) -> bool:
        """Every transaction in a valid slot, zero conflicting co-schedules."""
        if set(solution) != {t.txn_id for t in self.transactions}:
            return False
        if any(not 0 <= s < self.num_slots for s in solution.values()):
            return False
        return assignment_conflicts(self.transactions, solution) == 0

    def classical_baseline(self, rng=None) -> dict[str, int]:
        """Exhaustive minimum makespan when tractable, else greedy colouring."""
        if self.num_slots ** len(self.transactions) <= 100_000:
            best, _, _ = exhaustive_schedule(self.transactions, self.num_slots)
            if best is not None:
                return best
        return greedy_coloring_schedule(self.transactions)
