"""Problem adapters for join ordering ([23]-[26]).

Two encodings, two solution shapes: the left-deep adapter works over join
*orders* (relation permutations), the bushy adapter over
:class:`~repro.db.plans.JoinTree` objects.  Both re-cost decoded plans with
the exact C_out model — the QUBO optimises a log-cost surrogate.
"""

from __future__ import annotations

from repro.api.problem import Problem
from repro.db.cost import CostModel
from repro.db.dp import dp_optimal_bushy, dp_optimal_leftdeep
from repro.db.plans import JoinTree, leftdeep_tree_from_order
from repro.db.query import JoinGraph
from repro.joinorder.bushy_qubo import BushyJoinQubo
from repro.joinorder.leftdeep_qubo import LeftDeepJoinQubo


class LeftDeepJoinAdapter(Problem):
    """Left-deep join ordering: solutions are relation orders (lists)."""

    name = "joinorder_leftdeep"

    def __init__(self, graph: JoinGraph, penalty: "float | None" = None):
        self.graph = graph
        self.builder = LeftDeepJoinQubo(graph, penalty=penalty)
        self._cost_model = CostModel(graph)

    def build_qubo(self):
        return self.builder.build()

    def decode(self, bits) -> list[str]:
        return self.builder.decode(self.to_qubo(), bits)

    def evaluate(self, solution: list[str]) -> float:
        return self._cost_model.cost(leftdeep_tree_from_order(solution))

    def refine(self, solution: list[str]) -> list[str]:
        """First-improvement pairwise-swap descent on the exact C_out."""
        order = list(solution)
        cost = self.evaluate(order)
        improved = True
        while improved:
            improved = False
            for i in range(len(order) - 1):
                for j in range(i + 1, len(order)):
                    candidate = list(order)
                    candidate[i], candidate[j] = candidate[j], candidate[i]
                    c = self.evaluate(candidate)
                    if c < cost - 1e-12:
                        order, cost = candidate, c
                        improved = True
                        break
                if improved:
                    break
        return order

    def is_feasible(self, solution: list[str]) -> bool:
        return sorted(solution) == self.graph.relations

    def classical_baseline(self, rng=None) -> list[str]:
        tree, _ = dp_optimal_leftdeep(self.graph, avoid_cross=False)
        return tree.leaves_in_order()


class BushyJoinAdapter(Problem):
    """Bushy join trees: solutions are :class:`JoinTree` objects."""

    name = "joinorder_bushy"

    def __init__(self, graph: JoinGraph, penalty: "float | None" = None):
        self.graph = graph
        self.builder = BushyJoinQubo(graph, penalty=penalty)

    def build_qubo(self):
        return self.builder.build()

    def decode(self, bits) -> JoinTree:
        return self.builder.decode(self.to_qubo(), bits)

    def evaluate(self, solution: JoinTree) -> float:
        return self.builder.true_cost(solution)

    def is_feasible(self, solution: JoinTree) -> bool:
        return solution.relations() == frozenset(self.graph.relations)

    def classical_baseline(self, rng=None) -> JoinTree:
        tree, _ = dp_optimal_bushy(self.graph)
        return tree
