"""Adapter for bare QUBOs — no domain semantics, the energy IS the objective.

Used by the qbsolv-style decomposer (:mod:`repro.engine.decompose`), whose
subproblems are clamped QUBO fragments, and by callers who already hold a
:class:`~repro.qubo.model.QuboModel` and want the facade/engine treatment
(sharding, caching, scheduling) without inventing a domain wrapper.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.problem import Problem
from repro.qubo.model import QuboModel


class RawQuboProblem(Problem):
    """A bare :class:`QuboModel` as a :class:`Problem`.

    The identity adapter: solutions are index-ordered bit tuples, decoding
    is a cast, and the exact objective is the QUBO energy itself.
    """

    name = "qubo"

    def __init__(self, model: QuboModel, name: "str | None" = None):
        self.model = model
        if name is not None:
            self.name = name

    def build_qubo(self) -> QuboModel:
        return self.model

    def to_qubo(self) -> QuboModel:
        # No cache indirection: the model instance IS the formulation.
        return self.model

    def decode(self, bits) -> tuple[int, ...]:
        return tuple(int(b) for b in bits)

    def evaluate(self, solution) -> float:
        return self.model.energy(np.asarray(solution, dtype=float))

    def is_feasible(self, solution) -> bool:
        return True

    def classical_baseline(self, rng=None) -> Any:
        raise NotImplementedError("raw QUBOs have no classical baseline")
