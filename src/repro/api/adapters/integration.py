"""Problem adapter for schema matching (Fritsch & Scherzinger [28])."""

from __future__ import annotations

from repro.api.problem import Problem
from repro.integration.classical import hungarian_matching
from repro.integration.qubo import (
    decode_matching,
    matching_similarity_total,
    matching_to_qubo,
)
from repro.integration.schema import Schema


class SchemaMatchingAdapter(Problem):
    """One-to-one attribute matching: solutions are ``{source: target}``.

    Matching *maximises* total similarity; :meth:`evaluate` negates the
    score so the facade uniformly minimises.
    """

    name = "schema_matching"

    def __init__(self, source: Schema, target: Schema, threshold: float = 0.25):
        self.source = source
        self.target = target
        self.threshold = threshold
        self._sims: "dict[tuple[str, str], float] | None" = None

    @property
    def similarities(self) -> dict[tuple[str, str], float]:
        """The pruned candidate-pair similarity map the QUBO is built over."""
        self.to_qubo()
        assert self._sims is not None
        return self._sims

    def build_qubo(self):
        model, sims = matching_to_qubo(self.source, self.target, threshold=self.threshold)
        self._sims = sims
        return model

    def decode(self, bits) -> dict[str, str]:
        return decode_matching(self.to_qubo(), bits)

    def evaluate(self, solution: dict[str, str]) -> float:
        return -matching_similarity_total(solution, self.similarities)

    def refine(self, solution: dict[str, str]) -> dict[str, str]:
        """Greedily add the best still-legal candidate pairs.

        Samplers sometimes leave attributes unmatched (a zero bit costs
        nothing); every candidate pair has positive similarity, so
        augmenting the matching can only improve the objective.
        """
        matching = dict(solution)
        used_a = set(matching)
        used_b = set(matching.values())
        for (a, b), _ in sorted(self.similarities.items(), key=lambda kv: -kv[1]):
            if a in used_a or b in used_b:
                continue
            matching[a] = b
            used_a.add(a)
            used_b.add(b)
        return matching

    def is_feasible(self, solution: dict[str, str]) -> bool:
        """One-to-one over known attributes."""
        sources = set(self.source.attribute_names)
        targets = set(self.target.attribute_names)
        if any(a not in sources or b not in targets for a, b in solution.items()):
            return False
        return len(set(solution.values())) == len(solution)

    def classical_baseline(self, rng=None) -> dict[str, str]:
        return hungarian_matching(self.source, self.target, threshold=self.threshold)
