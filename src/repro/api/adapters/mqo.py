"""Problem adapter for multiple query optimization (Trummer & Koch [20])."""

from __future__ import annotations

from repro.api.problem import Problem
from repro.exceptions import ReproError
from repro.mqo.classical import exhaustive_mqo, hill_climbing_mqo, local_search_from
from repro.mqo.problem import MQOProblem
from repro.mqo.qubo import decode_sample, mqo_to_qubo


class MQOAdapter(Problem):
    """MQO through the uniform pipeline: solutions are ``{query: plan}``."""

    name = "mqo"

    def __init__(self, problem: MQOProblem, weight: "float | None" = None):
        self.problem = problem
        self.weight = weight

    def build_qubo(self):
        return mqo_to_qubo(self.problem, weight=self.weight)

    def decode(self, bits) -> dict[str, str]:
        return decode_sample(self.problem, self.to_qubo(), bits)

    def evaluate(self, solution: dict[str, str]) -> float:
        return self.problem.total_cost(solution)

    def refine(self, solution: dict[str, str]) -> dict[str, str]:
        refined, _ = local_search_from(self.problem, solution)
        return refined

    def is_feasible(self, solution: dict[str, str]) -> bool:
        try:
            self.problem.validate_selection(solution)
        except ReproError:
            return False
        return True

    def classical_baseline(self, rng=None) -> dict[str, str]:
        """Exhaustive optimum when tractable, else multi-restart hill climbing."""
        space = 1
        for q in self.problem.queries:
            space *= len(self.problem.plans_of(q))
        if space <= 100_000:
            selection, _ = exhaustive_mqo(self.problem)
        else:
            selection, _ = hill_climbing_mqo(self.problem, rng=rng)
        return selection

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MQOAdapter({self.problem!r})"
