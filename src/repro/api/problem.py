"""The declarative problem layer of the Fig. 2 pipeline.

Every Table I workload — multiple query optimization, join ordering,
schema matching, transaction scheduling — funnels through the same
intermediate form (QUBO) on its way to a quantum machine.  :class:`Problem`
makes that funnel an explicit contract: a problem knows how to *formulate*
itself as a QUBO, how to *decode* a low-energy assignment back into a
domain-native solution, how to *evaluate* that solution with the exact
domain objective (QUBO energies use surrogate/penalty terms, so decoded
solutions are always re-costed), and optionally how to *refine* a solution
classically (the hybrid quantum-classical loop of Sec. III-C).
"""

from __future__ import annotations

import abc
from typing import Any, Hashable

from repro.qubo.model import QuboModel


class Problem(abc.ABC):
    """One optimisation workload, declaratively.

    Subclasses (the per-domain adapters in :mod:`repro.api.adapters`)
    implement the QUBO round trip; the facade in :mod:`repro.api.facade`
    drives them through any registered backend.
    """

    #: Short domain tag used in results and registry diagnostics.
    name: str = "problem"

    @abc.abstractmethod
    def build_qubo(self) -> QuboModel:
        """Formulate the QUBO (uncached; prefer :meth:`to_qubo`)."""

    def to_qubo(self) -> QuboModel:
        """The QUBO formulation, built once and cached.

        Decoders need the variable labelling of the *same* model instance
        the backend sampled, so every pipeline stage must go through this
        cached accessor rather than rebuilding.
        """
        model = getattr(self, "_qubo_cache", None)
        if model is None:
            model = self.build_qubo()
            self._qubo_cache = model
        return model

    @abc.abstractmethod
    def decode(self, bits) -> Any:
        """Map an index-ordered 0/1 assignment to a domain solution.

        Decoders repair infeasible assignments (the post-processing every
        published annealing pipeline applies), so any bitstring yields a
        usable solution.
        """

    @abc.abstractmethod
    def evaluate(self, solution) -> float:
        """Exact domain objective of a solution (lower is better).

        Maximisation domains (schema matching) negate their score so the
        facade can uniformly minimise.
        """

    def refine(self, solution) -> Any:
        """Classical polish of a decoded solution (default: identity)."""
        return solution

    def is_feasible(self, solution) -> bool:
        """Whether a solution satisfies the domain's hard constraints."""
        return True

    def classical_baseline(self, rng=None) -> Any:
        """Best available classical solution (exact on small instances).

        Backends that bypass the quantum pipeline entirely (the
        ``"classical"`` registry entry) call this; adapters that have no
        baseline may leave the default, which raises.
        """
        raise NotImplementedError(f"{type(self).__name__} has no classical baseline")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def qubo_signature(model: QuboModel) -> Hashable:
    """Structural fingerprint of a QUBO: variable count + coupling pattern.

    Two models with the same signature share an interaction graph, so
    hardware embeddings (and warm-start parameters) computed for one are
    valid for the other — the key the backends' batch caches hash on.
    """
    return (model.num_variables, tuple(sorted(model.quadratic)))
