"""The top-level solver facade: Problem -> QUBO -> Backend -> SolveResult.

One call drives the whole Fig. 2 pipeline for any Table I workload on any
registered engine::

    from repro import solve
    result = solve(problem, backend="annealer", seed=7)

Since the execution-engine refactor these entry points are thin front-ends
over :mod:`repro.engine`: the planner compiles batches into structure-keyed
shards, pluggable executors (``serial`` / ``threads`` / ``processes`` /
``async``) run the shards, and a content-addressed
:class:`~repro.engine.cache.ResultCache` skips repeat work.
``solve_portfolio`` races several backends on one instance (optionally
under a wall-clock deadline) and keeps the best answer; ``solve_many`` runs
a batch sharded by QUBO structure so embedding / warm-start caches amortise
within each shard while shards run in parallel.  Both accept a
``scheduler=`` :class:`~repro.engine.scheduler.AdaptiveScheduler`, which
routes work by observed per-structure quality/latency telemetry instead of
racing or fixing one backend.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.api.adapters import as_problem, as_problems
from repro.api.backends import Backend, get_backend
from repro.api.problem import Problem
from repro.api.result import SolveResult
from repro.engine.runner import run_portfolio, solve_batch, solve_single
from repro.engine.scheduler import (
    AdaptiveScheduler,
    run_portfolio_scheduled,
    solve_batch_scheduled,
)
from repro.exceptions import ReproError
from repro.obs import trace as obs

#: How many of the lowest-energy samples are decoded (and refined) per
#: solve.  Post-processing several reads — not just the single best — is
#: how the published annealing pipelines extract value from sample
#: diversity.
DEFAULT_TOP_K = 8


def _as_backend(backend: "str | Backend", **backend_opts) -> Backend:
    if isinstance(backend, Backend):
        if backend_opts:
            raise ReproError("backend_opts only apply when selecting a backend by name")
        return backend
    return get_backend(backend, **backend_opts)


def solve(
    problem: "Problem | Any",
    backend: "str | Backend" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
    cache: "Any | None" = None,
    store: "Any | None" = None,
    decompose: "bool | int | None" = None,
    **backend_opts,
) -> SolveResult:
    """Solve one problem end to end on one backend.

    Args:
        problem: A :class:`Problem` adapter, or a raw domain object
            (``MQOProblem``, ``JoinGraph``, schema pair, transaction list)
            that :func:`~repro.api.adapters.as_problem` can wrap.
        backend: Registry name (see :func:`~repro.api.backends.list_backends`)
            or a ready :class:`Backend` instance.
        seed: Int seed, ``numpy`` Generator, or ``None`` for fresh entropy.
            Identical seeds yield identical results when the backend is
            selected by name (a fresh instance per call); a reused
            stateful ``Backend`` instance deliberately carries its
            embedding/warm-start caches across calls, which shifts the
            RNG stream of later solves.
        refine: Apply the problem's classical polish to each decoded sample
            (the hybrid loop of Sec. III-C.2).
        top_k: Decode this many lowest-energy samples, keep the best.
        cache: ``None``/``False`` (off), ``True`` (process-global
            :class:`~repro.engine.cache.ResultCache`), a directory path, or
            a ``ResultCache``.  Only consulted when the backend is selected
            by name *and* ``seed`` is an integer (otherwise the result is
            not content-addressable); hits are byte-equivalent to a re-run
            and are flagged in ``info["engine"]["cache_hit"]``.
        store: ``None`` (consult the ``REPRO_STORE`` environment variable),
            ``False`` (off), a path, or an
            :class:`~repro.engine.store.EngineStore` — the durable SQLite
            tier of ``docs/engine.md``.  Adds a cross-process shared cache
            layer under ``cache`` (enabling caching if it was off) and
            records the solve's outcome into the durable scoreboard so
            routing knowledge survives restarts.
        decompose: Large-instance handling (``docs/engine.md``,
            "Decomposition").  ``None``/``False``: off.  ``True``: if the
            problem's QUBO exceeds the backend's declared
            :attr:`~repro.api.backends.Backend.capacity`, split it with the
            qbsolv-style decomposer in :mod:`repro.engine.decompose`, solve
            the blocks as one engine batch, and stitch (a backend without a
            capacity is assumed unbounded — no decomposition).  An ``int``
            sets the capacity threshold explicitly, regardless of the
            backend's own.  Inactive when the instance already fits; the
            stitched path reports provenance in ``info["decompose"]``.
        **backend_opts: Forwarded to the backend factory (e.g.
            ``num_reads=32`` for ``"sa"``, ``num_layers=3`` for ``"qaoa"``).
    """
    backend_name = backend if isinstance(backend, str) else None
    coerced = as_problem(problem)
    resolved = _as_backend(backend, **backend_opts)
    with obs.span("facade.solve", backend=resolved.name, problem=coerced.name):
        if decompose:
            capacity = resolved.capacity if decompose is True else int(decompose)
            if capacity is not None and coerced.to_qubo().num_variables > capacity:
                from repro.engine.decompose import solve_decomposed

                return solve_decomposed(
                    coerced,
                    resolved,
                    capacity,
                    backend_name=backend_name,
                    backend_opts=backend_opts,
                    seed=seed,
                    refine=refine,
                    top_k=top_k,
                    cache=cache,
                    store=store,
                )
        return solve_single(
            coerced,
            resolved,
            backend_name,
            backend_opts,
            seed,
            refine,
            top_k,
            cache=cache,
            store=store,
        )


def solve_portfolio(
    problem: "Problem | Any",
    backends: Sequence["str | Backend"] = ("sa", "tabu"),
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
    backend_opts: "Mapping[str, dict] | None" = None,
    deadline_s: "float | None" = None,
    scheduler: "AdaptiveScheduler | None" = None,
    store: "Any | None" = None,
) -> SolveResult:
    """Race several backends on one instance; return the best result.

    Each backend gets an independent child RNG split from ``seed``, so a
    deadline-free portfolio is reproducible as a whole.  The winner's
    result carries an ``info["portfolio"]`` breakdown of every contender
    and an ``info["portfolio_meta"]`` scheduling summary.

    Args:
        backend_opts: Per-backend factory options keyed by registry name,
            e.g. ``{"sa": {"num_reads": 64}, "qaoa": {"num_layers": 3}}``.
            Keys must name a string contender (instances configure
            themselves).
        deadline_s: Wall-clock budget in seconds.  When set, contenders run
            concurrently and only those finishing inside the deadline
            compete; stragglers are abandoned (marked
            ``"deadline_exceeded"`` in the breakdown).  At least one
            contender is always awaited.  Racing trades determinism for
            latency — leave ``None`` when exact reproducibility matters.
        scheduler: An :class:`~repro.engine.scheduler.AdaptiveScheduler`.
            When set, race-everything becomes route-then-race-top-k: the
            scheduler's scoreboard ranks the candidates for this instance's
            QUBO structure and only the top ``scheduler.race_top_k`` race
            (epsilon-greedy swap-ins keep colder backends measured).  All
            raced outcomes feed the scoreboard; contenders must then be
            registry names.
        store: Durable store spelling (see :func:`solve`).  Every
            contender's outcome is recorded into the durable scoreboard;
            with a scheduler, its scoreboard is additionally hydrated from
            the store so ranking starts warm.
    """
    backends = list(backends)
    with obs.span(
        "facade.solve_portfolio",
        contenders=len(backends),
        scheduled=scheduler is not None,
    ):
        if scheduler is not None:
            return run_portfolio_scheduled(
                as_problem(problem),
                backends,
                scheduler,
                seed=seed,
                refine=refine,
                top_k=top_k,
                backend_opts=backend_opts,
                deadline_s=deadline_s,
                store=store,
            )
        return run_portfolio(
            as_problem(problem),
            backends,
            seed=seed,
            refine=refine,
            top_k=top_k,
            backend_opts=backend_opts,
            deadline_s=deadline_s,
            store=store,
        )


def solve_many(
    problems: Iterable["Problem | Any"],
    backend: "str | Backend | Sequence[str]" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
    executor: str = "serial",
    cache: "Any | None" = None,
    max_shard_size: "int | None" = None,
    scheduler: "AdaptiveScheduler | None" = None,
    store: "Any | None" = None,
    seeds: "Sequence[int] | None" = None,
    labels: "Sequence[str | None] | None" = None,
    **backend_opts,
) -> list[SolveResult]:
    """Solve a batch of problems, sharded by QUBO structure.

    The planner groups structurally identical QUBOs into shards that share
    one backend instance — the annealer backend reuses hardware embeddings
    and the QAOA backend warm-starts its angles within a shard, so
    same-shaped instances pay the expensive setup once — while distinct
    shards run independently on the chosen executor.  Each problem gets an
    independent child RNG split from ``seed`` *in batch order*, making the
    batch reproducible as a whole and its objectives identical across
    ``serial``, ``threads``, and ``processes`` executors.  (Batch items are
    still not bitwise-equal to standalone ``solve`` calls: the child RNG
    streams and the shard-shared caches differ from the fresh-instance
    path.)

    Args:
        executor: ``"serial"`` (default), ``"threads"`` (overlaps wherever
            the backend drops the GIL or waits on I/O), ``"processes"``
            (true parallelism for the CPU-bound simulator backends; shards
            must pickle, so select the backend by name), ``"async"``
            (asyncio event loop with bounded global/per-backend concurrency;
            backends implementing the ``run_async`` coroutine overlap on
            the loop without pinning a worker thread each — built for
            latency-bound hardware clients), or an
            :class:`~repro.engine.executors.Executor` instance.  A
            caller-supplied ``Backend`` *instance* keeps the determinism
            guarantee only while its state is keyed by QUBO signature
            (true of the built-ins) — and under ``"processes"`` the
            workers operate on pickled copies, so the caller's instance
            does not accumulate caches across the batch.
        cache: Same spellings as :func:`solve`.  Hits are shard-atomic: a
            shard is served from cache only when every item hits, because
            later items' samples depend on backend state built by earlier
            ones.  Hits never perturb the RNG stream of neighbouring items.
        max_shard_size: Split signature groups larger than this into
            several shards (more parallelism; setup amortises per split).
        scheduler: An :class:`~repro.engine.scheduler.AdaptiveScheduler`.
            When set, ``backend`` may be a *sequence* of registry names and
            every shard is routed to the candidate with the best expected
            quality-under-deadline for its QUBO structure (epsilon-greedy,
            scoreboard-driven; see ``docs/engine.md``).  Routing happens
            before dispatch and the scoreboard updates after the batch, so
            scheduled batches keep the cross-executor determinism contract
            for a fixed scheduler state.  In scheduled mode
            ``**backend_opts`` is portfolio-style — per-backend factory
            dicts keyed by name, e.g. ``sa={"num_reads": 64}``.
        store: Durable store spelling (see :func:`solve`).  Results flow
            through the store's cross-process cache tier, the batch's
            telemetry is recorded into the durable scoreboard at the batch
            boundary, and in scheduled mode the routed shards' structure
            signatures are prefetched from the store before dispatch (see
            the "Durable store" section of ``docs/engine.md``).
        seeds: Explicit per-item child seeds (one integer per problem),
            overriding the batch split from ``seed``.  Combined with
            ``max_shard_size=1``, each item becomes its own shard leader
            and its result (and cache key) is exactly that of a standalone
            :func:`solve` with the same backend/opts/seed — the contract
            the service tier's request coalescing relies on
            (``docs/service.md``).
        labels: Optional per-item tags (one per problem, ``None`` entries
            allowed), surfaced verbatim in ``info["engine"]["label"]`` on
            both the miss and cache-hit paths.  Pure telemetry: labels
            never influence sharding, seeds, routing, or cache keys, so a
            labelled batch is bit-identical to the same batch unlabelled.
            The SQL workload runner (``docs/workload.md``) uses them to tie
            each result back to its compiled instance.
        **backend_opts: Forwarded to the backend factory, once per shard
            (unscheduled mode), or per-backend option dicts keyed by
            registry name (scheduled mode).
    """
    executor_label = executor if isinstance(executor, str) else getattr(executor, "name", "custom")
    with obs.span(
        "facade.solve_many", executor=executor_label, scheduled=scheduler is not None
    ):
        if scheduler is not None:
            candidates = [backend] if isinstance(backend, (str, Backend)) else list(backend)
            return solve_batch_scheduled(
                as_problems(problems),
                candidates,
                scheduler,
                seed=seed,
                refine=refine,
                top_k=top_k,
                executor=executor,
                cache=cache,
                max_shard_size=max_shard_size,
                backend_opts=backend_opts,
                store=store,
                seeds=seeds,
                labels=labels,
            )
        if not isinstance(backend, (str, Backend)):
            raise ReproError(
                "a sequence of candidate backends requires scheduler=; pass an "
                "AdaptiveScheduler or select one backend"
            )
        return solve_batch(
            problems,
            backend,
            seed=seed,
            refine=refine,
            top_k=top_k,
            executor=executor,
            cache=cache,
            max_shard_size=max_shard_size,
            backend_opts=backend_opts,
            store=store,
            seeds=seeds,
            labels=labels,
        )
