"""The top-level solver facade: Problem -> QUBO -> Backend -> SolveResult.

One call drives the whole Fig. 2 pipeline for any Table I workload on any
registered engine::

    from repro import solve
    result = solve(problem, backend="annealer", seed=7)

``solve_portfolio`` races several backends on one instance and keeps the
best answer; ``solve_many`` runs a batch through a *single* backend
instance so embedding / warm-start caches amortise across structurally
identical QUBOs.
"""

from __future__ import annotations

import math
import time
from typing import Any, Iterable, Sequence

from repro.api.adapters import as_problem
from repro.api.backends import Backend, get_backend
from repro.api.problem import Problem
from repro.api.result import SolveResult
from repro.exceptions import ReproError
from repro.utils.rngtools import ensure_rng, spawn

#: How many of the lowest-energy samples are decoded (and refined) per
#: solve.  Post-processing several reads — not just the single best — is
#: how the published annealing pipelines extract value from sample
#: diversity.
DEFAULT_TOP_K = 8


def _as_backend(backend: "str | Backend", **backend_opts) -> Backend:
    if isinstance(backend, Backend):
        if backend_opts:
            raise ReproError("backend_opts only apply when selecting a backend by name")
        return backend
    return get_backend(backend, **backend_opts)


def solve(
    problem: "Problem | Any",
    backend: "str | Backend" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
    **backend_opts,
) -> SolveResult:
    """Solve one problem end to end on one backend.

    Args:
        problem: A :class:`Problem` adapter, or a raw domain object
            (``MQOProblem``, ``JoinGraph``, schema pair, transaction list)
            that :func:`~repro.api.adapters.as_problem` can wrap.
        backend: Registry name (see :func:`~repro.api.backends.list_backends`)
            or a ready :class:`Backend` instance.
        seed: Int seed, ``numpy`` Generator, or ``None`` for fresh entropy.
            Identical seeds yield identical results when the backend is
            selected by name (a fresh instance per call); a reused
            stateful ``Backend`` instance deliberately carries its
            embedding/warm-start caches across calls, which shifts the
            RNG stream of later solves.
        refine: Apply the problem's classical polish to each decoded sample
            (the hybrid loop of Sec. III-C.2).
        top_k: Decode this many lowest-energy samples, keep the best.
        **backend_opts: Forwarded to the backend factory (e.g.
            ``num_reads=32`` for ``"sa"``, ``num_layers=3`` for ``"qaoa"``).
    """
    return _solve_one(
        as_problem(problem),
        _as_backend(backend, **backend_opts),
        ensure_rng(seed),
        refine,
        top_k,
    )


def _solve_one(problem: Problem, backend: Backend, rng, refine: bool, top_k: int) -> SolveResult:
    start = time.perf_counter()
    if backend.solves_problem_directly:
        solution = backend.solve_problem(problem, rng=rng)
        if refine:
            solution = problem.refine(solution)
        return SolveResult(
            problem=problem.name,
            method=backend.name,
            solution=solution,
            objective=problem.evaluate(solution),
            energy=math.nan,
            wall_time=time.perf_counter() - start,
            num_variables=0,
            info={"solver": backend.name},
        )

    model = problem.to_qubo()
    samples = backend.run(model, rng=rng)
    best_solution = None
    best_objective = math.inf
    for sample in samples.truncate(max(top_k, 1)):
        solution = problem.decode(sample.bits)
        if refine:
            solution = problem.refine(solution)
        objective = problem.evaluate(solution)
        if objective < best_objective:
            best_objective = objective
            best_solution = solution
    return SolveResult(
        problem=problem.name,
        method=backend.name,
        solution=best_solution,
        objective=best_objective,
        energy=samples.best.energy,
        wall_time=time.perf_counter() - start,
        num_variables=model.num_variables,
        info=dict(samples.info),
    )


def solve_portfolio(
    problem: "Problem | Any",
    backends: Sequence["str | Backend"] = ("sa", "tabu"),
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
) -> SolveResult:
    """Race several backends on one instance; return the best result.

    Each backend gets an independent child RNG split from ``seed``, so the
    portfolio is reproducible as a whole.  The winner's result carries an
    ``info["portfolio"]`` breakdown of every contender.
    """
    if not backends:
        raise ReproError("portfolio needs at least one backend")
    problem = as_problem(problem)
    rngs = spawn(ensure_rng(seed), len(backends))
    results = [
        _solve_one(problem, _as_backend(b), rng, refine, top_k)
        for b, rng in zip(backends, rngs)
    ]
    best = min(results, key=lambda r: r.objective)
    best.info["portfolio"] = [
        {"method": r.method, "objective": r.objective, "wall_time": r.wall_time}
        for r in results
    ]
    return best


def solve_many(
    problems: Iterable["Problem | Any"],
    backend: "str | Backend" = "sa",
    seed: "int | None" = None,
    refine: bool = True,
    top_k: int = DEFAULT_TOP_K,
    **backend_opts,
) -> list[SolveResult]:
    """Solve a batch of problems on one shared backend instance.

    Sharing the instance is the point: the annealer backend reuses hardware
    embeddings and the QAOA backend warm-starts its angles across
    structurally identical QUBOs, so a batch of same-shaped instances pays
    the expensive setup once.  Each problem gets an independent child RNG
    split from ``seed``, making the batch reproducible *as a whole* — but
    batch items are not bitwise-equal to standalone ``solve`` calls: the
    child RNG streams and the shared caches differ from the fresh-instance
    path.
    """
    problems = [as_problem(p) for p in problems]
    shared = _as_backend(backend, **backend_opts)
    rngs = spawn(ensure_rng(seed), len(problems))
    return [_solve_one(p, shared, rng, refine, top_k) for p, rng in zip(problems, rngs)]
