"""The uniform result type returned by every facade entry point."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


def _jsonify(value: Any) -> Any:
    """Coerce a result payload into strict-JSON-safe plain python.

    Backends leak ``numpy`` scalars and arrays into solutions and info
    dicts, and several conventions use non-finite floats (the NaN-energy
    convention, ``math.inf`` portfolio placeholders) that strict JSON
    cannot represent.  Scalars become their python equivalents, arrays
    become nested lists, tuples/sets become (sorted, for sets) lists,
    non-finite floats become ``None``, and non-string dict keys are
    stringified — lossy only in container *type*, never in numeric value.
    """
    import numpy as np

    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else str(k)): _jsonify(v) for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    return repr(value)


@dataclass
class SolveResult:
    """One solved problem instance, backend-agnostic.

    Attributes:
        problem: The :attr:`Problem.name` domain tag.
        method: Backend name (``"sa"``, ``"annealer"``, ``"classical"``, ...).
        solution: Domain-native decoded solution (plan selection, join
            order/tree, attribute matching, slot assignment, ...).
        objective: Exact domain objective of ``solution`` (lower is better;
            maximisation domains report the negated score).
        energy: Best sampled QUBO energy.  **NaN-energy convention:** a NaN
            here means the backend bypassed QUBO *sampling* entirely (the
            ``"classical"`` direct-solve path) — there simply is no sampled
            energy to report, and ``NaN`` is deliberately unequal to every
            real energy so it can never masquerade as one.  Test via
            :attr:`used_qubo`, not ``==`` (NaN compares unequal to itself).
        wall_time: End-to-end seconds spent solving.  A cache-served result
            keeps the wall time of the original solve it memoised.
        num_variables: Size of the problem's QUBO formulation.  Reported on
            every path — direct-solve backends skip sampling but still
            formulate, so result rows stay comparable across backends.
        info: Backend diagnostics (sampler stats, embedding chain metrics,
            QAOA expectation, portfolio breakdown, ...).  Engine-executed
            results add ``info["engine"]``: shard id/position/size, the
            shard's 16-hex structure ``signature`` (the adaptive
            scheduler's scoreboard key), executor name, the item's child
            seed, a truncated QUBO fingerprint, ``cache_hit``, and the
            ``wall_time`` split — ``formulate_time`` (QUBO formulation),
            ``solve_time`` (backend sampling / direct solve), and
            ``cache_time`` (cache-probe seconds paid by this dispatch).
            Every kernel result also carries the raw split in
            ``info["timings"]``, and when tracing is active
            ``info["trace"]`` holds the ``{"trace_id", "span_id"}`` of the
            span that produced the result (the flight-recorder join key).
            Scheduler-routed results additionally carry
            ``info["engine"]["scheduler"]`` (chosen backend, routing mode
            ``cold``/``explore``/``exploit``, candidate list), and a
            scheduled portfolio stamps the ranking and raced subset into
            ``info["portfolio_meta"]["scheduler"]``.
    """

    problem: str
    method: str
    solution: Any
    objective: float
    energy: float = math.nan
    wall_time: float = 0.0
    num_variables: int = 0
    info: dict = field(default_factory=dict)

    @property
    def used_qubo(self) -> bool:
        """Whether this result came through QUBO sampling (NaN energy = no)."""
        return not math.isnan(self.energy)

    @property
    def cache_hit(self) -> bool:
        """Whether the engine served this result from its ResultCache."""
        return bool(self.info.get("engine", {}).get("cache_hit", False))

    @property
    def engine(self) -> dict:
        """The ``info["engine"]`` telemetry block (empty dict off-engine)."""
        return self.info.get("engine", {})

    @property
    def timings(self) -> dict:
        """The ``wall_time`` split: formulate / solve (and cache seconds).

        Prefers the engine block (which adds ``cache_time``) and falls
        back to the kernel's raw ``info["timings"]``; empty off-engine
        for results deserialised from pre-split payloads.
        """
        engine = self.info.get("engine", {})
        if "solve_time" in engine:
            return {
                "formulate_time": engine.get("formulate_time", 0.0),
                "solve_time": engine.get("solve_time", 0.0),
                "cache_time": engine.get("cache_time", 0.0),
            }
        return dict(self.info.get("timings") or {})

    @property
    def scheduled_backend(self) -> "str | None":
        """Backend an adaptive scheduler routed this item to, if any."""
        return self.engine.get("scheduler", {}).get("backend")

    def to_json_dict(self) -> dict:
        """A strict-JSON-safe dict of this result (``json.dumps`` clean).

        The NaN-energy convention crosses the wire as ``"energy": null``
        (NaN is not JSON, and ``nan`` tokens break strict parsers), and
        every ``numpy`` scalar or array in ``solution``/``info`` is
        converted to plain python (see :func:`_jsonify`), so service
        responses never leak ``nan``/``float64`` reprs into JSON.
        :meth:`from_json_dict` reverses the trip; container types inside
        ``solution``/``info`` may relax (tuples and sets come back as
        lists) but every numeric value survives exactly.
        """
        return {
            "problem": self.problem,
            "method": self.method,
            "solution": _jsonify(self.solution),
            "objective": _jsonify(float(self.objective)),
            "energy": _jsonify(float(self.energy)),
            "wall_time": float(self.wall_time),
            "num_variables": int(self.num_variables),
            "info": _jsonify(self.info),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SolveResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        ``null`` objective/energy deserialise to NaN (restoring the
        NaN-energy convention: ``used_qubo`` is ``False`` again on the
        direct-solve path).
        """

        def _num(value) -> float:
            return math.nan if value is None else float(value)

        return cls(
            problem=payload["problem"],
            method=payload["method"],
            solution=payload.get("solution"),
            objective=_num(payload.get("objective")),
            energy=_num(payload.get("energy")),
            wall_time=float(payload.get("wall_time", 0.0)),
            num_variables=int(payload.get("num_variables", 0)),
            info=dict(payload.get("info") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult({self.problem!r} via {self.method!r}, "
            f"objective={self.objective:.6g}, {self.wall_time * 1e3:.1f} ms)"
        )
